//! Differential harness for the delta-varint compressed CSR: against
//! randomly generated graphs — and graphs pushed through the mutation
//! paths serving actually exercises (`splice` deltas, `block_diagonal`
//! coalescing, partitioning) — `CompressedCsr::encode` → `decode` must
//! be a structural identity, and per-row reads must match the
//! uncompressed adjacency exactly. The compressed form is the layout
//! big graphs are *served* from, so any divergence here is silent
//! wrong-answer territory, not a perf bug.

use blockgnn::graph::{CompressedCsr, CsrGraph, PartitionStrategy};
use proptest::prelude::*;

/// Structural equality: same shape and, row by row, the same neighbor
/// multiset in the same order. (Graph ids differ — `decode` mints a
/// fresh snapshot — so `PartialEq` on `CsrGraph` is not the contract.)
fn assert_structurally_identical(original: &CsrGraph, decoded: &CsrGraph) {
    assert_eq!(original.num_nodes(), decoded.num_nodes(), "node count");
    assert_eq!(original.num_arcs(), decoded.num_arcs(), "arc count");
    for u in 0..original.num_nodes() {
        assert_eq!(original.neighbors(u), decoded.neighbors(u), "row {u}");
    }
}

fn round_trip(graph: &CsrGraph) -> CsrGraph {
    let compressed = CompressedCsr::encode(graph);
    assert_eq!(compressed.num_nodes(), graph.num_nodes());
    assert_eq!(compressed.num_arcs(), graph.num_arcs());
    // Random access must agree with the uncompressed rows without a
    // full decode.
    for u in 0..graph.num_nodes() {
        assert_eq!(compressed.row(u), graph.neighbors(u), "compressed row {u}");
    }
    let decoded = compressed.decode();
    assert_structurally_identical(graph, &decoded);
    decoded
}

fn graph_from(num_nodes: usize, arcs: &[(usize, usize)]) -> CsrGraph {
    let edges: Vec<(usize, usize)> =
        arcs.iter().map(|&(u, v)| (u % num_nodes, v % num_nodes)).collect();
    CsrGraph::from_edges(num_nodes, &edges, true).expect("endpoints are in range")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn prop_encode_decode_is_a_structural_identity(
        num_nodes in 1usize..60,
        arcs in proptest::collection::vec((0usize..60, 0usize..60), 0..150),
    ) {
        let graph = graph_from(num_nodes, &arcs);
        round_trip(&graph);
    }

    #[test]
    fn prop_spliced_graphs_survive_compression(
        num_nodes in 2usize..40,
        arcs in proptest::collection::vec((0usize..40, 0usize..40), 1..80),
        grown in 0usize..10,
        added in proptest::collection::vec((0usize..50, 0usize..50), 1..20),
    ) {
        // The delta path: decode the compressed snapshot, splice the
        // mutation in, and the re-encoded result must still round-trip
        // and match the splice of the *uncompressed* original.
        let graph = graph_from(num_nodes, &arcs);
        let decoded = round_trip(&graph);
        let new_n = num_nodes + grown;
        let add: Vec<(usize, usize)> =
            added.iter().map(|&(u, v)| (u % new_n, v % new_n)).collect();
        let direct = graph.splice(new_n, &add, &[]).expect("splice applies");
        let via_compressed = decoded.splice(new_n, &add, &[]).expect("splice applies");
        assert_structurally_identical(&direct, &via_compressed);
        round_trip(&direct);
    }

    #[test]
    fn prop_block_diagonal_of_decoded_blocks_matches_the_original(
        a_nodes in 1usize..30,
        a_arcs in proptest::collection::vec((0usize..30, 0usize..30), 0..60),
        b_nodes in 1usize..30,
        b_arcs in proptest::collection::vec((0usize..30, 0usize..30), 0..60),
    ) {
        // The coalescing path: building the batch super-graph from
        // decoded blocks must equal building it from the originals.
        let a = graph_from(a_nodes, &a_arcs);
        let b = graph_from(b_nodes, &b_arcs);
        let (da, db) = (round_trip(&a), round_trip(&b));
        let direct = CsrGraph::block_diagonal(&[&a, &b]);
        let via_compressed = CsrGraph::block_diagonal(&[&da, &db]);
        assert_structurally_identical(&direct, &via_compressed);
        round_trip(&direct);
    }

    #[test]
    fn prop_partition_plans_are_identical_on_decoded_graphs(
        num_nodes in 1usize..50,
        arcs in proptest::collection::vec((0usize..50, 0usize..50), 0..120),
        k in 1usize..6,
    ) {
        // The serving path: every cut-placement strategy must plan the
        // exact same parts (targets and halos) from the decoded graph.
        let graph = graph_from(num_nodes, &arcs);
        let decoded = round_trip(&graph);
        for strategy in [
            PartitionStrategy::Contiguous,
            PartitionStrategy::DegreeBalanced,
            PartitionStrategy::Bfs,
        ] {
            prop_assert_eq!(
                strategy.partition(&graph, k, 16),
                strategy.partition(&decoded, k, 16),
                "{:?} plan diverged",
                strategy
            );
        }
    }
}

#[test]
fn resident_bytes_accounts_the_row_table_and_payload() {
    // The accounting contract the §IV-B budget check leans on: the
    // compressed footprint is the varint payload plus a u32 row table,
    // and on gap-friendly (locally clustered) graphs it undercuts the
    // flat u32 adjacency.
    let ring: Vec<(usize, usize)> = (0..400).map(|u| (u, (u + 1) % 400)).collect();
    let graph = CsrGraph::from_edges(400, &ring, true).expect("builds");
    let compressed = CompressedCsr::encode(&graph);
    assert!(compressed.resident_bytes() >= (graph.num_nodes() + 1) * 4);
    assert!(
        compressed.resident_bytes() < graph.adjacency_bytes(),
        "ring adjacency should compress well below the flat layout \
         ({} vs {} bytes)",
        compressed.resident_bytes(),
        graph.adjacency_bytes()
    );
    round_trip(&graph);
}
