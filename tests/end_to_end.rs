//! End-to-end integration: train a compressed GNN in software, deploy
//! its weights onto the fixed-point accelerator, and confirm the
//! hardware datapath preserves the learned behaviour — the full
//! algorithm→hardware story of the paper in one test file.

use blockgnn::accel::{BlockGnnAccelerator, PostOp};
use blockgnn::core::SpectralBlockCirculant;
use blockgnn::engine::{BackendKind, EngineBuilder, InferRequest};
use blockgnn::gnn::train::{train_node_classifier, TrainConfig};
use blockgnn::gnn::{build_model, Compression, ModelKind};
use blockgnn::graph::{Dataset, DatasetSpec};
use blockgnn::linalg::vector::argmax;
use blockgnn::nn::{CirculantDense, Layer};
use blockgnn::perf::coeffs::HardwareCoeffs;
use blockgnn::perf::params::CirCoreParams;
use std::sync::Arc;

fn small_task() -> Dataset {
    let spec = DatasetSpec::new("e2e", 220, 900, 32, 4);
    Dataset::synthesize(&spec, 0.85, 3.0, 314)
}

#[test]
fn compressed_training_then_spectral_inference_agree() {
    // Train a circulant layer, export to BlockCirculantMatrix, and check
    // the exported spectral execution matches the layer's own forward.
    let mut layer = CirculantDense::new(24, 32, 8, 5).unwrap();
    let x = blockgnn::linalg::Matrix::from_fn(3, 32, |i, j| ((i * 32 + j) as f64 * 0.11).sin());
    let y_layer = layer.forward(&x, false);
    let exported = layer.to_block_circulant();
    let spectral = SpectralBlockCirculant::new(&exported).unwrap();
    for r in 0..3 {
        let y_export = spectral.matvec(x.row(r));
        for (a, b) in y_layer.row(r).iter().zip(&y_export) {
            // The layer adds bias; subtracting it must recover the
            // spectral product. Bias starts at zero, so direct match.
            assert!((a - b).abs() < 1e-9, "row {r}: layer {a} vs export {b}");
        }
    }
}

#[test]
fn trained_weights_survive_the_fixed_point_datapath() {
    // Train a compressed GCN, then push one trained weight matrix
    // through the functional accelerator and verify the outputs track
    // the float reference at quantization precision.
    let ds = small_task();
    let mut model = build_model(
        ModelKind::Gcn,
        ds.feature_dim(),
        16,
        ds.num_classes,
        Compression::BlockCirculant { block_size: 8 },
        77,
    )
    .unwrap();
    let report = train_node_classifier(
        model.as_mut(),
        &ds,
        &TrainConfig { epochs: 40, lr: 0.02, patience: 0 },
    );
    assert!(report.test_accuracy > 0.6, "model must learn, got {}", report.test_accuracy);

    // Deploy a freshly exported circulant weight of the same shape class.
    let layer = CirculantDense::new(16, ds.feature_dim(), 8, 3).unwrap();
    let weights = layer.to_block_circulant();
    let mut accel = BlockGnnAccelerator::new(CirCoreParams::base(), HardwareCoeffs::zc706());
    accel.load_weights(&weights).expect("compressed weights fit the WB");

    let batch: Vec<Vec<f64>> = (0..6).map(|r| ds.features.row(r).to_vec()).collect();
    let hw_out = accel.process_batch(&batch, PostOp::Relu).expect("batch fits NFB");
    for (x, hw) in batch.iter().zip(&hw_out) {
        let mut sw = weights.matvec_direct(x);
        for v in &mut sw {
            *v = v.max(0.0);
        }
        for (a, b) in sw.iter().zip(hw) {
            assert!((a - b).abs() < 5e-2, "hw/sw divergence: {a} vs {b}");
        }
    }
}

#[test]
fn dense_and_compressed_models_make_mostly_identical_predictions() {
    // The Table III premise: compression barely moves predictions on a
    // learnable task.
    let ds = small_task();
    let cfg = TrainConfig { epochs: 50, lr: 0.02, patience: 0 };

    let mut dense = build_model(
        ModelKind::Gcn,
        ds.feature_dim(),
        16,
        ds.num_classes,
        Compression::Dense,
        9,
    )
    .unwrap();
    let dense_report = train_node_classifier(dense.as_mut(), &ds, &cfg);

    let mut compressed = build_model(
        ModelKind::Gcn,
        ds.feature_dim(),
        16,
        ds.num_classes,
        Compression::BlockCirculant { block_size: 8 },
        9,
    )
    .unwrap();
    let comp_report = train_node_classifier(compressed.as_mut(), &ds, &cfg);

    assert!(dense_report.test_accuracy > 0.7);
    assert!(
        dense_report.test_accuracy - comp_report.test_accuracy < 0.12,
        "compression cost too high: {} -> {}",
        dense_report.test_accuracy,
        comp_report.test_accuracy
    );

    // Prediction agreement on test nodes.
    let dl = dense.forward(&ds.graph, &ds.features, false);
    let cl = compressed.forward(&ds.graph, &ds.features, false);
    let agree =
        ds.masks.test.iter().filter(|&&v| argmax(dl.row(v)) == argmax(cl.row(v))).count();
    let frac = agree as f64 / ds.masks.test.len() as f64;
    assert!(frac > 0.7, "prediction agreement only {frac:.2}");
}

#[test]
fn trained_model_serves_through_the_engine_front_door() {
    // The full production story: train a compressed GNN, freeze it into
    // an Engine on the simulated-accelerator backend, and serve. The
    // engine's answers must match the training-path forward pass exactly
    // (preparation changes the execution schedule, not the math), come
    // with a hardware report, and keep the learned accuracy.
    let ds = small_task();
    let mut model = build_model(
        ModelKind::GsPool,
        ds.feature_dim(),
        16,
        ds.num_classes,
        Compression::BlockCirculant { block_size: 8 },
        31,
    )
    .unwrap();
    let report = train_node_classifier(
        model.as_mut(),
        &ds,
        &TrainConfig { epochs: 40, lr: 0.02, patience: 0 },
    );
    assert!(report.test_accuracy > 0.6, "model must learn, got {}", report.test_accuracy);
    let reference = model.forward(&ds.graph, &ds.features, false);

    let test_nodes = ds.masks.test.clone();
    let labels = ds.labels.clone();
    let dataset = Arc::new(ds);
    let mut engine = EngineBuilder::new(ModelKind::GsPool, BackendKind::SimulatedAccel)
        .build_with_model(model, Arc::clone(&dataset))
        .expect("trained weights deploy");

    let mut session = engine.session();
    let response = session.infer(&InferRequest::all_nodes()).expect("refresh serves");
    assert_eq!(
        response.logits.linf_distance(&reference),
        0.0,
        "engine serving must reproduce the training-path forward exactly"
    );
    assert!(response.sim.expect("hardware report").total_cycles > 0);

    let correct = test_nodes.iter().filter(|&&v| response.predictions[v] == labels[v]).count();
    let acc = correct as f64 / test_nodes.len() as f64;
    assert!(
        (acc - report.test_accuracy).abs() < 0.15,
        "served accuracy {acc:.3} far from trained {:.3}",
        report.test_accuracy
    );

    // Sampled serving on the same engine stays close to full-graph.
    let batch: Vec<usize> = test_nodes.iter().copied().take(40).collect();
    let sampled = session
        .infer(&InferRequest::paper_sampled(batch.clone(), 3))
        .expect("sampled request serves");
    let agree = batch
        .iter()
        .zip(&sampled.predictions)
        .filter(|(&v, &p)| response.predictions[v] == p)
        .count();
    assert!(
        agree as f64 / batch.len() as f64 > 0.7,
        "sampled predictions collapsed: {agree}/{} agree",
        batch.len()
    );
    assert_eq!(session.stats().requests, 2);
}

#[test]
fn all_four_models_train_compressed_end_to_end() {
    let ds = small_task();
    let cfg = TrainConfig { epochs: 35, lr: 0.015, patience: 0 };
    for kind in ModelKind::all() {
        let mut model = build_model(
            kind,
            ds.feature_dim(),
            16,
            ds.num_classes,
            Compression::BlockCirculant { block_size: 4 },
            13,
        )
        .unwrap();
        let report = train_node_classifier(model.as_mut(), &ds, &cfg);
        assert!(
            report.test_accuracy > 0.5,
            "{kind}: compressed training reached only {:.3}",
            report.test_accuracy
        );
        assert!(report.final_loss.is_finite());
    }
}
