//! Partition-parallel serving parity: sharded full-graph (and sampled)
//! inference must reproduce the single-threaded path — bit-identically
//! on the dense backend, within FFT tolerance on the spectral paths —
//! for all four model kinds, including degenerate `k = 1` partitions,
//! overlapping halos, and merged hardware reports.

use blockgnn::engine::{
    BackendKind, Engine, EngineBuilder, EngineError, GraphDelta, InferRequest, ParallelEngine,
};
use blockgnn::gnn::ModelKind;
use blockgnn::graph::{datasets, Dataset, PartitionStrategy};
use blockgnn::nn::Compression;
use proptest::prelude::*;
use std::sync::Arc;

fn task() -> Arc<Dataset> {
    Arc::new(datasets::pubmed_like_small(11))
}

fn engine_for(kind: ModelKind, backend: BackendKind, dataset: &Arc<Dataset>) -> Engine {
    EngineBuilder::new(kind, backend)
        .hidden_dim(16)
        .compression(Compression::BlockCirculant { block_size: 8 })
        .seed(41)
        .build(Arc::clone(dataset))
        .expect("engine builds")
}

fn parallel_for(
    kind: ModelKind,
    backend: BackendKind,
    dataset: &Arc<Dataset>,
    workers: usize,
) -> ParallelEngine {
    engine_for(kind, backend, dataset).into_parallel(workers).expect("workers > 0")
}

#[test]
fn parallel_full_graph_logits_are_bit_identical_for_every_model_kind() {
    // The staged execution contract: every row is produced by exactly
    // the same arithmetic as the sequential pass, so even the spectral
    // backends match bit-for-bit (each row's FFTs see the same inputs).
    let ds = task();
    let request = InferRequest::all_nodes();
    for kind in ModelKind::all() {
        for backend in [BackendKind::Dense, BackendKind::Spectral] {
            let sequential =
                engine_for(kind, backend, &ds).session().infer(&request).expect("serves");
            let mut parallel = parallel_for(kind, backend, &ds, 4);
            let sharded = parallel.session().infer(&request).expect("serves");
            assert!(sharded.parts >= 4, "{kind}/{backend}: expected a real shard");
            let drift = sharded.logits.linf_distance(&sequential.logits);
            assert_eq!(drift, 0.0, "{kind}/{backend}: parallel drifted by {drift:.3e}");
            assert_eq!(sharded.predictions, sequential.predictions);
        }
    }
}

#[test]
fn degenerate_single_part_partition_matches_too() {
    // k = 1: one worker, one part covering the whole graph — the
    // partition machinery must collapse to the sequential result.
    let ds = Arc::new(datasets::cora_like_small(3));
    for kind in ModelKind::all() {
        let sequential = engine_for(kind, BackendKind::Dense, &ds)
            .session()
            .infer(&InferRequest::all_nodes())
            .expect("serves");
        let mut parallel =
            parallel_for(kind, BackendKind::Dense, &ds, 1).with_part_budget(usize::MAX);
        assert_eq!(parallel.parts().len(), 1, "{kind}: budget admits one part");
        let merged = parallel.session().infer(&InferRequest::all_nodes()).expect("serves");
        assert_eq!(merged.parts, 1);
        assert_eq!(merged.logits.linf_distance(&sequential.logits), 0.0, "{kind} k=1 drift");
    }
}

#[test]
fn parts_have_overlapping_halos_and_cover_every_node_once() {
    // On the SBM stand-ins neighbors scatter across the id space, so
    // adjacent contiguous parts genuinely share halo nodes — the case
    // the row-aligned merge has to get right.
    let ds = task();
    let parallel = parallel_for(ModelKind::Gcn, BackendKind::Dense, &ds, 4);
    let parts = parallel.parts();
    assert!(parts.len() >= 4);
    let mut covered = vec![0usize; ds.num_nodes()];
    for part in parts {
        for &v in &part.nodes {
            covered[v as usize] += 1;
        }
    }
    assert!(covered.iter().all(|&c| c == 1), "parts must tile the node set exactly");
    let overlaps = parts
        .windows(2)
        .filter(|w| w[0].halo.iter().any(|h| w[1].halo.binary_search(h).is_ok()))
        .count();
    assert!(overlaps > 0, "expected at least one pair of parts with overlapping halos");
}

#[test]
fn simulated_accel_merged_report_equals_the_sequential_report() {
    // §IV-C accounting: per-part cycle reports merged by summation must
    // reproduce the unpartitioned report exactly (the cycle model is
    // per-node linear), and energy must sum to the sequential estimate.
    let ds = task();
    let request = InferRequest::all_nodes();
    for kind in ModelKind::all() {
        let sequential = engine_for(kind, BackendKind::SimulatedAccel, &ds)
            .session()
            .infer(&request)
            .expect("serves");
        let mut parallel = parallel_for(kind, BackendKind::SimulatedAccel, &ds, 4);
        let sharded = parallel.session().infer(&request).expect("serves");
        assert_eq!(sharded.logits.linf_distance(&sequential.logits), 0.0, "{kind} logits");
        let (seq_sim, par_sim) =
            (sequential.sim.expect("accel reports"), sharded.sim.expect("accel reports"));
        assert_eq!(par_sim.total_cycles, seq_sim.total_cycles, "{kind} merged cycles");
        assert_eq!(par_sim.num_nodes, seq_sim.num_nodes, "{kind} merged node count");
        let (seq_e, par_e) =
            (sequential.energy_joules.unwrap(), sharded.energy_joules.unwrap());
        assert!((seq_e - par_e).abs() < 1e-9 * seq_e.abs().max(1.0), "{kind} energy");
    }
}

#[test]
fn large_sampled_requests_shard_and_match_the_sequential_sampled_path() {
    // Same sampling seed => same sub-universe; the sharded staged
    // execution must reproduce the one-worker result bit-for-bit.
    let ds = task();
    let nodes: Vec<usize> = (0..200).map(|i| (i * 7) % ds.num_nodes()).collect();
    let request = InferRequest::sampled(nodes, 6, 4, 99);
    for kind in ModelKind::all() {
        let sequential = engine_for(kind, BackendKind::Dense, &ds)
            .session()
            .infer(&request)
            .expect("serves");
        let mut parallel = parallel_for(kind, BackendKind::Dense, &ds, 4);
        let sharded = parallel.session().infer(&request).expect("serves");
        assert!(sharded.parts >= 4, "{kind}: a 200-node batch should shard");
        assert_eq!(
            sharded.logits.linf_distance(&sequential.logits),
            0.0,
            "{kind} sampled parity"
        );
    }
    // Below the sharding threshold a single worker answers.
    let mut parallel = parallel_for(ModelKind::Gcn, BackendKind::Dense, &ds, 4);
    let micro = parallel
        .session()
        .infer(&InferRequest::sampled(vec![1, 2, 3], 6, 4, 99))
        .expect("serves");
    assert_eq!(micro.parts, 1, "micro-batches stay on one worker");
}

#[test]
fn sharded_sampled_hardware_charge_equals_sequential() {
    let ds = task();
    let nodes: Vec<usize> = (0..150).collect();
    let request = InferRequest::sampled(nodes, 5, 3, 7);
    let sequential = engine_for(ModelKind::GsPool, BackendKind::SimulatedAccel, &ds)
        .session()
        .infer(&request)
        .expect("serves");
    let mut parallel = parallel_for(ModelKind::GsPool, BackendKind::SimulatedAccel, &ds, 3);
    let sharded = parallel.session().infer(&request).expect("serves");
    assert_eq!(
        sharded.sim.unwrap().total_cycles,
        sequential.sim.unwrap().total_cycles,
        "per-part charges must sum to the sequential sampled charge"
    );
}

#[test]
fn parallel_cache_and_stats_semantics_match_the_sequential_engine() {
    let ds = Arc::new(datasets::cora_like_small(9));
    let mut parallel = parallel_for(ModelKind::Gcn, BackendKind::SimulatedAccel, &ds, 2);
    let k = parallel.parts().len();
    let mut session = parallel.session();
    let first = session.infer(&InferRequest::all_nodes()).expect("serves");
    assert!(!first.from_cache);
    assert_eq!(first.parts, k);
    assert!(first.sim.is_some() && first.energy_joules.is_some());
    let second = session.infer(&InferRequest::full_graph(vec![0, 1])).expect("serves");
    assert!(second.from_cache, "second full-graph request hits the cache");
    assert_eq!(second.parts, 0, "cache hits execute no parts");
    assert!(second.sim.is_none() && second.energy_joules.is_none());
    let stats = session.finish();
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.full_graph_cache_hits, 1);
    assert_eq!(stats.parts_executed, k);
    assert!(stats.simulated_cycles > 0);
}

#[test]
fn zero_workers_is_rejected_and_errors_propagate() {
    let ds = Arc::new(datasets::cora_like_small(2));
    let err = engine_for(ModelKind::Gcn, BackendKind::Dense, &ds).into_parallel(0).unwrap_err();
    assert!(matches!(err, EngineError::NoWorkers));
    let mut parallel = parallel_for(ModelKind::Gcn, BackendKind::Dense, &ds, 2);
    let mut session = parallel.session();
    assert!(matches!(
        session.infer(&InferRequest::full_graph(vec![usize::MAX])).unwrap_err(),
        EngineError::NodeOutOfRange { .. }
    ));
    assert!(matches!(
        session.infer(&InferRequest::sampled(Vec::new(), 2, 2, 0)).unwrap_err(),
        EngineError::EmptyRequest
    ));
}

#[test]
fn parallel_beats_sequential_wall_clock_when_cores_allow() {
    // The scaling claim, asserted only where it is physically possible:
    // with ≥ 4 cores, 4 workers must beat single-threaded full-graph
    // inference on the largest built-in dataset. On smaller hosts the
    // `engine_throughput` bench still records the curve.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if cores < 4 {
        eprintln!("skipping wall-clock assertion: only {cores} core(s) available");
        return;
    }
    let ds = task();
    let request = InferRequest::all_nodes();
    let mut sequential = engine_for(ModelKind::Gcn, BackendKind::Spectral, &ds);
    let mut parallel = parallel_for(ModelKind::Gcn, BackendKind::Spectral, &ds, 4);
    let time = |f: &mut dyn FnMut()| {
        f(); // warm up (FFT plans, allocator)
        let start = std::time::Instant::now();
        for _ in 0..5 {
            f();
        }
        start.elapsed()
    };
    let seq = time(&mut || {
        sequential.clear_full_graph_cache();
        sequential.session().infer(&request).expect("serves");
    });
    let par = time(&mut || {
        parallel.clear_full_graph_cache();
        parallel.session().infer(&request).expect("serves");
    });
    assert!(
        par < seq,
        "4-worker full-graph inference ({par:?}) should beat sequential ({seq:?}) on {cores} cores"
    );
}

#[test]
fn hot_vertex_cache_serves_hub_rows_bit_identically_in_steady_state() {
    // Steady-state serving: the first full-graph pass publishes the hub
    // vertices' stage rows; after the logits cache is dropped, the next
    // pass copies those rows instead of re-aggregating — and the merged
    // logits must still be bit-identical to the sequential engine.
    let ds = task();
    let request = InferRequest::all_nodes();
    let sequential = engine_for(ModelKind::Gcn, BackendKind::Dense, &ds)
        .session()
        .infer(&request)
        .expect("serves");
    let mut parallel = parallel_for(ModelKind::Gcn, BackendKind::Dense, &ds, 4);
    let cold = parallel.session().infer(&request).expect("serves");
    assert_eq!(cold.hot_rows, 0, "nothing is cached before the first pass");
    assert!(parallel.hot_cached_rows() > 0, "the first pass publishes hub rows");
    parallel.clear_full_graph_cache();
    let mut session = parallel.session();
    let warm = session.infer(&request).expect("serves");
    assert!(!warm.from_cache, "the logits cache was cleared; this is a real pass");
    assert!(warm.hot_rows > 0, "hub rows must come from the hot-vertex cache");
    assert_eq!(
        warm.logits.linf_distance(&sequential.logits),
        0.0,
        "cached rows must be bit-identical to recomputed ones"
    );
    assert_eq!(warm.predictions, sequential.predictions);
    let stats = session.finish();
    assert_eq!(stats.hot_rows_served, warm.hot_rows, "stats must count cache hits");
}

#[test]
fn zero_hot_cache_budget_disables_caching_without_changing_results() {
    let ds = task();
    let request = InferRequest::all_nodes();
    let sequential = engine_for(ModelKind::Gcn, BackendKind::Dense, &ds)
        .session()
        .infer(&request)
        .expect("serves");
    let mut parallel =
        parallel_for(ModelKind::Gcn, BackendKind::Dense, &ds, 4).with_hot_cache_bytes(0);
    parallel.session().infer(&request).expect("serves");
    assert_eq!(parallel.hot_cached_rows(), 0, "a zero budget publishes nothing");
    parallel.clear_full_graph_cache();
    let second = parallel.session().infer(&request).expect("serves");
    assert_eq!(second.hot_rows, 0, "disabled cache must never serve rows");
    assert_eq!(second.logits.linf_distance(&sequential.logits), 0.0);
}

#[test]
fn hot_cache_is_shared_across_forks_of_one_engine_family() {
    // The cache rides the family's shared state (like the logits cache):
    // a fork converted to its own parallel engine sees rows published by
    // a sibling and serves them on its very first pass.
    let ds = task();
    let request = InferRequest::all_nodes();
    let reference = engine_for(ModelKind::Gcn, BackendKind::Dense, &ds)
        .session()
        .infer(&request)
        .expect("serves");
    let source = engine_for(ModelKind::Gcn, BackendKind::Dense, &ds);
    let fork = source.fork();
    let mut first = source.into_parallel(4).expect("workers");
    first.session().infer(&request).expect("serves");
    assert!(first.hot_cached_rows() > 0);
    let mut sibling = fork.into_parallel(4).expect("workers");
    let warm = sibling.session().infer(&request).expect("serves");
    assert!(!warm.from_cache);
    assert!(warm.hot_rows > 0, "the sibling's first pass rides the family cache");
    assert_eq!(warm.logits.linf_distance(&reference.logits), 0.0);
}

#[test]
fn family_delta_invalidates_the_hot_cache_strictly() {
    // A graph delta anywhere in the family must wipe the cache *before*
    // the new epoch publishes: the frozen parallel snapshot keeps
    // serving version 0 results, but never from stale (or future) rows.
    let ds = task();
    let request = InferRequest::all_nodes();
    let reference = engine_for(ModelKind::Gcn, BackendKind::Dense, &ds)
        .session()
        .infer(&request)
        .expect("serves");
    let source = engine_for(ModelKind::Gcn, BackendKind::Dense, &ds);
    let handle = source.graph_handle();
    let mut parallel = source.into_parallel(4).expect("workers");
    parallel.session().infer(&request).expect("serves");
    assert!(parallel.hot_cached_rows() > 0);
    let n = ds.num_nodes();
    handle.apply_delta(&GraphDelta::new().add_edge(0, n - 1)).expect("applies");
    assert_eq!(parallel.hot_cached_rows(), 0, "the delta wipes the family cache");
    parallel.clear_full_graph_cache();
    let recomputed = parallel.session().infer(&request).expect("serves");
    assert_eq!(recomputed.hot_rows, 0, "stale rows must not be served");
    assert_eq!(recomputed.graph_version, 0, "the snapshot stays frozen at version 0");
    assert_eq!(
        recomputed.logits.linf_distance(&reference.logits),
        0.0,
        "the frozen snapshot must recompute its own version's answer"
    );
    assert_eq!(
        parallel.hot_cached_rows(),
        0,
        "version-0 rows must not be re-published into the version-1 cache"
    );
}

#[test]
fn degree_balanced_is_the_default_and_reports_plan_balance() {
    let ds = task();
    let request = InferRequest::all_nodes();
    let sequential = engine_for(ModelKind::Gcn, BackendKind::Dense, &ds)
        .session()
        .infer(&request)
        .expect("serves");
    let mut balanced = parallel_for(ModelKind::Gcn, BackendKind::Dense, &ds, 4);
    assert_eq!(balanced.strategy(), PartitionStrategy::DegreeBalanced);
    assert!(balanced.partition_balance() >= 1.0, "balance is max/mean work");
    let mut contiguous = engine_for(ModelKind::Gcn, BackendKind::Dense, &ds)
        .into_parallel_with(4, PartitionStrategy::Contiguous)
        .expect("workers");
    assert_eq!(contiguous.strategy(), PartitionStrategy::Contiguous);
    assert!(contiguous.partition_balance() >= 1.0);
    // Cut placement is a performance knob, never a correctness one.
    for engine in [&mut balanced, &mut contiguous] {
        let answer = engine.session().infer(&request).expect("serves");
        assert_eq!(answer.logits.linf_distance(&sequential.logits), 0.0);
    }
}

#[test]
fn memory_budget_forces_finer_partitions_than_the_worker_count() {
    // A tight §IV-B-style budget must drive k above the worker count,
    // with every part's resident features (targets + halo) inside it.
    let ds = Arc::new(datasets::cora_like_small(4));
    let parallel = parallel_for(ModelKind::Gcn, BackendKind::SimulatedAccel, &ds, 2)
        .with_part_budget(48 * 1024);
    let parts = parallel.parts();
    assert!(parts.len() > 2, "tight budget should out-split the worker count");
    let width = ds.feature_dim().max(16);
    for part in parts {
        assert!(
            part.feature_bytes(width, BackendKind::SimulatedAccel.bytes_per_feature())
                <= 48 * 1024,
            "part residency exceeds the budget"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    // Sharding pins on the *unique* interned target count, not the raw
    // request length: a batch of duplicates is a tiny sub-universe and
    // must stay on one worker — and answer exactly like the sequential
    // sampled path either way.
    #[test]
    fn prop_sampled_sharding_counts_unique_targets_not_raw_length(
        base in proptest::collection::vec(0usize..200, 4..12),
        copies in 8usize..16,
    ) {
        let ds = Arc::new(datasets::cora_like_small(6));
        let n = ds.num_nodes();
        let mut nodes = Vec::new();
        for _ in 0..copies {
            nodes.extend(base.iter().map(|&v| v % n));
        }
        prop_assert!(nodes.len() >= 32, "raw length clears the shard threshold");
        let request = InferRequest::sampled(nodes, 6, 4, 17);
        let sequential = engine_for(ModelKind::Gcn, BackendKind::Dense, &ds)
            .session()
            .infer(&request)
            .expect("serves");
        let mut parallel = parallel_for(ModelKind::Gcn, BackendKind::Dense, &ds, 4);
        let sharded = parallel.session().infer(&request).expect("serves");
        prop_assert_eq!(
            sharded.parts, 1,
            "at most 11 unique targets is below the 32-row threshold"
        );
        prop_assert_eq!(sharded.logits.linf_distance(&sequential.logits), 0.0);
        prop_assert_eq!(sharded.predictions, sequential.predictions);
    }
}
