//! Serving-runtime integration tests: the dynamic micro-batcher must be
//! **bit-identical** to sequential `Session::infer` under concurrency,
//! over TCP, for every model kind; overload and deadlines must shed
//! with typed errors instead of blocking; telemetry must add up; and
//! live graph updates must land atomically between micro-batches, with
//! every response's reported version replaying bit-identically against
//! that version's rebuilt graph.

use blockgnn::engine::{BackendKind, Engine, EngineBuilder, InferRequest, InferResponse};
use blockgnn::gnn::ModelKind;
use blockgnn::graph::datasets;
use blockgnn::graph::delta::{GraphDelta, VersionedGraph};
use blockgnn::nn::Compression;
use blockgnn::server::{
    Client, RemoteResponse, Server, ServerConfig, ServerError, SloClass, SubmitOptions,
    TcpServer,
};
use blockgnn_graph::Dataset;
use proptest::prelude::*;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn dataset() -> Arc<Dataset> {
    Arc::new(datasets::cora_like_small(11))
}

fn engine_on(kind: ModelKind, backend: BackendKind, dataset: &Arc<Dataset>) -> Engine {
    EngineBuilder::new(kind, backend)
        .hidden_dim(16)
        .compression(Compression::BlockCirculant { block_size: 8 })
        .seed(5)
        .build(Arc::clone(dataset))
        .expect("engine builds")
}

/// A randomized request mix: sampled requests with varying nodes,
/// fan-outs, and seeds (with deliberate duplicates), plus occasional
/// full-graph requests.
fn request_mix(num_nodes: usize, salt: u64) -> Vec<InferRequest> {
    let mut requests = Vec::new();
    for i in 0..10u64 {
        let x = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i * 0x1234_5677);
        let a = (x as usize) % num_nodes;
        let b = (x >> 17) as usize % num_nodes;
        requests.push(match i % 5 {
            0 => InferRequest::sampled(vec![a, b], 6, 4, x % 100),
            1 => InferRequest::sampled(vec![a, a, b], 4, 3, 7), // duplicate node ids
            2 => InferRequest::sampled(vec![b], 10, 5, 42),     // hot duplicate request
            3 => InferRequest::full_graph(vec![a, b]),
            _ => InferRequest::sampled(vec![a], 5, 2, x % 13),
        });
    }
    requests
}

/// Bit-exact comparison of a served response against the sequential
/// reference for the same request.
fn assert_bit_identical(got: &InferResponse, want: &InferResponse, what: &str) {
    assert_eq!(got.logits.shape(), want.logits.shape(), "{what}: shape");
    for i in 0..got.logits.rows() {
        for (a, b) in got.logits.row(i).iter().zip(want.logits.row(i)) {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: logits row {i} differ in bits");
        }
    }
    assert_eq!(got.predictions, want.predictions, "{what}: predictions");
}

/// Sequential reference answers, one per request, from a fresh
/// single-session engine with the same weights.
fn sequential_reference(
    kind: ModelKind,
    backend: BackendKind,
    dataset: &Arc<Dataset>,
    requests: &[InferRequest],
) -> Vec<InferResponse> {
    let mut engine = engine_on(kind, backend, dataset);
    let mut session = engine.session();
    requests.iter().map(|r| session.infer(r).expect("reference serves")).collect()
}

#[test]
fn concurrency_stress_is_bit_identical_to_sequential() {
    // N client threads hammer one server with a randomized mix; every
    // response must match a sequential Session::infer of the same
    // request, bit for bit, on both software backends.
    let dataset = dataset();
    for backend in [BackendKind::Dense, BackendKind::Spectral] {
        let server = Server::start(
            engine_on(ModelKind::Gcn, backend, &dataset),
            ServerConfig::default().with_workers(3).with_batching(Duration::from_millis(2), 8),
        )
        .expect("server starts");
        let observed: Vec<(InferRequest, InferResponse)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8u64)
                .map(|t| {
                    let handle = server.handle();
                    let num_nodes = dataset.num_nodes();
                    scope.spawn(move || {
                        request_mix(num_nodes, t)
                            .into_iter()
                            .map(|request| {
                                let response =
                                    handle.infer(request.clone()).expect("request serves");
                                (request, response)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
        });
        let stats = server.shutdown();
        assert_eq!(stats.completed, observed.len());
        assert_eq!(stats.serve.requests, observed.len());
        assert!(stats.serve.p99() >= stats.serve.p50());
        // (Coalescing itself is pinned deterministically by
        // `duplicate_requests_dedup_and_responses_split_latency`; here
        // batch sizes depend on thread timing.)

        let requests: Vec<InferRequest> = observed.iter().map(|(r, _)| r.clone()).collect();
        let reference = sequential_reference(ModelKind::Gcn, backend, &dataset, &requests);
        for ((request, got), want) in observed.iter().zip(&reference) {
            assert_bit_identical(got, want, &format!("{backend} {request:?}"));
        }
    }
}

#[test]
fn coalesced_accel_charges_match_solo_serving() {
    // On the simulated accelerator, batched responses must carry the
    // same per-request SimReport/energy as solo serving (the cycle
    // model is a pure function of the request's own sub-universe).
    let dataset = dataset();
    let requests: Vec<InferRequest> =
        (0..6).map(|i| InferRequest::sampled(vec![i * 3, i * 3 + 1], 6, 4, i as u64)).collect();
    let mut engine = engine_on(ModelKind::Gcn, BackendKind::SimulatedAccel, &dataset);
    let coalesced = engine.infer_coalesced(&requests);
    assert_eq!(coalesced.unique_executions, requests.len());
    assert!(coalesced.merged_universe_nodes > 0);
    let reference =
        sequential_reference(ModelKind::Gcn, BackendKind::SimulatedAccel, &dataset, &requests);
    for (i, (outcome, want)) in coalesced.outcomes.iter().zip(&reference).enumerate() {
        let got = outcome.as_ref().expect("outcome ok");
        assert_eq!(got.sim, want.sim, "request {i}: SimReport must match solo serving");
        assert_eq!(got.energy_joules, want.energy_joules, "request {i}: energy");
        assert_eq!(got.batch_size, requests.len());
        for r in 0..got.logits.rows() {
            for (a, b) in got.logits.row(r).iter().zip(want.logits.row(r)) {
                assert_eq!(a.to_bits(), b.to_bits(), "request {i}: logits bits");
            }
        }
    }
}

#[test]
fn tcp_end_to_end_all_model_kinds_bit_identical() {
    // ≥8 concurrent TCP clients against all four ModelKinds: remote
    // logits must be bit-identical to sequential in-process inference
    // (the protocol ships f64 bit patterns, so equality is exact).
    let dataset = dataset();
    for kind in ModelKind::all() {
        let server = Arc::new(
            Server::start(
                engine_on(kind, BackendKind::Spectral, &dataset),
                ServerConfig::default()
                    .with_workers(2)
                    .with_batching(Duration::from_millis(1), 8),
            )
            .expect("server starts"),
        );
        let front = TcpServer::bind(Arc::clone(&server), "127.0.0.1:0").expect("binds");
        let addr = front.local_addr();
        let requests: Vec<InferRequest> = (0..4)
            .map(|i| InferRequest::sampled(vec![i * 5, i * 5 + 2, i * 5], 5, 3, i as u64))
            .collect();
        let observed: Vec<(InferRequest, RemoteResponse)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8usize)
                .map(|_c| {
                    let requests = requests.clone();
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).expect("client connects");
                        requests
                            .into_iter()
                            .map(|request| {
                                let response =
                                    client.infer(&request).expect("remote request serves");
                                (request, response)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
        });
        front.stop();
        let reference = sequential_reference(kind, BackendKind::Spectral, &dataset, &requests);
        let by_request = |request: &InferRequest| {
            requests.iter().position(|r| r == request).expect("request known")
        };
        for (request, got) in &observed {
            let want = &reference[by_request(request)];
            assert_eq!(got.logits.shape(), want.logits.shape(), "{kind}: shape");
            for i in 0..got.logits.rows() {
                for (a, b) in got.logits.row(i).iter().zip(want.logits.row(i)) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{kind}: remote logits differ from sequential reference"
                    );
                }
            }
            assert_eq!(got.predictions, want.predictions, "{kind}: predictions");
        }
        assert_eq!(observed.len(), 8 * requests.len());
    }
}

#[test]
fn tcp_control_commands_and_clean_shutdown() {
    let dataset = dataset();
    let server = Arc::new(
        Server::start(
            engine_on(ModelKind::Gcn, BackendKind::Dense, &dataset),
            ServerConfig::default(),
        )
        .expect("server starts"),
    );
    let front = TcpServer::bind(Arc::clone(&server), "127.0.0.1:0").expect("binds");
    let addr = front.local_addr();
    let driver = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connects");
        client.ping().expect("pong");
        let response =
            client.infer(&InferRequest::sampled(vec![1, 2], 4, 2, 3)).expect("serves");
        assert_eq!(response.predictions.len(), 2);
        let stats_line = client.stats().expect("stats");
        assert!(stats_line.contains("completed=1"), "stats line: {stats_line}");
        // An invalid request gets a typed engine rejection, not a hangup.
        let err = client.infer(&InferRequest::sampled(vec![], 4, 2, 3)).unwrap_err();
        assert!(matches!(err, ServerError::RemoteEngine(_)), "got {err:?}");
        client.shutdown().expect("clean shutdown");
    });
    // Join the driver *before* waiting for shutdown: if it panicked
    // mid-script, stop the front end ourselves instead of hanging.
    let driver_result = driver.join();
    if driver_result.is_err() {
        front.stop();
    }
    let shutdown_stats = front.run_until_shutdown();
    if let Err(panic) = driver_result {
        std::panic::resume_unwind(panic);
    }
    assert_eq!(shutdown_stats.completed, 1);
    assert_eq!(shutdown_stats.failed, 1);
}

#[test]
fn overload_sheds_typed_error_instead_of_blocking() {
    // One worker, a tiny queue, and a slow first request: submissions
    // beyond the queue bound must come back Overloaded immediately.
    let dataset = Arc::new(datasets::pubmed_like_small(3));
    let server = Server::start(
        engine_on(ModelKind::GsPool, BackendKind::Spectral, &dataset),
        ServerConfig::default().with_workers(1).with_max_queue_depth(2).unbatched(),
    )
    .expect("server starts");
    let handle = server.handle();
    // Occupy the worker with an expensive uncached full-graph pass,
    // then fill the queue with more of the same.
    let mut tickets = Vec::new();
    let mut overloaded = 0usize;
    for _ in 0..12 {
        match handle.submit(InferRequest::all_nodes()) {
            Ok(t) => tickets.push(t),
            Err(ServerError::Overloaded { depth, max_depth }) => {
                assert!(depth >= max_depth, "sheds only at capacity");
                overloaded += 1;
            }
            Err(other) => panic!("unexpected rejection {other:?}"),
        }
    }
    assert!(overloaded > 0, "the bounded queue must shed under burst");
    for t in tickets {
        let response = t.wait().expect("admitted requests still serve");
        assert_eq!(response.logits.rows(), dataset.num_nodes());
    }
    let stats = server.shutdown();
    assert_eq!(stats.shed_overload, overloaded);
    assert!(stats.serve.full_graph_cache_hits >= 1, "cache answers the repeats");
}

#[test]
fn expired_deadlines_shed_with_typed_error() {
    let dataset = dataset();
    let server = Server::start(
        engine_on(ModelKind::Gcn, BackendKind::Dense, &dataset),
        ServerConfig::default().with_workers(1).unbatched(),
    )
    .expect("server starts");
    let handle = server.handle();
    // Park the worker on a full-graph pass so the dead-on-arrival
    // request waits long enough to expire.
    let slow = handle.submit(InferRequest::all_nodes()).expect("admitted");
    let doomed = handle
        .submit_with(
            InferRequest::sampled(vec![1], 4, 2, 9),
            SubmitOptions::deadline(Duration::ZERO),
        )
        .expect("admitted");
    match doomed.wait() {
        Err(ServerError::DeadlineExceeded { .. }) => {}
        other => panic!("expected deadline shed, got {other:?}"),
    }
    slow.wait().expect("slow request still serves");
    let stats = server.shutdown();
    assert_eq!(stats.shed_deadline, 1);
}

#[test]
fn classes_order_queued_requests() {
    // Occupy a single worker, then race a bronze and a gold request;
    // the gold one must execute first (both class lanes start at the
    // same virtual time, and the tie breaks by class rank). The setup
    // itself is racy — if the worker finishes the blocker before both
    // submissions land, neither request ever queues and the attempt
    // proves nothing — so degenerate attempts (bronze barely waited)
    // retry on a fresh server, while a *genuine* inversion (bronze
    // waited out the blocker, gold waited even longer) fails
    // immediately. The race-free re-test of the ordering itself is
    // `queue::tests::classes_order_queued_requests_deterministically`,
    // which drives the lanes directly with no worker in the loop.
    let dataset = dataset();
    let mut last = None;
    for _attempt in 0..5 {
        let server = Server::start(
            engine_on(ModelKind::Gcn, BackendKind::Dense, &dataset),
            ServerConfig::default().with_workers(1).unbatched(),
        )
        .expect("server starts");
        let handle = server.handle();
        let blocker = handle.submit(InferRequest::all_nodes()).expect("admitted");
        let bronze = handle
            .submit_with(
                InferRequest::sampled(vec![1], 4, 2, 1),
                SubmitOptions::class(SloClass::Bronze),
            )
            .expect("admitted");
        // An explicit generous deadline so the gold default (200 ms)
        // cannot shed the request while the blocker holds the worker on
        // a slow machine.
        let gold = handle
            .submit_with(
                InferRequest::sampled(vec![2], 4, 2, 1),
                SubmitOptions::class(SloClass::Gold).with_deadline(Duration::from_secs(30)),
            )
            .expect("admitted");
        blocker.wait().expect("serves");
        let gold_response = gold.wait().expect("serves");
        let bronze_response = bronze.wait().expect("serves");
        server.shutdown();
        // Queue time tells execution order under a single worker: the
        // gold request must not have waited longer than the bronze one
        // that was submitted *before* it.
        if gold_response.queue_time <= bronze_response.queue_time {
            return;
        }
        last = Some((gold_response.queue_time, bronze_response.queue_time));
        assert!(
            bronze_response.queue_time < Duration::from_millis(1),
            "class inversion: gold waited {:?}, bronze waited {:?}",
            gold_response.queue_time,
            bronze_response.queue_time
        );
    }
    panic!("every attempt degenerated (worker never stayed busy): last timings {last:?}");
}

#[test]
fn duplicate_requests_dedup_and_responses_split_latency() {
    let dataset = dataset();
    let server = Server::start(
        engine_on(ModelKind::Gcn, BackendKind::Dense, &dataset),
        // A long window with one worker guarantees coalescing.
        ServerConfig::default().with_workers(1).with_batching(Duration::from_millis(50), 8),
    )
    .expect("server starts");
    let handle = server.handle();
    // Park the worker, then enqueue 4 copies of one request — they
    // must coalesce into a single batch and dedup to one execution.
    let blocker = handle.submit(InferRequest::all_nodes()).expect("admitted");
    let hot = InferRequest::sampled(vec![3, 4], 6, 4, 77);
    let tickets: Vec<_> =
        (0..4).map(|_| handle.submit(hot.clone()).expect("admitted")).collect();
    blocker.wait().expect("serves");
    let responses: Vec<InferResponse> =
        tickets.into_iter().map(|t| t.wait().expect("serves")).collect();
    for pair in responses.windows(2) {
        assert_eq!(
            pair[0].logits.as_slice(),
            pair[1].logits.as_slice(),
            "identical requests get identical answers"
        );
    }
    for r in &responses {
        assert_eq!(r.latency, r.queue_time + r.compute_time, "latency = queue + compute");
        // All four rode one coalesced execution (the blocker may have
        // joined the same batch, so ≥ 4 rather than exactly 4).
        assert!(r.batch_size >= 4, "expected a coalesced batch, got {}", r.batch_size);
    }
    let stats = server.shutdown();
    assert_eq!(stats.deduped, 3, "three of four shared the leader's execution");
    assert!(stats.serve.total_queue_time > Duration::ZERO);
}

/// Deterministic delta `k` of the update stress mix: pure rewires and
/// feature tweaks (no appends, so the node universe — and therefore
/// request validity — is stable under concurrency).
fn stress_delta(k: usize, num_nodes: usize, feature_dim: usize) -> GraphDelta {
    GraphDelta::new()
        .add_edge((7 * k + 1) % num_nodes, (11 * k + 3) % num_nodes)
        .add_edge((5 * k + 2) % num_nodes, (13 * k + 8) % num_nodes)
        .set_feature_row(
            (17 * k) % num_nodes,
            (0..feature_dim).map(|j| (k * feature_dim + j) as f64 * 0.01 - 1.0).collect(),
        )
}

#[test]
fn interleaved_updates_and_inference_replay_bit_identically() {
    // 8 client threads hammer one live server with a mix of inference
    // and graph updates. Every response must (a) report a version the
    // server actually published, and (b) match a solo replay of its
    // request on a fresh engine over that version's *rebuilt* graph —
    // the end-to-end differential proof that updates land atomically
    // between micro-batches and never leak across versions.
    let dataset = dataset();
    let num_nodes = dataset.num_nodes();
    let feature_dim = dataset.feature_dim();
    let pool: Vec<InferRequest> = vec![
        InferRequest::sampled(vec![3, 141, 3], 5, 3, 7),
        InferRequest::sampled(vec![59, 8], 6, 4, 21),
        InferRequest::sampled(vec![200], 4, 2, 2),
        InferRequest::full_graph(vec![0, 5, 9]),
        InferRequest::sampled(vec![77, 42, 77, 42], 5, 3, 13),
    ];
    let server = Server::start(
        engine_on(ModelKind::Gcn, BackendKind::Dense, &dataset),
        ServerConfig::default().with_workers(3).with_batching(Duration::from_millis(1), 8),
    )
    .expect("server starts");
    let published: Mutex<Vec<(u64, GraphDelta)>> = Mutex::new(Vec::new());
    let next_delta = std::sync::atomic::AtomicUsize::new(0);
    let observed: Vec<(usize, u64, Vec<u64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8usize)
            .map(|t| {
                let handle = server.handle();
                let pool = &pool;
                let published = &published;
                let next_delta = &next_delta;
                scope.spawn(move || {
                    let mut seen = Vec::new();
                    for i in 0..12usize {
                        // Threads 0–2 interleave an update every 4th
                        // iteration; everyone infers every iteration.
                        if t < 3 && i % 4 == 1 {
                            let k =
                                next_delta.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let delta = stress_delta(k, num_nodes, feature_dim);
                            let version =
                                handle.update(&delta).expect("stress deltas are valid");
                            published.lock().unwrap().push((version, delta));
                        }
                        let which = (t * 12 + i) % pool.len();
                        let response =
                            handle.infer(pool[which].clone()).expect("request serves");
                        let bits: Vec<u64> =
                            response.logits.as_slice().iter().map(|v| v.to_bits()).collect();
                        seen.push((which, response.graph_version, bits));
                    }
                    seen
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    let stats = server.shutdown();
    let mut published = published.into_inner().unwrap();
    published.sort_by_key(|(v, _)| *v);
    // Published versions are exactly 1..=N: every update bumped by one,
    // serialized on the master lock.
    let max_version = published.len() as u64;
    for (i, (v, _)) in published.iter().enumerate() {
        assert_eq!(*v, i as u64 + 1, "versions must be contiguous");
    }
    assert_eq!(stats.updates, published.len());
    assert_eq!(stats.graph_version, max_version);
    // (a) Every reported version was actually published.
    for (_, version, _) in &observed {
        assert!(*version <= max_version, "response reported unpublished version {version}");
    }
    // (b) Bit-exact replay per version: rebuild each version's dataset
    // from scratch and compare every observed response against a fresh
    // solo engine on it.
    let mut mirror = VersionedGraph::new(dataset.graph.clone(), dataset.features.clone(), true)
        .expect("dataset is consistent");
    let mut datasets: Vec<Arc<Dataset>> = vec![Arc::clone(&dataset)];
    for (v, delta) in &published {
        mirror.apply(delta).expect("replay applies");
        assert_eq!(mirror.version(), *v);
        datasets.push(Arc::new(Dataset {
            graph: mirror.rebuild(),
            features: mirror.features().clone(),
            labels: dataset.labels.clone(),
            num_classes: dataset.num_classes,
            masks: dataset.masks.clone(),
            name: dataset.name.clone(),
        }));
    }
    for version in 0..=max_version {
        let at_version: Vec<&(usize, u64, Vec<u64>)> =
            observed.iter().filter(|(_, v, _)| *v == version).collect();
        if at_version.is_empty() {
            continue;
        }
        let mut engine =
            engine_on(ModelKind::Gcn, BackendKind::Dense, &datasets[version as usize]);
        let mut session = engine.session();
        for (which, _, bits) in at_version {
            let want = session.infer(&pool[*which]).expect("replay serves");
            let want_bits: Vec<u64> =
                want.logits.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                bits, &want_bits,
                "response at version {version} for request {which} diverged from solo replay"
            );
        }
    }
}

#[test]
fn malformed_updates_never_poison_the_connection_or_graph() {
    // Raw protocol lines — garbage, truncated clauses, out-of-range
    // nodes, empty deltas — must each earn a typed `err` reply while
    // the connection stays usable and the shared graph stays at its
    // version. A valid update afterwards applies normally.
    use std::io::{BufRead, BufReader, Write};
    let dataset = dataset();
    let server = Arc::new(
        Server::start(
            engine_on(ModelKind::Gcn, BackendKind::Dense, &dataset),
            ServerConfig::default(),
        )
        .expect("server starts"),
    );
    let front = TcpServer::bind(Arc::clone(&server), "127.0.0.1:0").expect("binds");
    let stream = std::net::TcpStream::connect(front.local_addr()).expect("connects");
    let mut writer = stream.try_clone().expect("clones");
    let mut reader = BufReader::new(stream);
    let mut roundtrip = |line: &str| -> String {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("server must keep answering");
        assert!(!reply.is_empty(), "connection died on {line:?}");
        reply.trim_end().to_string()
    };
    for (line, kind) in [
        ("complete garbage", "err protocol"),
        ("update add=1-2", "err protocol"),
        ("update add=0:1 bogus=3", "err protocol"),
        ("update feat=0:nothex", "err protocol"),
        ("update add=0:999999999", "err engine"), // out-of-range node
        // Self-loop (5,5): the SBM generator never emits self-loops, so
        // this removal is guaranteed to miss.
        ("update del=5:5", "err engine"),
        ("update", "err engine"), // empty delta
        ("\u{7f}\u{1}binary\u{2}junk", "err protocol"),
    ] {
        let reply = roundtrip(line);
        assert!(reply.starts_with(kind), "{line:?}: expected a {kind:?} reply, got {reply:?}");
    }
    // The graph never budged...
    assert_eq!(server.graph_version(), 0);
    // ...the same connection still serves...
    let ack = roundtrip("update add=0:5,1:6");
    assert!(ack.starts_with("ok update tenant=default version=1 "), "got {ack:?}");
    let reply = roundtrip("infer sampled s1=4 s2=2 seed=3 nodes=0,5");
    assert!(reply.starts_with("ok rows=2 "), "got {reply:?}");
    assert!(reply.contains(" version=1 "), "post-update answers carry the bumped version");
    // ...and telemetry counted the rejections without counting bumps.
    let stats = server.stats();
    assert_eq!(stats.graph_version, 1);
    assert_eq!(stats.updates, 1);
    assert_eq!(stats.failed_updates, 3, "engine-rejected updates are counted");
    front.stop();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    // Coalesce/scatter alignment end to end: random request sets with
    // duplicate node ids across requests, executed coalesced, must be
    // bit-identical to solo execution.
    #[test]
    fn prop_infer_coalesced_matches_solo(
        picks in proptest::collection::vec((0usize..680, 0usize..680), 2..6),
        seed in 0u64..50,
    ) {
        let dataset = dataset();
        let requests: Vec<InferRequest> = picks
            .iter()
            .map(|&(a, b)| InferRequest::sampled(vec![a, b, a], 4, 3, seed))
            .collect();
        let mut engine = engine_on(ModelKind::Gcn, BackendKind::Dense, &dataset);
        let coalesced = engine.infer_coalesced(&requests);
        let reference =
            sequential_reference(ModelKind::Gcn, BackendKind::Dense, &dataset, &requests);
        for (outcome, want) in coalesced.outcomes.iter().zip(&reference) {
            let got = outcome.as_ref().expect("outcome ok");
            prop_assert_eq!(got.logits.rows(), want.logits.rows());
            for i in 0..got.logits.rows() {
                for (a, b) in got.logits.row(i).iter().zip(want.logits.row(i)) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }
}
