//! Fault-domain integration tests: a worker panic mid-batch must
//! convert every in-flight request of that batch into a typed
//! `WorkerCrashed` reply on a connection that stays open, the pool must
//! self-heal back to full strength (post-respawn answers bit-identical
//! to a fault-free run), the circuit breaker must open and close
//! deterministically, injected socket resets must converge under the
//! client's idempotent retry, and a full chaos replay — seeded panics,
//! resets, stalls, and latency injected into the adversarial trace —
//! must end with zero transport errors and a healthy pool.

use blockgnn::engine::{BackendKind, InferRequest};
use blockgnn::gnn::ModelKind;
use blockgnn::server::workload::{ci_adversarial_spec, replay_tcp, replay_tcp_resilient};
use blockgnn::server::{
    Client, ClientTimeouts, FaultPlan, RemoteResponse, RetryPolicy, Server, ServerConfig,
    ServerError, SubmitOptions, TcpServer, TenantSpec, DEFAULT_TENANT,
};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

fn spec() -> TenantSpec {
    TenantSpec::new(DEFAULT_TENANT, "cora-small", ModelKind::Gcn, BackendKind::Dense)
        .hidden_dim(16)
        .seed(5)
}

fn start(config: ServerConfig) -> (Arc<Server>, TcpServer, SocketAddr) {
    let server = Arc::new(
        Server::start(spec().build_engine().expect("engine builds"), config)
            .expect("server starts"),
    );
    let front = TcpServer::bind(Arc::clone(&server), "127.0.0.1:0").expect("binds");
    let addr = front.local_addr();
    (server, front, addr)
}

/// Bit-exact comparison of two remote responses.
fn assert_same_bits(got: &RemoteResponse, want: &RemoteResponse, what: &str) {
    assert_eq!(got.logits.shape(), want.logits.shape(), "{what}: shape");
    for i in 0..got.logits.rows() {
        for (a, b) in got.logits.row(i).iter().zip(want.logits.row(i)) {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: logits row {i} differ in bits");
        }
    }
    assert_eq!(got.predictions, want.predictions, "{what}: predictions");
}

#[test]
fn worker_panic_mid_batch_yields_typed_replies_and_pool_self_heals() {
    // A panic budget of 3 on an always-fire rate: however the three
    // concurrent requests batch up (one coalesced batch or several),
    // every batch they ride panics, so every request earns the typed
    // `WorkerCrashed` reply — never a dropped connection or a hang.
    let plan = FaultPlan::new(0xBAD_1DEA).with_panics(1000, 3);
    let config = ServerConfig::default()
        .with_workers(1)
        .with_batching(Duration::from_millis(5), 8)
        .with_breaker(10, Duration::from_secs(10), Duration::from_millis(200))
        .with_faults(Some(plan));
    let (server, front, addr) = start(config);

    let requests: Vec<InferRequest> =
        (0..3).map(|i| InferRequest::sampled(vec![i, i + 4], 5, 3, 9)).collect();
    std::thread::scope(|scope| {
        for request in &requests {
            scope.spawn(|| {
                let mut client = Client::connect(addr).expect("client connects");
                let got = client.infer(request);
                assert!(
                    matches!(got, Err(ServerError::WorkerCrashed)),
                    "a panicked batch answers typed, got {got:?}"
                );
                // The *connection* survived the worker's death — the
                // fault domain is the batch, not the socket.
                client.ping().expect("connection is intact after the crash reply");
            });
        }
    });

    // Drain whatever panic budget the batching left over, then the
    // respawned replica serves — and serves the *same bits* as a
    // fault-free twin (the fork shares prepared weights and graph).
    let mut client = Client::connect(addr).expect("client reconnects");
    let probe = InferRequest::sampled(vec![1, 2], 4, 2, 9);
    let healed = loop {
        match client.infer(&probe) {
            Ok(response) => break response,
            Err(ServerError::WorkerCrashed) => {}
            Err(e) => panic!("only crash replies expected while draining: {e}"),
        }
    };
    let (_twin, twin_front, twin_addr) = start(ServerConfig::default().with_workers(1));
    let mut twin_client = Client::connect(twin_addr).expect("twin connects");
    let want = twin_client.infer(&probe).expect("fault-free twin serves");
    assert_same_bits(&healed, &want, "post-respawn response");

    let stats = server.stats();
    assert!(
        (1..=3).contains(&stats.worker_crashes),
        "every crash was counted: {}",
        stats.worker_crashes
    );
    assert_eq!(stats.restarts, stats.worker_crashes, "every crash was healed");
    assert_eq!(stats.workers_alive, 1, "the pool is back to full strength");
    assert!(!stats.degraded, "threshold 10 never opened the breaker");
    assert!(
        stats.summary().contains("worker_crashes="),
        "crash telemetry reaches the stats line: {}",
        stats.summary()
    );
    front.stop();
    front.run_until_shutdown();
    twin_front.stop();
    twin_front.run_until_shutdown();
}

#[test]
fn breaker_opens_the_pool_degrades_and_recovery_closes_it() {
    // Two crashes inside the window open a threshold-2 breaker; the
    // `health` verb reports the degraded pool, and once the cooldown
    // passes with no further crashes the same verb reports recovery —
    // re-evaluated on read, no traffic required.
    let cooldown = Duration::from_millis(300);
    let plan = FaultPlan::new(7).with_panics(1000, 2);
    let config = ServerConfig::default()
        .with_workers(1)
        .with_breaker(2, Duration::from_secs(10), cooldown)
        .with_faults(Some(plan));
    let (server, front, addr) = start(config);

    let mut client = Client::connect(addr).expect("client connects");
    let request = InferRequest::sampled(vec![0, 3], 4, 2, 1);
    for nth in 1..=2 {
        let got = client.infer(&request);
        assert!(matches!(got, Err(ServerError::WorkerCrashed)), "crash {nth}: {got:?}");
    }
    // The crash reply lands *before* the supervisor finishes the
    // backoff + respawn, so poll until the worker is back in place.
    let sick = loop {
        let h = client.health().expect("health answers while degraded");
        if h.alive == h.workers {
            break h;
        }
        std::thread::sleep(Duration::from_millis(2));
    };
    assert_eq!((sick.workers, sick.alive), (1, 1), "the worker was respawned in place");
    assert_eq!(sick.crashes, 2);
    assert!(sick.degraded, "2 crashes at threshold 2 open the breaker: {sick:?}");

    // Degraded-pool surfaces: the gauge flips in the metrics text and
    // every poisonable lock along these paths recovered (stats, the
    // flight recorder, the registry — a panicked worker poisons none of
    // them for good).
    let metrics = client.metrics().expect("metrics answer while degraded");
    assert!(metrics.contains("blockgnn_pool_degraded 1"), "degraded gauge set:\n{metrics}");
    assert!(metrics.contains("blockgnn_worker_crashes_total 2"), "crash counter:\n{metrics}");
    assert!(client.stats().expect("stats").contains("degraded=true"));
    client.trace_slow().expect("the flight recorder still answers");
    client.list().expect("the tenant registry still answers");

    std::thread::sleep(cooldown + Duration::from_millis(50));
    let recovered = client.health().expect("health answers after cooldown");
    assert!(!recovered.degraded, "the cooldown closes the breaker: {recovered:?}");
    client.infer(&request).expect("the healed pool serves (panic budget exhausted)");
    let stats = server.stats();
    assert_eq!((stats.worker_crashes, stats.restarts, stats.workers_alive), (2, 2, 1));
    front.stop();
    front.run_until_shutdown();
}

#[test]
fn read_timeouts_surface_typed_and_reconnect_recovers() {
    // Every reply stalls 300 ms; a 50 ms read deadline must surface as
    // the typed `Timeout` (not a hang, not a generic I/O error), and a
    // reconnect with a generous deadline must serve — the stalled reply
    // of the abandoned connection cannot leak into the new one.
    let plan = FaultPlan::new(3).with_stalls(1000, 300_000);
    let config = ServerConfig::default().with_workers(1).with_faults(Some(plan));
    let (_server, front, addr) = start(config);

    let tight =
        ClientTimeouts { read: Some(Duration::from_millis(50)), ..ClientTimeouts::default() };
    let mut client = Client::connect_with(addr, tight).expect("client connects");
    let request = InferRequest::sampled(vec![1], 3, 2, 5);
    let got = client.infer(&request);
    assert!(
        matches!(got, Err(ServerError::Timeout { waited }) if waited == Duration::from_millis(50)),
        "a stalled reply times out typed: {got:?}"
    );

    let mut patient = Client::connect(addr).expect("patient client connects");
    patient.infer(&request).expect("the stall is a delay, not a failure");
    front.stop();
    front.run_until_shutdown();
}

#[test]
fn client_retry_converges_under_injected_socket_resets() {
    // Half the command lines reset (budget 4): the jittered-backoff
    // retry must land every request exactly once — a reset fires
    // *before* dispatch, so re-submission never double-serves.
    let plan = FaultPlan::new(0x0002_E5E7).with_resets(500, 4);
    let config = ServerConfig::default().with_workers(1).with_faults(Some(plan));
    let (server, front, addr) = start(config);

    let policy = RetryPolicy { attempts: 10, ..RetryPolicy::default() };
    let mut client = Client::connect(addr).expect("client connects");
    for i in 0..8 {
        let request = InferRequest::sampled(vec![i, i + 1], 4, 2, i as u64);
        client
            .infer_retry(&request, SubmitOptions::default(), None, &policy)
            .unwrap_or_else(|e| panic!("request {i} did not converge: {e}"));
    }
    let health = server.health();
    assert_eq!(health.crashes, 0, "resets are a socket fault, not a worker fault");
    let stats = server.stats();
    assert_eq!(stats.completed, 8, "exactly-once: each request served once despite retries");
    front.stop();
    front.run_until_shutdown();
}

#[test]
fn injected_allocation_failures_answer_typed_without_crashing() {
    // An allocation failure at the engine stage boundary is a *typed*
    // engine error per request — the worker survives, nothing respawns.
    let plan = FaultPlan::new(11).with_alloc_failures(1000);
    let config = ServerConfig::default().with_workers(1).with_faults(Some(plan));
    let (server, front, addr) = start(config);

    let mut client = Client::connect(addr).expect("client connects");
    let got = client.infer(&InferRequest::sampled(vec![2], 3, 2, 4));
    match got {
        Err(ServerError::RemoteEngine(msg)) => {
            assert!(msg.contains("allocation"), "typed alloc failure: {msg}")
        }
        other => panic!("expected a typed engine error, got {other:?}"),
    }
    let stats = server.stats();
    assert_eq!(stats.worker_crashes, 0, "alloc failures never kill the worker");
    assert_eq!(stats.failed, 1, "… but they are counted as failed requests");
    front.stop();
    front.run_until_shutdown();
}

#[test]
fn chaos_replay_converges_and_the_pool_returns_to_full_strength() {
    // The chaos invariant: a seeded plan injecting worker panics,
    // socket resets, stalls, and latency into the adversarial trace.
    // Every submitted event must end in exactly one typed outcome (the
    // resilient driver absorbs resets and crash replies), the pool must
    // heal back to full strength, and — updates disabled so the graph
    // version is pinned — the healed pool must serve the same bits as a
    // fault-free twin driving the same trace.
    let chaos = FaultPlan::new(0xC4A0_5F17)
        .with_panics(300, 4)
        .with_latency(60, 300)
        .with_resets(200, 6)
        .with_stalls(40, 400);
    let cooldown = Duration::from_millis(400);
    let config = ServerConfig::default()
        .with_workers(2)
        .with_batching(Duration::from_micros(500), 8)
        .with_breaker(3, Duration::from_secs(10), cooldown)
        .with_faults(Some(chaos));
    let (server, front, addr) = start(config);
    let (twin, twin_front, twin_addr) = start(
        ServerConfig::default().with_workers(2).with_batching(Duration::from_micros(500), 8),
    );

    let mut spec = ci_adversarial_spec(60).with_updates(0, 0);
    spec.events = 240;
    let trace = spec.generate();
    let policy = RetryPolicy { attempts: 8, ..RetryPolicy::default() };
    let report = replay_tcp_resilient(addr, &trace, &policy);
    let calm = replay_tcp(twin_addr, &trace);

    assert_eq!(report.sent, trace.events.len(), "every event was driven");
    assert_eq!(
        report.transport_errors, 0,
        "resets and crashes all converged within the retry budget: {report:?}"
    );
    assert!(report.retries > 0, "the chaos plan actually fired: {report:?}");
    assert_eq!(
        report.ok + report.shed + report.typed_errors,
        report.sent,
        "exactly one typed outcome per submitted event: {report:?}"
    );
    assert_eq!(calm.transport_errors, 0, "the fault-free twin is clean: {calm:?}");

    let stats = server.stats();
    assert!(stats.worker_crashes >= 3, "≥3 injected panics landed: {}", stats.worker_crashes);
    assert_eq!(stats.restarts, stats.worker_crashes, "every crash was healed");
    assert_eq!(stats.workers_alive, 2, "the pool is back to full strength");

    // `health` re-evaluates the breaker on read: after the cooldown the
    // pool reports recovered even with no traffic ticking the workers.
    std::thread::sleep(cooldown + Duration::from_millis(100));
    assert!(!server.health().degraded, "degraded=false after recovery");

    // Bit-identity vs the fault-free replay: same pinned graph version
    // (no updates in the trace), so the healed chaos pool and the calm
    // twin must agree on every served bit.
    let mut survivor = Client::connect(addr).expect("post-chaos client connects");
    let mut calm_client = Client::connect(twin_addr).expect("twin client connects");
    for i in 0..6 {
        let request = InferRequest::sampled(vec![i * 9 % 60, (i * 9 + 7) % 60], 5, 3, i as u64);
        let got = survivor
            .infer_retry(&request, SubmitOptions::default(), None, &policy)
            .expect("the healed pool serves");
        let want = calm_client.infer(&request).expect("the twin serves");
        assert_eq!(got.graph_version, want.graph_version, "pinned graph version");
        assert_same_bits(&got, &want, "chaos-survivor response");
    }

    front.stop();
    let final_stats = front.run_until_shutdown();
    assert_eq!(final_stats.workers_alive, 2, "clean shutdown from full strength");
    drop(twin);
    twin_front.stop();
    twin_front.run_until_shutdown();
}
