//! Observability integration tests: every served request must be
//! reconstructible from the flight recorder as a complete, monotonic
//! span set; trace ids must ride responses end-to-end over TCP; the
//! metrics exposition must carry the core series; the Chrome
//! trace-event export must be loadable; and tracing off must be
//! invisible (id 0, empty recorder) — the cheap path the overhead
//! benchmark certifies.

use blockgnn::engine::{BackendKind, Engine, EngineBuilder, InferRequest};
use blockgnn::gnn::ModelKind;
use blockgnn::graph::datasets;
use blockgnn::server::{
    Client, Server, ServerConfig, ServerError, SloClass, SubmitOptions, TcpServer,
    TraceOutcome, TraceQuery, TraceRecord,
};
use blockgnn_graph::Dataset;
use std::io::{BufRead, BufReader, Write};
use std::sync::Arc;
use std::time::Duration;

fn dataset() -> Arc<Dataset> {
    Arc::new(datasets::cora_like_small(23))
}

fn engine(dataset: &Arc<Dataset>) -> Engine {
    EngineBuilder::new(ModelKind::Gcn, BackendKind::Dense)
        .hidden_dim(16)
        .seed(9)
        .build(Arc::clone(dataset))
        .expect("engine builds")
}

/// The pipeline stages every completed request's record must contain,
/// in order of appearance.
const PIPELINE_STAGES: [&str; 3] = ["admission", "queued", "assembly"];

/// Asserts one completed record is a full, monotonic reconstruction of
/// the request's trip: admission → queued → assembly → ≥1 engine stage
/// → response_write, with non-decreasing span starts and every span's
/// end at or after its start.
fn assert_complete_span_set(record: &TraceRecord) {
    let stages: Vec<&str> = record.spans.iter().map(|s| s.stage).collect();
    for (i, want) in PIPELINE_STAGES.iter().enumerate() {
        assert_eq!(stages.get(i), Some(want), "span layout of {stages:?}");
    }
    assert_eq!(stages.last(), Some(&"response_write"), "span layout of {stages:?}");
    assert!(
        stages.len() > PIPELINE_STAGES.len() + 1,
        "at least one engine stage between assembly and response_write: {stages:?}"
    );
    for span in &record.spans {
        assert!(span.end >= span.start, "span {} runs backwards", span.stage);
    }
    for pair in record.spans.windows(2) {
        assert!(
            pair[1].start >= pair[0].start,
            "spans out of order: {} starts before {}",
            pair[1].stage,
            pair[0].stage
        );
    }
    // The record's total covers every span.
    let last_end = record.spans.iter().map(|s| s.end).max().unwrap();
    assert_eq!(record.total(), last_end - record.start());
}

/// Polls the recorder for `id`: ring writes happen after the response
/// is delivered to the caller, so an immediate lookup can lose the
/// race even though the record always arrives.
fn find_eventually(server: &Server, id: u64) -> Option<TraceRecord> {
    for _ in 0..200 {
        if let Some(record) = server.recorder().find(id) {
            return Some(record);
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    None
}

#[test]
fn traced_requests_carry_complete_monotonic_span_sets() {
    let dataset = dataset();
    let server = Server::start(
        engine(&dataset),
        ServerConfig::default().with_workers(2).with_batching(Duration::from_micros(200), 4),
    )
    .expect("server starts");
    let handle = server.handle();
    let mut trace_ids = Vec::new();
    for i in 0..12usize {
        let request = if i % 3 == 0 {
            InferRequest::full_graph(vec![i, i + 1])
        } else {
            InferRequest::sampled(vec![i, i + 7], 5, 3, i as u64)
        };
        let response = handle.infer(request).expect("request serves");
        assert_ne!(response.trace_id, 0, "tracing on stamps a real id");
        trace_ids.push(response.trace_id);
    }
    // Ids are process-unique and strictly increasing in admission order.
    for pair in trace_ids.windows(2) {
        assert!(pair[1] > pair[0], "ids grow monotonically: {trace_ids:?}");
    }
    // Every response's id resolves to a full record in the recorder.
    // Records land in the ring strictly after the response is delivered
    // (tracing never delays callers), so the very last one may still be
    // in flight — poll briefly instead of racing the worker.
    for &id in &trace_ids {
        let record = find_eventually(&server, id).expect("recorder holds the trace");
        assert_eq!(record.trace_id, id);
        assert_eq!(record.outcome, TraceOutcome::Completed);
        assert_eq!(record.tenant, "default");
        assert!(record.batch_size >= 1);
        assert_complete_span_set(&record);
    }
    // `last` sees them newest-first; the wire rendering matches.
    let last = server.trace_lines(TraceQuery::Last(3));
    assert_eq!(last.len(), 3);
    assert!(last[0].contains(&format!("id={:016x}", trace_ids.last().unwrap())), "{last:?}");
    // One-record lookup renders the same line.
    let one = server.trace_lines(TraceQuery::Id(trace_ids[0]));
    assert_eq!(one.len(), 1);
    assert!(one[0].contains("outcome=completed"), "{one:?}");
    // The Chrome export is one JSON array with one X event per span.
    let json = server.trace_export_json();
    assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
    let spans: usize =
        trace_ids.iter().map(|&id| server.recorder().find(id).unwrap().spans.len()).sum();
    assert_eq!(json.matches("\"ph\":\"X\"").count(), spans, "one event per span");
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "braces balance — the export is structurally sound"
    );
    server.shutdown();
}

#[test]
fn disabled_tracing_is_invisible() {
    let dataset = dataset();
    let server = Server::start(
        engine(&dataset),
        ServerConfig::default().with_workers(1).with_tracing(false),
    )
    .expect("server starts");
    let handle = server.handle();
    for _ in 0..4 {
        let response = handle.infer(InferRequest::sampled(vec![1, 2], 4, 2, 7)).unwrap();
        assert_eq!(response.trace_id, 0, "tracing off means id 0");
    }
    assert_eq!(server.recorder().recorded(), 0, "nothing lands in the rings");
    assert!(server.trace_lines(TraceQuery::Last(16)).is_empty());
    assert!(server.trace_lines(TraceQuery::Slow).is_empty());
    assert_eq!(server.trace_export_json(), "[]");
    // The metrics exposition still renders (it reads telemetry, which
    // tracing does not gate).
    let metrics = server.metrics_text();
    assert!(metrics.contains("blockgnn_requests_completed_total"), "{metrics}");
    server.shutdown();
}

#[test]
fn shed_requests_are_retained_as_exemplars() {
    // One worker, a depth-2 queue, expensive uncached full-graph work:
    // overload sheds must be promoted to the exemplar buffer even
    // though they never reach a worker ring.
    let dataset = Arc::new(datasets::pubmed_like_small(5));
    let server = Server::start(
        engine(&dataset),
        ServerConfig::default().with_workers(1).with_max_queue_depth(2).unbatched(),
    )
    .expect("server starts");
    let handle = server.handle();
    let mut tickets = Vec::new();
    let mut shed_ids = Vec::new();
    for _ in 0..12 {
        match handle.submit(InferRequest::all_nodes()) {
            Ok(t) => tickets.push(t),
            Err(ServerError::Overloaded { .. }) => shed_ids.push(()),
            Err(other) => panic!("unexpected rejection {other:?}"),
        }
    }
    assert!(!shed_ids.is_empty(), "the bounded queue must shed under burst");
    for t in tickets {
        t.wait().expect("admitted requests still serve");
    }
    let exemplars = server.recorder().exemplars();
    let shed_records: Vec<_> =
        exemplars.iter().filter(|r| r.outcome == TraceOutcome::ShedOverload).collect();
    assert_eq!(shed_records.len(), shed_ids.len(), "every shed is an exemplar");
    for record in shed_records {
        assert_eq!(record.batch_size, 0, "shed before execution");
        assert_eq!(record.spans.len(), 1, "only the admission span exists");
        assert_eq!(record.spans[0].stage, "admission");
    }
    // A rejected-on-validation request is retained as a failure.
    let err = handle.infer(InferRequest::sampled(vec![], 4, 2, 1)).unwrap_err();
    assert!(matches!(err, ServerError::Engine(_)), "got {err:?}");
    assert!(
        server.recorder().exemplars().iter().any(|r| r.outcome == TraceOutcome::Failed),
        "validation failures promote too"
    );
    // `trace slow` serves the exemplars over the query surface.
    assert!(!server.trace_lines(TraceQuery::Slow).is_empty());
    server.shutdown();
}

#[test]
fn tcp_metrics_and_trace_round_trip() {
    let dataset = dataset();
    let server = Arc::new(
        Server::start(
            engine(&dataset),
            ServerConfig::default()
                .with_workers(2)
                .with_batching(Duration::from_micros(200), 4),
        )
        .expect("server starts"),
    );
    let front = TcpServer::bind(Arc::clone(&server), "127.0.0.1:0").expect("binds");
    let addr = front.local_addr();
    let mut client = Client::connect(addr).expect("client connects");
    let gold = SubmitOptions { class: SloClass::Gold, deadline: None };
    let response = client
        .infer_with(&InferRequest::sampled(vec![3, 4], 5, 3, 11), gold)
        .expect("remote request serves");
    assert_ne!(response.trace_id, 0, "the trace id rides the wire reply");
    // By-id lookup through the protocol finds exactly that request
    // (polling briefly: the ring write lands after response delivery).
    let mut looked_up = None;
    for _ in 0..200 {
        looked_up = client.trace_id(response.trace_id).expect("trace lookup works");
        if looked_up.is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let line = looked_up.expect("the recorder still holds the trace");
    assert!(line.starts_with(&format!("id={:016x} ", response.trace_id)), "{line}");
    assert!(line.contains("tenant=default"), "{line}");
    assert!(line.contains("class=gold"), "{line}");
    assert!(line.contains("outcome=completed"), "{line}");
    assert!(line.contains("spans=admission:"), "{line}");
    // An unknown id is an empty (not error) reply.
    assert_eq!(client.trace_id(0xFFFF_FFFF_FFFF).expect("query works"), None);
    // `trace last` lists it newest-first.
    let recent = client.trace_last(8).expect("trace last works");
    assert!(!recent.is_empty());
    assert!(recent[0].contains("id="), "{recent:?}");
    // The export is one line of Chrome trace-event JSON.
    let json = client.trace_export().expect("export works");
    assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
    assert!(json.contains("\"ph\":\"X\""), "{json}");
    assert!(json.contains(&format!("\"trace_id\":\"{:016x}\"", response.trace_id)), "{json}");
    // The metrics exposition carries the core series with labels.
    let metrics = client.metrics().expect("metrics works");
    for name in [
        "blockgnn_requests_submitted_total",
        "blockgnn_requests_completed_total",
        "blockgnn_requests_shed_total",
        "blockgnn_uptime_seconds",
        "blockgnn_latency_seconds",
    ] {
        assert!(metrics.contains(&format!("# TYPE {name} ")), "missing {name}: {metrics}");
    }
    assert!(
        metrics.contains(
            "blockgnn_requests_completed_total{tenant=\"default\",backend=\"dense\"}"
        ),
        "{metrics}"
    );
    assert!(metrics.contains("quantile=\"0.99\""), "{metrics}");
    // The session carries on afterwards — multi-line replies must not
    // desynchronize the connection.
    client.ping().expect("connection still healthy");
    front.stop();
}

#[test]
fn malformed_observability_lines_earn_typed_errors_not_hangs() {
    let dataset = dataset();
    let server = Arc::new(
        Server::start(engine(&dataset), ServerConfig::default().with_workers(1))
            .expect("server starts"),
    );
    let front = TcpServer::bind(Arc::clone(&server), "127.0.0.1:0").expect("binds");
    let addr = front.local_addr();
    let stream = std::net::TcpStream::connect(addr).expect("connects");
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    fn send(
        writer: &mut std::net::TcpStream,
        reader: &mut BufReader<std::net::TcpStream>,
        line: &str,
    ) -> String {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        reply.trim_end().to_string()
    }
    for bad in [
        "trace last=",
        "trace last=banana",
        "trace id=",
        "trace id=zzzz",
        "trace sideways",
        "trace slow now",
        "trace export --all",
        "metrics please",
        "metrics@default",
        "trace@default last=1",
    ] {
        let reply = send(&mut writer, &mut reader, bad);
        assert!(reply.starts_with("err protocol "), "{bad:?} → {reply:?}");
    }
    // Valid queries still work on the same connection afterwards. Each
    // multi-line reply advertises its body length; drain it so the
    // connection stays in sync.
    let reply = send(&mut writer, &mut reader, "trace last=2");
    let lines: usize = reply
        .strip_prefix("ok trace lines=")
        .unwrap_or_else(|| panic!("unexpected reply {reply:?}"))
        .parse()
        .unwrap();
    for _ in 0..lines {
        let mut body = String::new();
        reader.read_line(&mut body).unwrap();
    }
    let reply = send(&mut writer, &mut reader, "metrics");
    let lines: usize = reply
        .strip_prefix("ok metrics lines=")
        .unwrap_or_else(|| panic!("unexpected reply {reply:?}"))
        .parse()
        .unwrap();
    assert!(lines > 0, "the exposition is never empty");
    for _ in 0..lines {
        let mut body = String::new();
        reader.read_line(&mut body).unwrap();
    }
    writer.write_all(b"ping\n").unwrap();
    writer.flush().unwrap();
    let mut pong = String::new();
    reader.read_line(&mut pong).unwrap();
    assert_eq!(pong.trim_end(), "pong");
    front.stop();
}
