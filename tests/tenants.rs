//! Multi-tenant serving integration tests: one process hosting many
//! graphs × many models must serve every tenant **bit-identically** to
//! a dedicated single-tenant server; deploy/retire must land without
//! stalling other tenants; versions must never bleed across tenants;
//! the residency accountant must reject over-budget deploys with a
//! typed error; and per-tenant telemetry must isolate and add up.

use blockgnn::engine::{BackendKind, InferRequest, InferResponse};
use blockgnn::gnn::ModelKind;
use blockgnn::graph::delta::GraphDelta;
use blockgnn::server::{
    Client, Server, ServerConfig, ServerError, SubmitOptions, TcpServer, TenantSpec,
    DEFAULT_TENANT,
};
use std::sync::Arc;
use std::time::Duration;

/// The three-tenant roster every test builds from: distinct datasets,
/// models, and backends under one roof. Index 0 doubles as the default
/// tenant's spec (`Server::start` consumes its engine).
fn roster() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new(DEFAULT_TENANT, "cora-small", ModelKind::Gcn, BackendKind::Spectral)
            .hidden_dim(16)
            .seed(5),
        TenantSpec::new("traffic", "citeseer-small", ModelKind::GsPool, BackendKind::Dense)
            .hidden_dim(16)
            .seed(7)
            .weight(3),
        TenantSpec::new("fraud", "pubmed-small", ModelKind::Ggcn, BackendKind::Spectral)
            .hidden_dim(16)
            .seed(9),
    ]
}

fn multi_tenant_server(config: ServerConfig) -> Server {
    let specs = roster();
    let server = Server::start(specs[0].build_engine().expect("default engine"), config)
        .expect("starts");
    for spec in &specs[1..] {
        server.deploy(spec).expect("tenant deploys");
    }
    server
}

/// A deterministic per-tenant request mix with duplicates and a
/// full-graph request, node ids bounded by the tenant's graph.
fn request_mix(num_nodes: usize, salt: u64) -> Vec<InferRequest> {
    (0..8u64)
        .map(|i| {
            let x = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i * 0x1234_5677);
            let a = (x as usize) % num_nodes;
            let b = (x >> 17) as usize % num_nodes;
            match i % 4 {
                0 => InferRequest::sampled(vec![a, b], 6, 4, x % 100),
                1 => InferRequest::sampled(vec![a, a, b], 4, 3, 7),
                2 => InferRequest::full_graph(vec![a, b]),
                _ => InferRequest::sampled(vec![b], 5, 2, x % 13),
            }
        })
        .collect()
}

fn assert_bit_identical(got: &InferResponse, want: &InferResponse, what: &str) {
    assert_eq!(got.logits.shape(), want.logits.shape(), "{what}: shape");
    for i in 0..got.logits.rows() {
        for (a, b) in got.logits.row(i).iter().zip(want.logits.row(i)) {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: logits row {i} differ in bits");
        }
    }
    assert_eq!(got.predictions, want.predictions, "{what}: predictions");
}

#[test]
fn three_tenants_serve_bit_identically_to_dedicated_servers() {
    // Two client threads per tenant hammer one multi-tenant server; every
    // response must match the same request served by a *dedicated*
    // single-tenant server built from the identical spec, bit for bit —
    // co-residency must be unobservable in the answers.
    let config =
        ServerConfig::default().with_workers(3).with_batching(Duration::from_millis(1), 8);
    let multi = multi_tenant_server(config.clone());
    let specs = roster();
    let observed: Vec<(usize, InferRequest, InferResponse)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..specs.len())
            .flat_map(|t| (0..2u64).map(move |c| (t, c)))
            .map(|(t, c)| {
                let handle = multi.handle_for(&specs[t].name).expect("tenant resolves");
                scope.spawn(move || {
                    request_mix(handle.num_nodes(), (t as u64) * 31 + c)
                        .into_iter()
                        .map(|request| {
                            let response = handle.infer(request.clone()).expect("serves");
                            (t, request, response)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    let stats = multi.shutdown();
    assert_eq!(stats.completed, observed.len());
    for (t, spec) in specs.iter().enumerate() {
        let dedicated =
            Server::start(spec.build_engine().expect("dedicated engine"), config.clone())
                .expect("dedicated server starts");
        let handle = dedicated.handle();
        for (_, request, got) in observed.iter().filter(|(ot, _, _)| *ot == t) {
            let want = handle.infer(request.clone()).expect("dedicated serves");
            assert_bit_identical(got, &want, &format!("tenant {} {request:?}", spec.name));
        }
        dedicated.shutdown();
    }
}

#[test]
fn deploy_retire_and_updates_never_stall_or_bleed_versions() {
    // One thread churns deploy/infer/retire cycles of a scratch tenant
    // while other threads infer on the default tenant and apply graph
    // updates to a steady second tenant. Versions must stay per-tenant
    // (default pinned at 0, steady counting its own updates, churn
    // always answering at 0), and the default tenant's answers must stay
    // bit-identical throughout — churn elsewhere is unobservable.
    let config =
        ServerConfig::default().with_workers(2).with_batching(Duration::from_millis(1), 4);
    let specs = roster();
    let server =
        Server::start(specs[0].build_engine().expect("engine"), config).expect("starts");
    let steady = server.deploy(&specs[1]).expect("steady tenant deploys");
    let steady_nodes = steady.num_nodes();
    let probe = InferRequest::sampled(vec![3, 141, 3], 5, 3, 7);
    let baseline = server.handle().infer(probe.clone()).expect("baseline serves");
    std::thread::scope(|scope| {
        // Churn: deploy a scratch tenant, serve it, retire it — 6 cycles.
        let churn = scope.spawn(|| {
            for k in 0..6 {
                let spec =
                    TenantSpec::new("churn", "cora-small", ModelKind::Gcn, BackendKind::Dense)
                        .hidden_dim(8)
                        .seed(100 + k);
                let handle = server.deploy(&spec).expect("churn deploys");
                let response = handle
                    .infer(InferRequest::sampled(vec![k as usize], 4, 2, k))
                    .expect("serves");
                assert_eq!(
                    response.graph_version, 0,
                    "fresh churn tenant answers at version 0"
                );
                let finals = server.retire("churn").expect("churn retires");
                assert_eq!(finals.completed, 1);
            }
        });
        // Updates: bump the steady tenant's graph 8 times.
        let updates = scope.spawn(|| {
            let handle = server.handle_for("traffic").expect("steady resolves");
            for k in 0..8usize {
                let delta = GraphDelta::new()
                    .add_edge((7 * k + 1) % steady_nodes, (11 * k + 3) % steady_nodes);
                let ack = handle.update_acked(&delta).expect("steady updates apply");
                assert_eq!(ack.tenant, "traffic");
                assert_eq!(ack.version, k as u64 + 1, "steady versions count contiguously");
            }
        });
        // Default-tenant inference stays bit-identical under all of it.
        let default_infer = scope.spawn(|| {
            let handle = server.handle();
            for _ in 0..30 {
                let response = handle.infer(probe.clone()).expect("default serves");
                assert_eq!(response.graph_version, 0, "default never versions");
                assert_bit_identical(&response, &baseline, "default under churn");
            }
        });
        churn.join().expect("churn thread");
        updates.join().expect("update thread");
        default_infer.join().expect("default thread");
    });
    // No bleed: default at 0, steady at 8; the retired churn tenant is
    // gone and addressing it is a typed rejection.
    assert_eq!(server.graph_version(), 0);
    assert_eq!(server.handle_for("traffic").expect("steady").graph_version(), 8);
    match server.handle_for("churn") {
        Err(ServerError::UnknownTenant { name }) => assert_eq!(name, "churn"),
        other => panic!("expected UnknownTenant, got {other:?}"),
    }
    let stats = server.shutdown();
    assert_eq!(stats.updates, 8);
    assert_eq!(stats.tenants.len(), 2, "churn tenant left no live rollup");
}

#[test]
fn over_budget_deploys_are_rejected_typed_and_leave_service_intact() {
    // A budget sized for the default tenant plus half again: the first
    // extra deploy overflows, comes back TenantBudget with the real
    // numbers, and the already-deployed tenant keeps serving.
    let specs = roster();
    let default_bytes = specs[0].build_engine().expect("engine").resident_bytes();
    let budget = default_bytes + default_bytes / 2;
    let config = ServerConfig::default().with_workers(1).with_device_budget(Some(budget));
    let server =
        Server::start(specs[0].build_engine().expect("engine"), config).expect("fits budget");
    assert_eq!(server.device_budget(), Some(budget));
    assert_eq!(server.resident_bytes(), default_bytes);
    match server.deploy(&specs[2]) {
        Err(ServerError::TenantBudget { needed, budget: b }) => {
            assert_eq!(b, budget);
            assert!(needed > b, "rejection carries the real overflow: {needed} <= {b}");
        }
        other => panic!("expected TenantBudget, got {other:?}"),
    }
    // The failed deploy charged nothing and broke nothing.
    assert_eq!(server.resident_bytes(), default_bytes);
    assert_eq!(server.tenants().len(), 1);
    let response = server.handle().infer(InferRequest::sampled(vec![1, 2], 4, 2, 3));
    assert!(response.is_ok(), "default tenant still serves after a rejected deploy");
    // A small-enough tenant still fits (hidden 8 on the same graph stays
    // under the remaining half-engine headroom only if it actually
    // fits — compute rather than assume).
    let tiny = TenantSpec::new("tiny", "cora-small", ModelKind::Gcn, BackendKind::Dense)
        .hidden_dim(8)
        .seed(3);
    let tiny_bytes = tiny.build_engine().expect("engine").resident_bytes();
    if default_bytes + tiny_bytes <= budget {
        server.deploy(&tiny).expect("within-budget deploy lands");
        assert_eq!(server.resident_bytes(), default_bytes + tiny_bytes);
    }
    server.shutdown();
}

#[test]
fn per_tenant_stats_isolate_and_roll_up() {
    let server = multi_tenant_server(
        ServerConfig::default().with_workers(2).with_batching(Duration::from_millis(1), 4),
    );
    let specs = roster();
    // 5 default requests, 3 traffic requests + 1 update, 2 fraud requests.
    let default = server.handle();
    let traffic = server.handle_for("traffic").expect("traffic");
    let fraud = server.handle_for("fraud").expect("fraud");
    for i in 0..5 {
        default.infer(InferRequest::sampled(vec![i], 4, 2, 1)).expect("serves");
    }
    for i in 0..3 {
        traffic.infer(InferRequest::sampled(vec![i + 10], 4, 2, 1)).expect("serves");
    }
    traffic.update(&GraphDelta::new().add_edge(1, 2)).expect("updates");
    for i in 0..2 {
        fraud.infer(InferRequest::sampled(vec![i + 20], 4, 2, 1)).expect("serves");
    }
    let stats = server.stats();
    assert_eq!(stats.completed, 10, "aggregate sums every tenant");
    assert_eq!(stats.updates, 1);
    assert_eq!(stats.graph_version, 0, "top-level version mirrors the default tenant");
    assert_eq!(stats.tenants.len(), specs.len());
    let by = |name: &str| stats.tenants.get(name).expect("rollup present");
    assert_eq!(by(DEFAULT_TENANT).completed, 5);
    assert_eq!(by("traffic").completed, 3);
    assert_eq!(by("traffic").updates, 1);
    assert_eq!(by("traffic").graph_version, 1);
    assert_eq!(by("traffic").weight, 3);
    assert_eq!(by("fraud").completed, 2);
    assert_eq!(by("fraud").graph_version, 0, "updates never bleed across tenants");
    assert_eq!(by(DEFAULT_TENANT).graph_version, 0);
    // Per-tenant snapshots carry only their own slice.
    let traffic_stats = server.tenant_stats("traffic").expect("traffic stats");
    assert_eq!(traffic_stats.completed, 3);
    assert_eq!(traffic_stats.graph_version, 1);
    assert!(traffic_stats.tenants.is_empty(), "per-tenant snapshots have no rollup map");
    match server.tenant_stats("nobody") {
        Err(ServerError::UnknownTenant { name }) => assert_eq!(name, "nobody"),
        other => panic!("expected UnknownTenant, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn node_ids_validate_against_the_addressed_tenants_graph() {
    // cora-small has 680 nodes, citeseer-small 830: node 700 is valid on
    // the traffic tenant but must be a typed engine rejection on the
    // default — validation runs against the *addressed* tenant's graph.
    let server = multi_tenant_server(ServerConfig::default().with_workers(1));
    let traffic = server.handle_for("traffic").expect("traffic");
    assert!(server.handle().num_nodes() < 700 && traffic.num_nodes() > 700);
    let request = InferRequest::sampled(vec![700], 4, 2, 1);
    traffic.infer(request.clone()).expect("node 700 exists on citeseer-small");
    match server.handle().infer(request) {
        Err(ServerError::Engine(_)) => {}
        other => panic!("expected a typed engine rejection, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn retired_tenant_submissions_get_typed_unknown_tenant() {
    // A handle that outlives its tenant's retirement must shed new
    // submissions with UnknownTenant, not serve against a ghost.
    let server = multi_tenant_server(ServerConfig::default().with_workers(1));
    let fraud = server.handle_for("fraud").expect("fraud");
    fraud.infer(InferRequest::sampled(vec![1], 4, 2, 1)).expect("serves while live");
    let finals = server.retire("fraud").expect("retires");
    assert_eq!(finals.completed, 1);
    match fraud.infer(InferRequest::sampled(vec![2], 4, 2, 1)) {
        Err(ServerError::UnknownTenant { name }) => assert_eq!(name, "fraud"),
        other => panic!("expected UnknownTenant, got {other:?}"),
    }
    // The default tenant is load-bearing and cannot be retired.
    match server.retire(DEFAULT_TENANT) {
        Err(ServerError::Protocol(_)) => {}
        other => panic!("expected a protocol rejection, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn tcp_multi_tenant_deploy_infer_retire_round_trip() {
    // The whole lifecycle over the wire: deploy a second tenant, infer@
    // both (answers echo the serving tenant and match in-process
    // references bit-exactly), update@ the new tenant, read per-tenant
    // stats, list the roster, retire, and confirm the name is gone.
    let specs = roster();
    let server = Arc::new(
        Server::start(
            specs[0].build_engine().expect("engine"),
            ServerConfig::default().with_workers(2).with_batching(Duration::from_millis(1), 4),
        )
        .expect("starts"),
    );
    let front = TcpServer::bind(Arc::clone(&server), "127.0.0.1:0").expect("binds");
    let mut client = Client::connect(front.local_addr()).expect("connects");

    let info = client.deploy(&specs[1]).expect("deploy lands");
    assert_eq!(info.name, "traffic");
    assert_eq!(info.model, ModelKind::GsPool);
    assert_eq!(info.backend, BackendKind::Dense);
    assert_eq!(info.weight, 3);
    assert!(info.resident_bytes > 0);
    match client.deploy(&specs[1]) {
        Err(ServerError::TenantExists { .. }) => {}
        other => panic!("expected TenantExists over the wire, got {other:?}"),
    }

    let request = InferRequest::sampled(vec![3, 15], 5, 3, 21);
    let on_default = client.infer(&request).expect("default serves");
    assert_eq!(on_default.tenant, DEFAULT_TENANT);
    let on_traffic = client
        .infer_tenant(&request, SubmitOptions::default(), Some("traffic"))
        .expect("traffic serves");
    assert_eq!(on_traffic.tenant, "traffic");
    for (spec, got) in [(&specs[0], &on_default), (&specs[1], &on_traffic)] {
        let mut engine = spec.build_engine().expect("reference engine");
        let want = engine.session().infer(&request).expect("reference serves");
        assert_eq!(got.logits.shape(), want.logits.shape());
        for i in 0..got.logits.rows() {
            for (a, b) in got.logits.row(i).iter().zip(want.logits.row(i)) {
                assert_eq!(a.to_bits(), b.to_bits(), "{}: remote bits diverge", spec.name);
            }
        }
    }

    let ack = client
        .update_tenant(&GraphDelta::new().add_edge(0, 9), Some("traffic"))
        .expect("update@traffic lands");
    assert_eq!(ack.tenant, "traffic");
    assert_eq!(ack.version, 1);
    let after = client
        .infer_tenant(&request, SubmitOptions::default(), Some("traffic"))
        .expect("serves post-update");
    assert_eq!(after.graph_version, 1);
    let on_default = client.infer(&request).expect("default still serves");
    assert_eq!(on_default.graph_version, 0, "default's version is untouched");

    let traffic_stats = client.stats_tenant(Some("traffic")).expect("stats@traffic");
    assert!(traffic_stats.contains("completed=2"), "got {traffic_stats:?}");
    assert!(traffic_stats.contains("version=1"), "got {traffic_stats:?}");
    let aggregate = client.stats().expect("aggregate stats");
    assert!(aggregate.contains("tenants=2"), "got {aggregate:?}");
    assert!(aggregate.contains("tenant=traffic:w=3:"), "got {aggregate:?}");

    let roster = client.list().expect("list");
    assert_eq!(
        roster.iter().map(|t| t.name.as_str()).collect::<Vec<_>>(),
        vec![DEFAULT_TENANT, "traffic"]
    );
    match client.infer_tenant(&request, SubmitOptions::default(), Some("nobody")) {
        Err(ServerError::UnknownTenant { .. }) => {}
        other => panic!("expected UnknownTenant over the wire, got {other:?}"),
    }

    let sendoff = client.retire("traffic").expect("retire lands");
    assert!(sendoff.contains("tenant=traffic"), "got {sendoff:?}");
    assert!(sendoff.contains("completed=2"), "got {sendoff:?}");
    assert_eq!(client.list().expect("list").len(), 1);
    match client.infer_tenant(&request, SubmitOptions::default(), Some("traffic")) {
        Err(ServerError::UnknownTenant { .. }) => {}
        other => panic!("expected UnknownTenant after retire, got {other:?}"),
    }
    client.shutdown().expect("clean shutdown");
    front.run_until_shutdown();
}
