//! Regression tests for the packed half-spectrum serving path: the
//! representation change must halve resident spectral bytes and leave
//! the simulated hardware cost model untouched, while spectral logits
//! stay within the established dense-parity envelope.

use blockgnn::engine::{BackendKind, EngineBuilder, EngineError, InferRequest};
use blockgnn::gnn::ModelKind;
use blockgnn::graph::datasets;
use blockgnn::nn::{CirculantDense, Compression};
use std::sync::Arc;

/// `SimReport` cycles/energy pinned to the values the engine produced
/// *before* the half-spectrum rewrite (recorded from the full-spectrum
/// implementation at the same config). Eqs. 3–7 price the logical
/// FFT/MAC/IFFT work of the workload shape, not the software data
/// layout, so packing the spectra must change wall-clock only.
#[test]
fn sim_report_is_bit_identical_to_full_spectrum_implementation() {
    let ds = Arc::new(datasets::cora_like_small(5));
    let golden: [(ModelKind, u64, f64, f64); 4] = [
        (ModelKind::Gcn, 545, 5.45e-6, 2.507e-5),
        (ModelKind::GsPool, 2400, 2.4e-5, 1.104e-4),
        (ModelKind::Ggcn, 4320, 4.32e-5, 1.9872e-4),
        (ModelKind::Gat, 24360, 2.436e-4, 1.12056e-3),
    ];
    for (kind, cycles, seconds, energy) in golden {
        let mut engine = EngineBuilder::new(kind, BackendKind::SimulatedAccel)
            .hidden_dim(16)
            .compression(Compression::BlockCirculant { block_size: 8 })
            .seed(77)
            .build(Arc::clone(&ds))
            .expect("engine builds");
        let mut session = engine.session();
        let response = session
            .infer(&InferRequest::sampled(vec![3, 1, 4, 15, 9], 10, 5, 42))
            .expect("request serves");
        let sim = response.sim.expect("accel backend reports");
        assert_eq!(sim.total_cycles, cycles, "{kind}: cycles drifted from pre-packing values");
        assert_eq!(
            sim.seconds.to_bits(),
            seconds.to_bits(),
            "{kind}: seconds must be bit-identical"
        );
        assert_eq!(
            response.energy_joules.expect("accel reports energy").to_bits(),
            energy.to_bits(),
            "{kind}: energy must be bit-identical"
        );
    }
}

#[test]
fn packed_spectra_halve_resident_weight_bytes() {
    // Full-spectrum accounting was p·q·n·8; packed is p·q·(n/2 + 1)·8.
    for n in [2usize, 8, 16, 64, 128] {
        let layer = CirculantDense::new(256, 256, n, 1).unwrap();
        let grid = 256_usize.div_ceil(n) * 256_usize.div_ceil(n);
        let full = grid * n * 8;
        let packed = grid * (n / 2 + 1) * 8;
        assert_eq!(layer.spectral_weight_bytes(), packed, "n={n}");
        assert_eq!(
            layer.to_block_circulant().spectral_weight_bytes(),
            packed,
            "n={n}: layer and matrix accounting must agree"
        );
        // Exactly half plus the one extra packed bin per block…
        assert_eq!(2 * packed - full, grid * 16, "n={n}");
        // …which shrinks the footprint for every n ≥ 4 (at n = 2 the
        // DC + Nyquist pair is already the whole spectrum).
        if n >= 4 {
            assert!(packed < full, "n={n}: packing must shrink the footprint");
        } else {
            assert_eq!(packed, full, "n={n}");
        }
    }
}

#[test]
fn residency_check_still_gates_build_under_packed_accounting() {
    // The §IV-B Weight-Buffer check must keep rejecting models whose
    // *packed* spectra overflow 256 KB — n = 1 "dense" grids store one
    // bin per scalar and blow the budget exactly as before.
    let ds = Arc::new(datasets::cora_like_small(5));
    let wide = EngineBuilder::new(ModelKind::Gcn, BackendKind::SimulatedAccel)
        .hidden_dim(512)
        .compression(Compression::BlockCirculant { block_size: 1 })
        .build(Arc::clone(&ds));
    assert!(
        matches!(wide.unwrap_err(), EngineError::Accel(_)),
        "uncompressed model must still overflow the Weight Buffer"
    );
    // The same width compresses into residency at n = 16.
    let ok = EngineBuilder::new(ModelKind::Gcn, BackendKind::SimulatedAccel)
        .hidden_dim(512)
        .compression(Compression::BlockCirculant { block_size: 16 })
        .build(ds);
    assert!(ok.is_ok(), "compressed model must deploy");
}

#[test]
fn spectral_logits_stay_within_dense_parity_for_every_model_kind() {
    // The acceptance envelope of the pre-packing implementation: dense
    // vs spectral drift under 1e-8 on full-graph logits, identical
    // predictions — now exercised on the packed path for all four
    // kinds and a ragged feature width (96 is not a multiple of 64).
    let ds = Arc::new(datasets::cora_like_small(5));
    let request = InferRequest::full_graph(vec![0, 9, 100, 679]);
    for kind in ModelKind::all() {
        for block_size in [8usize, 64] {
            let build = |backend| {
                EngineBuilder::new(kind, backend)
                    .hidden_dim(16)
                    .compression(Compression::BlockCirculant { block_size })
                    .seed(77)
                    .build(Arc::clone(&ds))
                    .expect("engine builds")
            };
            let a = build(BackendKind::Dense).session().infer(&request).expect("dense");
            let b = build(BackendKind::Spectral).session().infer(&request).expect("spectral");
            let drift = a.logits.linf_distance(&b.logits);
            assert!(drift < 1e-8, "{kind} n={block_size}: dense/spectral drift {drift:.3e}");
            assert_eq!(a.predictions, b.predictions, "{kind} n={block_size}");
        }
    }
}
