//! Integration tests for the unified inference engine: backend parity
//! across all four model kinds, simulated-accelerator reporting, session
//! statistics, caching, and error handling.

use blockgnn::engine::{BackendKind, EngineBuilder, EngineError, InferRequest, RequestMode};
use blockgnn::gnn::ModelKind;
use blockgnn::graph::{datasets, Dataset};
use blockgnn::nn::Compression;
use std::sync::Arc;

fn task() -> Arc<Dataset> {
    Arc::new(datasets::cora_like_small(5))
}

fn engine_for(
    kind: ModelKind,
    backend: BackendKind,
    dataset: &Arc<Dataset>,
) -> blockgnn::engine::Engine {
    EngineBuilder::new(kind, backend)
        .hidden_dim(16)
        .compression(Compression::BlockCirculant { block_size: 8 })
        .seed(77)
        .build(Arc::clone(dataset))
        .expect("engine builds")
}

#[test]
fn dense_and_spectral_backends_agree_for_every_model_kind() {
    // The paper's premise: compression changes the execution substrate,
    // not the function. Same seed => same kernels; the dense backend
    // decompresses them, the spectral backend runs Algorithm 1, and the
    // logits must match to FFT rounding.
    let ds = task();
    let request = InferRequest::full_graph(vec![0, 17, 333, 679]);
    for kind in ModelKind::all() {
        let mut dense = engine_for(kind, BackendKind::Dense, &ds);
        let mut spectral = engine_for(kind, BackendKind::Spectral, &ds);
        let a = dense.session().infer(&request).expect("dense serves");
        let b = spectral.session().infer(&request).expect("spectral serves");
        let drift = a.logits.linf_distance(&b.logits);
        assert!(drift < 1e-8, "{kind}: dense/spectral drift {drift:.3e}");
        assert_eq!(a.predictions, b.predictions, "{kind}: predictions diverged");
        assert!(a.sim.is_none() && b.sim.is_none(), "software backends report no cycles");
    }
}

#[test]
fn simulated_accel_matches_spectral_and_reports_cycles() {
    let ds = task();
    let request = InferRequest::full_graph(vec![1, 2, 3, 500]);
    for kind in ModelKind::all() {
        let mut spectral = engine_for(kind, BackendKind::Spectral, &ds);
        let mut accel = engine_for(kind, BackendKind::SimulatedAccel, &ds);
        let a = spectral.session().infer(&request).expect("spectral serves");
        let b = accel.session().infer(&request).expect("accel serves");
        // Identical spectral execution path => bit-identical logits.
        assert_eq!(
            a.logits.linf_distance(&b.logits),
            0.0,
            "{kind}: accel functional output diverged from spectral"
        );
        let sim = b.sim.expect("accel backend must report");
        assert!(sim.total_cycles > 0, "{kind}: zero-cycle report");
        assert!(sim.seconds > 0.0 && sim.nodes_per_second() > 0.0);
        assert!(b.energy_joules.unwrap() > 0.0, "{kind}: zero-energy report");
        assert!(a.energy_joules.is_none());
    }
}

#[test]
fn sampled_requests_serve_batch_rows_on_all_backends() {
    let ds = task();
    for backend in BackendKind::all() {
        let mut engine = engine_for(ModelKind::GsPool, backend, &ds);
        let mut session = engine.session();
        let batch = vec![10usize, 20, 30, 40, 50];
        let response = session
            .infer(&InferRequest::sampled(batch.clone(), 6, 4, 9))
            .expect("sampled request serves");
        assert_eq!(response.logits.rows(), batch.len(), "{backend}: row count");
        assert_eq!(response.predictions.len(), batch.len());
        assert!(!response.from_cache, "sampled requests never hit the cache");
        // Deterministic per seed: replaying the request reproduces logits.
        let replay =
            session.infer(&InferRequest::sampled(batch, 6, 4, 9)).expect("replay serves");
        assert_eq!(response.logits.linf_distance(&replay.logits), 0.0, "{backend}");
    }
}

#[test]
fn sampled_requests_with_duplicate_nodes_stay_aligned() {
    // The subgraph interns each node once; duplicate ids in a request
    // must still produce one row per request position, all aligned.
    let ds = task();
    let mut engine = engine_for(ModelKind::Gcn, BackendKind::Spectral, &ds);
    let mut session = engine.session();
    let dup = session.infer(&InferRequest::sampled(vec![5, 5, 7, 5], 6, 4, 9)).unwrap();
    assert_eq!(dup.logits.rows(), 4);
    let unique = session.infer(&InferRequest::sampled(vec![5, 7], 6, 4, 9)).unwrap();
    // Same seed + same unique node set => same subgraph, so every
    // duplicate position must equal its node's unique-request row.
    for (pos, want) in [(0, 0), (1, 0), (2, 1), (3, 0)] {
        assert_eq!(
            dup.logits.row(pos),
            unique.logits.row(want),
            "request position {pos} misaligned"
        );
    }
}

#[test]
fn sampled_cycle_reports_use_request_fanouts() {
    // The cycle model must charge a sampled request with its own
    // fan-outs, not the engine's full-graph default.
    let ds = task();
    let mut engine = engine_for(ModelKind::GsPool, BackendKind::SimulatedAccel, &ds);
    let mut session = engine.session();
    let nodes = vec![1usize, 2, 3];
    let light = session.infer(&InferRequest::sampled(nodes.clone(), 2, 2, 4)).unwrap();
    let heavy = session.infer(&InferRequest::sampled(nodes, 25, 10, 4)).unwrap();
    let (light_sim, heavy_sim) = (light.sim.unwrap(), heavy.sim.unwrap());
    // Per-node cost must scale with the requested fan-out.
    let light_per_node = light_sim.total_cycles / light_sim.num_nodes as u64;
    let heavy_per_node = heavy_sim.total_cycles / heavy_sim.num_nodes as u64;
    assert!(
        heavy_per_node > 3 * light_per_node,
        "fan-out 25/10 per-node cycles ({heavy_per_node}) should dwarf 2/2 ({light_per_node})"
    );
}

#[test]
fn build_with_model_derives_hidden_width_for_the_cycle_model() {
    // Handing a trained model to build_with_model must charge cycles at
    // the model's real hidden width, not the builder default (32).
    let ds = task();
    let mut cycles = Vec::new();
    for hidden in [16usize, 64] {
        let model = blockgnn::gnn::build_model(
            ModelKind::Gcn,
            ds.feature_dim(),
            hidden,
            ds.num_classes,
            Compression::BlockCirculant { block_size: 8 },
            7,
        )
        .unwrap();
        let mut engine = EngineBuilder::new(ModelKind::Gcn, BackendKind::SimulatedAccel)
            .build_with_model(model, Arc::clone(&ds))
            .expect("engine builds");
        let response = engine.session().infer(&InferRequest::full_graph(vec![0])).unwrap();
        cycles.push(response.sim.unwrap().total_cycles);
    }
    assert!(
        cycles[1] > cycles[0],
        "hidden 64 must cost more cycles than hidden 16 (got {cycles:?}); \
         if equal, the builder default leaked into the workload"
    );
}

#[test]
fn full_graph_cache_serves_repeat_requests() {
    let ds = task();
    let mut engine = engine_for(ModelKind::Gcn, BackendKind::SimulatedAccel, &ds);
    let mut session = engine.session();
    let first = session.infer(&InferRequest::full_graph(vec![4, 5])).unwrap();
    assert!(!first.from_cache, "first full-graph request computes");
    assert!(first.sim.is_some(), "fresh computation carries its report");
    let second = session.infer(&InferRequest::full_graph(vec![4, 5])).unwrap();
    assert!(second.from_cache, "repeat full-graph request hits the cache");
    assert_eq!(first.logits.linf_distance(&second.logits), 0.0);
    // Cache hits cost the hardware nothing: no replayed report, so
    // summing per-response cost over a session never double-counts.
    assert!(second.sim.is_none() && second.energy_joules.is_none());
    // An all-nodes request is also served from the same cache.
    let all = session.infer(&InferRequest::all_nodes()).unwrap();
    assert!(all.from_cache);
    assert_eq!(all.logits.rows(), ds.num_nodes());
    assert_eq!(session.stats().full_graph_cache_hits, 2);
}

#[test]
fn session_stats_accumulate_across_requests() {
    let ds = task();
    let mut engine = engine_for(ModelKind::Gcn, BackendKind::SimulatedAccel, &ds);
    let mut session = engine.session();
    let responses = session
        .infer_batch(&[
            InferRequest::sampled(vec![0, 1], 4, 3, 1),
            InferRequest::sampled(vec![2, 3, 4], 4, 3, 2),
            InferRequest::full_graph(vec![9]),
        ])
        .expect("batch serves");
    assert_eq!(responses.len(), 3);
    let stats = session.finish();
    assert_eq!(stats.requests, 3);
    assert_eq!(stats.nodes_served, 6);
    assert!(stats.simulated_cycles > 0);
    assert!(stats.simulated_energy_joules > 0.0);
    assert!(stats.nodes_per_second() > 0.0);
    assert!(stats.min_latency.unwrap() <= stats.max_latency);
    assert!(stats.mean_latency() >= stats.min_latency.unwrap());
}

#[test]
fn invalid_requests_are_rejected() {
    let ds = task();
    let mut engine = engine_for(ModelKind::Gcn, BackendKind::Dense, &ds);
    let mut session = engine.session();
    let oob = session.infer(&InferRequest::full_graph(vec![0, 100_000]));
    assert_eq!(
        oob.unwrap_err(),
        EngineError::NodeOutOfRange { node: 100_000, num_nodes: ds.num_nodes() }
    );
    let empty = session.infer(&InferRequest::sampled(Vec::new(), 5, 3, 0));
    assert_eq!(empty.unwrap_err(), EngineError::EmptyRequest);
    // Failed requests leave no trace in the stats.
    assert_eq!(session.stats().requests, 0);
}

#[test]
fn oversized_dense_weights_fail_accelerator_deployment() {
    // A fully dense model (n = 1) cannot fit the 256 KB Weight Buffer
    // once its matrices are large — the §IV-B deployability argument,
    // surfaced at engine build time... but small dense models pass (no
    // circulant weights to validate).
    let ds = task();
    let built = EngineBuilder::new(ModelKind::Gcn, BackendKind::SimulatedAccel)
        .hidden_dim(16)
        .compression(Compression::Dense)
        .build(Arc::clone(&ds));
    assert!(built.is_ok(), "dense models skip the circulant WB check");

    // An absurdly wide circulant model overflows the Weight Buffer.
    let wide = EngineBuilder::new(ModelKind::Gcn, BackendKind::SimulatedAccel)
        .hidden_dim(70_000)
        .compression(Compression::BlockCirculant { block_size: 2 })
        .build(Arc::clone(&ds));
    assert!(
        matches!(wide.unwrap_err(), EngineError::Accel(_)),
        "oversized weights must be rejected at build time"
    );
}

#[test]
fn weight_buffer_check_requires_whole_model_residency() {
    // Two layers that fit individually but not together must be
    // rejected: the serving loop assumes the whole model stays resident
    // (the CommandProcessor's cumulative slot accounting).
    let spec = blockgnn::graph::DatasetSpec::new("wb-co-residency", 50, 200, 602, 41);
    let ds = Arc::new(blockgnn::graph::Dataset::synthesize(&spec, 0.7, 1.0, 3));
    // GCN 602 -> 1424 -> 41 at n = 16 under *packed* half-spectrum
    // accounting (9 bins × 8 B per block): spectra of 243,504 B +
    // 19,224 B; each fits the 262,144 B WB alone, the 262,728 B sum
    // does not.
    let built = EngineBuilder::new(ModelKind::Gcn, BackendKind::SimulatedAccel)
        .hidden_dim(1424)
        .compression(Compression::BlockCirculant { block_size: 16 })
        .build(Arc::clone(&ds));
    assert!(
        matches!(built.unwrap_err(), EngineError::Accel(_)),
        "per-layer-fitting model must still fail co-residency"
    );
    // A slightly narrower hidden layer (259,776 B total) brings the sum
    // under budget.
    let ok = EngineBuilder::new(ModelKind::Gcn, BackendKind::SimulatedAccel)
        .hidden_dim(1408)
        .compression(Compression::BlockCirculant { block_size: 16 })
        .build(ds);
    assert!(ok.is_ok(), "co-resident model must deploy");
}

#[test]
fn request_mode_metadata_is_preserved() {
    let ds = task();
    let mut engine = engine_for(ModelKind::Ggcn, BackendKind::Spectral, &ds);
    assert_eq!(engine.model_kind(), ModelKind::Ggcn);
    assert_eq!(engine.backend_kind(), BackendKind::Spectral);
    assert_eq!(engine.dataset().num_nodes(), ds.num_nodes());
    let request = InferRequest::paper_sampled(vec![7], 3);
    assert_eq!(request.mode, RequestMode::Sampled { s1: 25, s2: 10, seed: 3 });
    let mut session = engine.session();
    let response = session.infer(&request).expect("serves");
    assert_eq!(response.logits.rows(), 1);
}
