//! Smoke tests over the full reproduction harness: every table/figure
//! module runs (quick configurations) and produces output with the
//! paper's qualitative structure.

use blockgnn_bench::{ablation, fig6, fig7, table2, table3, table4, table5, table6};

#[test]
fn table2_reproduces_profile_structure() {
    let rows = table2::run();
    assert_eq!(rows.len(), 4);
    // GCN: combination dominates; all others: aggregation dominates.
    assert!(rows[0].comb_ops > rows[0].agg_ops);
    for r in &rows[1..] {
        assert!(r.agg_ops > r.comb_ops, "{}", r.model);
    }
    let text = table2::render(&rows);
    assert!(text.contains("Table II"));
}

#[test]
fn table3_quick_sweep_shows_compression_tolerance() {
    let rows = table3::run(&table3::Table3Config::quick());
    let text = table3::render(&rows);
    assert!(text.contains("TCR"));
    // Accuracy at n=16 within 15 points of dense for the quick config.
    let dense_acc = rows[0].accuracies[0].1;
    let comp_acc = rows[1].accuracies[0].1;
    assert!(dense_acc - comp_acc < 0.15, "drop {dense_acc} -> {comp_acc}");
}

#[test]
fn table4_is_exact() {
    let specs = table4::run();
    assert_eq!(specs[3].num_edges, 11_606_919);
    assert!(table4::render(&specs).contains("cora-like"));
}

#[test]
fn table5_and_table6_are_consistent() {
    let t5 = table5::run();
    let t6 = table6::run();
    assert_eq!(t5.len(), 4);
    assert_eq!(t6.len(), 4);
    for (a, b) in t5.iter().zip(&t6) {
        assert_eq!(a.dataset, b.dataset);
        // Table VI's DSP column is Eq. 8 applied to Table V's config.
        let dsp =
            a.result.params.dsp_usage(128, &blockgnn::perf::coeffs::HardwareCoeffs::zc706());
        assert_eq!(dsp, b.estimate.dsp48);
    }
}

#[test]
fn figures_6_and_7_share_timing() {
    let entries = fig6::run();
    assert_eq!(entries.len(), 16);
    let energy = fig7::from_entries(&entries);
    assert_eq!(energy.len(), 16);
    for (t, e) in entries.iter().zip(&energy) {
        assert_eq!(t.opt_seconds, e.accel.seconds);
        assert_eq!(t.cpu_seconds, e.cpu.seconds);
        assert!(e.energy_ratio() > 1.0);
    }
    assert!(fig6::render(&entries).contains("Figure 6"));
    assert!(fig7::render(&energy).contains("Figure 7"));
}

#[test]
fn ablations_quantify_design_choices() {
    let accum = ablation::spectral_accumulation(256, 32, 2);
    assert!(accum.ifft_per_block > accum.ifft_optimized);
    let rfft = ablation::rfft_comparison(256, 32, 2);
    assert!(rfft.rfft_bins < rfft.complex_bins);
    assert!(rfft.max_divergence < 1e-8);
}
