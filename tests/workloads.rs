//! Workload-harness integration tests: a seeded adversarial trace must
//! replay **bit-identically** — same shed/dedup/batch-size counters and
//! the same fingerprint over every served logit's bits across two runs
//! on fresh engines, and again after a serialize/deserialize round trip
//! — and a live TCP front end under the same adversarial mix (malformed
//! floods, slow-loris clients, deadline storms) must answer every line
//! with a typed reply on a connection that stays open.

use blockgnn::engine::{BackendKind, Engine, InferRequest};
use blockgnn::gnn::ModelKind;
use blockgnn::server::workload::{
    ci_adversarial_spec, replay_logical, replay_tcp, zipfian_pool, ArrivalKind, ReplayLimits,
    Trace, TraceOp, WorkloadSpec,
};
use blockgnn::server::{
    run_closed_loop, Client, LoadConfig, Server, ServerConfig, SloClass, SubmitOptions,
    TcpServer, TenantSpec, DEFAULT_TENANT,
};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// The two-tenant roster the replay tests run against: the default
/// tenant plus a weighted `traffic` tenant on a different dataset,
/// model, and backend.
fn roster() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new(DEFAULT_TENANT, "cora-small", ModelKind::Gcn, BackendKind::Dense)
            .hidden_dim(16)
            .seed(5),
        TenantSpec::new("traffic", "citeseer-small", ModelKind::GsPool, BackendKind::Dense)
            .hidden_dim(16)
            .seed(7)
            .weight(3),
    ]
}

/// Fresh engines for a logical replay — built identically every call,
/// which is what lets two replays start from the same bits.
fn engines() -> BTreeMap<String, Engine> {
    roster()
        .into_iter()
        .map(|spec| {
            let engine = spec.build_engine().expect("engine builds");
            (spec.name.clone(), engine)
        })
        .collect()
}

/// The pinned adversarial spec of these tests: both tenants, every
/// traffic flavour, node ids valid on both graphs.
fn adversarial_spec() -> WorkloadSpec {
    ci_adversarial_spec(60).with_tenants(vec![DEFAULT_TENANT.into(), "traffic".into()])
}

#[test]
fn seeded_trace_replays_bit_identically() {
    // The acceptance criterion of the whole harness: two logical
    // replays of one seeded trace on independently built engines agree
    // on *every* counter — sheds, dedups, batch sizes, per-class served
    // — and on a fingerprint folded over every served logit's bits.
    let trace = adversarial_spec().generate();
    let limits = ReplayLimits::default();
    let first = replay_logical(&mut engines(), &trace, &limits);
    let second = replay_logical(&mut engines(), &trace, &limits);
    assert_eq!(first, second, "two replays of one trace must match bit for bit");
    // The trace actually exercised the machinery it claims to cover.
    assert!(first.served > 100, "most traffic serves: {first:?}");
    assert!(first.batches > 0 && first.logits_fingerprint != 0);
    assert!(first.shed_deadline > 0, "the deadline storm sheds: {first:?}");
    assert!(first.protocol_errors > 0, "malformed lines are rejected: {first:?}");
    assert!(first.updates > 0, "updates apply: {first:?}");
    assert_eq!(first.unknown_tenant, 0, "every event addresses a deployed tenant");
    let by_size: usize = first.batch_size_counts.values().sum();
    assert_eq!(by_size, first.batches, "batch histogram adds up");
    assert!(
        first.batch_size_counts.keys().any(|&s| s >= 2),
        "bursts coalesce into multi-request batches: {:?}",
        first.batch_size_counts
    );
    let by_class: usize = first.class_served.iter().sum();
    assert_eq!(by_class, first.served, "class rollup adds up");
    assert!(first.class_served.iter().all(|&c| c > 0), "all three classes served");
}

#[test]
fn decoded_traces_replay_identically_to_their_originals() {
    // Serialization is part of the replay contract: a trace that
    // crossed a file (hex f64 bits and all) must drive the exact same
    // execution as the in-memory original.
    let trace = adversarial_spec().generate();
    let decoded = Trace::decode(&trace.encode()).expect("round trip");
    assert_eq!(decoded, trace);
    let limits = ReplayLimits::default();
    let original = replay_logical(&mut engines(), &trace, &limits);
    let replayed = replay_logical(&mut engines(), &decoded, &limits);
    assert_eq!(original, replayed, "a decoded trace replays bit-identically");
}

#[test]
fn batching_limits_shape_logical_batches() {
    // A single-tenant single-class burst coalesces up to the caps; a
    // zero window serializes everything. Same trace, different limits.
    let spec = WorkloadSpec::new(0xBA7C, 120, 50)
        .with_arrival(ArrivalKind::Bursty, 400)
        .with_class_mix([0, 1, 0]);
    let trace = spec.generate();
    for event in &trace.events {
        if let TraceOp::Infer { options, .. } = &event.op {
            assert_eq!(options.class, SloClass::Silver, "a zero-weight mix never draws");
        }
    }
    let wide = replay_logical(
        &mut engines(),
        &trace,
        &ReplayLimits { window_us: 5_000, max_requests: 8, max_nodes: 1024 },
    );
    let serial = replay_logical(
        &mut engines(),
        &trace,
        &ReplayLimits { window_us: 0, max_requests: 8, max_nodes: 1024 },
    );
    assert!(
        wide.batch_size_counts.keys().max() > serial.batch_size_counts.keys().max(),
        "a wide window coalesces deeper than a zero one: wide={:?} serial={:?}",
        wide.batch_size_counts,
        serial.batch_size_counts
    );
    assert!(wide.batch_size_counts.keys().all(|&s| s <= 8), "request cap holds");
    assert_eq!(serial.deduped, 0, "serialized traffic has nothing to dedup");
    assert_eq!(wide.served + wide.engine_errors, serial.served + serial.engine_errors);
}

#[test]
fn adversarial_tcp_replay_earns_typed_errors_on_live_connections() {
    // The wall-clock half of the contract: drive the full adversarial
    // trace — malformed floods, slow-loris dribbles, deadline storms,
    // cross-tenant bursts — at a real TCP front end. Every line gets a
    // reply, failures are typed, and no connection drops.
    let specs = roster();
    let server = Arc::new(
        Server::start(
            specs[0].build_engine().expect("default engine"),
            ServerConfig::default()
                .with_workers(2)
                .with_batching(Duration::from_micros(500), 8),
        )
        .expect("server starts"),
    );
    for spec in &specs[1..] {
        server.deploy(spec).expect("tenant deploys");
    }
    let front = TcpServer::bind(Arc::clone(&server), "127.0.0.1:0").expect("binds");
    let addr = front.local_addr();

    let trace = adversarial_spec().generate();
    let report = replay_tcp(addr, &trace);
    assert_eq!(report.sent, trace.events.len(), "every event was driven");
    assert_eq!(
        report.transport_errors, 0,
        "adversarial load never drops a connection: {report:?}"
    );
    assert!(report.ok > 0 && report.updates_ok > 0, "real traffic serves: {report:?}");
    assert!(report.typed_errors > 0, "malformed lines earn typed err replies: {report:?}");
    assert!(report.shed > 0, "the deadline storm sheds typed: {report:?}");
    assert!(
        report.class_latency[SloClass::Gold.index()].count() > 0,
        "gold latency was observed"
    );

    // The server is still fully alive afterwards: a fresh client gets
    // served, per-class telemetry rolled up, and shutdown is clean.
    let mut client = Client::connect(addr).expect("post-replay client connects");
    client
        .infer_with(
            &InferRequest::sampled(vec![1, 2], 4, 2, 9),
            SubmitOptions::class(SloClass::Gold),
        )
        .expect("the server still serves after the storm");
    let stats = client.stats().expect("stats");
    assert!(stats.contains("class=gold:"), "per-class rollups in stats: {stats}");
    client.shutdown().expect("clean shutdown");
    let stats = front.run_until_shutdown();
    assert!(stats.completed > 0);
}

#[test]
fn zipfian_gold_load_rides_the_closed_loop_generator() {
    // The load-generator path of the harness: a duplicate-heavy zipfian
    // pool tagged gold drives the closed loop; everything serves and
    // the gold rollup shows up in the stats line.
    let pool = zipfian_pool(600, 16, 6, 3, 1.2, 42);
    assert_eq!(pool.len(), 16);
    let distinct: std::collections::BTreeSet<usize> = pool.iter().map(|r| r.nodes[0]).collect();
    assert!(
        distinct.len() < pool.len(),
        "zipfian popularity collides on the hot head: {distinct:?}"
    );

    let spec = &roster()[0];
    let server = Arc::new(
        Server::start(
            spec.build_engine().expect("engine builds"),
            ServerConfig::default().with_workers(2),
        )
        .expect("server starts"),
    );
    let front = TcpServer::bind(Arc::clone(&server), "127.0.0.1:0").expect("binds");
    let addr = front.local_addr();
    let report = run_closed_loop(
        addr,
        &LoadConfig::new(3, 10, pool).with_options(SubmitOptions::class(SloClass::Gold)),
    );
    assert_eq!(report.ok, report.sent, "gold zipfian load fully serves: {report:?}");
    let mut client = Client::connect(addr).expect("client connects");
    let stats = client.stats().expect("stats");
    assert!(
        stats.contains("class=gold:requests=30:completed=30:"),
        "all 30 gold requests rolled up: {stats}"
    );
    client.shutdown().expect("clean shutdown");
    front.run_until_shutdown();
}
