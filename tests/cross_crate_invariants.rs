//! Cross-crate invariants: properties that must hold across module
//! boundaries (algorithm ↔ workload accounting ↔ hardware models).

use blockgnn::accel::{BlockGnnAccelerator, CpuModel, HyGcnModel};
use blockgnn::core::{BlockCirculantMatrix, SpectralBlockCirculant};
use blockgnn::gnn::workload::GnnWorkload;
use blockgnn::gnn::ModelKind;
use blockgnn::graph::datasets;
use blockgnn::perf::coeffs::HardwareCoeffs;
use blockgnn::perf::cycles::{layer_cycles, total_cycles};
use blockgnn::perf::dse::search_optimal;
use blockgnn::perf::params::CirCoreParams;

#[test]
fn workload_macs_equal_accel_task_macs() {
    // The accel layer-task conversion must preserve the workload's MAC
    // accounting exactly — otherwise Figures 6/7 compare different work.
    for kind in ModelKind::all() {
        let spec = datasets::cora_like();
        let w = GnnWorkload::new(kind, &spec, 512, &[25, 10]);
        for layer in &w.layers {
            let task = BlockGnnAccelerator::layer_task(layer);
            let task_macs: f64 = task
                .matvecs
                .iter()
                .map(|mv| mv.count_per_node * mv.out_dim as f64 * mv.in_dim as f64)
                .sum::<f64>()
                + task.vpu_macs_per_node;
            let workload_macs = layer.agg.macs_per_node() + layer.comb.macs_per_node();
            assert!(
                (task_macs - workload_macs).abs() < 1e-6,
                "{kind}: task {task_macs} vs workload {workload_macs}"
            );
        }
    }
}

#[test]
fn dse_result_is_reachable_by_direct_evaluation() {
    // The cycles the DSE reports must equal a fresh evaluation of its
    // chosen parameters.
    let coeffs = HardwareCoeffs::zc706();
    let spec = datasets::pubmed_like();
    let w = GnnWorkload::new(ModelKind::GsPool, &spec, 512, &[25, 10]);
    let tasks: Vec<_> = w.layers.iter().map(BlockGnnAccelerator::layer_task).collect();
    let dse = search_optimal(&tasks, spec.num_nodes, 128, &coeffs);
    let direct = total_cycles(&tasks, spec.num_nodes, &dse.params, 128, &coeffs);
    assert_eq!(dse.cycles, direct);
}

#[test]
fn simulator_report_equals_perf_model_when_compute_bound() {
    // When every layer is compute-bound, the accelerator simulator's
    // totals must match the raw Eq. 7 evaluation.
    let coeffs = HardwareCoeffs::zc706();
    let spec = datasets::citeseer_like();
    let w = GnnWorkload::new(ModelKind::Ggcn, &spec, 512, &[25, 10]);
    let params = CirCoreParams::base();
    let accel = BlockGnnAccelerator::new(params, coeffs.clone());
    let report = accel.simulate_workload(&w, 128);
    for (layer_report, layer) in report.layers.iter().zip(&w.layers) {
        let task = BlockGnnAccelerator::layer_task(layer);
        let stages = layer_cycles(&task, &params, 128, &coeffs);
        assert_eq!(layer_report.stages, stages);
        if layer_report.dram <= stages.bottleneck() {
            assert_eq!(layer_report.effective, stages.bottleneck());
        }
    }
}

#[test]
fn compression_is_the_only_speed_difference_between_architectures() {
    // CPU and HyGCN run the same dense workload; BlockGNN runs the
    // compressed one. For a weight-free-aggregation model on a tiny
    // config, HyGCN with a giant systolic array would approach CPU —
    // here we simply pin the ordering: denser compute => HyGCN's gap to
    // BlockGNN grows monotonically from GCN to G-GCN.
    let coeffs = HardwareCoeffs::zc706_measured();
    let spec = datasets::reddit_like();
    let hygcn = HyGcnModel::zc706_scaled();
    let cpu = CpuModel::xeon_gold_5220();
    let gap_of = |kind: ModelKind| -> f64 {
        let w = GnnWorkload::new(kind, &spec, 512, &[25, 10]);
        let tasks: Vec<_> = w.layers.iter().map(BlockGnnAccelerator::layer_task).collect();
        let dse = search_optimal(&tasks, spec.num_nodes, 128, &coeffs);
        let accel = BlockGnnAccelerator::new(dse.params, coeffs.clone());
        let t_block = accel.simulate_workload(&w, 128).seconds;
        let _t_cpu = cpu.simulate_workload(&w);
        hygcn.simulate_workload(&w) / t_block
    };
    let gcn = gap_of(ModelKind::Gcn);
    let gs_pool = gap_of(ModelKind::GsPool);
    let ggcn = gap_of(ModelKind::Ggcn);
    // Weighted aggregation multiplies HyGCN's dense cost but only adds
    // FFT frames on BlockGNN: the gap must widen decisively from GCN...
    assert!(gs_pool > 2.0 * gcn, "GS-Pool gap {gs_pool:.2} should dwarf GCN's {gcn:.2}");
    // ...while GS-Pool and G-GCN (both aggregation-matvec-dominated)
    // stay within a few percent of each other.
    assert!((ggcn / gs_pool - 1.0).abs() < 0.15, "G-GCN gap {ggcn:.2} vs GS-Pool {gs_pool:.2}");
}

// The two property tests below were originally written with `proptest`;
// that dependency is unavailable in the offline build, so they run the
// same predicates as deterministic sweeps over the same domains.

#[test]
fn prop_spectral_matvec_commutes_with_dense_composition() {
    // (W_bc as dense) · x == spectral(W_bc) · x for random shapes.
    for seed in (0u64..200).step_by(23) {
        for logn in 2u32..6 {
            let n = 1usize << logn;
            let rows = n * 2 + 3;
            let cols = n + 1;
            let w = BlockCirculantMatrix::random(rows, cols, n, seed).unwrap();
            let s = SpectralBlockCirculant::new(&w).unwrap();
            let x: Vec<f64> =
                (0..cols).map(|i| ((i as f64) * 0.37 + seed as f64).sin()).collect();
            let via_dense = w.to_dense().matvec(&x);
            let via_spectral = s.matvec(&x);
            for (a, b) in via_dense.iter().zip(&via_spectral) {
                assert!((a - b).abs() < 1e-8, "seed {seed}, n {n}: {a} vs {b}");
            }
        }
    }
}

#[test]
fn prop_total_cycles_monotone_in_nodes() {
    let coeffs = HardwareCoeffs::zc706();
    let task = blockgnn::perf::cycles::gs_pool_aggregation_task(25, 512, 602);
    let p = CirCoreParams::base();
    let cases = [
        (1usize, 4999usize),
        (4999, 1),
        (10, 10),
        (250, 4000),
        (123, 3210),
        (3210, 123),
        (1, 1),
        (4998, 4999),
    ];
    for (nodes_a, nodes_b) in cases {
        let ca = total_cycles(std::slice::from_ref(&task), nodes_a, &p, 128, &coeffs);
        let cb = total_cycles(std::slice::from_ref(&task), nodes_b, &p, 128, &coeffs);
        assert_eq!(nodes_a <= nodes_b, ca <= cb, "nodes {nodes_a} vs {nodes_b}");
    }
}
