//! The §IV-C deployment flow end-to-end: a graph too large for DRAM is
//! partitioned, each part's batch is processed with sampled two-hop
//! inference, and the per-part latency comes from the accelerator's
//! cycle model — partition + sampling + hardware in one pipeline.

use blockgnn::accel::BlockGnnAccelerator;
use blockgnn::gnn::sampled::{sampled_forward, SampledSubgraph};
use blockgnn::gnn::workload::GnnWorkload;
use blockgnn::gnn::{build_model, Compression, ModelKind};
use blockgnn::graph::partition::{partition_contiguous, parts_needed_for_budget};
use blockgnn::graph::{Dataset, DatasetSpec};
use blockgnn::perf::coeffs::HardwareCoeffs;
use blockgnn::perf::params::CirCoreParams;

fn deployment() -> Dataset {
    let spec = DatasetSpec::new("deploy", 400, 2_400, 32, 4);
    Dataset::synthesize(&spec, 0.8, 2.0, 77)
}

#[test]
fn partitioned_sampled_inference_covers_every_node() {
    let ds = deployment();
    // A DRAM budget that forces a split (full features: 400*32*4 = 51 KB;
    // give ~60% of that).
    let budget = 31_000;
    let k = parts_needed_for_budget(&ds.graph, ds.feature_dim(), 4, budget)
        .expect("budget is feasible");
    assert!(k >= 2, "budget must force a multi-part split, got k={k}");
    let parts = partition_contiguous(&ds.graph, k);
    for part in &parts {
        assert!(
            part.feature_bytes(ds.feature_dim(), 4) <= budget,
            "part exceeds the DRAM budget"
        );
    }

    let mut model = build_model(
        ModelKind::Gcn,
        ds.feature_dim(),
        16,
        ds.num_classes,
        Compression::BlockCirculant { block_size: 8 },
        5,
    )
    .unwrap();

    // Process each part's nodes as a sampled batch; every node must
    // receive exactly one prediction row.
    let mut covered = vec![false; ds.num_nodes()];
    for part in &parts {
        let batch: Vec<usize> = part.nodes.iter().map(|&v| v as usize).collect();
        let logits = sampled_forward(model.as_mut(), &ds.graph, &ds.features, &batch, 10, 5, 3);
        assert_eq!(logits.rows(), batch.len());
        for &v in &batch {
            assert!(!covered[v], "node {v} predicted twice");
            covered[v] = true;
        }
    }
    assert!(covered.iter().all(|&c| c), "every node must be covered");
}

#[test]
fn per_part_latency_sums_to_whole_graph_latency() {
    // The cycle model is per-node linear (Eq. 7), so partitioned
    // execution costs exactly the unpartitioned total — the property
    // that makes the paper's two-way Reddit split performance-neutral.
    let ds = deployment();
    let accel = BlockGnnAccelerator::new(CirCoreParams::base(), HardwareCoeffs::zc706());
    let spec = ds.spec();
    let whole =
        accel.simulate_workload(&GnnWorkload::new(ModelKind::GsPool, &spec, 64, &[10, 5]), 16);

    let parts = partition_contiguous(&ds.graph, 2);
    let mut parts_total = 0u64;
    for part in &parts {
        let mut part_spec = spec.clone();
        part_spec.num_nodes = part.nodes.len();
        let report = accel.simulate_workload(
            &GnnWorkload::new(ModelKind::GsPool, &part_spec, 64, &[10, 5]),
            16,
        );
        parts_total += report.total_cycles;
    }
    assert_eq!(parts_total, whole.total_cycles);
}

#[test]
fn sampled_subgraph_respects_part_feature_budget() {
    // The resident set for a part's sampled batch (batch + 2-hop sampled
    // universe) stays within a small multiple of the fan-out bound.
    let ds = deployment();
    let parts = partition_contiguous(&ds.graph, 4);
    let (s1, s2) = (5usize, 3usize);
    for part in &parts {
        let batch: Vec<usize> = part.nodes.iter().map(|&v| v as usize).collect();
        let sub = SampledSubgraph::build(&ds.graph, &batch, s1, s2, 1);
        let bound = batch.len() * (1 + s1 + s1 * s2);
        assert!(
            sub.local_to_global.len() <= bound,
            "sampled universe {} exceeds the fan-out bound {bound}",
            sub.local_to_global.len()
        );
    }
}
