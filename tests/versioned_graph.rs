//! Differential test harness for streaming graph updates: an
//! incrementally updated graph must be **bit-identical** to a
//! from-scratch rebuild at every version — structurally (CSR splicing
//! vs `from_edges`), functionally (`Session::infer` logits bits), and
//! in hardware accounting (`SimReport` cycles and energy) — for all
//! four `ModelKind`s on all three backends. Plus the never-stale
//! regressions: a cached-then-mutated graph cannot serve stale GCN `Â`
//! normalization, a stale sampled interning, or a stale full-graph
//! logits cache.

use blockgnn::engine::{BackendKind, Engine, EngineBuilder, EngineError, InferRequest};
use blockgnn::gnn::ModelKind;
use blockgnn::graph::delta::{DeltaError, GraphDelta, VersionedGraph};
use blockgnn::graph::generate::Rng64;
use blockgnn::graph::{Dataset, DatasetSpec};
use blockgnn::nn::Compression;
use proptest::prelude::*;
use std::sync::Arc;

const SEED: u64 = 9;
const HIDDEN: usize = 8;
const BLOCK: usize = 4;

fn small_dataset(seed: u64) -> Dataset {
    let spec = DatasetSpec::new("delta-test", 72, 210, 12, 3);
    Dataset::synthesize(&spec, 0.7, 1.0, seed)
}

fn engine_on(kind: ModelKind, backend: BackendKind, dataset: Arc<Dataset>) -> Engine {
    EngineBuilder::new(kind, backend)
        .hidden_dim(HIDDEN)
        .compression(Compression::BlockCirculant { block_size: BLOCK })
        .seed(SEED)
        .build(dataset)
        .expect("engine builds")
}

/// Client-side mirror of the engine's versioned state: the same deltas
/// applied to a [`VersionedGraph`], with labels extended the way the
/// engine extends them (placeholder class 0 for appended nodes).
struct Mirror {
    versioned: VersionedGraph,
    labels: Vec<usize>,
    template: Dataset,
}

impl Mirror {
    fn of(dataset: &Dataset) -> Self {
        Self {
            versioned: VersionedGraph::new(
                dataset.graph.clone(),
                dataset.features.clone(),
                true,
            )
            .expect("dataset is consistent"),
            labels: dataset.labels.clone(),
            template: dataset.clone(),
        }
    }

    fn apply(&mut self, delta: &GraphDelta) {
        self.versioned.apply(delta).expect("mirror applies the same valid delta");
        self.labels.resize(self.versioned.num_nodes(), 0);
    }

    /// The from-scratch rebuild reference dataset at the current
    /// version: adjacency reconstructed by `from_edges` over the
    /// canonical edge list, never by splicing.
    fn rebuilt_dataset(&self) -> Dataset {
        Dataset {
            graph: self.versioned.rebuild(),
            features: self.versioned.features().clone(),
            labels: self.labels.clone(),
            num_classes: self.template.num_classes,
            masks: self.template.masks.clone(),
            name: self.template.name.clone(),
        }
    }
}

/// A random-but-valid delta: adds random edges, removes a live edge,
/// perturbs a feature row, occasionally appends a node. Deterministic
/// in `rng`.
fn random_delta(versioned: &VersionedGraph, rng: &mut Rng64) -> GraphDelta {
    let n = versioned.num_nodes();
    let mut delta = GraphDelta::new();
    for _ in 0..rng.next_below(3) + 1 {
        delta = delta.add_edge(rng.next_below(n), rng.next_below(n));
    }
    if !versioned.edges().is_empty() && rng.next_below(2) == 0 {
        let (u, v) = versioned.edges()[rng.next_below(versioned.edges().len())];
        delta = delta.remove_edge(u, v);
    }
    if rng.next_below(2) == 0 {
        let row = (0..versioned.features().cols()).map(|_| rng.next_normal()).collect();
        delta = delta.set_feature_row(rng.next_below(n), row);
    }
    if rng.next_below(3) == 0 {
        let row = (0..versioned.features().cols()).map(|_| rng.next_normal()).collect();
        delta = delta.append_node(row);
    }
    delta
}

fn assert_logits_bit_identical(
    got: &blockgnn::linalg::Matrix,
    want: &blockgnn::linalg::Matrix,
    what: &str,
) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape");
    for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits(), "{what}: logits bits differ");
    }
}

/// Applies `steps` random deltas to an engine and asserts bit-identity
/// (logits, `SimReport` cycles, energy) against a fresh engine on the
/// rebuilt dataset, on full-graph and sampled requests.
fn assert_incremental_matches_rebuild(
    kind: ModelKind,
    backend: BackendKind,
    seed: u64,
    steps: usize,
) {
    let dataset = Arc::new(small_dataset(seed));
    let initial_nodes = dataset.num_nodes();
    let mut engine = engine_on(kind, backend, Arc::clone(&dataset));
    let mut mirror = Mirror::of(&dataset);
    // Warm every cache on version 0 so staleness would be caught below.
    {
        let mut session = engine.session();
        session.infer(&InferRequest::all_nodes()).expect("warmup serves");
    }
    let mut rng = Rng64::new(seed ^ 0xFACE);
    for step in 0..steps {
        let delta = random_delta(&mirror.versioned, &mut rng);
        let version = engine.apply_delta(&delta).expect("valid delta applies");
        assert_eq!(version, step as u64 + 1);
        mirror.apply(&delta);
    }
    // Structural identity of the engine's incrementally spliced graph.
    let served = engine.dataset();
    let rebuilt = mirror.rebuilt_dataset();
    assert_eq!(served.graph, rebuilt.graph, "{kind} {backend}: spliced CSR != rebuilt CSR");
    assert_eq!(
        served.features.linf_distance(&rebuilt.features),
        0.0,
        "{kind} {backend}: features diverged"
    );

    let mut reference = engine_on(kind, backend, Arc::new(rebuilt));
    let a = (seed as usize) % initial_nodes;
    let b = (seed as usize >> 7) % initial_nodes;
    let requests =
        [InferRequest::all_nodes(), InferRequest::sampled(vec![a, b, a], 4, 3, seed % 50)];
    let mut session = engine.session();
    let mut ref_session = reference.session();
    for request in &requests {
        let got = session.infer(request).expect("incremental serves");
        let want = ref_session.infer(request).expect("rebuilt serves");
        let what = format!("{kind} {backend} v{} {request:?}", steps);
        assert_logits_bit_identical(&got.logits, &want.logits, &what);
        assert_eq!(got.predictions, want.predictions, "{what}: predictions");
        assert_eq!(got.sim, want.sim, "{what}: SimReport cycles must match the rebuild");
        assert_eq!(
            got.energy_joules.map(f64::to_bits),
            want.energy_joules.map(f64::to_bits),
            "{what}: energy bits"
        );
        assert_eq!(got.graph_version, steps as u64, "{what}: reported version");
    }
}

#[test]
fn every_model_and_backend_survives_a_delta() {
    // Deterministic exhaustive sweep: one delta step on every
    // ModelKind × BackendKind combination (the proptest below samples
    // the same space with random delta sequences).
    for kind in ModelKind::all() {
        for backend in BackendKind::all() {
            assert_incremental_matches_rebuild(kind, backend, 3, 1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    // The acceptance gate: ≥64 random cases of incremental-vs-rebuild
    // bit-identity across all 4 models × 3 backends, with 1–3 chained
    // delta steps per case.
    #[test]
    fn prop_incremental_engine_bit_identical_to_rebuilt(
        combo in 0usize..12,
        seed in 0u64..10_000,
        steps in 1usize..4,
    ) {
        let kind = ModelKind::all()[combo / 3];
        let backend = BackendKind::all()[combo % 3];
        assert_incremental_matches_rebuild(kind, backend, seed, steps);
    }
}

#[test]
fn stale_gcn_normalization_cannot_survive_mutation() {
    // Satellite regression: GCN caches its Â normalization keyed on the
    // graph's instance id, and the engine caches full-graph logits
    // keyed on the version. Serve → mutate → serve must produce the
    // rebuilt answer, not any cached one.
    let dataset = Arc::new(small_dataset(21));
    let mut engine = engine_on(ModelKind::Gcn, BackendKind::Dense, Arc::clone(&dataset));
    let before = {
        let mut session = engine.session();
        let first = session.infer(&InferRequest::all_nodes()).expect("serves");
        assert!(!first.from_cache);
        assert_eq!(first.graph_version, 0);
        let repeat = session.infer(&InferRequest::all_nodes()).expect("serves");
        assert!(repeat.from_cache, "version-keyed cache answers repeats within a version");
        first
    };
    // Rewire heavily: hang 10 fresh edges off node 0 and drop one
    // existing edge, changing many degrees (and thus Â).
    let mut delta = GraphDelta::new();
    for v in 30..40 {
        delta = delta.add_edge(0, v);
    }
    let mut mirror = Mirror::of(&dataset);
    let (u, v) = mirror.versioned.edges()[0];
    delta = delta.remove_edge(u, v);
    engine.apply_delta(&delta).expect("applies");
    mirror.apply(&delta);

    let after = {
        let mut session = engine.session();
        session.infer(&InferRequest::all_nodes()).expect("serves")
    };
    assert!(!after.from_cache, "a bumped version must recompute, never hit the old cache");
    assert_eq!(after.graph_version, 1);
    assert_ne!(
        before.logits.linf_distance(&after.logits),
        0.0,
        "rewiring must actually change the logits for this regression to bite"
    );
    let mut reference =
        engine_on(ModelKind::Gcn, BackendKind::Dense, Arc::new(mirror.rebuilt_dataset()));
    let want = reference.session().infer(&InferRequest::all_nodes()).expect("serves");
    assert_logits_bit_identical(&after.logits, &want.logits, "post-delta full graph");
}

#[test]
fn stale_sampled_interning_cannot_survive_mutation() {
    // Same regression through the sampled path: the interning table and
    // sampled adjacency are rebuilt per request from the *current*
    // version's graph, so the same (nodes, fanouts, seed) request must
    // track the mutated adjacency exactly.
    let dataset = Arc::new(small_dataset(33));
    let mut engine = engine_on(ModelKind::GsPool, BackendKind::Spectral, Arc::clone(&dataset));
    let request = InferRequest::sampled(vec![5, 17, 5], 6, 4, 11);
    let before = engine.session().infer(&request).expect("serves");
    let mut delta = GraphDelta::new();
    for v in 50..60 {
        delta = delta.add_edge(5, v).add_edge(17, v);
    }
    let mut mirror = Mirror::of(&dataset);
    engine.apply_delta(&delta).expect("applies");
    mirror.apply(&delta);
    let after = engine.session().infer(&request).expect("serves");
    assert_ne!(
        before.logits.linf_distance(&after.logits),
        0.0,
        "densifying both targets' neighborhoods must change sampled logits"
    );
    let mut reference =
        engine_on(ModelKind::GsPool, BackendKind::Spectral, Arc::new(mirror.rebuilt_dataset()));
    let want = reference.session().infer(&request).expect("serves");
    assert_logits_bit_identical(&after.logits, &want.logits, "post-delta sampled");
    assert_eq!(after.predictions, want.predictions);
}

#[test]
fn forks_observe_updates_and_share_the_version_keyed_cache() {
    let dataset = Arc::new(small_dataset(40));
    let mut engine = engine_on(ModelKind::Gcn, BackendKind::Dense, Arc::clone(&dataset));
    let mut fork = engine.fork();
    engine.session().infer(&InferRequest::all_nodes()).expect("serves");
    // The fork hits the shared cache on the same version...
    let hit = fork.session().infer(&InferRequest::all_nodes()).expect("serves");
    assert!(hit.from_cache);
    // ...and observes the new version after a delta applied via the
    // *original* engine's handle.
    let handle = engine.graph_handle();
    let version = handle
        .apply_delta(&GraphDelta::new().add_edge(1, 60).add_edge(2, 61))
        .expect("applies");
    assert_eq!(version, 1);
    assert_eq!(fork.version(), 1);
    let fresh = fork.session().infer(&InferRequest::all_nodes()).expect("serves");
    assert!(!fresh.from_cache, "fork must recompute on the new version");
    assert_eq!(fresh.graph_version, 1);
    // And the original engine now hits the fork's freshly keyed entry.
    let hit = engine.session().infer(&InferRequest::all_nodes()).expect("serves");
    assert!(hit.from_cache);
    assert_eq!(hit.graph_version, 1);
}

#[test]
fn rejected_deltas_leave_the_version_and_graph_untouched() {
    let dataset = Arc::new(small_dataset(50));
    let engine = engine_on(ModelKind::Gcn, BackendKind::Dense, Arc::clone(&dataset));
    let n = dataset.num_nodes();
    assert_eq!(
        engine.apply_delta(&GraphDelta::new()),
        Err(EngineError::Delta(DeltaError::EmptyDelta))
    );
    assert_eq!(
        engine.apply_delta(&GraphDelta::new().add_edge(0, n + 5)),
        Err(EngineError::Delta(DeltaError::NodeOutOfRange { node: n + 5, num_nodes: n }))
    );
    assert!(matches!(
        engine.apply_delta(&GraphDelta::new().remove_edge(0, 0)),
        Err(EngineError::Delta(DeltaError::MissingEdge { .. }))
    ));
    assert_eq!(engine.version(), 0, "failed deltas must not bump the version");
    assert_eq!(engine.dataset().graph, dataset.graph, "or touch the adjacency");
}

#[test]
fn residency_budget_rejects_growth_but_not_rewires() {
    // §IV-B/§IV-C re-check: with a zero budget every node append is
    // over budget, while pure rewires (no growth) stay exempt.
    let dataset = Arc::new(small_dataset(60));
    let engine = EngineBuilder::new(ModelKind::Gcn, BackendKind::SimulatedAccel)
        .hidden_dim(HIDDEN)
        .compression(Compression::BlockCirculant { block_size: BLOCK })
        .seed(SEED)
        .graph_budget_bytes(0)
        .build(Arc::clone(&dataset))
        .expect("engine builds");
    let grow = GraphDelta::new().append_node(vec![0.0; dataset.feature_dim()]);
    match engine.apply_delta(&grow) {
        Err(EngineError::GraphBudget { needed, budget }) => {
            assert_eq!(budget, 0);
            assert!(needed > 0);
        }
        other => panic!("expected GraphBudget rejection, got {other:?}"),
    }
    assert_eq!(engine.version(), 0);
    engine
        .apply_delta(&GraphDelta::new().add_edge(0, 1))
        .expect("rewires do not grow the resident set");
    assert_eq!(engine.version(), 1);

    // The simulated accelerator's *default* budget is the ZC706 DRAM —
    // roomy enough that small-graph appends pass.
    let accel = engine_on(ModelKind::Gcn, BackendKind::SimulatedAccel, Arc::clone(&dataset));
    accel
        .apply_delta(&GraphDelta::new().append_node(vec![0.0; dataset.feature_dim()]))
        .expect("default DRAM budget admits small growth");

    // Software backends have no budget unless one is configured.
    let dense = engine_on(ModelKind::Gcn, BackendKind::Dense, Arc::clone(&dataset));
    dense
        .apply_delta(&GraphDelta::new().append_node(vec![0.0; dataset.feature_dim()]))
        .expect("software backends are unbudgeted by default");
}

#[test]
fn parallel_engine_freezes_the_conversion_time_version() {
    let dataset = Arc::new(small_dataset(70));
    let engine = engine_on(ModelKind::Gcn, BackendKind::Dense, Arc::clone(&dataset));
    engine.apply_delta(&GraphDelta::new().add_edge(0, 7)).expect("applies");
    let parallel = engine.into_parallel(2).expect("converts");
    assert_eq!(parallel.version(), 1, "snapshot taken at the current version");
    assert_eq!(
        parallel.apply_delta(&GraphDelta::new().add_edge(0, 8)),
        Err(EngineError::ImmutableGraph),
        "frozen snapshots reject deltas with a typed error"
    );
    let mut parallel = parallel;
    let response =
        parallel.session().infer(&InferRequest::full_graph(vec![0, 7])).expect("serves");
    assert_eq!(response.graph_version, 1, "responses report the frozen version");
}
