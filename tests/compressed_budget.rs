//! The compressed-CSR payoff, end to end: a graph 16× the pubmed-small
//! stand-in must *serve* — correctly, partition-parallel — while its
//! instantaneous device residency (packed weights + compressed
//! adjacency + one streamed part's feature window) stays inside the
//! §IV-B on-chip budget, where the flat u32 adjacency provably would
//! not fit. This is the acceptance gate for the delta-varint layout:
//! not that it is smaller in the abstract, but that it is the thing
//! that makes a ≥10×-pubmed graph servable at all.

use blockgnn::engine::{BackendKind, EngineBuilder, InferRequest};
use blockgnn::gnn::ModelKind;
use blockgnn::graph::{Dataset, DatasetSpec};
use blockgnn::nn::Compression;
use blockgnn::perf::resources::{NODE_FEATURE_BUFFER_BYTES, WEIGHT_BUFFER_BYTES};
use std::sync::Arc;

/// The §IV-B on-chip budget: the Weight Buffer plus the Node-Feature
/// Buffer (the two SRAM structures the paper sizes; the streaming
/// execution model ping-pongs parts through the latter).
const DEVICE_BUDGET_BYTES: usize = WEIGHT_BUFFER_BYTES + NODE_FEATURE_BUFFER_BYTES;

/// 16× the `pubmed-small` stand-in (1 970 nodes / 4 430 edges), same
/// feature and label shape — comfortably past the issue's ≥10× bar.
fn big_dataset() -> Arc<Dataset> {
    let spec = DatasetSpec::new("pubmed-x16", 16 * 1_970, 16 * 4_430, 64, 3);
    Arc::new(Dataset::synthesize(&spec, 0.8, 1.0, 23))
}

#[test]
fn sixteen_x_pubmed_serves_inside_the_device_budget_only_when_compressed() {
    let ds = big_dataset();
    let sequential = EngineBuilder::new(ModelKind::Gcn, BackendKind::Dense)
        .hidden_dim(16)
        .compression(Compression::BlockCirculant { block_size: 16 })
        .seed(5)
        .build(Arc::clone(&ds))
        .expect("engine builds")
        .session()
        .infer(&InferRequest::full_graph(vec![0, 1_970, 19_717]))
        .expect("serves");
    let mut parallel = EngineBuilder::new(ModelKind::Gcn, BackendKind::Dense)
        .hidden_dim(16)
        .compression(Compression::BlockCirculant { block_size: 16 })
        .seed(5)
        .build(Arc::clone(&ds))
        .expect("engine builds")
        .into_parallel(2)
        .expect("workers");

    // The compression win is real on this graph…
    let flat = ds.graph.adjacency_bytes();
    let packed = parallel.compressed_adjacency_bytes();
    assert!(
        packed < flat,
        "delta-varint adjacency ({packed} B) must undercut the flat u32 layout ({flat} B)"
    );

    // …and it is exactly what brings residency inside the budget: with
    // the flat adjacency swapped in, the same accounting blows it.
    let resident = parallel.device_resident_bytes();
    assert!(
        resident <= DEVICE_BUDGET_BYTES,
        "compressed residency ({resident} B) must fit the §IV-B budget \
         ({DEVICE_BUDGET_BYTES} B)"
    );
    let uncompressed_equivalent = resident - packed + flat;
    assert!(
        uncompressed_equivalent > DEVICE_BUDGET_BYTES,
        "the flat layout ({uncompressed_equivalent} B) should NOT fit — otherwise this \
         graph is too small to prove anything"
    );

    // Budget fitting is worthless if the engine cannot actually answer:
    // serve the full graph and match the sequential engine bit-for-bit.
    let request = InferRequest::full_graph(vec![0, 1_970, 19_717]);
    let response = parallel.session().infer(&request).expect("serves");
    assert!(response.parts > 2, "the budget must force a real multi-part plan");
    assert_eq!(response.logits.linf_distance(&sequential.logits), 0.0, "parity");
    assert_eq!(response.predictions, sequential.predictions);
}

#[test]
fn per_part_feature_windows_respect_the_streaming_budget() {
    // The streaming model's invariant: every part's resident window
    // (targets + halo at the backend's scalar width) fits the per-part
    // budget, so the peak term in `device_resident_bytes` is honest.
    let ds = big_dataset();
    let parallel = EngineBuilder::new(ModelKind::Gcn, BackendKind::Dense)
        .hidden_dim(16)
        .compression(Compression::BlockCirculant { block_size: 16 })
        .seed(5)
        .build(Arc::clone(&ds))
        .expect("engine builds")
        .into_parallel(2)
        .expect("workers");
    let width = ds.feature_dim().max(16);
    let bytes = BackendKind::Dense.bytes_per_feature();
    let budget = blockgnn::engine::DEFAULT_PART_BUDGET_BYTES;
    assert!(parallel.parts().len() > 2);
    for part in parallel.parts() {
        assert!(part.feature_bytes(width, bytes) <= budget, "part window exceeds budget");
    }
    assert!(parallel.partition_balance() >= 1.0);
}
