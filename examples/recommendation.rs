//! Web-scale recommendation — the paper's third motivating domain
//! ("recommendation systems", citing PinSage-style GCNs for web-scale
//! recommenders).
//!
//! Recommenders run GNNs over user–item interaction graphs and must
//! answer under tight latency budgets at serving time. This example
//! models an item-item co-interaction graph, trains a compressed G-GCN
//! (the gated aggregator suits signed co-interaction strength), then uses
//! the command-driven accelerator interface the way a serving stack
//! would: weights loaded once at startup, per-request batches streamed
//! through the Cmd FIFO with tags.
//!
//! ```text
//! cargo run --release --example recommendation
//! ```

use blockgnn::accel::system::PostOp;
use blockgnn::accel::{BlockGnnAccelerator, Command, CommandProcessor};
use blockgnn::gnn::sampled::sampled_forward;
use blockgnn::gnn::train::{train_node_classifier, TrainConfig};
use blockgnn::gnn::{build_model, Compression, ModelKind};
use blockgnn::graph::{Dataset, DatasetSpec};
use blockgnn::nn::{CirculantDense, Layer};
use blockgnn::perf::coeffs::HardwareCoeffs;
use blockgnn::perf::params::CirCoreParams;

fn main() {
    // Item graph: 2,000 items, co-interaction edges, 6 category labels
    // (the node-classification proxy for taxonomy-aware retrieval).
    let spec = DatasetSpec::new("item-graph", 2_000, 14_000, 64, 6);
    let dataset = Dataset::synthesize(&spec, 0.75, 1.8, 4242);
    println!("== Item-catalog GNN for recommendation serving ==\n");
    println!(
        "catalog: {} items, {} co-interaction edges, {} categories",
        spec.num_nodes, spec.num_edges, spec.num_classes
    );

    // --- Offline: train the compressed G-GCN.
    let block = 16usize;
    let mut model = build_model(
        ModelKind::Ggcn,
        dataset.feature_dim(),
        32,
        dataset.num_classes,
        Compression::BlockCirculant { block_size: block },
        17,
    )
    .expect("valid model");
    let report = train_node_classifier(
        model.as_mut(),
        &dataset,
        &TrainConfig { epochs: 50, lr: 0.01, patience: 12 },
    );
    println!(
        "trained G-GCN (n = {block}): test accuracy {:.3} in {} epochs",
        report.test_accuracy, report.epochs_run
    );

    // --- Serving-time inference uses sampled neighborhoods (fresh items
    //     arrive constantly; full-graph passes are off the table).
    let request_batch: Vec<usize> = (0..8).map(|i| i * 37 % spec.num_nodes).collect();
    let logits = sampled_forward(
        model.as_mut(),
        &dataset.graph,
        &dataset.features,
        &request_batch,
        10,
        5,
        99,
    );
    println!(
        "\nsampled serving pass for {} requested items -> {} logit rows",
        request_batch.len(),
        logits.rows()
    );

    // --- The accelerator serving loop: load-once, stream per-request
    //     batches through the command FIFO.
    let accel = BlockGnnAccelerator::new(CirCoreParams::base(), HardwareCoeffs::zc706());
    let mut server = CommandProcessor::new(accel);
    let layer = CirculantDense::new(32, dataset.feature_dim(), block, 5).unwrap();
    server.push(Command::LoadWeights { slot: 0, weights: layer.to_block_circulant() });
    server.push(Command::SelectWeights { slot: 0 });
    for (req, &item) in request_batch.iter().enumerate() {
        server.push(Command::ProcessBatch {
            tag: req as u32,
            features: vec![dataset.features.row(item).to_vec()],
            post: PostOp::Relu,
        });
    }
    let completions = server.run().expect("command stream executes");
    println!(
        "accelerator served {} tagged requests; resident weights: {} B of 262144 B WB",
        completions.len(),
        server.resident_weight_bytes(),
    );
    println!(
        "first completion: tag {} -> {}-dim embedding",
        completions[0].tag,
        completions[0].outputs[0].len()
    );
}
