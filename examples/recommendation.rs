//! Web-scale recommendation — the paper's third motivating domain
//! ("recommendation systems", citing PinSage-style GCNs for web-scale
//! recommenders).
//!
//! Recommenders run GNNs over user–item interaction graphs and must
//! answer under tight latency budgets at serving time. This example
//! models an item-item co-interaction graph, trains a compressed G-GCN
//! offline (the gated aggregator suits signed co-interaction strength),
//! then serves it the way a production stack would: the trained model is
//! frozen into an `Engine` on the simulated-accelerator backend —
//! weights prepared once at startup — and per-request micro-batches
//! stream through a `Session`, which returns predictions *and* hardware
//! cost per request while accumulating serving statistics.
//!
//! ```text
//! cargo run --release --example recommendation
//! ```

use blockgnn::engine::{BackendKind, EngineBuilder, InferRequest};
use blockgnn::gnn::train::{train_node_classifier, TrainConfig};
use blockgnn::gnn::{build_model, Compression, ModelKind};
use blockgnn::graph::{Dataset, DatasetSpec};
use std::sync::Arc;

fn main() {
    // Item graph: 2,000 items, co-interaction edges, 6 category labels
    // (the node-classification proxy for taxonomy-aware retrieval).
    let spec = DatasetSpec::new("item-graph", 2_000, 14_000, 64, 6);
    let dataset = Dataset::synthesize(&spec, 0.75, 1.8, 4242);
    println!("== Item-catalog GNN for recommendation serving ==\n");
    println!(
        "catalog: {} items, {} co-interaction edges, {} categories",
        spec.num_nodes, spec.num_edges, spec.num_classes
    );

    // --- Offline: train the compressed G-GCN.
    let block = 16usize;
    let hidden = 32usize;
    let mut model = build_model(
        ModelKind::Ggcn,
        dataset.feature_dim(),
        hidden,
        dataset.num_classes,
        Compression::BlockCirculant { block_size: block },
        17,
    )
    .expect("valid model");
    let report = train_node_classifier(
        model.as_mut(),
        &dataset,
        &TrainConfig { epochs: 50, lr: 0.01, patience: 12 },
    );
    println!(
        "trained G-GCN (n = {block}): test accuracy {:.3} in {} epochs",
        report.test_accuracy, report.epochs_run
    );

    // --- Online: freeze the trained weights into an engine. Building on
    //     the simulated-accelerator backend also validates Weight-Buffer
    //     residency — the §IV-B deployability check — at startup.
    let dataset = Arc::new(dataset);
    let mut engine = EngineBuilder::new(ModelKind::Ggcn, BackendKind::SimulatedAccel)
        .fanouts(10, 5)
        .build_with_model(model, Arc::clone(&dataset))
        .expect("trained weights fit the accelerator");
    println!("\nengine up: {} on {}", engine.model_kind(), engine.backend_kind());

    // --- The serving loop: per-request sampled micro-batches.
    let mut session = engine.session();
    for req_id in 0..8u64 {
        let items: Vec<usize> =
            (0..4).map(|i| (req_id as usize * 251 + i * 37) % 2_000).collect();
        let response = session
            .infer(&InferRequest::sampled(items.clone(), 10, 5, req_id))
            .expect("request serves");
        let sim = response.sim.as_ref().expect("accel backend reports cycles");
        println!(
            "request {req_id}: items {items:?} -> classes {:?}  ({} cycles, {:.1} µs simulated)",
            response.predictions,
            sim.total_cycles,
            sim.seconds * 1e6
        );
    }

    let stats = session.finish();
    println!(
        "\nsession: {} requests, {} items, {:.0} items/sec served, \
         {:.2} ms mean latency, {} simulated cycles, {:.2} mJ",
        stats.requests,
        stats.nodes_served,
        stats.nodes_per_second(),
        stats.mean_latency().as_secs_f64() * 1e3,
        stats.simulated_cycles,
        stats.simulated_energy_joules * 1e3,
    );
}
