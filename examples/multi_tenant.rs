//! Multi-tenant serving: many graphs × many models in one process.
//!
//! Starts a server whose engine becomes the `default` tenant, deploys
//! two more tenants (different datasets, models, and backends) with
//! their own fair-share weights, drives all three over loopback TCP —
//! including a per-tenant graph update — and prints the per-tenant
//! telemetry rollup, then retires one tenant live.
//!
//! Run with `cargo run --release --example multi_tenant`.

use blockgnn::engine::{BackendKind, InferRequest};
use blockgnn::gnn::ModelKind;
use blockgnn::server::{
    Client, GraphDelta, Server, ServerConfig, SubmitOptions, TcpServer, TenantSpec,
};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // 1. The default tenant: whatever engine the server starts around.
    let default_spec =
        TenantSpec::new("default", "cora-small", ModelKind::Gcn, BackendKind::Spectral)
            .hidden_dim(16)
            .seed(5);
    let config = ServerConfig::default()
        .with_workers(2)
        .with_batching(Duration::from_micros(500), 8)
        // Arm the §IV-B/§IV-C residency accountant: deploys must fit.
        .with_device_budget(Some(64 << 20));
    let server = Arc::new(
        Server::start(default_spec.build_engine().expect("engine builds"), config)
            .expect("server starts"),
    );

    // 2. Two more tenants, hot-deployed: a weight-3 GS-Pool on the
    //    Citeseer stand-in and a G-GCN on the Pubmed stand-in. Neither
    //    deploy stalls traffic already in flight.
    for spec in [
        TenantSpec::new("traffic", "citeseer-small", ModelKind::GsPool, BackendKind::Dense)
            .hidden_dim(16)
            .seed(7)
            .weight(3),
        TenantSpec::new("fraud", "pubmed-small", ModelKind::Ggcn, BackendKind::Spectral)
            .hidden_dim(16)
            .seed(9),
    ] {
        let handle = server.deploy(&spec).expect("tenant deploys");
        let info = handle.info();
        println!(
            "deployed {:<8} {} nodes, weight {}, resident {} B (aggregate {} / {} B)",
            info.name,
            info.num_nodes,
            info.weight,
            info.resident_bytes,
            server.resident_bytes(),
            server.device_budget().unwrap_or(0),
        );
    }

    // 3. Drive all three over TCP: unqualified requests hit `default`,
    //    `infer@name` addresses a tenant.
    let front = TcpServer::bind(Arc::clone(&server), "127.0.0.1:0").expect("binds");
    let mut client = Client::connect(front.local_addr()).expect("connects");
    let request = InferRequest::sampled(vec![0, 1, 2], 6, 4, 42);
    for tenant in [None, Some("traffic"), Some("fraud")] {
        let response = client
            .infer_tenant(&request, SubmitOptions::default(), tenant)
            .expect("request serves");
        println!(
            "{:<8} answered {} rows at version {}",
            response.tenant,
            response.logits.rows(),
            response.graph_version,
        );
    }

    // 4. Graphs version independently: update one tenant, the others
    //    keep serving version 0.
    let ack = client
        .update_tenant(&GraphDelta::new().add_edge(0, 9), Some("traffic"))
        .expect("delta applies");
    println!("update landed on {} → version {}", ack.tenant, ack.version);

    // 5. Per-tenant telemetry rides the aggregate snapshot.
    let stats = server.stats();
    for (name, rollup) in &stats.tenants {
        println!(
            "tenant {:<8} w={} completed={} version={} p99={:?}",
            name, rollup.weight, rollup.completed, rollup.graph_version, rollup.p99,
        );
    }

    // 6. Retire one tenant live; its final counters come back and the
    //    rest of the roster is untouched.
    let finals = server.retire("fraud").expect("retires");
    println!(
        "retired fraud: {} completed; roster now {:?}",
        finals.completed,
        server.tenants().iter().map(|t| t.name.clone()).collect::<Vec<_>>(),
    );
    client.shutdown().expect("clean shutdown");
    front.run_until_shutdown();
}
