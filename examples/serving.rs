//! End-to-end serving: engine → concurrent runtime → TCP → client.
//!
//! Builds a GCN engine on the Pubmed stand-in, starts the serving
//! runtime with dynamic micro-batching, exposes it on a loopback TCP
//! port, and drives it with concurrent clients — then prints the
//! telemetry that came out of it.
//!
//! Run with `cargo run --release --example serving`.

use blockgnn::engine::{BackendKind, EngineBuilder, InferRequest};
use blockgnn::gnn::ModelKind;
use blockgnn::graph::datasets;
use blockgnn::nn::Compression;
use blockgnn::server::{Client, Server, ServerConfig, SloClass, SubmitOptions, TcpServer};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // 1. A prepared engine: GCN, block-circulant n = 8, spectral path.
    let dataset = Arc::new(datasets::pubmed_like_small(7));
    let engine = EngineBuilder::new(ModelKind::Gcn, BackendKind::Spectral)
        .hidden_dim(32)
        .compression(Compression::BlockCirculant { block_size: 8 })
        .build(Arc::clone(&dataset))
        .expect("engine builds");

    // 2. The serving runtime: 2 workers, micro-batches of up to 8
    //    requests, shed beyond 64 queued, 250 ms default deadline.
    let config = ServerConfig::default()
        .with_workers(2)
        .with_batching(Duration::from_micros(500), 8)
        .with_max_queue_depth(64)
        .with_default_deadline(Some(Duration::from_millis(250)));
    let server = Arc::new(Server::start(engine, config).expect("server starts"));

    // 3. A TCP front end on an ephemeral loopback port.
    let front = TcpServer::bind(Arc::clone(&server), "127.0.0.1:0").expect("binds");
    let addr = front.local_addr();
    println!("serving {} on {addr}", server.model_kind());

    // 4. Concurrent clients: 4 connections × 8 requests over a small
    //    pool of hot nodes (duplicates coalesce server-side).
    std::thread::scope(|scope| {
        for c in 0..4u64 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                for i in 0..8u64 {
                    let node = ((c + i) * 131 % 1_970) as usize;
                    let request = InferRequest::sampled(vec![node, node + 1], 10, 5, i % 3);
                    // Client 0 rides the gold lane; the rest are silver.
                    let class = if c == 0 { SloClass::Gold } else { SloClass::Silver };
                    let response = client
                        .infer_with(&request, SubmitOptions::class(class))
                        .expect("request serves");
                    if i == 0 {
                        println!(
                            "client {c}: node {node} → class {} \
                             (queue {:?}, compute {:?}, rode a batch of {})",
                            response.predictions[0],
                            response.queue_time,
                            response.compute_time,
                            response.batch_size,
                        );
                    }
                }
            });
        }
    });

    // 5. Telemetry, then a clean shutdown through the protocol itself.
    let mut admin = Client::connect(addr).expect("admin connects");
    println!("server says: {}", admin.stats().expect("stats"));
    admin.shutdown().expect("clean shutdown");
    let stats = front.run_until_shutdown();
    println!(
        "served {} requests at {:.0} q/s · p50 {:?} p99 {:?} · mean batch {:.2} · {} deduped",
        stats.completed,
        stats.qps(),
        stats.serve.p50(),
        stats.serve.p99(),
        stats.mean_batch_size(),
        stats.deduped,
    );
}
