//! Quickstart: one model, three execution substrates, one front door.
//!
//! Builds the same GCN behind each [`BackendKind`], serves identical
//! requests through `Engine`/`Session`, and shows that predictions agree
//! while only the simulated accelerator reports hardware cost. Ends with
//! the classic Table III compression accounting on a raw weight matrix.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use blockgnn::core::{BlockCirculantMatrix, SpectralBlockCirculant};
use blockgnn::engine::{BackendKind, EngineBuilder, InferRequest};
use blockgnn::gnn::ModelKind;
use blockgnn::graph::datasets;
use blockgnn::linalg::Matrix;
use blockgnn::nn::Compression;
use std::sync::Arc;

fn main() {
    println!("== BlockGNN quickstart ==\n");

    // --- 1. One dataset, one request, three backends.
    let dataset = Arc::new(datasets::cora_like_small(7));
    let request = InferRequest::paper_sampled(vec![3, 59, 141, 200], 11);
    println!(
        "dataset: {} ({} nodes, {} features, {} classes)",
        dataset.name,
        dataset.num_nodes(),
        dataset.feature_dim(),
        dataset.num_classes
    );
    println!("request: sampled 2-hop micro-batch of {} nodes\n", request.nodes.len());

    let mut reference: Option<Matrix> = None;
    for backend in BackendKind::all() {
        let mut engine = EngineBuilder::new(ModelKind::Gcn, backend)
            .hidden_dim(16)
            .compression(Compression::BlockCirculant { block_size: 8 })
            .seed(42)
            .build(Arc::clone(&dataset))
            .expect("engine builds");
        let mut session = engine.session();
        let response = session.infer(&request).expect("request serves");
        let drift = match &reference {
            Some(r) => response.logits.linf_distance(r),
            None => {
                reference = Some(response.logits.clone());
                0.0
            }
        };
        let hw = match &response.sim {
            Some(sim) => format!(
                "{} cycles, {:.2} µs, {:.2} µJ",
                sim.total_cycles,
                sim.seconds * 1e6,
                response.energy_joules.unwrap_or(0.0) * 1e6
            ),
            None => "software only".to_string(),
        };
        println!(
            "backend {:>15}: predictions {:?}  max|Δlogit| = {drift:.2e}  [{hw}]",
            backend.name(),
            response.predictions
        );
    }

    // --- 2. The compression arithmetic behind the spectral backend
    //        (Table III: storage and computation reduction per block size).
    let (out_dim, in_dim) = (512usize, 602usize);
    let dense = Matrix::from_fn(out_dim, in_dim, |i, j| {
        (((i * 31 + j * 17) % 97) as f64 / 97.0 - 0.5) * 0.1
    });
    println!("\ncompressing a {out_dim}x{in_dim} layer (the paper's Reddit shape):");
    for n in [16usize, 32, 64, 128] {
        let compressed = BlockCirculantMatrix::from_dense(&dense, n).expect("valid dimensions");
        let stats = compressed.stats();
        let spectral = SpectralBlockCirculant::new(&compressed).expect("power-of-two n");
        let x: Vec<f64> = (0..in_dim).map(|i| (i as f64 * 0.013).sin()).collect();
        let fast = spectral.matvec(&x);
        let reference = compressed.to_dense().matvec(&x);
        let err =
            fast.iter().zip(&reference).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        println!(
            "n = {n:>3}: params {:>7}  SR {:>5.1}x  TCR {:>4.1}x  max|fft - dense| = {err:.2e}",
            stats.compressed_params(),
            stats.storage_reduction(),
            stats.theoretical_computation_reduction(),
        );
    }
}
