//! Quickstart: compress a weight matrix, verify the spectral product,
//! and inspect the Table III compression accounting.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use blockgnn::core::{
    BlockCirculantMatrix, FixedSpectralBlockCirculant, RealSpectralBlockCirculant,
    SpectralBlockCirculant,
};
use blockgnn::linalg::Matrix;

fn main() {
    // A typical GNN layer shape: 512 hidden units, 602 input features
    // (the Reddit configuration of the paper).
    let (out_dim, in_dim) = (512usize, 602usize);
    let dense = Matrix::from_fn(out_dim, in_dim, |i, j| {
        (((i * 31 + j * 17) % 97) as f64 / 97.0 - 0.5) * 0.1
    });

    println!("== BlockGNN quickstart ==\n");
    println!("dense layer: {out_dim}x{in_dim} = {} parameters\n", out_dim * in_dim);

    for n in [16usize, 32, 64, 128] {
        // 1. Compress: Frobenius-optimal projection onto block-circulant.
        let compressed = BlockCirculantMatrix::from_dense(&dense, n)
            .expect("valid dimensions");
        let stats = compressed.stats();

        // 2. Execute: Algorithm 1 (FFT -> spectral MAC -> IFFT).
        let spectral = SpectralBlockCirculant::new(&compressed).expect("power-of-two n");
        let x: Vec<f64> = (0..in_dim).map(|i| (i as f64 * 0.013).sin()).collect();
        let fast = spectral.matvec(&x);
        let reference = compressed.to_dense().matvec(&x);
        let err = fast
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);

        println!(
            "n = {n:>3}: params {:>7}  SR {:>5.1}x  TCR {:>4.1}x  max|fft - dense| = {err:.2e}",
            stats.compressed_params(),
            stats.storage_reduction(),
            stats.theoretical_computation_reduction(),
        );
    }

    // 3. The §V RFFT refinement and the Q16.16 hardware datapath agree too.
    let compressed = BlockCirculantMatrix::from_dense(&dense, 128).expect("valid dims");
    let x: Vec<f64> = (0..in_dim).map(|i| (i as f64 * 0.013).sin()).collect();
    let complex = SpectralBlockCirculant::new(&compressed).unwrap().matvec(&x);
    let real = RealSpectralBlockCirculant::new(&compressed).unwrap().matvec(&x);
    let fixed = FixedSpectralBlockCirculant::new(&compressed).unwrap().matvec(&x);
    let rfft_err = complex
        .iter()
        .zip(&real)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    let fixed_err = complex
        .iter()
        .zip(&fixed)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("\nRFFT path divergence:        {rfft_err:.2e}");
    println!("Q16.16 hardware divergence:  {fixed_err:.2e} (quantization noise)");
}
