//! Smart-traffic edge deployment — the paper's motivating scenario
//! ("deployed edge servers need to predict traffic timely using GNNs").
//!
//! A road-sensor network is a sparse graph; each intersection carries a
//! feature vector of recent readings, and the GNN classifies congestion
//! state. The deployment question is whether a ZC706-class edge board
//! meets the real-time budget. This example:
//!
//! 1. synthesizes a sensor graph and trains a compressed GS-Pool model,
//! 2. searches the optimal CirCore configuration for the deployment,
//! 3. reports latency and energy against the real-time budget.
//!
//! ```text
//! cargo run --release --example traffic_forecast
//! ```

use blockgnn::accel::energy::Measurement;
use blockgnn::accel::{BlockGnnAccelerator, CpuModel};
use blockgnn::gnn::train::{train_node_classifier, TrainConfig};
use blockgnn::gnn::workload::GnnWorkload;
use blockgnn::gnn::{build_model, Compression, ModelKind};
use blockgnn::graph::{Dataset, DatasetSpec};
use blockgnn::perf::coeffs::HardwareCoeffs;
use blockgnn::perf::dse::search_optimal;

fn main() {
    // --- 1. The sensor network: 900 intersections, 3 congestion states.
    let spec = DatasetSpec::new("road-sensors", 900, 3_600, 48, 3);
    let dataset = Dataset::synthesize(&spec, 0.8, 2.5, 2024);
    println!("== Smart-traffic congestion forecasting on the edge ==\n");
    println!(
        "sensor graph: {} intersections, {} links, {}-dim readings, {} classes",
        spec.num_nodes, spec.num_edges, spec.feature_dim, spec.num_classes
    );

    let block = 16usize;
    let mut model = build_model(
        ModelKind::GsPool,
        dataset.feature_dim(),
        32,
        dataset.num_classes,
        Compression::BlockCirculant { block_size: block },
        7,
    )
    .expect("valid model");
    let report = train_node_classifier(
        model.as_mut(),
        &dataset,
        &TrainConfig { epochs: 60, lr: 0.01, patience: 15 },
    );
    println!(
        "trained GS-Pool (n = {block}): test accuracy {:.3} after {} epochs\n",
        report.test_accuracy, report.epochs_run
    );

    // --- 2. Hardware mapping: DSE for this deployment's workload.
    let coeffs = HardwareCoeffs::zc706_measured();
    let workload = GnnWorkload::new(ModelKind::GsPool, &spec, 32, &[10, 5]);
    let tasks: Vec<_> =
        workload.layers.iter().map(BlockGnnAccelerator::layer_task).collect();
    let dse = search_optimal(&tasks, spec.num_nodes, block, &coeffs);
    println!("searched CirCore configuration: {}", dse.params);
    println!("  (explored {} feasible configurations)", dse.explored);

    // --- 3. Real-time budget check.
    let accel = BlockGnnAccelerator::new(dse.params, coeffs.clone());
    let sim = accel.simulate_workload(&workload, block);
    let cpu = CpuModel::xeon_gold_5220();
    let cpu_seconds = cpu.simulate_workload(&workload);
    let budget_s = 0.1; // refresh every 100 ms
    println!("\nfull-network refresh latency:");
    println!(
        "  BlockGNN edge board: {:.2} ms  ({})",
        sim.seconds * 1e3,
        if sim.seconds < budget_s { "meets the 100 ms budget" } else { "MISSES budget" }
    );
    println!("  Xeon server:         {:.2} ms", cpu_seconds * 1e3);

    let edge = Measurement {
        seconds: sim.seconds,
        power_w: coeffs.accel_power_w,
        num_nodes: spec.num_nodes,
    };
    let server =
        Measurement { seconds: cpu_seconds, power_w: cpu.power_w, num_nodes: spec.num_nodes };
    println!(
        "\nenergy per refresh: edge {:.2} mJ vs server {:.2} mJ  ({:.1}x saving)",
        edge.joules() * 1e3,
        server.joules() * 1e3,
        edge.efficiency_ratio_over(&server)
    );
}
