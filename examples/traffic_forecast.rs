//! Smart-traffic edge deployment — the paper's motivating scenario
//! ("deployed edge servers need to predict traffic timely using GNNs").
//!
//! A road-sensor network is a sparse graph; each intersection carries a
//! feature vector of recent readings, and the GNN classifies congestion
//! state. The deployment question is whether a ZC706-class edge board
//! meets the real-time budget. This example:
//!
//! 1. synthesizes a sensor graph and trains a compressed GS-Pool model,
//! 2. searches the optimal CirCore configuration for the deployment,
//! 3. freezes the trained model into an `Engine` on the searched
//!    configuration and serves a full-network refresh, reading latency
//!    and energy off the response.
//!
//! ```text
//! cargo run --release --example traffic_forecast
//! ```

use blockgnn::accel::{BlockGnnAccelerator, CpuModel};
use blockgnn::engine::{BackendKind, EngineBuilder, InferRequest};
use blockgnn::gnn::train::{train_node_classifier, TrainConfig};
use blockgnn::gnn::workload::GnnWorkload;
use blockgnn::gnn::{build_model, Compression, ModelKind};
use blockgnn::graph::{Dataset, DatasetSpec};
use blockgnn::perf::coeffs::HardwareCoeffs;
use blockgnn::perf::dse::search_optimal;
use std::sync::Arc;

fn main() {
    // --- 1. The sensor network: 900 intersections, 3 congestion states.
    let spec = DatasetSpec::new("road-sensors", 900, 3_600, 48, 3);
    let dataset = Dataset::synthesize(&spec, 0.8, 2.5, 2024);
    println!("== Smart-traffic congestion forecasting on the edge ==\n");
    println!(
        "sensor graph: {} intersections, {} links, {}-dim readings, {} classes",
        spec.num_nodes, spec.num_edges, spec.feature_dim, spec.num_classes
    );

    let block = 16usize;
    let hidden = 32usize;
    let mut model = build_model(
        ModelKind::GsPool,
        dataset.feature_dim(),
        hidden,
        dataset.num_classes,
        Compression::BlockCirculant { block_size: block },
        7,
    )
    .expect("valid model");
    let report = train_node_classifier(
        model.as_mut(),
        &dataset,
        &TrainConfig { epochs: 60, lr: 0.01, patience: 15 },
    );
    println!(
        "trained GS-Pool (n = {block}): test accuracy {:.3} after {} epochs\n",
        report.test_accuracy, report.epochs_run
    );

    // --- 2. Hardware mapping: DSE for this deployment's workload.
    let coeffs = HardwareCoeffs::zc706_measured();
    let workload = GnnWorkload::new(ModelKind::GsPool, &spec, hidden, &[10, 5]);
    let tasks: Vec<_> = workload.layers.iter().map(BlockGnnAccelerator::layer_task).collect();
    let dse = search_optimal(&tasks, spec.num_nodes, block, &coeffs);
    println!("searched CirCore configuration: {}", dse.params);
    println!("  (explored {} feasible configurations)", dse.explored);

    // --- 3. Deploy: the trained model behind the searched configuration.
    let dataset = Arc::new(dataset);
    let mut engine = EngineBuilder::new(ModelKind::GsPool, BackendKind::SimulatedAccel)
        .fanouts(10, 5)
        .accelerator(dse.params, coeffs.clone())
        .build_with_model(model, Arc::clone(&dataset))
        .expect("searched configuration accepts the trained weights");
    let mut session = engine.session();

    // A full-network refresh: every intersection classified at once.
    let response = session.infer(&InferRequest::all_nodes()).expect("refresh serves");
    let sim = response.sim.as_ref().expect("accel backend reports cycles");
    let edge_seconds = sim.seconds;
    let edge_joules = response.energy_joules.unwrap_or(0.0);

    let cpu = CpuModel::xeon_gold_5220();
    let cpu_seconds = cpu.simulate_workload(&workload);
    let budget_s = 0.1; // refresh every 100 ms
    println!("\nfull-network refresh latency:");
    println!(
        "  BlockGNN edge board: {:.2} ms  ({})",
        edge_seconds * 1e3,
        if edge_seconds < budget_s { "meets the 100 ms budget" } else { "MISSES budget" }
    );
    println!("  Xeon server:         {:.2} ms", cpu_seconds * 1e3);

    let server_joules = cpu_seconds * cpu.power_w;
    println!(
        "\nenergy per refresh: edge {:.2} mJ vs server {:.2} mJ  ({:.1}x saving)",
        edge_joules * 1e3,
        server_joules * 1e3,
        server_joules / edge_joules
    );
    println!(
        "\nsession stats: {} request(s), {} nodes, {} simulated cycles",
        session.stats().requests,
        session.stats().nodes_served,
        session.stats().simulated_cycles
    );
}
