//! Point-cloud perception with a compressed GAT — the paper's second
//! motivating scenario ("smart vehicles leverage GNNs to detect 3D
//! objects from LiDAR point cloud data in real time").
//!
//! LiDAR frames become k-NN graphs over points; a GAT classifies each
//! point's object category. We synthesize a point-cloud-like graph (local
//! neighborhoods, strong spatial homophily), compare dense vs compressed
//! GAT accuracy, and validate the trained compressed weights on the
//! fixed-point accelerator datapath.
//!
//! ```text
//! cargo run --release --example point_cloud_gat
//! ```

use blockgnn::accel::system::PostOp;
use blockgnn::accel::BlockGnnAccelerator;
use blockgnn::gnn::train::{train_node_classifier, TrainConfig};
use blockgnn::gnn::{build_model, Compression, ModelKind};
use blockgnn::graph::{Dataset, DatasetSpec};
use blockgnn::perf::coeffs::HardwareCoeffs;
use blockgnn::perf::params::CirCoreParams;

fn main() {
    // A LiDAR-frame-sized graph: dense local connectivity (k-NN ≈ 12),
    // 5 object classes (car, pedestrian, cyclist, pole, ground).
    let spec = DatasetSpec::new("lidar-frame", 1_200, 7_200, 64, 5);
    let dataset = Dataset::synthesize(&spec, 0.85, 2.8, 99);
    println!("== Point-cloud segmentation with compressed GAT ==\n");
    println!(
        "frame graph: {} points, k-NN edges {}, {} classes",
        spec.num_nodes, spec.num_edges, spec.num_classes
    );

    let cfg = TrainConfig { epochs: 60, lr: 0.01, patience: 15 };
    let mut results = Vec::new();
    for (label, compression) in [
        ("dense   ", Compression::Dense),
        ("n = 8   ", Compression::BlockCirculant { block_size: 8 }),
        ("n = 16  ", Compression::BlockCirculant { block_size: 16 }),
    ] {
        let mut model = build_model(
            ModelKind::Gat,
            dataset.feature_dim(),
            32,
            dataset.num_classes,
            compression,
            11,
        )
        .expect("valid model");
        let report = train_node_classifier(model.as_mut(), &dataset, &cfg);
        println!("GAT {label}: test accuracy {:.3}", report.test_accuracy);
        results.push(report.test_accuracy);
    }
    println!(
        "\ncompression cost at n=16: {:+.3} accuracy (paper reports <1.5% drops at n<=128)",
        results[2] - results[0]
    );

    // Hardware validation: run one compressed layer's weights through the
    // Q16.16 CirCore datapath and compare with the float reference.
    let w = blockgnn::core::BlockCirculantMatrix::random(64, 64, 16, 3).unwrap();
    let mut accel =
        BlockGnnAccelerator::new(CirCoreParams::base(), HardwareCoeffs::zc706());
    accel.load_weights(&w).expect("weights fit the 256 KB buffer");
    let batch: Vec<Vec<f64>> = (0..8)
        .map(|b| (0..64).map(|i| ((b * 64 + i) as f64 * 0.03).sin() * 0.5).collect())
        .collect();
    let hw = accel.process_batch(&batch, PostOp::Elu).expect("batch fits the NFB");
    let max_err = batch
        .iter()
        .zip(&hw)
        .map(|(x, y)| {
            let mut reference = w.matvec_direct(x);
            for v in &mut reference {
                if *v < 0.0 {
                    *v = v.exp() - 1.0;
                }
            }
            reference
                .iter()
                .zip(y)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max)
        })
        .fold(0.0f64, f64::max);
    println!(
        "\nfixed-point accelerator vs float reference: max divergence {max_err:.2e} \
         over {} cycles",
        accel.functional_cycles()
    );
}
