//! Point-cloud perception with a compressed GAT — the paper's second
//! motivating scenario ("smart vehicles leverage GNNs to detect 3D
//! objects from LiDAR point cloud data in real time").
//!
//! LiDAR frames become k-NN graphs over points; a GAT classifies each
//! point's object category. We synthesize a point-cloud-like graph (local
//! neighborhoods, strong spatial homophily), compare dense vs compressed
//! GAT accuracy, then deploy the trained compressed model through the
//! unified `Engine` API on the simulated accelerator: per-frame requests
//! come back with predictions, cycle counts, and an energy estimate —
//! the numbers a real-time perception budget is judged against.
//!
//! ```text
//! cargo run --release --example point_cloud_gat
//! ```

use blockgnn::engine::{BackendKind, EngineBuilder, InferRequest};
use blockgnn::gnn::train::{train_node_classifier, TrainConfig};
use blockgnn::gnn::{build_model, Compression, GnnModel, ModelKind};
use blockgnn::graph::{Dataset, DatasetSpec};
use std::sync::Arc;

fn main() {
    // A LiDAR-frame-sized graph: dense local connectivity (k-NN ≈ 12),
    // 5 object classes (car, pedestrian, cyclist, pole, ground).
    let spec = DatasetSpec::new("lidar-frame", 1_200, 7_200, 64, 5);
    let dataset = Dataset::synthesize(&spec, 0.85, 2.8, 99);
    println!("== Point-cloud segmentation with compressed GAT ==\n");
    println!(
        "frame graph: {} points, k-NN edges {}, {} classes",
        spec.num_nodes, spec.num_edges, spec.num_classes
    );

    let cfg = TrainConfig { epochs: 60, lr: 0.01, patience: 15 };
    let mut results = Vec::new();
    let mut deployable: Option<Box<dyn GnnModel>> = None;
    for (label, compression) in [
        ("dense   ", Compression::Dense),
        ("n = 8   ", Compression::BlockCirculant { block_size: 8 }),
        ("n = 16  ", Compression::BlockCirculant { block_size: 16 }),
    ] {
        let mut model = build_model(
            ModelKind::Gat,
            dataset.feature_dim(),
            32,
            dataset.num_classes,
            compression,
            11,
        )
        .expect("valid model");
        let report = train_node_classifier(model.as_mut(), &dataset, &cfg);
        println!("GAT {label}: test accuracy {:.3}", report.test_accuracy);
        results.push(report.test_accuracy);
        deployable = Some(model); // keep the last (n = 16) model
    }
    println!(
        "\ncompression cost at n=16: {:+.3} accuracy (paper reports <1.5% drops at n<=128)",
        results[2] - results[0]
    );

    // --- Deployment: the trained n=16 model behind the accelerator
    //     backend. One engine, per-frame sampled requests.
    let dataset = Arc::new(dataset);
    let mut engine = EngineBuilder::new(ModelKind::Gat, BackendKind::SimulatedAccel)
        .fanouts(12, 6)
        .build_with_model(deployable.expect("three models trained"), Arc::clone(&dataset))
        .expect("compressed GAT fits the 256 KB weight buffer");

    let mut session = engine.session();
    let budget_s = 0.05; // 20 Hz LiDAR -> 50 ms per frame
    for frame in 0..3u64 {
        let points: Vec<usize> =
            (0..6).map(|i| (frame as usize * 397 + i * 83) % 1_200).collect();
        let response = session
            .infer(&InferRequest::sampled(points, 12, 6, frame))
            .expect("frame request serves");
        let sim = response.sim.as_ref().expect("accel backend reports cycles");
        println!(
            "frame {frame}: classes {:?}  {:.2} ms simulated ({})",
            response.predictions,
            sim.seconds * 1e3,
            if sim.seconds < budget_s { "meets 50 ms budget" } else { "MISSES budget" }
        );
    }
    let stats = session.finish();
    println!(
        "\nserved {} points across {} frames: {:.2} mJ simulated energy total",
        stats.nodes_served,
        stats.requests,
        stats.simulated_energy_joules * 1e3
    );
}
