//! Hardware design-space exploration for a custom GNN deployment —
//! the §III-D tool as a standalone workflow.
//!
//! Give the explorer your model/dataset shape and it returns the optimal
//! CirCore parameters under the ZC706's 900-DSP budget, the expected
//! latency, and the full FPGA resource picture. The sweep below varies
//! the block size to expose the accuracy/latency/resource trade-off the
//! paper navigates.
//!
//! ```text
//! cargo run --release --example hardware_dse
//! ```

use blockgnn::accel::BlockGnnAccelerator;
use blockgnn::gnn::workload::GnnWorkload;
use blockgnn::gnn::ModelKind;
use blockgnn::graph::datasets;
use blockgnn::perf::coeffs::HardwareCoeffs;
use blockgnn::perf::dse::search_optimal;
use blockgnn::perf::resources::{FpgaCapacity, ResourceEstimate};

fn main() {
    let coeffs = HardwareCoeffs::zc706();
    let cap = FpgaCapacity::zc706();
    let spec = datasets::pubmed_like();
    let model = ModelKind::GsPool;
    println!("== CirCore design-space exploration ==\n");
    println!(
        "task: {model} on {} ({} nodes, {} features), hidden 512, S = 25/10\n",
        spec.name, spec.num_nodes, spec.feature_dim
    );
    println!("block |   optimal configuration   | latency  | DSP    | BRAM   | configs");
    println!("------+----------------------------+----------+--------+--------+--------");
    for n in [16usize, 32, 64, 128] {
        let workload = GnnWorkload::new(model, &spec, 512, &[25, 10]);
        let tasks: Vec<_> =
            workload.layers.iter().map(BlockGnnAccelerator::layer_task).collect();
        let dse = search_optimal(&tasks, spec.num_nodes, n, &coeffs);
        let est = ResourceEstimate::for_config(&dse.params, n, spec.feature_dim, &coeffs);
        let (bram, dsp, _, _) = est.utilization(&cap);
        let accel = BlockGnnAccelerator::new(dse.params, coeffs.clone());
        let sim = accel.simulate_workload(&workload, n);
        println!(
            "{n:>5} | {:<26} | {:>6.1} ms | {:>5.1}% | {:>5.1}% | {}",
            dse.params.to_string(),
            sim.seconds * 1e3,
            dsp * 100.0,
            bram * 100.0,
            dse.explored
        );
    }
    println!(
        "\nLarger blocks shrink latency (TCR = n/log2 n) until padding and \
         FFT-frame overheads flatten the curve; Table III showed the accuracy \
         cost stays below ~1.5% through n = 128."
    );
}
