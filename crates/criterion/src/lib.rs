//! Offline stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! This container builds with no registry access, so the real criterion
//! crate cannot be fetched. This shim implements the subset of the API the
//! in-repo benches use — `Criterion`, `BenchmarkGroup`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros —
//! with a simple wall-clock timer: each benchmark routine is warmed up
//! once and then timed for `sample_size` iterations, reporting min/mean.
//! Numbers are indicative, not statistically rigorous; swap the manifest
//! back to the real crate when a registry is available (the bench sources
//! need no changes).
//!
//! # Example
//!
//! ```
//! use criterion::Criterion;
//!
//! let mut c = Criterion::default().sample_size(3);
//! let mut group = c.benchmark_group("demo");
//! group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
//! group.finish();
//! ```

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver (shim).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim has a fixed one-iteration
    /// warm-up.
    #[must_use]
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; the shim times exactly
    /// `sample_size` iterations.
    #[must_use]
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }
}

/// A group of related benchmarks sharing a name prefix (shim).
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally `function/parameter` shaped.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{function_name}/{parameter}"))
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Conversion into a [`BenchmarkId`], accepted wherever criterion accepts
/// `IntoBenchmarkId`.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Timer handle passed to benchmark routines.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `sample_size` measured
    /// calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let _warmup = routine();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher { sample_size, samples: Vec::new() };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<48} (no samples: routine never called iter)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    println!(
        "{label:<48} min {:>12} mean {:>12} ({} samples)",
        format_duration(min),
        format_duration(mean),
        bencher.samples.len()
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro. CLI
/// arguments (e.g. cargo's `--bench`) are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| calls += 1);
        });
        // one warm-up + three samples
        assert_eq!(calls, 4);
    }

    #[test]
    fn group_ids_compose() {
        assert_eq!(BenchmarkId::new("f", 8).0, "f/8");
        assert_eq!(BenchmarkId::from_parameter("dense").0, "dense");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut ran = false;
        group.bench_with_input(BenchmarkId::from_parameter(1), &1, |b, &_n| {
            b.iter(|| ran = true);
        });
        group.finish();
        assert!(ran);
    }
}
