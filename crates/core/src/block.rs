//! A single circulant block.
//!
//! Following the paper's Figure 2, a block `B` is described by its first
//! row `(w¹, w², …, wⁿ)`; every subsequent row is the row above rotated
//! one position to the right:
//!
//! ```text
//! ⎡ w1  w2  w3 … wn  ⎤
//! ⎢ wn  w1  w2 … wn-1⎥
//! ⎢ wn-1 wn w1 … wn-2⎥
//! ⎣ …                ⎦
//! ```
//!
//! i.e. `B[i][j] = w[(j − i) mod n]`. Internally we store the equivalent
//! *kernel* (first column) `c[i] = B[i][0] = w[(−i) mod n]`, because with
//! the kernel the product `B·h` is literally the circular convolution
//! `c ⊛ h`, and `FFT(c) ∘ FFT(h)` is its spectrum. Both views are exposed.

use crate::error::CirculantError;
use blockgnn_linalg::Matrix;

/// One `n × n` circulant block, stored as its length-`n` kernel
/// (first column).
///
/// ```
/// use blockgnn_core::CirculantBlock;
/// let b = CirculantBlock::from_first_row(vec![1.0, 2.0, 3.0]);
/// let dense = b.to_dense();
/// // second row is the first rotated right by one
/// assert_eq!(dense.row(1), &[3.0, 1.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CirculantBlock {
    kernel: Vec<f64>,
}

impl CirculantBlock {
    /// Builds a block from its kernel (first **column**).
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is empty.
    #[must_use]
    pub fn from_kernel(kernel: Vec<f64>) -> Self {
        assert!(!kernel.is_empty(), "circulant kernel must be non-empty");
        Self { kernel }
    }

    /// Builds a block from its first **row**, the representation used in
    /// the paper's figures. The first row `w` maps to the kernel via
    /// `c[i] = w[(n − i) mod n]`.
    ///
    /// # Panics
    ///
    /// Panics if `first_row` is empty.
    #[must_use]
    pub fn from_first_row(first_row: Vec<f64>) -> Self {
        assert!(!first_row.is_empty(), "circulant first row must be non-empty");
        let n = first_row.len();
        let kernel = (0..n).map(|i| first_row[(n - i) % n]).collect();
        Self { kernel }
    }

    /// Block size `n`.
    #[must_use]
    pub fn size(&self) -> usize {
        self.kernel.len()
    }

    /// The kernel (first column).
    #[must_use]
    pub fn kernel(&self) -> &[f64] {
        &self.kernel
    }

    /// The first row `w[j] = c[(n − j) mod n]`.
    #[must_use]
    pub fn first_row(&self) -> Vec<f64> {
        let n = self.kernel.len();
        (0..n).map(|j| self.kernel[(n - j) % n]).collect()
    }

    /// Entry `B[i][j] = c[(i − j) mod n]` without materializing the block.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[must_use]
    pub fn entry(&self, i: usize, j: usize) -> f64 {
        let n = self.kernel.len();
        assert!(i < n && j < n, "circulant entry ({i},{j}) out of bounds for n={n}");
        self.kernel[(i + n - j) % n]
    }

    /// Expands to a dense `n × n` matrix.
    #[must_use]
    pub fn to_dense(&self) -> Matrix {
        let n = self.kernel.len();
        Matrix::from_fn(n, n, |i, j| self.kernel[(i + n - j) % n])
    }

    /// Direct O(n²) product `B·h` — the spatial-domain reference against
    /// which the FFT paths are validated.
    ///
    /// # Errors
    ///
    /// Returns [`CirculantError::DimensionMismatch`] if `h.len() != n`.
    pub fn matvec(&self, h: &[f64]) -> Result<Vec<f64>, CirculantError> {
        let n = self.kernel.len();
        if h.len() != n {
            return Err(CirculantError::DimensionMismatch { expected: n, got: h.len() });
        }
        let mut out = vec![0.0; n];
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (j, &hj) in h.iter().enumerate() {
                acc += self.kernel[(i + n - j) % n] * hj;
            }
            *o = acc;
        }
        Ok(out)
    }

    /// The transposed block `Bᵀ`, which is itself circulant with the
    /// reversed kernel `cᵀ[d] = c[(n − d) mod n]`.
    ///
    /// Backpropagation through a circulant layer multiplies by `Bᵀ`, so
    /// the transpose stays in O(n) storage during training too.
    #[must_use]
    pub fn transpose(&self) -> Self {
        let n = self.kernel.len();
        let kernel = (0..n).map(|d| self.kernel[(n - d) % n]).collect();
        Self { kernel }
    }

    /// Gradient of a scalar loss with respect to the kernel, given the
    /// gradient with respect to the dense block entries.
    ///
    /// Each kernel entry is shared by the `n` entries of its wrap-around
    /// diagonal, so its gradient is the **sum** (not mean) along that
    /// diagonal: `∂L/∂c[d] = Σ_{(i−j) mod n = d} ∂L/∂B[i][j]`.
    ///
    /// # Errors
    ///
    /// Returns [`CirculantError::BadKernelLayout`] if `dense_grad` is not
    /// square or is empty.
    pub fn gradient_from_dense(dense_grad: &Matrix) -> Result<Vec<f64>, CirculantError> {
        let (rows, cols) = dense_grad.shape();
        if rows == 0 || rows != cols {
            return Err(CirculantError::BadKernelLayout {
                what: format!(
                    "kernel gradient needs a square non-empty matrix, got {rows}x{cols}"
                ),
            });
        }
        let n = rows;
        let mut grad = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                grad[(i + n - j) % n] += dense_grad[(i, j)];
            }
        }
        Ok(grad)
    }

    /// Frobenius-optimal projection of an arbitrary square matrix onto the
    /// circulant subspace: each kernel entry is the mean of the matrix
    /// entries along its wrap-around diagonal,
    /// `c[d] = mean{ A[i][j] : (i − j) mod n = d }`.
    ///
    /// This is the projection used during compression-aware training —
    /// gradients of a dense layer are projected back onto the circulant
    /// parameters (CirCNN-style), and it is also how a pre-trained dense
    /// weight matrix is converted to block-circulant form.
    ///
    /// # Errors
    ///
    /// Returns [`CirculantError::BadKernelLayout`] if `a` is not square or
    /// is empty.
    pub fn project_from_dense(a: &Matrix) -> Result<Self, CirculantError> {
        let (rows, cols) = a.shape();
        if rows == 0 || rows != cols {
            return Err(CirculantError::BadKernelLayout {
                what: format!("projection needs a square non-empty matrix, got {rows}x{cols}"),
            });
        }
        let n = rows;
        let mut kernel = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                kernel[(i + n - j) % n] += a[(i, j)];
            }
        }
        for k in &mut kernel {
            *k /= n as f64;
        }
        Ok(Self { kernel })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockgnn_linalg::vector::linf_distance;
    use proptest::prelude::*;

    #[test]
    fn first_row_kernel_round_trip() {
        let w = vec![1.0, 2.0, 3.0, 4.0];
        let b = CirculantBlock::from_first_row(w.clone());
        assert_eq!(b.first_row(), w);
        // kernel is reversed-rotated first row: c = [w1, w4, w3, w2]
        assert_eq!(b.kernel(), &[1.0, 4.0, 3.0, 2.0]);
    }

    #[test]
    fn dense_expansion_matches_paper_figure() {
        // Figure 2: rows are successive right-rotations of the first row.
        let b = CirculantBlock::from_first_row(vec![1.0, 2.0, 3.0, 4.0]);
        let d = b.to_dense();
        assert_eq!(d.row(0), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.row(1), &[4.0, 1.0, 2.0, 3.0]);
        assert_eq!(d.row(2), &[3.0, 4.0, 1.0, 2.0]);
        assert_eq!(d.row(3), &[2.0, 3.0, 4.0, 1.0]);
    }

    #[test]
    fn entry_matches_dense() {
        let b = CirculantBlock::from_kernel(vec![5.0, -1.0, 2.0]);
        let d = b.to_dense();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(b.entry(i, j), d[(i, j)]);
            }
        }
    }

    #[test]
    fn matvec_matches_dense_matvec() {
        let b = CirculantBlock::from_first_row(vec![0.5, -1.0, 2.0, 0.0, 1.5, 3.0, -0.5, 1.0]);
        let h: Vec<f64> = (0..8).map(|i| (i as f64 - 3.0) * 0.7).collect();
        let fast = b.matvec(&h).unwrap();
        let dense = b.to_dense().matvec(&h);
        assert!(linf_distance(&fast, &dense) < 1e-12);
    }

    #[test]
    fn matvec_rejects_wrong_length() {
        let b = CirculantBlock::from_kernel(vec![1.0; 4]);
        assert_eq!(
            b.matvec(&[1.0; 3]).unwrap_err(),
            CirculantError::DimensionMismatch { expected: 4, got: 3 }
        );
    }

    #[test]
    fn projection_of_circulant_is_identity() {
        let b = CirculantBlock::from_kernel(vec![1.0, -2.0, 0.5, 3.0]);
        let p = CirculantBlock::project_from_dense(&b.to_dense()).unwrap();
        assert!(linf_distance(p.kernel(), b.kernel()) < 1e-12);
    }

    #[test]
    fn projection_rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(CirculantBlock::project_from_dense(&a).is_err());
        assert!(CirculantBlock::project_from_dense(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn projection_averages_diagonals() {
        // A = [[1, 0], [0, 3]]: main diagonal {1,3} -> mean 2; off {0,0} -> 0.
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 3.0]]).unwrap();
        let p = CirculantBlock::project_from_dense(&a).unwrap();
        assert_eq!(p.kernel(), &[2.0, 0.0]);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let b = CirculantBlock::from_kernel(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(b.transpose().to_dense(), b.to_dense().transpose());
        // transpose is an involution
        assert_eq!(b.transpose().transpose(), b);
    }

    #[test]
    fn gradient_sums_diagonals() {
        // grad = [[1, 0], [0, 3]]: diagonal d=0 holds {1,3} -> 4.
        let g = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 3.0]]).unwrap();
        assert_eq!(CirculantBlock::gradient_from_dense(&g).unwrap(), vec![4.0, 0.0]);
        assert!(CirculantBlock::gradient_from_dense(&Matrix::zeros(2, 3)).is_err());
    }

    proptest! {
        #[test]
        fn prop_projection_is_frobenius_optimal(
            vals in proptest::collection::vec(-3.0f64..3.0, 16),
            perturb in proptest::collection::vec(-1.0f64..1.0, 4),
        ) {
            // The projection must beat any perturbed circulant in
            // Frobenius distance to the original matrix.
            let a = Matrix::from_flat(4, 4, vals).unwrap();
            let proj = CirculantBlock::project_from_dense(&a).unwrap();
            let base_err = (&proj.to_dense() - &a).frobenius_norm();
            let mut k = proj.kernel().to_vec();
            for (ki, pi) in k.iter_mut().zip(&perturb) {
                *ki += pi;
            }
            let other = CirculantBlock::from_kernel(k);
            let other_err = (&other.to_dense() - &a).frobenius_norm();
            prop_assert!(base_err <= other_err + 1e-9);
        }

        #[test]
        fn prop_matvec_linear(
            kernel in proptest::collection::vec(-2.0f64..2.0, 8),
            x in proptest::collection::vec(-2.0f64..2.0, 8),
            y in proptest::collection::vec(-2.0f64..2.0, 8),
            alpha in -2.0f64..2.0,
        ) {
            let b = CirculantBlock::from_kernel(kernel);
            let combo: Vec<f64> = x.iter().zip(&y).map(|(a, c)| alpha * a + c).collect();
            let lhs = b.matvec(&combo).unwrap();
            let bx = b.matvec(&x).unwrap();
            let by = b.matvec(&y).unwrap();
            for i in 0..8 {
                prop_assert!((lhs[i] - (alpha * bx[i] + by[i])).abs() < 1e-9);
            }
        }
    }
}
