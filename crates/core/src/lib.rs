//! Block-circulant weight matrices — the algorithmic core of BlockGNN
//! (Zhou et al., DAC 2021).
//!
//! A weight matrix `W ∈ ℝ^{N×M}` is partitioned into `p × q` blocks of
//! size `n × n` (`p = ⌈N/n⌉`, `q = ⌈M/n⌉`, zero-padding the remainder).
//! Each block is *circulant*: fully determined by one length-`n` vector,
//! every further row being a rotation of the first. Storage drops from
//! O(n²) to O(n) per block and, because a circulant times a vector is a
//! circular convolution, each block product collapses to
//! `IFFT(FFT(w) ∘ FFT(h))` — O(n log n) work.
//!
//! The crate provides the full tool-chain around that idea:
//!
//! * [`CirculantBlock`] — a single circulant block, its dense expansion,
//!   and the Frobenius-optimal projection of an arbitrary block onto the
//!   circulant subspace (used by compression-aware training).
//! * [`BlockCirculantMatrix`] — the partitioned matrix with padding rules,
//!   dense round-trips, and a direct (spatial-domain) product.
//! * [`SpectralBlockCirculant`] — the paper's **Algorithm 1**: weights
//!   pre-transformed to the spectral domain (Ŵ), per-block element-wise
//!   MACs, and accumulation *in the spectral domain* so only `p` IFFTs are
//!   needed instead of `p·q`.
//! * [`RealSpectralBlockCirculant`] — the §V RFFT refinement that keeps
//!   only the non-redundant half-spectrum.
//! * [`FixedSpectralBlockCirculant`] — the same pipeline through Q16.16
//!   fixed-point FFTs, bit-matching the FPGA datapath.
//! * [`CompressionStats`] — the Table III storage-reduction (SR = n) and
//!   theoretical-computation-reduction (TCR = n/log₂n) accounting.
//!
//! # Example
//!
//! ```
//! use blockgnn_core::{BlockCirculantMatrix, SpectralBlockCirculant};
//!
//! // 8 logical rows, 6 logical cols, block size 4: the constructor
//! // zero-pads to a 2×2 grid of 4×4 circulant blocks.
//! let bcm = BlockCirculantMatrix::random(8, 6, 4, 42).unwrap();
//! let spectral = SpectralBlockCirculant::new(&bcm).unwrap();
//! let x: Vec<f64> = (0..6).map(|i| i as f64 * 0.1).collect();
//! let direct = bcm.matvec_direct(&x);
//! let fast = spectral.matvec(&x);
//! for (a, b) in direct.iter().zip(&fast) {
//!     assert!((a - b).abs() < 1e-9);
//! }
//! ```

#![deny(missing_docs)]

pub mod block;
pub mod error;
pub mod fixed;
pub mod matrix;
pub mod spectral;
pub mod stats;

pub use block::CirculantBlock;
pub use error::CirculantError;
pub use fixed::{FixedSpectralBlockCirculant, FixedSpectralScratch};
pub use matrix::BlockCirculantMatrix;
pub use spectral::{RealSpectralBlockCirculant, SpectralBlockCirculant, SpectralScratch};
pub use stats::CompressionStats;
