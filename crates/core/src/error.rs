//! Error type shared by the block-circulant constructors and kernels.

use std::error::Error;
use std::fmt;

/// Errors raised when constructing or applying block-circulant matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CirculantError {
    /// The block size is invalid (zero or, for spectral paths, not a
    /// power of two).
    BadBlockSize {
        /// Requested block size.
        n: usize,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// A dimension (rows/cols) was zero.
    EmptyDimension,
    /// An input buffer did not match the expected logical dimension.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Supplied length.
        got: usize,
    },
    /// The number or length of supplied first-row vectors was wrong.
    BadKernelLayout {
        /// Human-readable description.
        what: String,
    },
}

impl fmt::Display for CirculantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CirculantError::BadBlockSize { n, reason } => {
                write!(f, "invalid block size {n}: {reason}")
            }
            CirculantError::EmptyDimension => write!(f, "matrix dimensions must be non-zero"),
            CirculantError::DimensionMismatch { expected, got } => {
                write!(f, "expected a vector of length {expected}, got {got}")
            }
            CirculantError::BadKernelLayout { what } => {
                write!(f, "bad kernel layout: {what}")
            }
        }
    }
}

impl Error for CirculantError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CirculantError::BadBlockSize { n: 12, reason: "not a power of two" };
        assert!(e.to_string().contains("12"));
        assert!(CirculantError::EmptyDimension.to_string().contains("non-zero"));
        let e = CirculantError::DimensionMismatch { expected: 8, got: 4 };
        assert!(e.to_string().contains('8') && e.to_string().contains('4'));
    }
}
