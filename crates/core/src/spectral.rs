//! Spectral-domain execution of block-circulant products — Algorithm 1.
//!
//! The trained weights are transformed **once** into the spectral domain
//! (the paper's pre-computed `Ŵ`); at inference time only the feature
//! sub-vectors are FFT'd on the fly. Because the IFFT is linear,
//! `Σ_j IFFT(Ŵ_ij ∘ X_j) = IFFT(Σ_j Ŵ_ij ∘ X_j)`, so the per-row
//! accumulation happens in the spectral domain and only `p` IFFTs are
//! required instead of `p·q` — the optimization the paper highlights over
//! CirCNN’s original flow (its reference \[19\] made the same observation).
//!
//! [`SpectralBlockCirculant`] implements that optimized Algorithm 1 with
//! **full** complex spectra; it is kept as the explicit baseline the
//! benchmarks and the CI perf guard compare against.
//! [`RealSpectralBlockCirculant`] is the production path: the §V RFFT
//! refinement with **packed Hermitian half-spectra**
//! ([`blockgnn_fft::HalfSpectrum`], `n/2 + 1` bins), halving both the
//! resident spectral bytes and the element-wise MAC work, plus a
//! reusable [`SpectralScratch`] workspace so the steady-state serving
//! loop performs zero heap allocations per row.

use crate::error::CirculantError;
use crate::matrix::BlockCirculantMatrix;
use blockgnn_fft::{half_spectrum_bins, Complex, FftPlan, HalfSpectrum, RealFftPlan};

/// Reusable workspace for half-spectrum circulant products: the padded
/// tail block, the per-chunk input spectra, the spectral accumulator,
/// and the IRFFT output block. Allocated once (lazily, on first use)
/// and reused across rows, layers, and requests — the owner decides the
/// sharing scope (each `CirculantDense` layer and each
/// [`RealSpectralBlockCirculant`] caller holds its own, so forked
/// serving replicas never contend).
///
/// `Clone` intentionally produces an **empty** scratch: cloning a
/// prepared layer (how the serving engine forks per-worker replicas)
/// must not copy request-scoped buffers, and the clone re-grows its own
/// workspace on first use.
#[derive(Debug, Default)]
pub struct SpectralScratch {
    /// One block of padded input for the trailing partial chunk.
    pad: Vec<f64>,
    /// Flat per-chunk input half-spectra, `chunks × bins`.
    input_spectra: Vec<Complex<f64>>,
    /// Spectral accumulator for one grid row (`bins` entries).
    acc: Vec<Complex<f64>>,
    /// IRFFT output block (`n` reals).
    time: Vec<f64>,
    /// Geometry the buffers are currently sized for.
    block_size: usize,
    chunks: usize,
}

impl Clone for SpectralScratch {
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl SpectralScratch {
    /// A fresh, empty scratch; buffers grow on first
    /// [`SpectralScratch::load_row`].
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes the buffers for `chunks` blocks of `block_size` (no-op when
    /// already sized; capacity is retained across calls).
    fn ensure(&mut self, block_size: usize, chunks: usize) {
        if self.block_size == block_size && self.chunks == chunks {
            return;
        }
        let bins = half_spectrum_bins(block_size);
        self.pad.resize(block_size, 0.0);
        self.input_spectra.resize(chunks * bins, Complex::zero());
        self.acc.resize(bins, Complex::zero());
        self.time.resize(block_size, 0.0);
        self.block_size = block_size;
        self.chunks = chunks;
    }

    /// Transforms one input row into `chunks` half-spectra held in the
    /// scratch (zero-padding the trailing partial chunk). Aligned chunks
    /// are transformed straight out of `row` — no copy; only a trailing
    /// remainder goes through the pad buffer.
    ///
    /// # Panics
    ///
    /// Panics if `row` is longer than `chunks * plan.len()`.
    pub fn load_row(&mut self, plan: &RealFftPlan<f64>, row: &[f64], chunks: usize) {
        let n = plan.len();
        assert!(row.len() <= chunks * n, "row does not fit the chunk grid");
        self.ensure(n, chunks);
        let bins = half_spectrum_bins(n);
        for j in 0..chunks {
            let start = j * n;
            let dst = &mut self.input_spectra[j * bins..(j + 1) * bins];
            if start + n <= row.len() {
                plan.forward_into(&row[start..start + n], dst)
                    .expect("chunk length equals plan length");
            } else {
                let avail = row.len().saturating_sub(start);
                self.pad[..avail].copy_from_slice(&row[start..]);
                self.pad[avail..].fill(0.0);
                plan.forward_into(&self.pad, dst).expect("pad length equals plan length");
            }
        }
    }

    /// The `j`-th input half-spectrum loaded by
    /// [`SpectralScratch::load_row`].
    ///
    /// # Panics
    ///
    /// Panics if `j` is outside the loaded chunk grid.
    #[must_use]
    pub fn spectrum(&self, j: usize) -> &[Complex<f64>] {
        let bins = half_spectrum_bins(self.block_size);
        &self.input_spectra[j * bins..(j + 1) * bins]
    }

    /// Splits the workspace into [`MacParts`] — the pieces the per-row
    /// MAC loop needs to borrow simultaneously.
    pub fn mac_parts(&mut self) -> MacParts<'_> {
        (
            &mut self.acc,
            &mut self.time,
            &self.input_spectra,
            half_spectrum_bins(self.block_size),
        )
    }
}

/// Borrowed view of a [`SpectralScratch`] for the per-row MAC loop:
/// `(spectral accumulator, IRFFT output block, loaded input spectra,
/// bins per chunk)`.
pub type MacParts<'a> = (&'a mut [Complex<f64>], &'a mut [f64], &'a [Complex<f64>], usize);

/// Pre-computed spectral form of a [`BlockCirculantMatrix`] using the
/// complex FFT (the paper's baseline CirCore datapath).
///
/// ```
/// use blockgnn_core::{BlockCirculantMatrix, SpectralBlockCirculant};
/// let w = BlockCirculantMatrix::random(16, 8, 8, 5).unwrap();
/// let spectral = SpectralBlockCirculant::new(&w).unwrap();
/// let x = vec![0.25; 8];
/// assert_eq!(spectral.matvec(&x).len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct SpectralBlockCirculant {
    out_dim: usize,
    in_dim: usize,
    block_size: usize,
    grid_rows: usize,
    grid_cols: usize,
    /// `Ŵ_ij = FFT(kernel_ij)`, row-major grid order, each of length `n`.
    spectra: Vec<Vec<Complex<f64>>>,
    plan: FftPlan<f64>,
}

impl SpectralBlockCirculant {
    /// Pre-computes `Ŵ` for every block.
    ///
    /// # Errors
    ///
    /// Returns [`CirculantError::BadBlockSize`] if the block size is not a
    /// power of two (the radix-2 plan requirement).
    pub fn new(matrix: &BlockCirculantMatrix) -> Result<Self, CirculantError> {
        let n = matrix.block_size();
        let plan = FftPlan::new(n).map_err(|_| CirculantError::BadBlockSize {
            n,
            reason: "spectral execution requires a power-of-two block size",
        })?;
        let mut spectra = Vec::with_capacity(matrix.grid_rows() * matrix.grid_cols());
        for (_, _, block) in matrix.iter_blocks() {
            let spec =
                plan.forward_real(block.kernel()).expect("kernel length equals plan length");
            spectra.push(spec);
        }
        Ok(Self {
            out_dim: matrix.out_dim(),
            in_dim: matrix.in_dim(),
            block_size: n,
            grid_rows: matrix.grid_rows(),
            grid_cols: matrix.grid_cols(),
            spectra,
            plan,
        })
    }

    /// Logical output dimension `N`.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Logical input dimension `M`.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Circulant block size `n`.
    #[must_use]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Grid rows `p`.
    #[must_use]
    pub fn grid_rows(&self) -> usize {
        self.grid_rows
    }

    /// Grid columns `q`.
    #[must_use]
    pub fn grid_cols(&self) -> usize {
        self.grid_cols
    }

    /// Borrows the pre-computed spectrum `Ŵ_ij`.
    ///
    /// The hardware simulator loads these into the systolic array's
    /// weight-stationary registers.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is outside the grid.
    #[must_use]
    pub fn spectrum(&self, i: usize, j: usize) -> &[Complex<f64>] {
        assert!(i < self.grid_rows && j < self.grid_cols, "spectrum index out of grid");
        &self.spectra[i * self.grid_cols + j]
    }

    /// **Algorithm 1**: `y = W·x` via q forward FFTs, `p·q` element-wise
    /// spectral MACs, and `p` inverse FFTs (spectral-domain accumulation).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    #[must_use]
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "matvec input length must equal in_dim");
        let n = self.block_size;
        // Stage 1: FFT each input sub-vector (q transforms).
        let sub_spectra = self.input_spectra(x);
        // Stage 2+3: accumulate in the spectral domain, one IFFT per grid row.
        let mut y = Vec::with_capacity(self.grid_rows * n);
        for i in 0..self.grid_rows {
            let mut acc = vec![Complex::zero(); n];
            for (j, xs) in sub_spectra.iter().enumerate() {
                let w = &self.spectra[i * self.grid_cols + j];
                for ((a, &wv), &xv) in acc.iter_mut().zip(w).zip(xs) {
                    *a += wv * xv;
                }
            }
            self.plan.inverse(&mut acc);
            y.extend(acc.iter().map(|c| c.re));
        }
        y.truncate(self.out_dim);
        y
    }

    /// The unoptimized CirCNN-style flow: one IFFT **per block** (`p·q`
    /// inverse transforms) with accumulation in the spatial domain.
    ///
    /// Numerically identical to [`SpectralBlockCirculant::matvec`] (up to
    /// rounding); kept as the ablation baseline quantifying what the
    /// spectral-accumulation optimization saves.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    #[must_use]
    pub fn matvec_per_block_ifft(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "matvec input length must equal in_dim");
        let n = self.block_size;
        let sub_spectra = self.input_spectra(x);
        let mut y = vec![0.0; self.grid_rows * n];
        for i in 0..self.grid_rows {
            for (j, xs) in sub_spectra.iter().enumerate() {
                let w = &self.spectra[i * self.grid_cols + j];
                let mut prod: Vec<Complex<f64>> =
                    w.iter().zip(xs).map(|(&a, &b)| a * b).collect();
                self.plan.inverse(&mut prod);
                for (acc, c) in y[i * n..(i + 1) * n].iter_mut().zip(&prod) {
                    *acc += c.re;
                }
            }
        }
        y.truncate(self.out_dim);
        y
    }

    /// Number of inverse FFTs Algorithm 1 performs per input vector (`p`),
    /// versus `p·q` for the per-block flow. Used by the ablation report.
    #[must_use]
    pub fn ifft_count_optimized(&self) -> usize {
        self.grid_rows
    }

    /// Number of inverse FFTs the CirCNN-style flow performs (`p·q`).
    #[must_use]
    pub fn ifft_count_per_block(&self) -> usize {
        self.grid_rows * self.grid_cols
    }

    fn input_spectra(&self, x: &[f64]) -> Vec<Vec<Complex<f64>>> {
        let n = self.block_size;
        let mut padded = x.to_vec();
        padded.resize(self.grid_cols * n, 0.0);
        padded
            .chunks_exact(n)
            .map(|sub| self.plan.forward_real(sub).expect("chunk length equals plan length"))
            .collect()
    }
}

/// Pre-computed spectral form using the **real** FFT (§V refinement):
/// spectra are stored packed ([`HalfSpectrum`], `n/2 + 1` bins),
/// halving MAC work and resident weight bytes relative to the complex
/// path. This is the serving-grade kernel: pair it with a
/// [`SpectralScratch`] via [`RealSpectralBlockCirculant::matvec_with`]
/// and the steady-state loop allocates nothing per row.
#[derive(Debug, Clone)]
pub struct RealSpectralBlockCirculant {
    out_dim: usize,
    in_dim: usize,
    block_size: usize,
    grid_rows: usize,
    grid_cols: usize,
    /// Packed half-spectra `Ŵ_ij`, row-major grid order.
    spectra: Vec<HalfSpectrum<f64>>,
    plan: RealFftPlan<f64>,
}

impl RealSpectralBlockCirculant {
    /// Pre-computes the packed half-spectra `Ŵ`.
    ///
    /// # Errors
    ///
    /// Returns [`CirculantError::BadBlockSize`] if the block size is not
    /// a power of two.
    pub fn new(matrix: &BlockCirculantMatrix) -> Result<Self, CirculantError> {
        let n = matrix.block_size();
        let plan = RealFftPlan::new(n).map_err(|_| CirculantError::BadBlockSize {
            n,
            reason: "real-spectral execution requires a power-of-two block size",
        })?;
        let mut spectra = Vec::with_capacity(matrix.grid_rows() * matrix.grid_cols());
        for (_, _, block) in matrix.iter_blocks() {
            spectra
                .push(plan.forward_half(block.kernel()).expect("kernel length matches plan"));
        }
        Ok(Self {
            out_dim: matrix.out_dim(),
            in_dim: matrix.in_dim(),
            block_size: n,
            grid_rows: matrix.grid_rows(),
            grid_cols: matrix.grid_cols(),
            spectra,
            plan,
        })
    }

    /// Logical output dimension `N`.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Logical input dimension `M`.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Circulant block size `n`.
    #[must_use]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of complex bins stored per block (`n/2 + 1`).
    #[must_use]
    pub fn spectrum_len(&self) -> usize {
        half_spectrum_bins(self.block_size)
    }

    /// Borrows the packed half-spectrum `Ŵ_ij`.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is outside the grid.
    #[must_use]
    pub fn spectrum(&self, i: usize, j: usize) -> &HalfSpectrum<f64> {
        assert!(i < self.grid_rows && j < self.grid_cols, "spectrum index out of grid");
        &self.spectra[i * self.grid_cols + j]
    }

    /// Algorithm 1 over half-spectra with a fresh workspace: q RFFTs,
    /// `p·q` half-length MAC passes, `p` IRFFTs. Convenience wrapper
    /// around [`RealSpectralBlockCirculant::matvec_with`] for callers
    /// that do not keep a scratch alive.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    #[must_use]
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        self.matvec_with(x, &mut SpectralScratch::new())
    }

    /// Algorithm 1 over half-spectra reusing `scratch` — zero heap
    /// allocations beyond the returned vector once the scratch is warm.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    #[must_use]
    pub fn matvec_with(&self, x: &[f64], scratch: &mut SpectralScratch) -> Vec<f64> {
        let mut y = vec![0.0; self.out_dim];
        self.matvec_into(x, scratch, &mut y);
        y
    }

    /// Fully write-into form of the half-spectrum Algorithm 1: the
    /// result lands in `out` (every entry overwritten).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim` or `out.len() != out_dim`.
    pub fn matvec_into(&self, x: &[f64], scratch: &mut SpectralScratch, out: &mut [f64]) {
        assert_eq!(x.len(), self.in_dim, "matvec input length must equal in_dim");
        assert_eq!(out.len(), self.out_dim, "matvec output length must equal out_dim");
        let n = self.block_size;
        scratch.load_row(&self.plan, x, self.grid_cols);
        let (acc, time, input_spectra, bins) = scratch.mac_parts();
        for i in 0..self.grid_rows {
            acc.fill(Complex::zero());
            for j in 0..self.grid_cols {
                let w = self.spectra[i * self.grid_cols + j].bins();
                let xs = &input_spectra[j * bins..(j + 1) * bins];
                for ((a, &wv), &xv) in acc.iter_mut().zip(w).zip(xs) {
                    *a += wv * xv;
                }
            }
            self.plan.inverse_into(acc, time).expect("accumulator matches spectrum len");
            let start = i * n;
            let take = n.min(self.out_dim - start);
            out[start..start + take].copy_from_slice(&time[..take]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockgnn_linalg::vector::linf_distance;
    use proptest::prelude::*;

    fn test_input(len: usize) -> Vec<f64> {
        (0..len).map(|i| ((i as f64 + 1.0) * 0.37).sin() * 2.0).collect()
    }

    #[test]
    fn rejects_non_power_of_two_blocks() {
        let m = BlockCirculantMatrix::random(9, 9, 3, 0).unwrap();
        assert!(matches!(
            SpectralBlockCirculant::new(&m).unwrap_err(),
            CirculantError::BadBlockSize { n: 3, .. }
        ));
        assert!(RealSpectralBlockCirculant::new(&m).is_err());
    }

    #[test]
    fn algorithm1_matches_direct_product() {
        for (rows, cols, n) in
            [(8, 8, 4), (16, 8, 8), (10, 6, 4), (7, 129, 16), (128, 512, 128)]
        {
            let m = BlockCirculantMatrix::random(rows, cols, n, 13).unwrap();
            let s = SpectralBlockCirculant::new(&m).unwrap();
            let x = test_input(cols);
            let fast = s.matvec(&x);
            let direct = m.matvec_direct(&x);
            assert!(
                linf_distance(&fast, &direct) < 1e-8,
                "spectral mismatch at {rows}x{cols} n={n}"
            );
        }
    }

    #[test]
    fn per_block_ifft_flow_is_equivalent() {
        let m = BlockCirculantMatrix::random(24, 20, 8, 99).unwrap();
        let s = SpectralBlockCirculant::new(&m).unwrap();
        let x = test_input(20);
        assert!(linf_distance(&s.matvec(&x), &s.matvec_per_block_ifft(&x)) < 1e-9);
        // Accounting: the optimization reduces IFFTs from p*q to p.
        assert_eq!(s.ifft_count_optimized(), 3);
        assert_eq!(s.ifft_count_per_block(), 9);
    }

    #[test]
    fn rfft_path_matches_complex_path() {
        for (rows, cols, n) in [(8, 8, 4), (16, 24, 8), (50, 30, 16), (128, 100, 128)] {
            let m = BlockCirculantMatrix::random(rows, cols, n, 31).unwrap();
            let c = SpectralBlockCirculant::new(&m).unwrap();
            let r = RealSpectralBlockCirculant::new(&m).unwrap();
            let x = test_input(cols);
            assert!(
                linf_distance(&c.matvec(&x), &r.matvec(&x)) < 1e-8,
                "rfft mismatch at {rows}x{cols} n={n}"
            );
            assert_eq!(r.spectrum_len(), n / 2 + 1);
        }
    }

    #[test]
    fn half_spectrum_supports_block_size_one() {
        // n = 1 (the dense baseline grid) runs the same packed path.
        let m = BlockCirculantMatrix::random(5, 7, 1, 3).unwrap();
        let r = RealSpectralBlockCirculant::new(&m).unwrap();
        assert_eq!(r.spectrum_len(), 1);
        let x = test_input(7);
        assert!(linf_distance(&r.matvec(&x), &m.matvec_direct(&x)) < 1e-10);
    }

    #[test]
    fn scratch_reuse_is_bit_stable_across_shapes() {
        // One scratch serving matrices of different geometry (the
        // per-layer reuse pattern) must give bit-identical answers to a
        // fresh scratch every call.
        let mut scratch = SpectralScratch::new();
        for (rows, cols, n, seed) in [(16, 24, 8, 1), (10, 6, 4, 2), (16, 24, 8, 3)] {
            let m = BlockCirculantMatrix::random(rows, cols, n, seed).unwrap();
            let r = RealSpectralBlockCirculant::new(&m).unwrap();
            let x = test_input(cols);
            let warm = r.matvec_with(&x, &mut scratch);
            let cold = r.matvec(&x);
            assert_eq!(warm, cold, "scratch reuse drifted at {rows}x{cols} n={n}");
        }
    }

    #[test]
    fn scratch_clone_is_empty() {
        let m = BlockCirculantMatrix::random(8, 8, 4, 9).unwrap();
        let r = RealSpectralBlockCirculant::new(&m).unwrap();
        let mut scratch = SpectralScratch::new();
        let _ = r.matvec_with(&test_input(8), &mut scratch);
        let clone = scratch.clone();
        assert_eq!(clone.block_size, 0, "clone must not carry request-scoped buffers");
        assert!(clone.input_spectra.is_empty());
    }

    #[test]
    fn spectrum_accessor_returns_fft_of_kernel() {
        let m = BlockCirculantMatrix::random(8, 8, 4, 77).unwrap();
        let s = SpectralBlockCirculant::new(&m).unwrap();
        let plan = FftPlan::<f64>::new(4).unwrap();
        let expect = plan.forward_real(m.block(1, 0).kernel()).unwrap();
        for (a, b) in s.spectrum(1, 0).iter().zip(&expect) {
            assert!(a.linf_distance(*b) < 1e-12);
        }
        // The packed form stores exactly the non-redundant prefix.
        let r = RealSpectralBlockCirculant::new(&m).unwrap();
        for (a, b) in r.spectrum(1, 0).bins().iter().zip(&expect) {
            assert!(a.linf_distance(*b) < 1e-12);
        }
        assert_eq!(r.spectrum(1, 0).bins().len(), 3);
    }

    #[test]
    fn dimensions_are_preserved() {
        let m = BlockCirculantMatrix::random(10, 6, 4, 1).unwrap();
        let s = SpectralBlockCirculant::new(&m).unwrap();
        assert_eq!(s.out_dim(), 10);
        assert_eq!(s.in_dim(), 6);
        assert_eq!(s.block_size(), 4);
        assert_eq!((s.grid_rows(), s.grid_cols()), (3, 2));
        assert_eq!(s.matvec(&test_input(6)).len(), 10);
        let r = RealSpectralBlockCirculant::new(&m).unwrap();
        assert_eq!((r.out_dim(), r.in_dim()), (10, 6));
        assert_eq!(r.block_size(), 4);
        assert_eq!(r.matvec(&test_input(6)).len(), 10);
    }

    proptest! {
        #[test]
        fn prop_spectral_equals_direct(
            seed in 0u64..500,
            p in 1usize..4,
            q in 1usize..4,
            logn in 1u32..5,
        ) {
            let n = 1usize << logn;
            // exercise both exact and padded shapes
            let rows = p * n - (seed as usize % n.min(p * n - 1).max(1));
            let cols = q * n;
            let m = BlockCirculantMatrix::random(rows.max(1), cols, n, seed).unwrap();
            let s = SpectralBlockCirculant::new(&m).unwrap();
            let x = test_input(cols);
            prop_assert!(linf_distance(&s.matvec(&x), &m.matvec_direct(&x)) < 1e-8);
        }

        #[test]
        fn prop_half_spectrum_equals_full_spectrum(
            seed in 0u64..500,
            p in 1usize..5,
            q in 1usize..5,
            logn in 0u32..6,
            col_cut in 0usize..16,
        ) {
            // The packed-half path must agree with the full-spectrum
            // baseline everywhere: n = 1 (odd) through 32, in_dim both a
            // multiple of n and ragged (padded trailing chunk).
            let n = 1usize << logn;
            let rows = (p * n).max(1);
            let cols = (q * n).saturating_sub(col_cut % n.max(1)).max(1);
            let m = BlockCirculantMatrix::random(rows, cols, n, seed).unwrap();
            let full = SpectralBlockCirculant::new(&m).unwrap();
            let half = RealSpectralBlockCirculant::new(&m).unwrap();
            let x = test_input(cols);
            let mut scratch = SpectralScratch::new();
            let yh = half.matvec_with(&x, &mut scratch);
            prop_assert!(linf_distance(&full.matvec(&x), &yh) < 1e-8);
            prop_assert!(linf_distance(&m.matvec_direct(&x), &yh) < 1e-8);
        }
    }
}
