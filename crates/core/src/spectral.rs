//! Spectral-domain execution of block-circulant products — Algorithm 1.
//!
//! The trained weights are transformed **once** into the spectral domain
//! (the paper's pre-computed `Ŵ`); at inference time only the feature
//! sub-vectors are FFT'd on the fly. Because the IFFT is linear,
//! `Σ_j IFFT(Ŵ_ij ∘ X_j) = IFFT(Σ_j Ŵ_ij ∘ X_j)`, so the per-row
//! accumulation happens in the spectral domain and only `p` IFFTs are
//! required instead of `p·q` — the optimization the paper highlights over
//! CirCNN’s original flow (its reference \[19\] made the same observation).
//!
//! [`SpectralBlockCirculant`] implements that optimized Algorithm 1 with
//! complex FFTs; [`RealSpectralBlockCirculant`] applies the §V RFFT
//! refinement, halving both the stored spectrum and the element-wise MAC
//! work for the (always real) GNN features.

use crate::error::CirculantError;
use crate::matrix::BlockCirculantMatrix;
use blockgnn_fft::{Complex, FftPlan, RealFftPlan};

/// Pre-computed spectral form of a [`BlockCirculantMatrix`] using the
/// complex FFT (the paper's baseline CirCore datapath).
///
/// ```
/// use blockgnn_core::{BlockCirculantMatrix, SpectralBlockCirculant};
/// let w = BlockCirculantMatrix::random(16, 8, 8, 5).unwrap();
/// let spectral = SpectralBlockCirculant::new(&w).unwrap();
/// let x = vec![0.25; 8];
/// assert_eq!(spectral.matvec(&x).len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct SpectralBlockCirculant {
    out_dim: usize,
    in_dim: usize,
    block_size: usize,
    grid_rows: usize,
    grid_cols: usize,
    /// `Ŵ_ij = FFT(kernel_ij)`, row-major grid order, each of length `n`.
    spectra: Vec<Vec<Complex<f64>>>,
    plan: FftPlan<f64>,
}

impl SpectralBlockCirculant {
    /// Pre-computes `Ŵ` for every block.
    ///
    /// # Errors
    ///
    /// Returns [`CirculantError::BadBlockSize`] if the block size is not a
    /// power of two (the radix-2 plan requirement).
    pub fn new(matrix: &BlockCirculantMatrix) -> Result<Self, CirculantError> {
        let n = matrix.block_size();
        let plan = FftPlan::new(n).map_err(|_| CirculantError::BadBlockSize {
            n,
            reason: "spectral execution requires a power-of-two block size",
        })?;
        let mut spectra = Vec::with_capacity(matrix.grid_rows() * matrix.grid_cols());
        for (_, _, block) in matrix.iter_blocks() {
            let spec =
                plan.forward_real(block.kernel()).expect("kernel length equals plan length");
            spectra.push(spec);
        }
        Ok(Self {
            out_dim: matrix.out_dim(),
            in_dim: matrix.in_dim(),
            block_size: n,
            grid_rows: matrix.grid_rows(),
            grid_cols: matrix.grid_cols(),
            spectra,
            plan,
        })
    }

    /// Logical output dimension `N`.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Logical input dimension `M`.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Circulant block size `n`.
    #[must_use]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Grid rows `p`.
    #[must_use]
    pub fn grid_rows(&self) -> usize {
        self.grid_rows
    }

    /// Grid columns `q`.
    #[must_use]
    pub fn grid_cols(&self) -> usize {
        self.grid_cols
    }

    /// Borrows the pre-computed spectrum `Ŵ_ij`.
    ///
    /// The hardware simulator loads these into the systolic array's
    /// weight-stationary registers.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is outside the grid.
    #[must_use]
    pub fn spectrum(&self, i: usize, j: usize) -> &[Complex<f64>] {
        assert!(i < self.grid_rows && j < self.grid_cols, "spectrum index out of grid");
        &self.spectra[i * self.grid_cols + j]
    }

    /// **Algorithm 1**: `y = W·x` via q forward FFTs, `p·q` element-wise
    /// spectral MACs, and `p` inverse FFTs (spectral-domain accumulation).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    #[must_use]
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "matvec input length must equal in_dim");
        let n = self.block_size;
        // Stage 1: FFT each input sub-vector (q transforms).
        let sub_spectra = self.input_spectra(x);
        // Stage 2+3: accumulate in the spectral domain, one IFFT per grid row.
        let mut y = Vec::with_capacity(self.grid_rows * n);
        for i in 0..self.grid_rows {
            let mut acc = vec![Complex::zero(); n];
            for (j, xs) in sub_spectra.iter().enumerate() {
                let w = &self.spectra[i * self.grid_cols + j];
                for ((a, &wv), &xv) in acc.iter_mut().zip(w).zip(xs) {
                    *a += wv * xv;
                }
            }
            self.plan.inverse(&mut acc);
            y.extend(acc.iter().map(|c| c.re));
        }
        y.truncate(self.out_dim);
        y
    }

    /// The unoptimized CirCNN-style flow: one IFFT **per block** (`p·q`
    /// inverse transforms) with accumulation in the spatial domain.
    ///
    /// Numerically identical to [`SpectralBlockCirculant::matvec`] (up to
    /// rounding); kept as the ablation baseline quantifying what the
    /// spectral-accumulation optimization saves.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    #[must_use]
    pub fn matvec_per_block_ifft(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "matvec input length must equal in_dim");
        let n = self.block_size;
        let sub_spectra = self.input_spectra(x);
        let mut y = vec![0.0; self.grid_rows * n];
        for i in 0..self.grid_rows {
            for (j, xs) in sub_spectra.iter().enumerate() {
                let w = &self.spectra[i * self.grid_cols + j];
                let mut prod: Vec<Complex<f64>> =
                    w.iter().zip(xs).map(|(&a, &b)| a * b).collect();
                self.plan.inverse(&mut prod);
                for (acc, c) in y[i * n..(i + 1) * n].iter_mut().zip(&prod) {
                    *acc += c.re;
                }
            }
        }
        y.truncate(self.out_dim);
        y
    }

    /// Number of inverse FFTs Algorithm 1 performs per input vector (`p`),
    /// versus `p·q` for the per-block flow. Used by the ablation report.
    #[must_use]
    pub fn ifft_count_optimized(&self) -> usize {
        self.grid_rows
    }

    /// Number of inverse FFTs the CirCNN-style flow performs (`p·q`).
    #[must_use]
    pub fn ifft_count_per_block(&self) -> usize {
        self.grid_rows * self.grid_cols
    }

    fn input_spectra(&self, x: &[f64]) -> Vec<Vec<Complex<f64>>> {
        let n = self.block_size;
        let mut padded = x.to_vec();
        padded.resize(self.grid_cols * n, 0.0);
        padded
            .chunks_exact(n)
            .map(|sub| self.plan.forward_real(sub).expect("chunk length equals plan length"))
            .collect()
    }
}

/// Pre-computed spectral form using the **real** FFT (§V refinement):
/// spectra keep only `n/2 + 1` bins, roughly halving MAC work and weight
/// storage relative to the complex path.
#[derive(Debug, Clone)]
pub struct RealSpectralBlockCirculant {
    out_dim: usize,
    in_dim: usize,
    block_size: usize,
    grid_rows: usize,
    grid_cols: usize,
    /// Half-spectra `Ŵ_ij`, each of length `n/2 + 1`.
    spectra: Vec<Vec<Complex<f64>>>,
    plan: RealFftPlan<f64>,
}

impl RealSpectralBlockCirculant {
    /// Pre-computes the half-spectra `Ŵ`.
    ///
    /// # Errors
    ///
    /// Returns [`CirculantError::BadBlockSize`] if the block size is not a
    /// power of two of at least 2.
    pub fn new(matrix: &BlockCirculantMatrix) -> Result<Self, CirculantError> {
        let n = matrix.block_size();
        let plan = RealFftPlan::new(n).map_err(|_| CirculantError::BadBlockSize {
            n,
            reason: "real-spectral execution requires a power-of-two block size >= 2",
        })?;
        let mut spectra = Vec::with_capacity(matrix.grid_rows() * matrix.grid_cols());
        for (_, _, block) in matrix.iter_blocks() {
            spectra.push(plan.forward(block.kernel()).expect("kernel length matches plan"));
        }
        Ok(Self {
            out_dim: matrix.out_dim(),
            in_dim: matrix.in_dim(),
            block_size: n,
            grid_rows: matrix.grid_rows(),
            grid_cols: matrix.grid_cols(),
            spectra,
            plan,
        })
    }

    /// Logical output dimension `N`.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Logical input dimension `M`.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Number of complex bins stored per block (`n/2 + 1`).
    #[must_use]
    pub fn spectrum_len(&self) -> usize {
        self.block_size / 2 + 1
    }

    /// Algorithm 1 over half-spectra: q RFFTs, `p·q` half-length MAC
    /// passes, `p` IRFFTs.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    #[must_use]
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "matvec input length must equal in_dim");
        let n = self.block_size;
        let bins = self.spectrum_len();
        let mut padded = x.to_vec();
        padded.resize(self.grid_cols * n, 0.0);
        let sub_spectra: Vec<Vec<Complex<f64>>> = padded
            .chunks_exact(n)
            .map(|sub| self.plan.forward(sub).expect("chunk length equals plan length"))
            .collect();
        let mut y = Vec::with_capacity(self.grid_rows * n);
        for i in 0..self.grid_rows {
            let mut acc = vec![Complex::zero(); bins];
            for (j, xs) in sub_spectra.iter().enumerate() {
                let w = &self.spectra[i * self.grid_cols + j];
                for ((a, &wv), &xv) in acc.iter_mut().zip(w).zip(xs) {
                    *a += wv * xv;
                }
            }
            let spatial = self.plan.inverse(&acc).expect("accumulator matches spectrum len");
            y.extend_from_slice(&spatial);
        }
        y.truncate(self.out_dim);
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockgnn_linalg::vector::linf_distance;
    use proptest::prelude::*;

    fn test_input(len: usize) -> Vec<f64> {
        (0..len).map(|i| ((i as f64 + 1.0) * 0.37).sin() * 2.0).collect()
    }

    #[test]
    fn rejects_non_power_of_two_blocks() {
        let m = BlockCirculantMatrix::random(9, 9, 3, 0).unwrap();
        assert!(matches!(
            SpectralBlockCirculant::new(&m).unwrap_err(),
            CirculantError::BadBlockSize { n: 3, .. }
        ));
        assert!(RealSpectralBlockCirculant::new(&m).is_err());
    }

    #[test]
    fn algorithm1_matches_direct_product() {
        for (rows, cols, n) in
            [(8, 8, 4), (16, 8, 8), (10, 6, 4), (7, 129, 16), (128, 512, 128)]
        {
            let m = BlockCirculantMatrix::random(rows, cols, n, 13).unwrap();
            let s = SpectralBlockCirculant::new(&m).unwrap();
            let x = test_input(cols);
            let fast = s.matvec(&x);
            let direct = m.matvec_direct(&x);
            assert!(
                linf_distance(&fast, &direct) < 1e-8,
                "spectral mismatch at {rows}x{cols} n={n}"
            );
        }
    }

    #[test]
    fn per_block_ifft_flow_is_equivalent() {
        let m = BlockCirculantMatrix::random(24, 20, 8, 99).unwrap();
        let s = SpectralBlockCirculant::new(&m).unwrap();
        let x = test_input(20);
        assert!(linf_distance(&s.matvec(&x), &s.matvec_per_block_ifft(&x)) < 1e-9);
        // Accounting: the optimization reduces IFFTs from p*q to p.
        assert_eq!(s.ifft_count_optimized(), 3);
        assert_eq!(s.ifft_count_per_block(), 9);
    }

    #[test]
    fn rfft_path_matches_complex_path() {
        for (rows, cols, n) in [(8, 8, 4), (16, 24, 8), (50, 30, 16), (128, 100, 128)] {
            let m = BlockCirculantMatrix::random(rows, cols, n, 31).unwrap();
            let c = SpectralBlockCirculant::new(&m).unwrap();
            let r = RealSpectralBlockCirculant::new(&m).unwrap();
            let x = test_input(cols);
            assert!(
                linf_distance(&c.matvec(&x), &r.matvec(&x)) < 1e-8,
                "rfft mismatch at {rows}x{cols} n={n}"
            );
            assert_eq!(r.spectrum_len(), n / 2 + 1);
        }
    }

    #[test]
    fn spectrum_accessor_returns_fft_of_kernel() {
        let m = BlockCirculantMatrix::random(8, 8, 4, 77).unwrap();
        let s = SpectralBlockCirculant::new(&m).unwrap();
        let plan = FftPlan::<f64>::new(4).unwrap();
        let expect = plan.forward_real(m.block(1, 0).kernel()).unwrap();
        for (a, b) in s.spectrum(1, 0).iter().zip(&expect) {
            assert!(a.linf_distance(*b) < 1e-12);
        }
    }

    #[test]
    fn dimensions_are_preserved() {
        let m = BlockCirculantMatrix::random(10, 6, 4, 1).unwrap();
        let s = SpectralBlockCirculant::new(&m).unwrap();
        assert_eq!(s.out_dim(), 10);
        assert_eq!(s.in_dim(), 6);
        assert_eq!(s.block_size(), 4);
        assert_eq!((s.grid_rows(), s.grid_cols()), (3, 2));
        assert_eq!(s.matvec(&test_input(6)).len(), 10);
        let r = RealSpectralBlockCirculant::new(&m).unwrap();
        assert_eq!((r.out_dim(), r.in_dim()), (10, 6));
        assert_eq!(r.matvec(&test_input(6)).len(), 10);
    }

    proptest! {
        #[test]
        fn prop_spectral_equals_direct(
            seed in 0u64..500,
            p in 1usize..4,
            q in 1usize..4,
            logn in 1u32..5,
        ) {
            let n = 1usize << logn;
            // exercise both exact and padded shapes
            let rows = p * n - (seed as usize % n.min(p * n - 1).max(1));
            let cols = q * n;
            let m = BlockCirculantMatrix::random(rows.max(1), cols, n, seed).unwrap();
            let s = SpectralBlockCirculant::new(&m).unwrap();
            let x = test_input(cols);
            prop_assert!(linf_distance(&s.matvec(&x), &m.matvec_direct(&x)) < 1e-8);
        }
    }
}
