//! Fixed-point spectral execution, bit-matching the FPGA datapath.
//!
//! The ZC706 prototype computes CirCore's entire pipeline in 32-bit fixed
//! point (§IV-B). [`FixedSpectralBlockCirculant`] reproduces that: the
//! pre-computed spectral weights are quantized to Q16.16 once (as they
//! would be when written into the Weight Buffer), and every on-line RFFT
//! butterfly, element-wise MAC, and IRFFT butterfly runs through the
//! saturating fixed-point kernels of `blockgnn-fft`. Like the float
//! serving path, the Weight Buffer holds only the packed Hermitian
//! half-spectrum (`n/2 + 1` bins per block — conjugate-symmetric bins
//! would be redundant registers in hardware), and a reusable
//! [`FixedSpectralScratch`] keeps the steady-state matvec loop
//! allocation-free. The functional mode of the hardware simulator
//! delegates its arithmetic here, so simulator outputs carry genuine
//! quantization error rather than idealized floats.

use crate::error::CirculantError;
use crate::matrix::BlockCirculantMatrix;
use blockgnn_fft::fixed_fft::{FixedComplex, FixedRealFftPlan};
use blockgnn_fft::{half_spectrum_bins, Q16_16};

/// Reusable Q16.16 workspace for [`FixedSpectralBlockCirculant`]: the
/// padded tail block, per-chunk input half-spectra, spectral
/// accumulator, and IRFFT output block. The fixed-point counterpart of
/// [`crate::SpectralScratch`]; `Clone` likewise yields an empty scratch.
#[derive(Debug, Default)]
pub struct FixedSpectralScratch {
    pad: Vec<Q16_16>,
    input_spectra: Vec<FixedComplex>,
    acc: Vec<FixedComplex>,
    time: Vec<Q16_16>,
    block_size: usize,
    chunks: usize,
}

impl Clone for FixedSpectralScratch {
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl FixedSpectralScratch {
    /// A fresh, empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, block_size: usize, chunks: usize) {
        if self.block_size == block_size && self.chunks == chunks {
            return;
        }
        let bins = half_spectrum_bins(block_size);
        self.pad.resize(block_size, Q16_16::ZERO);
        self.input_spectra.resize(chunks * bins, FixedComplex::ZERO);
        self.acc.resize(bins, FixedComplex::ZERO);
        self.time.resize(block_size, Q16_16::ZERO);
        self.block_size = block_size;
        self.chunks = chunks;
    }
}

/// Q16.16 spectral form of a [`BlockCirculantMatrix`] with packed
/// half-spectrum weights.
///
/// ```
/// use blockgnn_core::{BlockCirculantMatrix, FixedSpectralBlockCirculant};
/// let w = BlockCirculantMatrix::random(8, 8, 4, 2).unwrap();
/// let fx = FixedSpectralBlockCirculant::new(&w).unwrap();
/// let x = vec![0.5; 8];
/// let y = fx.matvec(&x);
/// let reference = w.matvec_direct(&x);
/// for (a, b) in y.iter().zip(&reference) {
///     assert!((a - b).abs() < 1e-2); // quantization-level agreement
/// }
/// ```
#[derive(Debug, Clone)]
pub struct FixedSpectralBlockCirculant {
    out_dim: usize,
    in_dim: usize,
    block_size: usize,
    grid_rows: usize,
    grid_cols: usize,
    /// Quantized packed half-spectra `Ŵ_ij` in row-major grid order,
    /// `n/2 + 1` bins each.
    spectra: Vec<Vec<FixedComplex>>,
    plan: FixedRealFftPlan,
}

impl FixedSpectralBlockCirculant {
    /// Quantizes the spectral weights of `matrix` into Q16.16.
    ///
    /// # Errors
    ///
    /// Returns [`CirculantError::BadBlockSize`] if the block size is not a
    /// power of two.
    pub fn new(matrix: &BlockCirculantMatrix) -> Result<Self, CirculantError> {
        let n = matrix.block_size();
        let plan = FixedRealFftPlan::new(n).map_err(|_| CirculantError::BadBlockSize {
            n,
            reason: "fixed-point spectral execution requires a power-of-two block size",
        })?;
        // Quantize weights *after* an exact float RFFT: this matches the
        // deployment flow, where Ŵ is computed offline at full precision
        // and only the stored (packed) copy is fixed-point.
        let float_plan = blockgnn_fft::RealFftPlan::<f64>::new(n)
            .expect("same power-of-two length as fixed plan");
        let mut spectra = Vec::with_capacity(matrix.grid_rows() * matrix.grid_cols());
        for (_, _, block) in matrix.iter_blocks() {
            let spec =
                float_plan.forward(block.kernel()).expect("kernel length equals plan length");
            spectra.push(spec.iter().map(|&c| FixedComplex::from_f64(c)).collect());
        }
        Ok(Self {
            out_dim: matrix.out_dim(),
            in_dim: matrix.in_dim(),
            block_size: n,
            grid_rows: matrix.grid_rows(),
            grid_cols: matrix.grid_cols(),
            spectra,
            plan,
        })
    }

    /// Logical output dimension `N`.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Logical input dimension `M`.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Circulant block size `n`.
    #[must_use]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of packed bins per block (`n/2 + 1`).
    #[must_use]
    pub fn spectrum_len(&self) -> usize {
        half_spectrum_bins(self.block_size)
    }

    /// Borrows the quantized packed half-spectrum `Ŵ_ij` (what the
    /// Weight Buffer holds).
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is outside the grid.
    #[must_use]
    pub fn spectrum(&self, i: usize, j: usize) -> &[FixedComplex] {
        assert!(i < self.grid_rows && j < self.grid_cols, "spectrum index out of grid");
        &self.spectra[i * self.grid_cols + j]
    }

    /// Algorithm 1 through the fixed-point datapath, on float input/output
    /// (quantize → compute → dequantize).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    #[must_use]
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        self.matvec_with(x, &mut FixedSpectralScratch::new())
    }

    /// Float-in/float-out Algorithm 1 reusing `scratch` — what the
    /// functional CirCore simulator's batch loop calls so repeated
    /// matvecs stop allocating workspace.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    #[must_use]
    pub fn matvec_with(&self, x: &[f64], scratch: &mut FixedSpectralScratch) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "matvec input length must equal in_dim");
        let qx: Vec<Q16_16> = x.iter().map(|&v| Q16_16::from_f64(v)).collect();
        self.matvec_fixed_with(&qx, scratch).into_iter().map(Q16_16::to_f64).collect()
    }

    /// Algorithm 1 entirely in Q16.16, as the hardware executes it.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    #[must_use]
    pub fn matvec_fixed(&self, x: &[Q16_16]) -> Vec<Q16_16> {
        self.matvec_fixed_with(x, &mut FixedSpectralScratch::new())
    }

    /// Algorithm 1 in Q16.16 reusing `scratch` (see also
    /// [`FixedSpectralBlockCirculant::matvec_with`] for the float-edged
    /// form the functional CirCore simulator uses).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    #[must_use]
    pub fn matvec_fixed_with(
        &self,
        x: &[Q16_16],
        scratch: &mut FixedSpectralScratch,
    ) -> Vec<Q16_16> {
        assert_eq!(x.len(), self.in_dim, "matvec input length must equal in_dim");
        let n = self.block_size;
        let (p, q) = (self.grid_rows, self.grid_cols);
        scratch.ensure(n, q);
        let bins = half_spectrum_bins(n);

        // Stage 1 — RFFT unit: q on-line transforms of the sub-vectors
        // (aligned chunks straight from the input, ragged tail padded).
        for j in 0..q {
            let start = j * n;
            let dst = &mut scratch.input_spectra[j * bins..(j + 1) * bins];
            if start + n <= x.len() {
                self.plan.forward_into(&x[start..start + n], dst);
            } else {
                let avail = x.len().saturating_sub(start);
                scratch.pad[..avail].copy_from_slice(&x[start..]);
                scratch.pad[avail..].fill(Q16_16::ZERO);
                self.plan.forward_into(&scratch.pad, dst);
            }
        }

        // Stage 2 — systolic MAC: packed spectral accumulate per grid row.
        // Stage 3 — IRFFT unit: one inverse transform per grid row.
        let mut y = vec![Q16_16::ZERO; self.out_dim];
        for i in 0..p {
            scratch.acc.fill(FixedComplex::ZERO);
            for j in 0..q {
                let w = &self.spectra[i * q + j];
                let xs = &scratch.input_spectra[j * bins..(j + 1) * bins];
                for ((a, &wv), &xv) in scratch.acc.iter_mut().zip(w).zip(xs) {
                    *a = a.add(wv.mul(xv));
                }
            }
            self.plan.inverse_into(&mut scratch.acc, &mut scratch.time);
            let start = i * n;
            let take = n.min(self.out_dim - start);
            y[start..start + take].copy_from_slice(&scratch.time[..take]);
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockgnn_linalg::vector::linf_distance;

    fn small_input(len: usize) -> Vec<f64> {
        (0..len).map(|i| ((i as f64 + 0.5) * 0.61).sin()).collect()
    }

    #[test]
    fn rejects_non_power_of_two() {
        let m = BlockCirculantMatrix::random(6, 6, 3, 0).unwrap();
        assert!(FixedSpectralBlockCirculant::new(&m).is_err());
    }

    #[test]
    fn fixed_path_tracks_float_path() {
        for (rows, cols, n) in [(8, 8, 4), (16, 12, 8), (32, 32, 16), (64, 64, 64)] {
            let m = BlockCirculantMatrix::random(rows, cols, n, 17).unwrap();
            let float = crate::spectral::SpectralBlockCirculant::new(&m).unwrap();
            let fixed = FixedSpectralBlockCirculant::new(&m).unwrap();
            let x = small_input(cols);
            let yf = float.matvec(&x);
            let yq = fixed.matvec(&x);
            let err = linf_distance(&yf, &yq);
            // Error budget: ~n rounding steps at 2^-16 resolution each,
            // amplified by FFT gain; stay within a generous but
            // meaningful bound.
            assert!(err < 5e-2, "fixed-point error {err} too large at n={n}");
        }
    }

    #[test]
    fn fixed_and_float_entry_points_agree() {
        let m = BlockCirculantMatrix::random(8, 8, 8, 3).unwrap();
        let fixed = FixedSpectralBlockCirculant::new(&m).unwrap();
        let x = small_input(8);
        let via_float = fixed.matvec(&x);
        let qx: Vec<Q16_16> = x.iter().map(|&v| Q16_16::from_f64(v)).collect();
        let via_fixed: Vec<f64> =
            fixed.matvec_fixed(&qx).into_iter().map(Q16_16::to_f64).collect();
        assert!(linf_distance(&via_float, &via_fixed) < 1e-12);
    }

    #[test]
    fn scratch_reuse_is_bit_stable() {
        let m = BlockCirculantMatrix::random(16, 12, 8, 7).unwrap();
        let fixed = FixedSpectralBlockCirculant::new(&m).unwrap();
        let mut scratch = FixedSpectralScratch::new();
        for trial in 0..3 {
            let x: Vec<Q16_16> = small_input(12)
                .iter()
                .map(|&v| Q16_16::from_f64(v * (trial as f64 + 1.0)))
                .collect();
            assert_eq!(
                fixed.matvec_fixed_with(&x, &mut scratch),
                fixed.matvec_fixed(&x),
                "warm scratch diverged on trial {trial}"
            );
        }
    }

    #[test]
    fn dimensions_and_spectrum_access() {
        let m = BlockCirculantMatrix::random(10, 6, 4, 5).unwrap();
        let fixed = FixedSpectralBlockCirculant::new(&m).unwrap();
        assert_eq!(fixed.out_dim(), 10);
        assert_eq!(fixed.in_dim(), 6);
        assert_eq!(fixed.block_size(), 4);
        // Packed storage: n/2 + 1 bins, not n.
        assert_eq!(fixed.spectrum(2, 1).len(), 3);
        assert_eq!(fixed.spectrum_len(), 3);
        assert_eq!(fixed.matvec(&small_input(6)).len(), 10);
    }

    #[test]
    fn saturation_does_not_panic_on_large_values() {
        let m = BlockCirculantMatrix::random(8, 8, 8, 5).unwrap();
        let fixed = FixedSpectralBlockCirculant::new(&m).unwrap();
        // Large inputs saturate rather than overflow.
        let x = vec![30000.0; 8];
        let y = fixed.matvec(&x);
        assert_eq!(y.len(), 8);
        assert!(y.iter().all(|v| v.is_finite()));
    }
}
