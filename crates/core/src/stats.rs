//! Compression accounting — the SR and TCR columns of Table III.
//!
//! The paper reports two headline ratios for block size `n`:
//!
//! * **Storage Reduction (SR)** `= n`: each `n × n` block stores one row
//!   (`n` values) instead of `n²`.
//! * **Theoretical Computation Reduction (TCR)** `= n / log₂ n`: an
//!   O(n²) block product becomes O(n log n) FFT work. The paper's Table
//!   III values (4.0× at n=16, 6.4× at 32, 10.7× at 64, 18.3× at 128) are
//!   exactly `n / log₂ n`.
//!
//! [`CompressionStats`] also provides exact operation counts (not just
//! asymptotic ratios) used by the profiler and the CPU baseline model.

/// Storage/computation accounting for one block-circulant weight matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionStats {
    /// Logical output dimension `N`.
    pub out_dim: usize,
    /// Logical input dimension `M`.
    pub in_dim: usize,
    /// Block size `n`.
    pub block_size: usize,
    /// Grid rows `p = ⌈N/n⌉`.
    pub grid_rows: usize,
    /// Grid cols `q = ⌈M/n⌉`.
    pub grid_cols: usize,
}

impl CompressionStats {
    /// Builds the stats for an `N × M` matrix with block size `n`.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    #[must_use]
    pub fn for_matrix(out_dim: usize, in_dim: usize, block_size: usize) -> Self {
        assert!(
            out_dim > 0 && in_dim > 0 && block_size > 0,
            "compression stats need non-zero dimensions"
        );
        Self {
            out_dim,
            in_dim,
            block_size,
            grid_rows: out_dim.div_ceil(block_size),
            grid_cols: in_dim.div_ceil(block_size),
        }
    }

    /// The paper's Storage Reduction column: `SR = n`.
    #[must_use]
    pub fn storage_reduction(&self) -> f64 {
        self.block_size as f64
    }

    /// The paper's Theoretical Computation Reduction column:
    /// `TCR = n / log₂ n` (defined as 1.0 for the uncompressed `n = 1`).
    #[must_use]
    pub fn theoretical_computation_reduction(&self) -> f64 {
        if self.block_size <= 1 {
            1.0
        } else {
            self.block_size as f64 / (self.block_size as f64).log2()
        }
    }

    /// Parameters of the dense matrix: `N·M`.
    #[must_use]
    pub fn dense_params(&self) -> usize {
        self.out_dim * self.in_dim
    }

    /// Parameters actually stored: `p·q·n` kernel entries.
    #[must_use]
    pub fn compressed_params(&self) -> usize {
        self.grid_rows * self.grid_cols * self.block_size
    }

    /// Measured storage ratio `dense / compressed` (equals `n` when both
    /// dimensions divide evenly; slightly less with padding).
    #[must_use]
    pub fn measured_storage_ratio(&self) -> f64 {
        self.dense_params() as f64 / self.compressed_params() as f64
    }

    /// Real multiply–add count of the dense product: `N·M` MACs.
    #[must_use]
    pub fn dense_macs(&self) -> usize {
        self.out_dim * self.in_dim
    }

    /// Real-operation estimate of Algorithm 1 per input vector, counting:
    /// `q` forward FFTs + `p·q` complex element-wise MAC passes (4 real
    /// multiplies + 4 real adds per complex MAC) + `p` inverse FFTs, each
    /// FFT costing `5·n·log₂n` real ops (the standard radix-2 flop count).
    #[must_use]
    pub fn spectral_ops(&self) -> usize {
        let n = self.block_size;
        if n == 1 {
            return self.dense_macs();
        }
        let logn = (n as f64).log2() as usize;
        let fft_cost = 5 * n * logn;
        let mac_cost = 8 * n;
        self.grid_cols * fft_cost
            + self.grid_rows * self.grid_cols * mac_cost
            + self.grid_rows * fft_cost
    }

    /// Measured operation ratio `dense_macs·2 / spectral_ops` (a dense MAC
    /// is 2 real ops). For large matrices this approaches TCR up to the
    /// constant factors the asymptotic ratio hides.
    #[must_use]
    pub fn measured_op_ratio(&self) -> f64 {
        2.0 * self.dense_macs() as f64 / self.spectral_ops() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_tcr_column_is_reproduced() {
        // Paper Table III: n -> TCR
        let expect = [(16usize, 4.0f64), (32, 6.4), (64, 10.7), (128, 18.3)];
        for (n, tcr) in expect {
            let s = CompressionStats::for_matrix(512, 512, n);
            let got = s.theoretical_computation_reduction();
            assert!(
                (got - tcr).abs() < 0.05,
                "TCR at n={n}: computed {got:.2}, paper says {tcr}"
            );
        }
    }

    #[test]
    fn table3_sr_column_is_reproduced() {
        for n in [1usize, 16, 32, 64, 128] {
            let s = CompressionStats::for_matrix(512, 512, n);
            assert_eq!(s.storage_reduction(), n as f64);
            if 512 % n == 0 {
                assert_eq!(s.measured_storage_ratio(), n as f64);
            }
        }
    }

    #[test]
    fn uncompressed_baseline_is_neutral() {
        let s = CompressionStats::for_matrix(512, 512, 1);
        assert_eq!(s.theoretical_computation_reduction(), 1.0);
        assert_eq!(s.storage_reduction(), 1.0);
        assert_eq!(s.compressed_params(), s.dense_params());
    }

    #[test]
    fn padding_reduces_measured_ratio() {
        // 100x100 with n=64 pads to 128x128: measured < theoretical.
        let s = CompressionStats::for_matrix(100, 100, 64);
        assert_eq!(s.grid_rows, 2);
        assert_eq!(s.grid_cols, 2);
        assert!(s.measured_storage_ratio() < 64.0);
        assert!(s.measured_storage_ratio() > 30.0);
    }

    #[test]
    fn spectral_ops_beat_dense_for_paper_shapes() {
        // At the paper's layer shape (512x512) every block size wins.
        for n in [16usize, 32, 64, 128] {
            let s = CompressionStats::for_matrix(512, 512, n);
            assert!(s.spectral_ops() < 2 * s.dense_macs(), "spectral should win at n={n}");
            assert!(s.measured_op_ratio() > 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = CompressionStats::for_matrix(0, 4, 2);
    }
}
