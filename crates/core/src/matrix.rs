//! The partitioned block-circulant matrix.

use crate::block::CirculantBlock;
use crate::error::CirculantError;
use crate::stats::CompressionStats;
use blockgnn_linalg::init::InitRng;
use blockgnn_linalg::Matrix;

/// A logically `N × M` matrix stored as `p × q` circulant blocks of size
/// `n × n`, with `p = ⌈N/n⌉` and `q = ⌈M/n⌉`.
///
/// Rows/columns beyond the logical dimensions are zero-padded, exactly as
/// §III-A of the paper prescribes ("if M or N is not divisible by n, just
/// use zero-padding"): inputs are padded with zeros before the product and
/// outputs are truncated back to `N`.
///
/// ```
/// use blockgnn_core::BlockCirculantMatrix;
/// let bcm = BlockCirculantMatrix::random(10, 6, 4, 1).unwrap();
/// assert_eq!((bcm.grid_rows(), bcm.grid_cols()), (3, 2)); // p=⌈10/4⌉, q=⌈6/4⌉
/// assert_eq!(bcm.to_dense().shape(), (10, 6));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BlockCirculantMatrix {
    out_dim: usize,
    in_dim: usize,
    block_size: usize,
    grid_rows: usize,
    grid_cols: usize,
    /// Blocks in row-major grid order: index `i * grid_cols + j`.
    blocks: Vec<CirculantBlock>,
}

impl BlockCirculantMatrix {
    /// Assembles a matrix from pre-built blocks.
    ///
    /// # Errors
    ///
    /// * [`CirculantError::EmptyDimension`] if a dimension is zero.
    /// * [`CirculantError::BadBlockSize`] if `block_size` is zero.
    /// * [`CirculantError::BadKernelLayout`] if the number of blocks is not
    ///   `⌈N/n⌉ · ⌈M/n⌉` or any block has the wrong size.
    pub fn new(
        out_dim: usize,
        in_dim: usize,
        block_size: usize,
        blocks: Vec<CirculantBlock>,
    ) -> Result<Self, CirculantError> {
        if out_dim == 0 || in_dim == 0 {
            return Err(CirculantError::EmptyDimension);
        }
        if block_size == 0 {
            return Err(CirculantError::BadBlockSize { n: 0, reason: "must be non-zero" });
        }
        let grid_rows = out_dim.div_ceil(block_size);
        let grid_cols = in_dim.div_ceil(block_size);
        if blocks.len() != grid_rows * grid_cols {
            return Err(CirculantError::BadKernelLayout {
                what: format!(
                    "expected {} blocks ({grid_rows}x{grid_cols} grid), got {}",
                    grid_rows * grid_cols,
                    blocks.len()
                ),
            });
        }
        if let Some(bad) = blocks.iter().position(|b| b.size() != block_size) {
            return Err(CirculantError::BadKernelLayout {
                what: format!(
                    "block {bad} has size {} but the grid uses {block_size}",
                    blocks[bad].size()
                ),
            });
        }
        Ok(Self { out_dim, in_dim, block_size, grid_rows, grid_cols, blocks })
    }

    /// Builds a matrix from raw kernels (first columns) in row-major grid
    /// order.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BlockCirculantMatrix::new`].
    pub fn from_kernels(
        out_dim: usize,
        in_dim: usize,
        block_size: usize,
        kernels: Vec<Vec<f64>>,
    ) -> Result<Self, CirculantError> {
        for (idx, k) in kernels.iter().enumerate() {
            if k.len() != block_size {
                return Err(CirculantError::BadKernelLayout {
                    what: format!(
                        "kernel {idx} has length {} but block size is {block_size}",
                        k.len()
                    ),
                });
            }
        }
        let blocks = kernels.into_iter().map(CirculantBlock::from_kernel).collect();
        Self::new(out_dim, in_dim, block_size, blocks)
    }

    /// Random variance-matched initialization (Xavier scaled by `1/√n`),
    /// the initialization used when training compressed GNNs from scratch.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BlockCirculantMatrix::new`].
    pub fn random(
        out_dim: usize,
        in_dim: usize,
        block_size: usize,
        seed: u64,
    ) -> Result<Self, CirculantError> {
        if out_dim == 0 || in_dim == 0 {
            return Err(CirculantError::EmptyDimension);
        }
        if block_size == 0 {
            return Err(CirculantError::BadBlockSize { n: 0, reason: "must be non-zero" });
        }
        let dense_bound = (6.0 / (out_dim as f64 + in_dim as f64)).sqrt();
        let bound = dense_bound / (block_size as f64).sqrt();
        let grid_rows = out_dim.div_ceil(block_size);
        let grid_cols = in_dim.div_ceil(block_size);
        let mut rng = InitRng::new(seed);
        let kernels: Vec<Vec<f64>> = (0..grid_rows * grid_cols)
            .map(|_| (0..block_size).map(|_| rng.uniform(-bound, bound)).collect())
            .collect();
        Self::from_kernels(out_dim, in_dim, block_size, kernels)
    }

    /// Compresses a dense matrix by projecting each (zero-padded) block
    /// onto the circulant subspace — the Frobenius-nearest block-circulant
    /// matrix with this partitioning.
    ///
    /// # Errors
    ///
    /// * [`CirculantError::EmptyDimension`] if `dense` is empty.
    /// * [`CirculantError::BadBlockSize`] if `block_size` is zero.
    pub fn from_dense(dense: &Matrix, block_size: usize) -> Result<Self, CirculantError> {
        let (out_dim, in_dim) = dense.shape();
        if out_dim == 0 || in_dim == 0 {
            return Err(CirculantError::EmptyDimension);
        }
        if block_size == 0 {
            return Err(CirculantError::BadBlockSize { n: 0, reason: "must be non-zero" });
        }
        let grid_rows = out_dim.div_ceil(block_size);
        let grid_cols = in_dim.div_ceil(block_size);
        let mut blocks = Vec::with_capacity(grid_rows * grid_cols);
        for bi in 0..grid_rows {
            for bj in 0..grid_cols {
                let sub = Matrix::from_fn(block_size, block_size, |r, s| {
                    let (gi, gj) = (bi * block_size + r, bj * block_size + s);
                    if gi < out_dim && gj < in_dim {
                        dense[(gi, gj)]
                    } else {
                        0.0
                    }
                });
                blocks.push(CirculantBlock::project_from_dense(&sub)?);
            }
        }
        Self::new(out_dim, in_dim, block_size, blocks)
    }

    /// Logical output dimension `N`.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Logical input dimension `M`.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Circulant block size `n`.
    #[must_use]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Grid rows `p = ⌈N/n⌉`.
    #[must_use]
    pub fn grid_rows(&self) -> usize {
        self.grid_rows
    }

    /// Grid columns `q = ⌈M/n⌉`.
    #[must_use]
    pub fn grid_cols(&self) -> usize {
        self.grid_cols
    }

    /// Padded output dimension `p·n`.
    #[must_use]
    pub fn padded_out_dim(&self) -> usize {
        self.grid_rows * self.block_size
    }

    /// Padded input dimension `q·n`.
    #[must_use]
    pub fn padded_in_dim(&self) -> usize {
        self.grid_cols * self.block_size
    }

    /// Borrows the block at grid position `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are outside the `p × q` grid.
    #[must_use]
    pub fn block(&self, i: usize, j: usize) -> &CirculantBlock {
        assert!(
            i < self.grid_rows && j < self.grid_cols,
            "block ({i},{j}) outside {}x{} grid",
            self.grid_rows,
            self.grid_cols
        );
        &self.blocks[i * self.grid_cols + j]
    }

    /// Iterates over `(grid_i, grid_j, block)` in row-major order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (usize, usize, &CirculantBlock)> {
        let q = self.grid_cols;
        self.blocks.iter().enumerate().map(move |(idx, b)| (idx / q, idx % q, b))
    }

    /// Replaces the kernel of block `(i, j)`; used by optimizers updating
    /// circulant parameters in place.
    ///
    /// # Errors
    ///
    /// Returns [`CirculantError::BadKernelLayout`] if the kernel length is
    /// not the block size, or [`CirculantError::DimensionMismatch`] if the
    /// grid position is out of range.
    pub fn set_kernel(
        &mut self,
        i: usize,
        j: usize,
        kernel: Vec<f64>,
    ) -> Result<(), CirculantError> {
        if i >= self.grid_rows || j >= self.grid_cols {
            return Err(CirculantError::DimensionMismatch {
                expected: self.grid_rows * self.grid_cols,
                got: i * self.grid_cols + j,
            });
        }
        if kernel.len() != self.block_size {
            return Err(CirculantError::BadKernelLayout {
                what: format!(
                    "kernel length {} does not match block size {}",
                    kernel.len(),
                    self.block_size
                ),
            });
        }
        self.blocks[i * self.grid_cols + j] = CirculantBlock::from_kernel(kernel);
        Ok(())
    }

    /// Expands to the logical `N × M` dense matrix (padding truncated).
    #[must_use]
    pub fn to_dense(&self) -> Matrix {
        let n = self.block_size;
        Matrix::from_fn(self.out_dim, self.in_dim, |i, j| {
            self.block(i / n, j / n).entry(i % n, j % n)
        })
    }

    /// Expands to the padded `p·n × q·n` dense matrix.
    #[must_use]
    pub fn to_dense_padded(&self) -> Matrix {
        let n = self.block_size;
        Matrix::from_fn(self.padded_out_dim(), self.padded_in_dim(), |i, j| {
            self.block(i / n, j / n).entry(i % n, j % n)
        })
    }

    /// The transpose, still block-circulant: a `q × p` grid whose `(j, i)`
    /// block is the transpose of block `(i, j)`.
    ///
    /// Note the transpose is taken over the **padded** matrix, so its
    /// logical dimensions are `q·n × p·n` truncated to `M × N`; callers
    /// backpropagating through a padded product should pad/truncate
    /// consistently (this is what `blockgnn-nn`'s circulant layer does).
    #[must_use]
    pub fn transpose(&self) -> BlockCirculantMatrix {
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for j in 0..self.grid_cols {
            for i in 0..self.grid_rows {
                blocks.push(self.block(i, j).transpose());
            }
        }
        BlockCirculantMatrix {
            out_dim: self.in_dim,
            in_dim: self.out_dim,
            block_size: self.block_size,
            grid_rows: self.grid_cols,
            grid_cols: self.grid_rows,
            blocks,
        }
    }

    /// Direct spatial-domain product `y = W·x`: each block multiplies its
    /// input sub-vector in O(n²). This is the correctness reference for
    /// the spectral paths and the compute model for the *uncompressed*
    /// baselines.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    #[must_use]
    pub fn matvec_direct(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "matvec input length must equal in_dim");
        let n = self.block_size;
        let mut padded_x = x.to_vec();
        padded_x.resize(self.padded_in_dim(), 0.0);
        let mut y = vec![0.0; self.padded_out_dim()];
        for (i, j, block) in self.iter_blocks() {
            let sub = &padded_x[j * n..(j + 1) * n];
            let part = block.matvec(sub).expect("sub-vector length equals block size");
            for (acc, v) in y[i * n..(i + 1) * n].iter_mut().zip(&part) {
                *acc += v;
            }
        }
        y.truncate(self.out_dim);
        y
    }

    /// Compression statistics for this matrix (storage and FLOP
    /// accounting per Table III).
    #[must_use]
    pub fn stats(&self) -> CompressionStats {
        CompressionStats::for_matrix(self.out_dim, self.in_dim, self.block_size)
    }

    /// On-chip footprint of this matrix's spectra in the accelerator's
    /// Weight Buffer: one complex Q16.16 bin (8 bytes) per retained
    /// frequency of every block. The Weight Buffer holds the packed
    /// Hermitian half-spectrum ([`blockgnn_fft::half_spectrum_bins`]:
    /// `n/2 + 1` bins per block, not `n` — the mirrored bins are
    /// conjugates of stored ones and would be redundant registers), so
    /// the resident bytes are roughly half the full-spectrum accounting.
    #[must_use]
    pub fn spectral_weight_bytes(&self) -> usize {
        self.grid_rows()
            * self.grid_cols()
            * blockgnn_fft::half_spectrum_bins(self.block_size())
            * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockgnn_linalg::vector::linf_distance;
    use proptest::prelude::*;

    #[test]
    fn grid_geometry_with_padding() {
        let m = BlockCirculantMatrix::random(10, 6, 4, 0).unwrap();
        assert_eq!(m.grid_rows(), 3);
        assert_eq!(m.grid_cols(), 2);
        assert_eq!(m.padded_out_dim(), 12);
        assert_eq!(m.padded_in_dim(), 8);
        assert_eq!(m.out_dim(), 10);
        assert_eq!(m.in_dim(), 6);
        assert_eq!(m.block_size(), 4);
    }

    #[test]
    fn constructor_validation() {
        assert_eq!(
            BlockCirculantMatrix::random(0, 4, 2, 0).unwrap_err(),
            CirculantError::EmptyDimension
        );
        assert!(matches!(
            BlockCirculantMatrix::random(4, 4, 0, 0).unwrap_err(),
            CirculantError::BadBlockSize { .. }
        ));
        // wrong number of blocks
        let err =
            BlockCirculantMatrix::from_kernels(4, 4, 2, vec![vec![0.0; 2]; 3]).unwrap_err();
        assert!(matches!(err, CirculantError::BadKernelLayout { .. }));
        // wrong kernel length
        let err =
            BlockCirculantMatrix::from_kernels(4, 4, 2, vec![vec![0.0; 3]; 4]).unwrap_err();
        assert!(matches!(err, CirculantError::BadKernelLayout { .. }));
    }

    #[test]
    fn dense_round_trip_when_divisible() {
        // Start from an exactly block-circulant dense matrix; projection
        // must recover it bit-for-bit.
        let original = BlockCirculantMatrix::random(8, 8, 4, 3).unwrap();
        let dense = original.to_dense();
        let recovered = BlockCirculantMatrix::from_dense(&dense, 4).unwrap();
        assert!(original.to_dense().linf_distance(&recovered.to_dense()) < 1e-12);
    }

    #[test]
    fn matvec_direct_matches_dense() {
        for (rows, cols, n) in [(8, 8, 4), (10, 6, 4), (5, 13, 8), (16, 16, 16)] {
            let m = BlockCirculantMatrix::random(rows, cols, n, 7).unwrap();
            let x: Vec<f64> = (0..cols).map(|i| (i as f64 * 0.3).sin()).collect();
            let fast = m.matvec_direct(&x);
            let slow = m.to_dense().matvec(&x);
            assert!(linf_distance(&fast, &slow) < 1e-10, "mismatch at {rows}x{cols} n={n}");
        }
    }

    #[test]
    fn padded_dense_agrees_with_logical_dense() {
        let m = BlockCirculantMatrix::random(10, 6, 4, 9).unwrap();
        let padded = m.to_dense_padded();
        let logical = m.to_dense();
        for i in 0..10 {
            for j in 0..6 {
                assert_eq!(padded[(i, j)], logical[(i, j)]);
            }
        }
        assert_eq!(padded.shape(), (12, 8));
    }

    #[test]
    fn transpose_matches_padded_dense_transpose() {
        let m = BlockCirculantMatrix::random(10, 6, 4, 11).unwrap();
        let t = m.transpose();
        assert_eq!(t.out_dim(), 6);
        assert_eq!(t.in_dim(), 10);
        assert_eq!(t.to_dense_padded().linf_distance(&m.to_dense_padded().transpose()), 0.0);
    }

    #[test]
    fn set_kernel_updates_block() {
        let mut m = BlockCirculantMatrix::random(4, 4, 2, 0).unwrap();
        m.set_kernel(1, 1, vec![9.0, 8.0]).unwrap();
        assert_eq!(m.block(1, 1).kernel(), &[9.0, 8.0]);
        assert!(m.set_kernel(2, 0, vec![0.0, 0.0]).is_err());
        assert!(m.set_kernel(0, 0, vec![0.0]).is_err());
    }

    #[test]
    fn from_dense_is_frobenius_projection() {
        // Compressing and re-expanding can only reduce the distance to any
        // other block-circulant matrix with the same partitioning.
        let dense = Matrix::from_fn(6, 6, |i, j| ((i * 7 + j * 3) % 5) as f64 - 2.0);
        let proj = BlockCirculantMatrix::from_dense(&dense, 3).unwrap();
        let err_proj = (&proj.to_dense() - &dense).frobenius_norm();
        let other = BlockCirculantMatrix::random(6, 6, 3, 21).unwrap();
        let err_other = (&other.to_dense() - &dense).frobenius_norm();
        assert!(err_proj <= err_other + 1e-12);
    }

    #[test]
    fn iter_blocks_covers_grid_in_order() {
        let m = BlockCirculantMatrix::random(4, 6, 2, 5).unwrap();
        let coords: Vec<(usize, usize)> = m.iter_blocks().map(|(i, j, _)| (i, j)).collect();
        assert_eq!(coords, vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]);
    }

    proptest! {
        #[test]
        fn prop_matvec_direct_equals_dense(
            seed in 0u64..1000,
            rows in 1usize..20,
            cols in 1usize..20,
            n in 1usize..8,
        ) {
            let m = BlockCirculantMatrix::random(rows, cols, n, seed).unwrap();
            let x: Vec<f64> = (0..cols).map(|i| ((i + 1) as f64 * 0.17).cos()).collect();
            let fast = m.matvec_direct(&x);
            let slow = m.to_dense().matvec(&x);
            prop_assert!(linf_distance(&fast, &slow) < 1e-9);
        }
    }
}
