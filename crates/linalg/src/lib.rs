//! Dense linear algebra substrate for the BlockGNN reproduction.
//!
//! Everything the uncompressed baseline needs: a row-major [`Matrix`] with
//! GEMM/GEMV kernels, slice-level vector operations ([`vector`]), and the
//! weight initializers used when training GNNs ([`init`]).
//!
//! The paper compares block-circulant O(n log n) inference against dense
//! O(n²) matrix–vector products (its CPU and HyGCN baselines); the kernels
//! here *are* that dense baseline, so they are written straightforwardly —
//! a cache-friendly i-k-j GEMM, no SIMD intrinsics — to keep the
//! comparison honest and portable.
//!
//! # Example
//!
//! ```
//! use blockgnn_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
//! let x = vec![1.0, 1.0];
//! assert_eq!(a.matvec(&x), vec![3.0, 7.0]);
//! ```

#![deny(missing_docs)]

pub mod init;
pub mod matrix;
pub mod vector;

pub use matrix::{Matrix, ShapeError};
