//! Weight initializers for GNN training.
//!
//! The accuracy experiments (Table III) train two-layer GNNs from random
//! initializations; the choices here follow the GraphSAGE reference
//! implementation the paper builds on: Glorot/Xavier uniform for dense
//! layers and a variance-matched variant for circulant first rows.

use blockgnn_linalg_rng::SplitMix64;

use crate::matrix::Matrix;

/// A tiny deterministic RNG so initializer behaviour is reproducible
/// across platforms without depending on `rand`'s version-to-version
/// stream stability.
mod blockgnn_linalg_rng {
    /// SplitMix64: tiny, high-quality, and stable across releases.
    #[derive(Debug, Clone)]
    pub struct SplitMix64 {
        state: u64,
    }

    impl SplitMix64 {
        /// Creates a generator from a seed.
        #[must_use]
        pub fn new(seed: u64) -> Self {
            Self { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in `[lo, hi)`.
        pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
            lo + (hi - lo) * self.next_f64()
        }
    }
}

pub use blockgnn_linalg_rng::SplitMix64 as InitRng;

/// Glorot/Xavier uniform initialization: entries drawn from
/// `U(-√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out)))`.
///
/// ```
/// use blockgnn_linalg::init::xavier_uniform;
/// let w = xavier_uniform(64, 32, 42);
/// assert_eq!(w.shape(), (64, 32));
/// let bound = (6.0_f64 / (64.0 + 32.0)).sqrt();
/// assert!(w.as_slice().iter().all(|v| v.abs() <= bound));
/// ```
#[must_use]
pub fn xavier_uniform(rows: usize, cols: usize, seed: u64) -> Matrix {
    let bound = (6.0 / (rows as f64 + cols as f64)).sqrt();
    let mut rng = SplitMix64::new(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.uniform(-bound, bound))
}

/// Kaiming/He uniform initialization for ReLU networks:
/// `U(-√(6/fan_in), +√(6/fan_in))`.
#[must_use]
pub fn kaiming_uniform(rows: usize, cols: usize, seed: u64) -> Matrix {
    let bound = (6.0 / cols as f64).sqrt();
    let mut rng = SplitMix64::new(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.uniform(-bound, bound))
}

/// Uniform initialization in `[-bound, bound]`.
#[must_use]
pub fn uniform(rows: usize, cols: usize, bound: f64, seed: u64) -> Matrix {
    let mut rng = SplitMix64::new(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.uniform(-bound, bound))
}

/// A vector of uniform values in `[-bound, bound]`; used for biases and
/// circulant first rows.
#[must_use]
pub fn uniform_vec(len: usize, bound: f64, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    (0..len).map(|_| rng.uniform(-bound, bound)).collect()
}

/// Variance-matched initializer for a block-circulant layer.
///
/// A circulant block reuses each first-row entry `n` times, so to keep the
/// layer's output variance equal to a dense Xavier layer the per-entry
/// bound must shrink by `√n`. `rows`/`cols` are the *logical* (unpadded)
/// dimensions; `block` is the circulant block size `n`.
#[must_use]
pub fn circulant_xavier_rows(
    rows: usize,
    cols: usize,
    block: usize,
    seed: u64,
) -> Vec<Vec<f64>> {
    let p = rows.div_ceil(block);
    let q = cols.div_ceil(block);
    let dense_bound = (6.0 / (rows as f64 + cols as f64)).sqrt();
    let bound = dense_bound / (block as f64).sqrt();
    let mut rng = SplitMix64::new(seed);
    (0..p * q).map(|_| (0..block).map(|_| rng.uniform(-bound, bound)).collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_is_deterministic_per_seed() {
        let a = xavier_uniform(8, 8, 7);
        let b = xavier_uniform(8, 8, 7);
        let c = xavier_uniform(8, 8, 8);
        assert_eq!(a, b);
        assert!(a.linf_distance(&c) > 0.0);
    }

    #[test]
    fn xavier_respects_bound() {
        let w = xavier_uniform(100, 50, 1);
        let bound = (6.0 / 150.0_f64).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= bound));
        // and actually uses the range (not degenerate)
        assert!(w.as_slice().iter().any(|v| v.abs() > bound * 0.5));
    }

    #[test]
    fn kaiming_bound_uses_fan_in() {
        let w = kaiming_uniform(10, 40, 3);
        let bound = (6.0 / 40.0_f64).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn circulant_rows_shape_and_bound() {
        let rows = circulant_xavier_rows(100, 70, 32, 5);
        // p = ceil(100/32) = 4, q = ceil(70/32) = 3
        assert_eq!(rows.len(), 12);
        assert!(rows.iter().all(|r| r.len() == 32));
        let dense_bound = (6.0 / 170.0_f64).sqrt();
        let bound = dense_bound / 32.0_f64.sqrt();
        assert!(rows.iter().flatten().all(|v| v.abs() <= bound));
    }

    #[test]
    fn uniform_vec_length_and_range() {
        let v = uniform_vec(1000, 0.1, 9);
        assert_eq!(v.len(), 1000);
        assert!(v.iter().all(|x| x.abs() <= 0.1));
        let mean: f64 = v.iter().sum::<f64>() / 1000.0;
        assert!(mean.abs() < 0.02, "mean {mean} suspiciously far from 0");
    }

    #[test]
    fn splitmix_uniform_covers_range() {
        let mut rng = InitRng::new(123);
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for _ in 0..10_000 {
            let v = rng.uniform(-1.0, 1.0);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < -0.99 && hi > 0.99);
    }
}
