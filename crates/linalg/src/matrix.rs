//! Row-major dense matrix over `f64`.

use std::error::Error;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// Error raised when matrix shapes are incompatible for an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable description of the shape conflict.
    pub what: String,
}

impl ShapeError {
    /// Creates a shape error with the given description.
    #[must_use]
    pub fn new(what: impl Into<String>) -> Self {
        Self { what: what.into() }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape mismatch: {}", self.what)
    }
}

impl Error for ShapeError {}

/// A dense row-major matrix of `f64` values.
///
/// This is the uncompressed weight representation the paper's baselines
/// use; `blockgnn-core` converts it to and from block-circulant form.
///
/// ```
/// use blockgnn_linalg::Matrix;
/// let m = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
/// assert_eq!(m[(1, 2)], 5.0);
/// assert_eq!(m.transpose()[(2, 1)], 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    #[must_use]
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix by evaluating `f(i, j)` for every entry.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, ShapeError> {
        let cols = rows.first().map_or(0, Vec::len);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(ShapeError::new(format!(
                    "row {i} has length {} but row 0 has length {cols}",
                    r.len()
                )));
            }
        }
        Ok(Self { rows: rows.len(), cols, data: rows.concat() })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new(format!(
                "flat buffer of {} values cannot fill a {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reshapes in place to `rows × cols`, reusing the existing
    /// allocation where possible. Entry values after the call are
    /// unspecified (a mix of retained old data and zeros) — this is the
    /// buffer-recycling primitive for write-into kernels that overwrite
    /// every entry (e.g. `NormalizedAdjacency::apply_into` in
    /// `blockgnn-gnn`), not a semantic resize.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({} rows)", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({} rows)", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    #[must_use]
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({} cols)", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// The underlying row-major buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The underlying row-major buffer, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Matrix–vector product `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    #[must_use]
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec input length must equal cols");
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *yi = acc;
        }
        y
    }

    /// Transposed matrix–vector product `y = Aᵀ·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    #[must_use]
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_t input length must equal rows");
        let mut y = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            let row = self.row(i);
            for (yj, &a) in y.iter_mut().zip(row) {
                *yj += a * xi;
            }
        }
        y
    }

    /// Matrix product `C = A·B` with a cache-friendly i-k-j loop.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != rhs.rows {
            return Err(ShapeError::new(format!(
                "cannot multiply {}x{} by {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(rrow) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Returns the transpose `Aᵀ`.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Scales every entry by `k`, in place.
    pub fn scale_in_place(&mut self, k: f64) {
        for v in &mut self.data {
            *v *= k;
        }
    }

    /// Returns a copy scaled by `k`.
    #[must_use]
    pub fn scaled(&self, k: f64) -> Matrix {
        let mut m = self.clone();
        m.scale_in_place(k);
        m
    }

    /// Frobenius norm `√(Σ a_ij²)`.
    #[must_use]
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry difference between two equally-shaped
    /// matrices; used by tests and by the compression-error reports.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    #[must_use]
    pub fn linf_distance(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "linf_distance requires equal shapes");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }

    /// Appends `other` to the right: `[self | other]`.
    ///
    /// The GS-Pool combiner operates on the concatenation `(a_v | h_v)`
    /// (Table I); this helper builds such concatenated feature matrices.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if row counts differ.
    pub fn hconcat(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.rows != other.rows {
            return Err(ShapeError::new(format!(
                "hconcat row mismatch: {} vs {}",
                self.rows, other.rows
            )));
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        Ok(out)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix addition requires equal shapes");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    /// Element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix subtraction requires equal shapes");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "matrix addition requires equal shapes");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "matrix subtraction requires equal shapes");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, k: f64) -> Matrix {
        self.scaled(k)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for i in 0..show_rows {
            write!(f, "  [")?;
            let show_cols = self.cols.min(8);
            for j in 0..show_cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self[(i, j)])?;
            }
            if self.cols > show_cols {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m[(2, 1)], 5.0);
        assert_eq!(m.row(1), &[2.0, 3.0]);
        assert_eq!(m.col(0), vec![0.0, 2.0, 4.0]);
    }

    #[test]
    fn from_rows_validates_lengths() {
        let err = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert!(err.to_string().contains("row 1"));
        let ok = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(ok[(1, 0)], 3.0);
    }

    #[test]
    fn from_flat_validates_size() {
        assert!(Matrix::from_flat(2, 2, vec![1.0; 3]).is_err());
        let m = Matrix::from_flat(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    fn identity_matvec_is_identity() {
        let id = Matrix::identity(4);
        let x = vec![1.0, -2.0, 3.5, 0.0];
        assert_eq!(id.matvec(&x), x);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]).unwrap());
    }

    #[test]
    fn matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_t_matches_transpose_matvec() {
        let a = Matrix::from_fn(3, 4, |i, j| (i + j * 2) as f64);
        let x = vec![1.0, -1.0, 2.0];
        assert_eq!(a.matvec_t(&x), a.transpose().matvec(&x));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn hconcat_concatenates_columns() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let c = a.hconcat(&b).unwrap();
        assert_eq!(c.row(0), &[1.0, 3.0, 4.0]);
        assert_eq!(c.row(1), &[2.0, 5.0, 6.0]);
        assert!(a.hconcat(&Matrix::zeros(3, 1)).is_err());
    }

    #[test]
    fn arithmetic_operators() {
        let a = Matrix::filled(2, 2, 2.0);
        let b = Matrix::filled(2, 2, 0.5);
        assert_eq!((&a + &b)[(0, 0)], 2.5);
        assert_eq!((&a - &b)[(1, 1)], 1.5);
        assert_eq!((&a * 3.0)[(0, 1)], 6.0);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c[(0, 0)], 2.5);
        c -= &b;
        assert_eq!(c[(0, 0)], 2.0);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]).unwrap();
        assert_eq!(a.frobenius_norm(), 5.0);
        let b = Matrix::zeros(2, 2);
        assert_eq!(a.linf_distance(&b), 4.0);
    }

    #[test]
    fn display_truncates_large_matrices() {
        let m = Matrix::zeros(10, 12);
        let s = format!("{m}");
        assert!(s.contains('…'));
        assert!(s.contains("10x12"));
    }

    proptest! {
        #[test]
        fn prop_matmul_associative_with_vector(
            vals_a in proptest::collection::vec(-5.0f64..5.0, 12),
            vals_b in proptest::collection::vec(-5.0f64..5.0, 20),
            x in proptest::collection::vec(-5.0f64..5.0, 5),
        ) {
            // (A·B)·x == A·(B·x)
            let a = Matrix::from_flat(3, 4, vals_a).unwrap();
            let b = Matrix::from_flat(4, 5, vals_b).unwrap();
            let lhs = a.matmul(&b).unwrap().matvec(&x);
            let rhs = a.matvec(&b.matvec(&x));
            for (p, q) in lhs.iter().zip(&rhs) {
                prop_assert!((p - q).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_transpose_respects_matvec(
            vals in proptest::collection::vec(-5.0f64..5.0, 12),
            x in proptest::collection::vec(-5.0f64..5.0, 3),
            y in proptest::collection::vec(-5.0f64..5.0, 4),
        ) {
            // <A·y, x> == <y, Aᵀ·x>
            let a = Matrix::from_flat(3, 4, vals).unwrap();
            let ay = a.matvec(&y);
            let atx = a.matvec_t(&x);
            let lhs: f64 = ay.iter().zip(&x).map(|(p, q)| p * q).sum();
            let rhs: f64 = y.iter().zip(&atx).map(|(p, q)| p * q).sum();
            prop_assert!((lhs - rhs).abs() < 1e-9);
        }
    }
}
