//! Slice-level vector kernels.
//!
//! These free functions are the scalar building blocks of both the
//! software GNN implementations and the VPU functional model (the paper's
//! VPU executes exactly these ops: vector–vector add/multiply, scalar
//! scaling, max-pooling, and non-linear activations).

/// Dot product `Σ aᵢ·bᵢ`.
///
/// # Panics
///
/// Panics if lengths differ.
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// In-place `y += alpha * x` (the BLAS `axpy`).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy requires equal lengths");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Element-wise (Hadamard) product, returning a new vector.
///
/// # Panics
///
/// Panics if lengths differ.
#[must_use]
pub fn hadamard(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "hadamard requires equal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).collect()
}

/// Element-wise sum, returning a new vector.
///
/// # Panics
///
/// Panics if lengths differ.
#[must_use]
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add requires equal lengths");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// In-place element-wise maximum `y[i] = max(y[i], x[i])`, the kernel of
/// the GS-Pool max aggregator.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn max_in_place(y: &mut [f64], x: &[f64]) {
    assert_eq!(x.len(), y.len(), "max_in_place requires equal lengths");
    for (yi, &xi) in y.iter_mut().zip(x) {
        if xi > *yi {
            *yi = xi;
        }
    }
}

/// Scales a vector in place.
pub fn scale_in_place(y: &mut [f64], k: f64) {
    for v in y {
        *v *= k;
    }
}

/// Index of the maximum element (first on ties); `None` on empty input.
#[must_use]
pub fn argmax(x: &[f64]) -> Option<usize> {
    if x.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &v) in x.iter().enumerate().skip(1) {
        if v > x[best] {
            best = i;
        }
    }
    Some(best)
}

/// Euclidean norm.
#[must_use]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Numerically-stable softmax (subtracts the maximum before
/// exponentiating). Returns an all-zero vector for empty input.
#[must_use]
pub fn softmax(x: &[f64]) -> Vec<f64> {
    if x.is_empty() {
        return Vec::new();
    }
    let m = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = x.iter().map(|v| (v - m).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Maximum absolute difference between two vectors.
///
/// # Panics
///
/// Panics if lengths differ.
#[must_use]
pub fn linf_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "linf_distance requires equal lengths");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn hadamard_and_add() {
        assert_eq!(hadamard(&[1.0, 2.0], &[3.0, 4.0]), vec![3.0, 8.0]);
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
    }

    #[test]
    fn max_pooling_kernel() {
        let mut y = vec![1.0, 5.0, -2.0];
        max_in_place(&mut y, &[3.0, 2.0, -1.0]);
        assert_eq!(y, vec![3.0, 5.0, -1.0]);
    }

    #[test]
    fn argmax_cases() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[1.0]), Some(0));
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), Some(1));
        // first wins on ties
        assert_eq!(argmax(&[2.0, 2.0]), Some(0));
    }

    #[test]
    fn softmax_is_a_distribution() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn softmax_handles_large_inputs() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    proptest! {
        #[test]
        fn prop_softmax_shift_invariant(
            xs in proptest::collection::vec(-10.0f64..10.0, 1..16),
            c in -100.0f64..100.0,
        ) {
            let p = softmax(&xs);
            let shifted: Vec<f64> = xs.iter().map(|v| v + c).collect();
            let q = softmax(&shifted);
            prop_assert!(linf_distance(&p, &q) < 1e-9);
        }

        #[test]
        fn prop_dot_is_bilinear(
            xs in proptest::collection::vec(-5.0f64..5.0, 8),
            ys in proptest::collection::vec(-5.0f64..5.0, 8),
            k in -3.0f64..3.0,
        ) {
            let scaled: Vec<f64> = xs.iter().map(|v| v * k).collect();
            prop_assert!((dot(&scaled, &ys) - k * dot(&xs, &ys)).abs() < 1e-9);
        }
    }
}
