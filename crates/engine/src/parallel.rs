//! Partition-parallel serving: shard full-graph (and large sampled)
//! inference across worker threads.
//!
//! §IV-C partitions graphs that exceed the accelerator's memory into
//! sub-graphs processed independently; this module turns that idea into
//! the serving hot path. [`ParallelEngine`] splits the graph into
//! [`GraphPart`]s (contiguous node ranges with their one-hop halos,
//! sized so every part's resident features fit a §IV-B-derived memory
//! budget), forks one [`ExecutionBackend`] replica per worker (prepared
//! weights and cached spectra are `Arc`-shared, see
//! [`blockgnn_nn::ExecMode`]), and executes the model's row-parallel
//! inference stages over a [`std::thread::scope`] pool with a barrier
//! between stages.
//!
//! # Why stages instead of running the whole model per part
//!
//! A two-layer GNN needs the *two-hop* neighborhood of a part to compute
//! its logits in isolation; on anything but spatially local graphs that
//! closure approaches the whole graph, and per-part redundant compute
//! erases the parallel win. Instead each stage computes only its own
//! rows and reads the previous stage's **merged** matrix at a one-hop
//! halo ([`GnnModel::forward_stage`](blockgnn_gnn::GnnModel::forward_stage)) —
//! zero redundant arithmetic, and every row is produced by exactly the
//! same operations as the sequential pass, so merged logits are
//! **bit-identical** to [`crate::Session::infer`] on the dense backend
//! (and within FFT rounding of it on the spectral paths — they are also
//! bit-identical in practice, since each row's FFTs see the same
//! inputs).
//!
//! Per-part hardware cost is still accounted the §IV-C way: the
//! simulated accelerator charges each part's target nodes separately and
//! the per-part [`SimReport`]s merge by summation
//! ([`SimReport::merge`] — cycles combine as in the paper's two-sub-graph
//! Reddit evaluation, energy sums), reproducing the sequential report
//! exactly.

use crate::backend::{BackendKind, BackendOutput, ExecutionBackend, RequestShape};
use crate::engine::Engine;
use crate::error::EngineError;
use crate::request::{ExecOutcome, InferRequest, InferResponse, RequestMode};
use crate::stats::ServeStats;
use blockgnn_accel::SimReport;
use blockgnn_gnn::sampled::SampledSubgraph;
use blockgnn_gnn::ModelKind;
use blockgnn_graph::partition::{partition_contiguous, GraphPart};
use blockgnn_graph::{CsrGraph, Dataset};
use blockgnn_linalg::Matrix;
use blockgnn_perf::resources::NODE_FEATURE_BUFFER_BYTES;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default per-part feature-residency budget: one bank of the §IV-B
/// Node-Feature Buffer (the 512 KB NFB is a ping-pong pair, so half is
/// usable while the other half is being filled by DMA).
pub const DEFAULT_PART_BUDGET_BYTES: usize = NODE_FEATURE_BUFFER_BYTES / 2;

/// Sampled requests with at least this many unique target nodes are
/// sharded across workers; smaller micro-batches run on one worker
/// (their sub-universes are too small to amortize the fan-out).
pub const DEFAULT_MIN_SHARD_ROWS: usize = 32;

impl Engine {
    /// Converts this engine into a [`ParallelEngine`] with `workers`
    /// worker threads. The existing backend becomes worker 0 and is
    /// forked `workers − 1` times; forks share the prepared weights and
    /// cached spectra behind `Arc`s, so the conversion is cheap in
    /// memory. The full graph is partitioned once, into the smallest
    /// contiguous split that is at least `workers` parts **and** fits
    /// every part's resident features (targets + one-hop halo, at the
    /// backend's [`BackendKind::bytes_per_feature`] scalar width) in
    /// [`DEFAULT_PART_BUDGET_BYTES`].
    ///
    /// # Errors
    ///
    /// [`EngineError::NoWorkers`] if `workers` is zero.
    pub fn into_parallel(self, workers: usize) -> Result<ParallelEngine, EngineError> {
        if workers == 0 {
            return Err(EngineError::NoWorkers);
        }
        let mut pool = Vec::with_capacity(workers);
        for _ in 1..workers {
            pool.push(self.backend.fork());
        }
        pool.insert(0, self.backend);
        // The parallel engine freezes the graph at the current version:
        // its partition plan cannot absorb later deltas, so it takes a
        // snapshot (dataset + version + any cache entry for exactly
        // this version) and serves it immutably.
        let epoch = self.shared.epoch();
        let full_graph_cache = match &*self.shared.cache.lock().expect("cache lock") {
            Some((v, out)) if *v == epoch.version => Some(out.clone()),
            _ => None,
        };
        let mut engine = ParallelEngine {
            dataset: Arc::clone(&epoch.dataset),
            graph_version: epoch.version,
            workers: pool,
            model_kind: self.model_kind,
            backend_kind: self.backend_kind,
            fanouts: self.fanouts,
            part_budget_bytes: DEFAULT_PART_BUDGET_BYTES,
            min_shard_rows: DEFAULT_MIN_SHARD_ROWS,
            parts: Vec::new(),
            full_graph_cache,
            weight_bytes: self.weight_bytes,
        };
        engine.replan_parts();
        Ok(engine)
    }
}

/// A partition-parallel serving engine: the same prepared weights as
/// [`Engine`], served by a pool of forked backends over graph parts.
///
/// ```
/// use blockgnn_engine::{BackendKind, EngineBuilder, InferRequest};
/// use blockgnn_gnn::ModelKind;
/// use blockgnn_graph::datasets;
/// use std::sync::Arc;
///
/// let dataset = Arc::new(datasets::cora_like_small(7));
/// let engine = EngineBuilder::new(ModelKind::Gcn, BackendKind::Dense)
///     .hidden_dim(16)
///     .build(dataset)
///     .unwrap();
/// let mut parallel = engine.into_parallel(4).unwrap();
/// let mut session = parallel.session();
/// let response = session.infer(&InferRequest::all_nodes()).unwrap();
/// assert!(response.parts >= 4, "full-graph inference is sharded");
/// ```
pub struct ParallelEngine {
    dataset: Arc<Dataset>,
    /// The graph version frozen at [`Engine::into_parallel`] time,
    /// reported on every response.
    graph_version: u64,
    /// One backend replica per worker; index 0 is the original.
    workers: Vec<Box<dyn ExecutionBackend>>,
    model_kind: ModelKind,
    backend_kind: BackendKind,
    fanouts: (usize, usize),
    part_budget_bytes: usize,
    min_shard_rows: usize,
    /// The full graph's partition plan, computed once (the graph and the
    /// budget are fixed for the engine's lifetime).
    parts: Vec<GraphPart>,
    full_graph_cache: Option<BackendOutput>,
    /// Packed spectral footprint carried over from the source [`Engine`]
    /// for aggregate residency accounting.
    weight_bytes: usize,
}

impl ParallelEngine {
    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Which of the paper's four algorithms this engine serves.
    #[must_use]
    pub fn model_kind(&self) -> ModelKind {
        self.model_kind
    }

    /// Which execution substrate answers requests.
    #[must_use]
    pub fn backend_kind(&self) -> BackendKind {
        self.backend_kind
    }

    /// The dataset handle requests are resolved against.
    #[must_use]
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }

    /// The graph version this engine froze at conversion time.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.graph_version
    }

    /// The frozen snapshot's device-residency footprint under the
    /// §IV-B/§IV-C accounting (packed weight spectra plus the snapshot's
    /// node features at the backend's scalar width) — same contract as
    /// [`Engine::resident_bytes`], constant here since the graph is
    /// immutable.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.weight_bytes
            + self.dataset.num_nodes()
                * self.dataset.feature_dim()
                * self.backend_kind.bytes_per_feature()
    }

    /// Partition-parallel engines serve a frozen snapshot: the shard
    /// plan is computed once and cannot absorb mutations, so every
    /// delta is rejected. Route updates to a [`Engine`]-backed worker
    /// pool instead.
    ///
    /// # Errors
    ///
    /// Always [`EngineError::ImmutableGraph`].
    pub fn apply_delta(&self, _delta: &blockgnn_graph::GraphDelta) -> Result<u64, EngineError> {
        Err(EngineError::ImmutableGraph)
    }

    /// The full graph's partition plan: contiguous parts with their
    /// one-hop halos, each within the memory budget.
    #[must_use]
    pub fn parts(&self) -> &[GraphPart] {
        &self.parts
    }

    /// Overrides the per-part feature-residency budget (bytes) and
    /// re-partitions. See [`DEFAULT_PART_BUDGET_BYTES`] for the default
    /// and the root README for how to choose a value.
    #[must_use]
    pub fn with_part_budget(mut self, budget_bytes: usize) -> Self {
        self.part_budget_bytes = budget_bytes;
        self.replan_parts();
        self
    }

    /// Overrides the sampled-request sharding threshold (unique target
    /// nodes); see [`DEFAULT_MIN_SHARD_ROWS`].
    #[must_use]
    pub fn with_min_shard_rows(mut self, min_rows: usize) -> Self {
        self.min_shard_rows = min_rows;
        self
    }

    /// Drops the full-graph logits cache so the next full-graph request
    /// recomputes (benchmarking hook, like
    /// [`Engine::clear_full_graph_cache`]).
    pub fn clear_full_graph_cache(&mut self) {
        self.full_graph_cache = None;
    }

    /// Opens a serving session.
    #[must_use]
    pub fn session(&mut self) -> ParallelSession<'_> {
        ParallelSession { engine: self, stats: ServeStats::default() }
    }

    /// Recomputes the full-graph partition plan (see
    /// [`ParallelEngine::plan_parts`]).
    fn replan_parts(&mut self) {
        self.parts = self.plan_parts(&self.dataset.graph);
    }

    /// Plans a partition of `graph`: a contiguous split with at least
    /// one part per worker whose parts all fit the memory budget. The
    /// resident width is the widest row any inference stage materializes
    /// (stage outputs can be wider than the input features, e.g.
    /// G-GCN's `[p ‖ q ‖ h]` transform rows). Applied to the full graph
    /// at construction and to each sharded sampled sub-universe — a
    /// per-request cost, so `k` is found by geometric escalation from
    /// the halo-free pigeonhole bound (a bounded number of partition
    /// passes) rather than the exact-smallest-`k` linear scan of
    /// [`blockgnn_graph::partition::parts_needed_for_budget`]; budget
    /// fit, not minimality, is what the serving path needs.
    fn plan_parts(&self, graph: &CsrGraph) -> Vec<GraphPart> {
        let n = graph.num_nodes().max(1);
        let feature_dim = self.dataset.feature_dim();
        let backend = &self.workers[0];
        let width = (0..backend.num_stages())
            .map(|s| backend.stage_width(s, feature_dim))
            .max()
            .unwrap_or(feature_dim)
            .max(feature_dim);
        let bytes = self.backend_kind.bytes_per_feature();
        let per_node = width * bytes;
        let budget = self.part_budget_bytes;
        // No k below the halo-free pigeonhole bound can fit.
        let floor = if budget == 0 {
            n
        } else if per_node == 0 {
            1
        } else {
            (n * per_node).div_ceil(budget).clamp(1, n)
        };
        let mut k = self.workers.len().max(floor).min(n);
        loop {
            let parts = partition_contiguous(graph, k);
            // An impossible budget degrades to single-node parts (k = n)
            // rather than refusing to serve: the budget steers, the
            // engine still answers.
            if k >= n || parts.iter().all(|p| p.feature_bytes(width, bytes) <= budget) {
                return parts;
            }
            k = (k + k / 2 + 1).min(n);
        }
    }

    /// Resolves and executes one request, returning the raw
    /// [`ExecOutcome`] without response assembly (the parallel
    /// counterpart of [`Engine::execute_request`], and the entry point
    /// the serving runtime uses when fronting a partition-parallel
    /// engine).
    ///
    /// # Errors
    ///
    /// [`EngineError::NodeOutOfRange`] for invalid node ids;
    /// [`EngineError::EmptyRequest`] for sampled requests with no nodes.
    pub fn execute_request(
        &mut self,
        request: &InferRequest,
    ) -> Result<ExecOutcome, EngineError> {
        let (logits, sim, energy_joules, from_cache, parts) = self.run_request(request)?;
        Ok(ExecOutcome {
            logits,
            sim,
            energy_joules,
            from_cache,
            parts,
            batch_size: 1,
            graph_version: self.graph_version,
        })
    }

    /// Resolves and executes one request (the parallel counterpart of
    /// the sequential engine's request runner).
    #[allow(clippy::type_complexity)]
    fn run_request(
        &mut self,
        request: &InferRequest,
    ) -> Result<(Matrix, Option<SimReport>, Option<f64>, bool, usize), EngineError> {
        crate::request::validate_request(request, self.dataset.num_nodes())?;
        match request.mode {
            RequestMode::FullGraph => {
                let from_cache = self.full_graph_cache.is_some();
                if !from_cache {
                    let logits = run_staged(
                        &mut self.workers,
                        &self.dataset.graph,
                        &self.dataset.features,
                        &self.parts,
                    );
                    let (sim, energy) = merge_part_charges(
                        self.workers[0].as_ref(),
                        self.dataset.graph.num_arcs(),
                        self.dataset.feature_dim(),
                        self.dataset.num_classes,
                        self.fanouts,
                        self.parts.iter().map(|p| p.nodes.len()),
                    );
                    self.full_graph_cache =
                        Some(BackendOutput { logits, sim, energy_joules: energy });
                }
                let cached = self.full_graph_cache.as_ref().expect("just populated");
                let logits = crate::request::full_graph_rows(&cached.logits, &request.nodes);
                // Cache hits cost the hardware nothing (and executed no
                // parts), exactly as in the sequential engine.
                let (sim, energy, parts) = if from_cache {
                    (None, None, 0)
                } else {
                    (cached.sim.clone(), cached.energy_joules, self.parts.len())
                };
                Ok((logits, sim, energy, from_cache, parts))
            }
            RequestMode::Sampled { s1, s2, seed } => {
                let sub =
                    SampledSubgraph::build(&self.dataset.graph, &request.nodes, s1, s2, seed);
                let local_features = sub.gather_features(&self.dataset.features);
                let shape = RequestShape { target_nodes: sub.batch_len, fanouts: (s1, s2) };
                let (full, sim, energy, parts) = if sub.batch_len < self.min_shard_rows
                    || self.workers.len() == 1
                {
                    // Micro-batch: one worker runs the whole sub-universe.
                    let out = self.workers[0].execute(&sub.graph, &local_features, shape);
                    (out.logits, out.sim, out.energy_joules, 1)
                } else {
                    // Large batch: shard the sub-universe's rows under
                    // the same worker-count + memory-budget plan as the
                    // full graph. Targets occupy the local prefix
                    // `0..batch_len`, so a part's charged target count
                    // is its overlap with that prefix (halo-ring rows
                    // cost the hardware nothing — the per-node cycle
                    // model already prices each target's full two-hop
                    // aggregation).
                    let sub_parts = self.plan_parts(&sub.graph);
                    let logits =
                        run_staged(&mut self.workers, &sub.graph, &local_features, &sub_parts);
                    let part_targets = sub_parts.iter().map(|p| {
                        p.nodes.iter().filter(|&&v| (v as usize) < sub.batch_len).count()
                    });
                    let (sim, energy) = merge_part_charges(
                        self.workers[0].as_ref(),
                        sub.graph.num_arcs(),
                        local_features.cols(),
                        self.dataset.num_classes,
                        (s1, s2),
                        part_targets,
                    );
                    let k = sub_parts.len();
                    (logits, sim, energy, k)
                };
                let logits = crate::request::sampled_rows(&full, &sub, &request.nodes);
                Ok((logits, sim, energy, false, parts))
            }
        }
    }
}

impl std::fmt::Debug for ParallelEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelEngine")
            .field("model", &self.model_kind)
            .field("backend", &self.backend_kind)
            .field("dataset", &self.dataset.name)
            .field("graph_version", &self.graph_version)
            .field("workers", &self.workers.len())
            .field("parts", &self.parts.len())
            .field("full_graph_cached", &self.full_graph_cache.is_some())
            .finish()
    }
}

/// Executes the model's inference stages over `parts`, fanning each
/// stage's parts out to the worker pool and merging the output rows
/// (row-aligned by global node id) before the next stage starts.
fn run_staged(
    workers: &mut [Box<dyn ExecutionBackend>],
    graph: &CsrGraph,
    features: &Matrix,
    parts: &[GraphPart],
) -> Matrix {
    let n = graph.num_nodes();
    let num_workers = workers.len();
    let num_stages = workers[0].num_stages();
    let feature_dim = features.cols();
    let mut merged: Option<Matrix> = None;
    for stage in 0..num_stages {
        let width = workers[0].stage_width(stage, feature_dim);
        let input: &Matrix = merged.as_ref().unwrap_or(features);
        let mut out = Matrix::zeros(n, width);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(num_workers);
            for (w, backend) in workers.iter_mut().enumerate() {
                // Round-robin assignment: contiguous parts are near-equal
                // in size, so stride-W interleaving balances the load.
                let assigned: Vec<&GraphPart> =
                    parts.iter().skip(w).step_by(num_workers).collect();
                if assigned.is_empty() {
                    continue;
                }
                handles.push(scope.spawn(move || {
                    // Per-graph precomputation happens inside the worker
                    // (in parallel, not serially on the caller thread);
                    // it is idempotent, so later stages hit a warm cache.
                    backend.prepare_graph(graph);
                    assigned
                        .into_iter()
                        .map(|part| {
                            (part, backend.execute_stage(stage, graph, input, &part.nodes))
                        })
                        .collect::<Vec<_>>()
                }));
            }
            for handle in handles {
                for (part, rows) in handle.join().expect("worker thread panicked") {
                    for (i, &v) in part.nodes.iter().enumerate() {
                        out.row_mut(v as usize).copy_from_slice(rows.row(i));
                    }
                }
            }
        });
        merged = Some(out);
    }
    merged.expect("models have at least one stage")
}

/// Charges each part's target nodes on the hardware model and merges
/// the reports (§IV-C: sub-graphs run in sequence on one accelerator,
/// so cycles and energy sum). `None`/`None` for software backends.
fn merge_part_charges(
    backend: &dyn ExecutionBackend,
    num_arcs: usize,
    feature_dim: usize,
    num_classes: usize,
    fanouts: (usize, usize),
    part_targets: impl Iterator<Item = usize>,
) -> (Option<SimReport>, Option<f64>) {
    let mut reports = Vec::new();
    let mut energy_total = 0.0;
    for targets in part_targets.filter(|&t| t > 0) {
        let shape = RequestShape { target_nodes: targets, fanouts };
        match backend.charge(num_arcs, feature_dim, num_classes, shape) {
            Some((sim, energy)) => {
                reports.push(sim);
                energy_total += energy;
            }
            None => return (None, None),
        }
    }
    match SimReport::merge(reports) {
        Some(merged) => (Some(merged), Some(energy_total)),
        None => (None, None),
    }
}

/// A serving session over a [`ParallelEngine`]: same request/response
/// contract as [`crate::Session`], with partition-parallel execution
/// underneath.
#[derive(Debug)]
pub struct ParallelSession<'e> {
    engine: &'e mut ParallelEngine,
    stats: ServeStats,
}

impl ParallelSession<'_> {
    /// Answers one request.
    ///
    /// # Errors
    ///
    /// [`EngineError::NodeOutOfRange`] for invalid node ids;
    /// [`EngineError::EmptyRequest`] for sampled requests with no nodes.
    pub fn infer(&mut self, request: &InferRequest) -> Result<InferResponse, EngineError> {
        let start = Instant::now();
        let outcome = self.engine.execute_request(request)?;
        let compute_time = start.elapsed();
        // Direct sessions never queue: the whole latency is compute.
        Ok(crate::request::assemble_response(
            outcome,
            Duration::ZERO,
            compute_time,
            &mut self.stats,
        ))
    }

    /// Answers a batch of requests in order, stopping at the first error.
    ///
    /// # Errors
    ///
    /// Propagates the first [`EngineError`] encountered.
    pub fn infer_batch(
        &mut self,
        requests: &[InferRequest],
    ) -> Result<Vec<InferResponse>, EngineError> {
        requests.iter().map(|r| self.infer(r)).collect()
    }

    /// The statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The engine this session serves from.
    #[must_use]
    pub fn engine(&self) -> &ParallelEngine {
        self.engine
    }

    /// Closes the session, returning its statistics.
    #[must_use]
    pub fn finish(self) -> ServeStats {
        self.stats
    }
}
