//! Partition-parallel serving: shard full-graph (and large sampled)
//! inference across worker threads.
//!
//! §IV-C partitions graphs that exceed the accelerator's memory into
//! sub-graphs processed independently; this module turns that idea into
//! the serving hot path. [`ParallelEngine`] splits the graph into
//! [`GraphPart`]s (contiguous node ranges with their one-hop halos,
//! sized so every part's resident features fit a §IV-B-derived memory
//! budget), forks one [`ExecutionBackend`] replica per worker (prepared
//! weights and cached spectra are `Arc`-shared, see
//! [`blockgnn_nn::ExecMode`]), and executes the model's row-parallel
//! inference stages over a [`std::thread::scope`] pool with a barrier
//! between stages. Cut placement follows a
//! [`PartitionStrategy`] — degree-balanced by default, so power-law
//! graphs stop handing one worker all the hubs (the load imbalance that
//! made early parallel rows *lose* to sequential); the achieved balance
//! is reported via [`ParallelEngine::partition_balance`].
//!
//! # Why stages instead of running the whole model per part
//!
//! A two-layer GNN needs the *two-hop* neighborhood of a part to compute
//! its logits in isolation; on anything but spatially local graphs that
//! closure approaches the whole graph, and per-part redundant compute
//! erases the parallel win. Instead each stage computes only its own
//! rows and reads the previous stage's **merged** matrix at a one-hop
//! halo ([`GnnModel::forward_stage`](blockgnn_gnn::GnnModel::forward_stage)) —
//! zero redundant arithmetic, and every row is produced by exactly the
//! same operations as the sequential pass, so merged logits are
//! **bit-identical** to [`crate::Session::infer`] on the dense backend
//! (and within FFT rounding of it on the spectral paths — they are also
//! bit-identical in practice, since each row's FFTs see the same
//! inputs).
//!
//! # Hot-vertex aggregation cache
//!
//! Row-granular staging also makes per-row result caching expressible —
//! something the sequential engine's monolithic `forward` cannot do.
//! Full-graph stage inputs are canonical (stage 0 reads the dataset
//! features, stage `s` reads the merged stage `s − 1` output), so a hub
//! vertex's stage row is a pure function of the graph version. The
//! engine keeps the stage rows of the highest-degree vertices (up to
//! [`DEFAULT_HOT_CACHE_BYTES`]) in a version-keyed cache shared across
//! the whole engine family — forks and re-conversions reuse it like the
//! full-graph logits cache — and copies them instead of re-aggregating.
//! `apply_delta` invalidates strictly before publishing the new epoch.
//! Sampled requests never touch the cache: their sub-universe inputs are
//! batch-dependent, not canonical.
//!
//! Per-part hardware cost is still accounted the §IV-C way: the
//! simulated accelerator charges each part's *computed* target nodes
//! separately (rows served from the hot cache cost the hardware nothing,
//! exactly like logits-cache hits) and the per-part [`SimReport`]s merge
//! by summation ([`SimReport::merge`] — cycles combine as in the paper's
//! two-sub-graph Reddit evaluation, energy sums), reproducing the
//! sequential report exactly on cold caches.

use crate::backend::{BackendKind, BackendOutput, ExecutionBackend, RequestShape};
use crate::engine::Engine;
use crate::error::EngineError;
use crate::request::{ExecOutcome, InferRequest, InferResponse, RequestMode};
use crate::stats::ServeStats;
use crate::versioned::HotVertexCache;
use blockgnn_accel::SimReport;
use blockgnn_gnn::sampled::SampledSubgraph;
use blockgnn_gnn::ModelKind;
use blockgnn_graph::partition::{partition_balance, GraphPart, PartitionStrategy};
use blockgnn_graph::{CompressedCsr, CsrGraph, Dataset};
use blockgnn_linalg::Matrix;
use blockgnn_perf::resources::NODE_FEATURE_BUFFER_BYTES;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default per-part feature-residency budget: one bank of the §IV-B
/// Node-Feature Buffer (the 512 KB NFB is a ping-pong pair, so half is
/// usable while the other half is being filled by DMA).
pub const DEFAULT_PART_BUDGET_BYTES: usize = NODE_FEATURE_BUFFER_BYTES / 2;

/// Sampled requests with at least this many unique target nodes are
/// sharded across workers; smaller micro-batches run on one worker
/// (their sub-universes are too small to amortize the fan-out). The
/// threshold is compared against the **unique** target count (the
/// sampled sub-universe's interned batch length), not the raw request
/// length — a request of 100 duplicates of one node is a 1-row batch.
pub const DEFAULT_MIN_SHARD_ROWS: usize = 32;

/// Default hot-vertex cache budget: the other bank of the §IV-B
/// Node-Feature Buffer (cached aggregation rows are reused feature-like
/// state, so they are accounted against feature storage, not weights).
pub const DEFAULT_HOT_CACHE_BYTES: usize = NODE_FEATURE_BUFFER_BYTES / 2;

impl Engine {
    /// Converts this engine into a [`ParallelEngine`] with `workers`
    /// worker threads and the default (degree-balanced) partition
    /// strategy. The existing backend becomes worker 0 and is forked
    /// `workers − 1` times; forks share the prepared weights and cached
    /// spectra behind `Arc`s, so the conversion is cheap in memory. The
    /// full graph is partitioned once, into the smallest split that is
    /// at least `workers` parts **and** fits every part's resident
    /// features (targets + one-hop halo, at the backend's
    /// [`BackendKind::bytes_per_feature`] scalar width) in
    /// [`DEFAULT_PART_BUDGET_BYTES`].
    ///
    /// # Errors
    ///
    /// [`EngineError::NoWorkers`] if `workers` is zero.
    pub fn into_parallel(self, workers: usize) -> Result<ParallelEngine, EngineError> {
        self.into_parallel_with(workers, PartitionStrategy::default())
    }

    /// Like [`Engine::into_parallel`], with an explicit cut-placement
    /// strategy (see [`PartitionStrategy`]).
    ///
    /// # Errors
    ///
    /// [`EngineError::NoWorkers`] if `workers` is zero.
    pub fn into_parallel_with(
        self,
        workers: usize,
        strategy: PartitionStrategy,
    ) -> Result<ParallelEngine, EngineError> {
        if workers == 0 {
            return Err(EngineError::NoWorkers);
        }
        let mut pool = Vec::with_capacity(workers);
        for _ in 1..workers {
            pool.push(self.backend.fork());
        }
        pool.insert(0, self.backend);
        // The parallel engine freezes the graph at the current version:
        // its partition plan cannot absorb later deltas, so it takes a
        // snapshot (dataset + version + any cache entry for exactly
        // this version) and serves it immutably. The hot-vertex cache
        // stays attached to the *shared* family state, so forks and
        // later conversions reuse (and a family delta invalidates) it.
        let epoch = self.shared.epoch();
        let full_graph_cache = match &*self.shared.cache.lock().expect("cache lock") {
            Some((v, out)) if *v == epoch.version => Some(out.clone()),
            _ => None,
        };
        let compressed = CompressedCsr::encode(&epoch.dataset.graph);
        let mut engine = ParallelEngine {
            dataset: Arc::clone(&epoch.dataset),
            graph_version: epoch.version,
            workers: pool,
            model_kind: self.model_kind,
            backend_kind: self.backend_kind,
            fanouts: self.fanouts,
            part_budget_bytes: DEFAULT_PART_BUDGET_BYTES,
            min_shard_rows: DEFAULT_MIN_SHARD_ROWS,
            strategy,
            parts: Vec::new(),
            part_balance: 1.0,
            full_graph_cache,
            hot: Arc::clone(&self.shared.hot),
            hot_flags: Vec::new(),
            hot_cache_bytes: DEFAULT_HOT_CACHE_BYTES,
            compressed,
            weight_bytes: self.weight_bytes,
        };
        engine.replan_parts();
        Ok(engine)
    }
}

/// A partition-parallel serving engine: the same prepared weights as
/// [`Engine`], served by a pool of forked backends over graph parts.
///
/// ```
/// use blockgnn_engine::{BackendKind, EngineBuilder, InferRequest};
/// use blockgnn_gnn::ModelKind;
/// use blockgnn_graph::datasets;
/// use std::sync::Arc;
///
/// let dataset = Arc::new(datasets::cora_like_small(7));
/// let engine = EngineBuilder::new(ModelKind::Gcn, BackendKind::Dense)
///     .hidden_dim(16)
///     .build(dataset)
///     .unwrap();
/// let mut parallel = engine.into_parallel(4).unwrap();
/// let mut session = parallel.session();
/// let response = session.infer(&InferRequest::all_nodes()).unwrap();
/// assert!(response.parts >= 4, "full-graph inference is sharded");
/// ```
pub struct ParallelEngine {
    dataset: Arc<Dataset>,
    /// The graph version frozen at [`Engine::into_parallel`] time,
    /// reported on every response.
    graph_version: u64,
    /// One backend replica per worker; index 0 is the original.
    workers: Vec<Box<dyn ExecutionBackend>>,
    model_kind: ModelKind,
    backend_kind: BackendKind,
    fanouts: (usize, usize),
    part_budget_bytes: usize,
    min_shard_rows: usize,
    /// Cut-placement strategy for the full-graph plan and sampled
    /// sub-universe shards.
    strategy: PartitionStrategy,
    /// The full graph's partition plan, computed once (the graph and the
    /// budget are fixed for the engine's lifetime).
    parts: Vec<GraphPart>,
    /// Load-balance factor of `parts` (max part work / mean part work).
    part_balance: f64,
    full_graph_cache: Option<BackendOutput>,
    /// Family-shared hot-vertex aggregation cache (see module docs).
    hot: Arc<HotVertexCache>,
    /// `hot_flags[v]`: whether node `v` qualifies for hot caching (a
    /// top-degree node within the cache byte budget).
    hot_flags: Vec<bool>,
    hot_cache_bytes: usize,
    /// Delta-varint compressed adjacency of the frozen snapshot; the
    /// device-residency layout big graphs are accounted (and shipped) in.
    compressed: CompressedCsr,
    /// Packed spectral footprint carried over from the source [`Engine`]
    /// for aggregate residency accounting.
    weight_bytes: usize,
}

impl ParallelEngine {
    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Which of the paper's four algorithms this engine serves.
    #[must_use]
    pub fn model_kind(&self) -> ModelKind {
        self.model_kind
    }

    /// Which execution substrate answers requests.
    #[must_use]
    pub fn backend_kind(&self) -> BackendKind {
        self.backend_kind
    }

    /// The dataset handle requests are resolved against.
    #[must_use]
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }

    /// The graph version this engine froze at conversion time.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.graph_version
    }

    /// The cut-placement strategy in force.
    #[must_use]
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// The frozen snapshot's device-residency footprint under the
    /// §IV-B/§IV-C accounting (packed weight spectra plus the snapshot's
    /// node features at the backend's scalar width) — same contract as
    /// [`Engine::resident_bytes`], constant here since the graph is
    /// immutable.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.weight_bytes
            + self.dataset.num_nodes()
                * self.dataset.feature_dim()
                * self.backend_kind.bytes_per_feature()
    }

    /// What must actually be resident on device at any instant under the
    /// §IV-C *streaming* model: the packed weights, the compressed
    /// adjacency (delta-varint column indices plus a `u32` row table),
    /// and the **largest single part's** feature window (targets + halo
    /// at the backend's scalar width) — parts stream through the feature
    /// buffer one at a time, so the peak is the max, not the sum. This
    /// is the number the ≥10×-pubmed big-graph demo checks against the
    /// §IV-B budget.
    #[must_use]
    pub fn device_resident_bytes(&self) -> usize {
        let width = self.plan_width();
        let bytes = self.backend_kind.bytes_per_feature();
        let peak_part =
            self.parts.iter().map(|p| p.feature_bytes(width, bytes)).max().unwrap_or(0);
        self.weight_bytes + self.compressed.resident_bytes() + peak_part
    }

    /// On-device bytes of the compressed adjacency; compare against
    /// [`blockgnn_graph::CsrGraph::adjacency_bytes`] of the served graph
    /// for the compression win.
    #[must_use]
    pub fn compressed_adjacency_bytes(&self) -> usize {
        self.compressed.resident_bytes()
    }

    /// Partition-parallel engines serve a frozen snapshot: the shard
    /// plan is computed once and cannot absorb mutations, so every
    /// delta is rejected. Route updates to a [`Engine`]-backed worker
    /// pool instead.
    ///
    /// # Errors
    ///
    /// Always [`EngineError::ImmutableGraph`].
    pub fn apply_delta(&self, _delta: &blockgnn_graph::GraphDelta) -> Result<u64, EngineError> {
        Err(EngineError::ImmutableGraph)
    }

    /// The full graph's partition plan: contiguous parts with their
    /// one-hop halos, each within the memory budget.
    #[must_use]
    pub fn parts(&self) -> &[GraphPart] {
        &self.parts
    }

    /// Load-balance factor of the full-graph plan: the maximum part's
    /// work (node cost + degree per node) over the mean part's. `1.0`
    /// is perfect; see [`blockgnn_graph::partition::partition_balance`].
    #[must_use]
    pub fn partition_balance(&self) -> f64 {
        self.part_balance
    }

    /// Overrides the per-part feature-residency budget (bytes) and
    /// re-partitions. See [`DEFAULT_PART_BUDGET_BYTES`] for the default
    /// and the root README for how to choose a value.
    #[must_use]
    pub fn with_part_budget(mut self, budget_bytes: usize) -> Self {
        self.part_budget_bytes = budget_bytes;
        self.replan_parts();
        self
    }

    /// Overrides the cut-placement strategy and re-partitions.
    #[must_use]
    pub fn with_strategy(mut self, strategy: PartitionStrategy) -> Self {
        self.strategy = strategy;
        self.replan_parts();
        self
    }

    /// Overrides the sampled-request sharding threshold (unique target
    /// nodes); see [`DEFAULT_MIN_SHARD_ROWS`].
    #[must_use]
    pub fn with_min_shard_rows(mut self, min_rows: usize) -> Self {
        self.min_shard_rows = min_rows;
        self
    }

    /// Overrides the hot-vertex cache byte budget (0 disables the cache)
    /// and recomputes which vertices qualify. See
    /// [`DEFAULT_HOT_CACHE_BYTES`].
    #[must_use]
    pub fn with_hot_cache_bytes(mut self, bytes: usize) -> Self {
        self.hot_cache_bytes = bytes;
        self.recompute_hot_flags();
        self
    }

    /// Drops the full-graph logits cache so the next full-graph request
    /// recomputes (benchmarking hook, like
    /// [`Engine::clear_full_graph_cache`]). The hot-vertex cache is
    /// deliberately left warm — it models steady-state serving, and
    /// [`ParallelEngine::clear_hot_cache`] exists for cold-start
    /// measurements.
    pub fn clear_full_graph_cache(&mut self) {
        self.full_graph_cache = None;
    }

    /// Drops every hot-vertex row (family-wide — the cache is shared).
    pub fn clear_hot_cache(&mut self) {
        self.hot.invalidate_to(self.graph_version);
    }

    /// Rows currently held by the family's hot-vertex cache, across all
    /// stages (introspection hook).
    #[must_use]
    pub fn hot_cached_rows(&self) -> usize {
        self.hot.cached_rows()
    }

    /// Opens a serving session.
    #[must_use]
    pub fn session(&mut self) -> ParallelSession<'_> {
        ParallelSession { engine: self, stats: ServeStats::default() }
    }

    /// Recomputes the full-graph partition plan (see
    /// [`ParallelEngine::plan_parts`]) and the hot-vertex flags.
    fn replan_parts(&mut self) {
        self.parts = self.plan_parts(&self.dataset.graph);
        self.part_balance =
            partition_balance(&self.dataset.graph, &self.parts, self.plan_width());
        self.recompute_hot_flags();
    }

    /// The widest row any inference stage materializes (stage outputs
    /// can be wider than the input features, e.g. G-GCN's `[p ‖ q ‖ h]`
    /// transform rows) — the per-node width residency planning uses.
    fn plan_width(&self) -> usize {
        let feature_dim = self.dataset.feature_dim();
        let backend = &self.workers[0];
        (0..backend.num_stages())
            .map(|s| backend.stage_width(s, feature_dim))
            .max()
            .unwrap_or(feature_dim)
            .max(feature_dim)
    }

    /// Marks the top-degree vertices whose cached stage rows fit the
    /// byte budget. Rows are host-side f64 (8 B/scalar) across every
    /// stage width; ties broken by node id for determinism.
    fn recompute_hot_flags(&mut self) {
        let n = self.dataset.num_nodes();
        self.hot_flags = vec![false; n];
        if self.hot_cache_bytes == 0 || n == 0 {
            return;
        }
        let feature_dim = self.dataset.feature_dim();
        let backend = &self.workers[0];
        let per_node_bytes: usize =
            (0..backend.num_stages()).map(|s| backend.stage_width(s, feature_dim) * 8).sum();
        if per_node_bytes == 0 {
            return;
        }
        let graph = &self.dataset.graph;
        let mut by_degree: Vec<u32> = (0..n as u32).collect();
        by_degree.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v as usize)), v));
        let capacity = self.hot_cache_bytes / per_node_bytes;
        for &v in by_degree.iter().take(capacity) {
            self.hot_flags[v as usize] = true;
        }
    }

    /// Plans a partition of `graph`: a split (cuts placed by the
    /// engine's [`PartitionStrategy`]) with at least one part per worker
    /// whose parts all fit the memory budget. The resident width is
    /// [`ParallelEngine::plan_width`]. Applied to the full graph at
    /// construction and to each sharded sampled sub-universe — a
    /// per-request cost, so `k` is found by geometric escalation from
    /// the halo-free pigeonhole bound (a bounded number of partition
    /// passes) rather than the exact-smallest-`k` linear scan of
    /// [`blockgnn_graph::partition::parts_needed_for_budget`]; budget
    /// fit, not minimality, is what the serving path needs.
    fn plan_parts(&self, graph: &CsrGraph) -> Vec<GraphPart> {
        let n = graph.num_nodes().max(1);
        let width = self.plan_width();
        let bytes = self.backend_kind.bytes_per_feature();
        let per_node = width * bytes;
        let budget = self.part_budget_bytes;
        // No k below the halo-free pigeonhole bound can fit.
        let floor = if budget == 0 {
            n
        } else if per_node == 0 {
            1
        } else {
            (n * per_node).div_ceil(budget).clamp(1, n)
        };
        let mut k = self.workers.len().max(floor).min(n);
        loop {
            let parts = self.strategy.partition(graph, k, width);
            // An impossible budget degrades to single-node parts (k = n)
            // rather than refusing to serve: the budget steers, the
            // engine still answers.
            if k >= n || parts.iter().all(|p| p.feature_bytes(width, bytes) <= budget) {
                return parts;
            }
            k = (k + k / 2 + 1).min(n);
        }
    }

    /// Resolves and executes one request, returning the raw
    /// [`ExecOutcome`] without response assembly (the parallel
    /// counterpart of [`Engine::execute_request`], and the entry point
    /// the serving runtime uses when fronting a partition-parallel
    /// engine).
    ///
    /// # Errors
    ///
    /// [`EngineError::NodeOutOfRange`] for invalid node ids;
    /// [`EngineError::EmptyRequest`] for sampled requests with no nodes.
    pub fn execute_request(
        &mut self,
        request: &InferRequest,
    ) -> Result<ExecOutcome, EngineError> {
        let (logits, sim, energy_joules, from_cache, parts, hot_rows) =
            self.run_request(request)?;
        Ok(ExecOutcome {
            logits,
            sim,
            energy_joules,
            from_cache,
            parts,
            batch_size: 1,
            graph_version: self.graph_version,
            hot_rows,
        })
    }

    /// Resolves and executes one request (the parallel counterpart of
    /// the sequential engine's request runner).
    #[allow(clippy::type_complexity)]
    fn run_request(
        &mut self,
        request: &InferRequest,
    ) -> Result<(Matrix, Option<SimReport>, Option<f64>, bool, usize, usize), EngineError> {
        crate::request::validate_request(request, self.dataset.num_nodes())?;
        match request.mode {
            RequestMode::FullGraph => {
                let from_cache = self.full_graph_cache.is_some();
                let mut hot_rows = 0usize;
                if !from_cache {
                    let n = self.dataset.num_nodes();
                    let (logits, sim, energy) =
                        if self.workers.len() == 1 && self.parts.len() == 1 {
                            // Degenerate plan: thin sequential wrapper — the
                            // monolithic forward, no staging, no threads.
                            let shape = RequestShape { target_nodes: n, fanouts: self.fanouts };
                            let out = self.workers[0].execute(
                                &self.dataset.graph,
                                &self.dataset.features,
                                shape,
                            );
                            (out.logits, out.sim, out.energy_joules)
                        } else {
                            let hot_ctx = HotContext {
                                cache: &self.hot,
                                version: self.graph_version,
                                flags: &self.hot_flags,
                            };
                            let run = run_staged(
                                &mut self.workers,
                                &self.dataset.graph,
                                &self.dataset.features,
                                &self.parts,
                                Some(&hot_ctx),
                            );
                            hot_rows = run.hot_rows;
                            // Rows served from the hot cache cost the
                            // hardware nothing (same contract as logits-cache
                            // hits): only computed targets are charged.
                            let (sim, energy) = merge_part_charges(
                                self.workers[0].as_ref(),
                                self.dataset.graph.num_arcs(),
                                self.dataset.feature_dim(),
                                self.dataset.num_classes,
                                self.fanouts,
                                run.computed_per_part.into_iter(),
                            );
                            (run.logits, sim, energy)
                        };
                    self.full_graph_cache =
                        Some(BackendOutput { logits, sim, energy_joules: energy });
                }
                let cached = self.full_graph_cache.as_ref().expect("just populated");
                let logits = crate::request::full_graph_rows(&cached.logits, &request.nodes);
                // Cache hits cost the hardware nothing (and executed no
                // parts), exactly as in the sequential engine.
                let (sim, energy, parts) = if from_cache {
                    (None, None, 0)
                } else {
                    (cached.sim.clone(), cached.energy_joules, self.parts.len())
                };
                Ok((logits, sim, energy, from_cache, parts, hot_rows))
            }
            RequestMode::Sampled { s1, s2, seed } => {
                let sub =
                    SampledSubgraph::build(&self.dataset.graph, &request.nodes, s1, s2, seed);
                let local_features = sub.gather_features(&self.dataset.features);
                let shape = RequestShape { target_nodes: sub.batch_len, fanouts: (s1, s2) };
                let (full, sim, energy, parts) =
                    if sub.batch_len < self.min_shard_rows || self.workers.len() == 1 {
                        // Micro-batch: one worker runs the whole sub-universe.
                        let out = self.workers[0].execute(&sub.graph, &local_features, shape);
                        (out.logits, out.sim, out.energy_joules, 1)
                    } else {
                        // Large batch: shard the sub-universe's rows under
                        // the same worker-count + memory-budget plan as the
                        // full graph. The hot-vertex cache does NOT apply —
                        // sub-universe stage inputs depend on the batch's
                        // sampled edges, not the canonical full-graph
                        // features. Targets occupy the local prefix
                        // `0..batch_len`, so a part's charged target count
                        // is its overlap with that prefix (halo-ring rows
                        // cost the hardware nothing — the per-node cycle
                        // model already prices each target's full two-hop
                        // aggregation).
                        let sub_parts = self.plan_parts(&sub.graph);
                        let run = run_staged(
                            &mut self.workers,
                            &sub.graph,
                            &local_features,
                            &sub_parts,
                            None,
                        );
                        let part_targets = sub_parts.iter().map(|p| {
                            p.nodes.iter().filter(|&&v| (v as usize) < sub.batch_len).count()
                        });
                        let (sim, energy) = merge_part_charges(
                            self.workers[0].as_ref(),
                            sub.graph.num_arcs(),
                            local_features.cols(),
                            self.dataset.num_classes,
                            (s1, s2),
                            part_targets,
                        );
                        let k = sub_parts.len();
                        (run.logits, sim, energy, k)
                    };
                let logits = crate::request::sampled_rows(&full, &sub, &request.nodes);
                Ok((logits, sim, energy, false, parts, 0))
            }
        }
    }
}

impl std::fmt::Debug for ParallelEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelEngine")
            .field("model", &self.model_kind)
            .field("backend", &self.backend_kind)
            .field("dataset", &self.dataset.name)
            .field("graph_version", &self.graph_version)
            .field("workers", &self.workers.len())
            .field("strategy", &self.strategy)
            .field("parts", &self.parts.len())
            .field("part_balance", &self.part_balance)
            .field("full_graph_cached", &self.full_graph_cache.is_some())
            .field("hot_cached_rows", &self.hot.cached_rows())
            .finish()
    }
}

/// Hot-vertex cache wiring for one staged run (full-graph path only).
struct HotContext<'a> {
    cache: &'a HotVertexCache,
    version: u64,
    flags: &'a [bool],
}

/// Result of one staged execution.
struct StagedRun {
    logits: Matrix,
    /// Row-copies served from the hot-vertex cache, summed over stages.
    hot_rows: usize,
    /// Per part, how many of its target nodes were computed in at least
    /// one stage (the hardware-charged count; fully-cached nodes are 0).
    computed_per_part: Vec<usize>,
}

/// Executes the model's inference stages over `parts`, fanning each
/// stage's parts out to the worker pool and merging the output rows
/// (row-aligned by global node id) before the next stage starts. With a
/// [`HotContext`], rows of flagged vertices whose cached stage output
/// matches the graph version are copied instead of computed, and freshly
/// computed flagged rows are published back — bit-identical either way,
/// because cached rows were produced by the very same `execute_stage`
/// over the same canonical inputs.
///
/// Degenerate plans skip the thread pool entirely: one part (nothing to
/// fan out) or one worker (nothing to fan out *to*) runs inline on the
/// caller thread, paying neither spawn nor merge-barrier overhead.
fn run_staged(
    workers: &mut [Box<dyn ExecutionBackend>],
    graph: &CsrGraph,
    features: &Matrix,
    parts: &[GraphPart],
    hot: Option<&HotContext>,
) -> StagedRun {
    let n = graph.num_nodes();
    let num_workers = workers.len();
    let num_stages = workers[0].num_stages();
    let feature_dim = features.cols();
    let inline = parts.len() == 1 || num_workers == 1;
    let mut merged: Option<Matrix> = None;
    let mut hot_rows = 0usize;
    let mut computed_any = vec![false; n];
    for stage in 0..num_stages {
        let width = workers[0].stage_width(stage, feature_dim);
        let snapshot = hot.map(|h| h.cache.stage_snapshot(h.version, num_stages, stage));
        let input: &Matrix = merged.as_ref().unwrap_or(features);
        let mut out = Matrix::zeros(n, width);
        // Split every part's targets into cache hits and compute rows;
        // copy the hits up front (they only depend on the cache, not on
        // this stage's compute).
        let mut compute_rows: Vec<Vec<u32>> = Vec::with_capacity(parts.len());
        for part in parts {
            let mut compute = Vec::with_capacity(part.nodes.len());
            for &v in &part.nodes {
                let cached = hot.zip(snapshot.as_ref()).and_then(|(h, snap)| {
                    if h.flags[v as usize] {
                        snap.get(&v).filter(|row| row.len() == width)
                    } else {
                        None
                    }
                });
                match cached {
                    Some(row) => {
                        out.row_mut(v as usize).copy_from_slice(row);
                        hot_rows += 1;
                    }
                    None => compute.push(v),
                }
            }
            compute_rows.push(compute);
        }
        if inline {
            let backend = &mut workers[0];
            backend.prepare_graph(graph);
            for rows in &compute_rows {
                if rows.is_empty() {
                    continue;
                }
                let result = backend.execute_stage(stage, graph, input, rows);
                for (i, &v) in rows.iter().enumerate() {
                    out.row_mut(v as usize).copy_from_slice(result.row(i));
                }
            }
        } else {
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(num_workers);
                for (w, backend) in workers.iter_mut().enumerate() {
                    // Round-robin assignment: degree-balanced parts are
                    // near-equal in work, so stride-W interleaving
                    // balances the load.
                    let assigned: Vec<&Vec<u32>> =
                        compute_rows.iter().skip(w).step_by(num_workers).collect();
                    if assigned.iter().all(|rows| rows.is_empty()) {
                        continue;
                    }
                    handles.push(scope.spawn(move || {
                        // Per-graph precomputation happens inside the
                        // worker (in parallel, not serially on the caller
                        // thread); it is idempotent, so later stages hit
                        // a warm cache.
                        backend.prepare_graph(graph);
                        assigned
                            .into_iter()
                            .filter(|rows| !rows.is_empty())
                            .map(|rows| {
                                (rows, backend.execute_stage(stage, graph, input, rows))
                            })
                            .collect::<Vec<_>>()
                    }));
                }
                for handle in handles {
                    for (rows, result) in handle.join().expect("worker thread panicked") {
                        for (i, &v) in rows.iter().enumerate() {
                            out.row_mut(v as usize).copy_from_slice(result.row(i));
                        }
                    }
                }
            });
        }
        // Publish freshly computed rows of flagged vertices for the next
        // request (one lock per stage), and record who was computed for
        // the hardware charge.
        let mut publish: Vec<(u32, Vec<f64>)> = Vec::new();
        for rows in &compute_rows {
            for &v in rows {
                computed_any[v as usize] = true;
                if hot.is_some_and(|h| h.flags[v as usize]) {
                    publish.push((v, out.row(v as usize).to_vec()));
                }
            }
        }
        if let Some(h) = hot {
            h.cache.publish(h.version, num_stages, stage, publish);
        }
        merged = Some(out);
    }
    let computed_per_part = parts
        .iter()
        .map(|p| p.nodes.iter().filter(|&&v| computed_any[v as usize]).count())
        .collect();
    StagedRun {
        logits: merged.expect("models have at least one stage"),
        hot_rows,
        computed_per_part,
    }
}

/// Charges each part's target nodes on the hardware model and merges
/// the reports (§IV-C: sub-graphs run in sequence on one accelerator,
/// so cycles and energy sum). `None`/`None` for software backends.
fn merge_part_charges(
    backend: &dyn ExecutionBackend,
    num_arcs: usize,
    feature_dim: usize,
    num_classes: usize,
    fanouts: (usize, usize),
    part_targets: impl Iterator<Item = usize>,
) -> (Option<SimReport>, Option<f64>) {
    let mut reports = Vec::new();
    let mut energy_total = 0.0;
    for targets in part_targets.filter(|&t| t > 0) {
        let shape = RequestShape { target_nodes: targets, fanouts };
        match backend.charge(num_arcs, feature_dim, num_classes, shape) {
            Some((sim, energy)) => {
                reports.push(sim);
                energy_total += energy;
            }
            None => return (None, None),
        }
    }
    match SimReport::merge(reports) {
        Some(merged) => (Some(merged), Some(energy_total)),
        None => (None, None),
    }
}

/// A serving session over a [`ParallelEngine`]: same request/response
/// contract as [`crate::Session`], with partition-parallel execution
/// underneath.
#[derive(Debug)]
pub struct ParallelSession<'e> {
    engine: &'e mut ParallelEngine,
    stats: ServeStats,
}

impl ParallelSession<'_> {
    /// Answers one request.
    ///
    /// # Errors
    ///
    /// [`EngineError::NodeOutOfRange`] for invalid node ids;
    /// [`EngineError::EmptyRequest`] for sampled requests with no nodes.
    pub fn infer(&mut self, request: &InferRequest) -> Result<InferResponse, EngineError> {
        let start = Instant::now();
        let outcome = self.engine.execute_request(request)?;
        let compute_time = start.elapsed();
        // Direct sessions never queue: the whole latency is compute.
        Ok(crate::request::assemble_response(
            outcome,
            Duration::ZERO,
            compute_time,
            &mut self.stats,
        ))
    }

    /// Answers a batch of requests in order, stopping at the first error.
    ///
    /// # Errors
    ///
    /// Propagates the first [`EngineError`] encountered.
    pub fn infer_batch(
        &mut self,
        requests: &[InferRequest],
    ) -> Result<Vec<InferResponse>, EngineError> {
        requests.iter().map(|r| self.infer(r)).collect()
    }

    /// The statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The engine this session serves from.
    #[must_use]
    pub fn engine(&self) -> &ParallelEngine {
        self.engine
    }

    /// Closes the session, returning its statistics.
    #[must_use]
    pub fn finish(self) -> ServeStats {
        self.stats
    }
}
