//! The unified inference front door of the BlockGNN reproduction.
//!
//! The paper's premise is that one GNN executes equivalently on
//! interchangeable substrates: dense GEMM (the uncompressed baseline),
//! the block-circulant spectral path of Algorithm 1, and the CirCore
//! accelerator. This crate turns that premise into an API:
//!
//! * [`ExecutionBackend`] — the pluggable substrate trait, with
//!   [`DenseBackend`], [`SpectralBackend`] (cached FFT plans and kernel
//!   spectra reused across calls), and [`SimulatedAccelBackend`]
//!   (functional output *and* the Eq. 3–7 cycle/energy report from one
//!   call).
//! * [`EngineBuilder`] → [`Engine`] → [`Session`] — the serving flow:
//!   the builder takes a [`blockgnn_gnn::ModelKind`], a
//!   [`blockgnn_gnn::CompressionPolicy`], a backend choice, and a
//!   dataset handle; the engine owns immutable prepared weights; a
//!   session answers micro-batched [`InferRequest`]s (full-graph or
//!   sampled two-hop subgraph per request) and accumulates
//!   [`ServeStats`] (latency, nodes/sec, simulated cycles).
//! * **Versioned mutable graphs** — [`Engine::apply_delta`] applies a
//!   [`GraphDelta`] (edge add/remove, feature updates, appended nodes)
//!   atomically: a new snapshot with a bumped version is published for
//!   the *next* micro-batch, in-flight requests finish on the old one,
//!   the full-graph logits cache is version-keyed, and every
//!   [`InferResponse`] reports the [`InferResponse::graph_version`] it
//!   was served from. [`GraphHandle`] applies deltas without owning an
//!   engine replica (what the serving runtime holds).
//! * [`Engine::into_parallel`] → [`ParallelEngine`] → [`ParallelSession`]
//!   — partition-parallel serving (§IV-C): the graph is split into
//!   memory-budgeted [`blockgnn_graph::GraphPart`]s, one forked backend
//!   per worker thread executes the model's row-parallel stages over its
//!   parts (prepared weights `Arc`-shared), and per-part logits merge
//!   row-aligned — bit-identical to the sequential path — while per-part
//!   [`blockgnn_accel::SimReport`]s merge by the paper's two-sub-graph
//!   summation.
//!
//! # Example: same weights, three substrates
//!
//! ```
//! use blockgnn_engine::{BackendKind, EngineBuilder, InferRequest};
//! use blockgnn_gnn::ModelKind;
//! use blockgnn_graph::datasets;
//! use std::sync::Arc;
//!
//! let dataset = Arc::new(datasets::cora_like_small(1));
//! let request = InferRequest::full_graph(vec![0, 5, 9]);
//! let mut answers = Vec::new();
//! for backend in BackendKind::all() {
//!     let mut engine = EngineBuilder::new(ModelKind::Gcn, backend)
//!         .hidden_dim(16)
//!         .seed(7)
//!         .build(Arc::clone(&dataset))
//!         .unwrap();
//!     let mut session = engine.session();
//!     answers.push(session.infer(&request).unwrap());
//! }
//! // Dense GEMM and Algorithm 1 agree to FFT rounding…
//! assert!(answers[0].logits.linf_distance(&answers[1].logits) < 1e-6);
//! // …and the simulated accelerator also reports hardware cost.
//! assert!(answers[2].sim.as_ref().unwrap().total_cycles > 0);
//! ```

#![deny(missing_docs)]

mod backend;
#[allow(clippy::module_inception)]
mod engine;
mod error;
mod parallel;
mod request;
mod stats;
mod versioned;

pub use backend::{
    BackendKind, BackendOutput, DenseBackend, ExecutionBackend, RequestShape,
    SimulatedAccelBackend, SpectralBackend,
};
pub use engine::{CoalescedOutcome, Engine, EngineBuilder, Session, StageTiming};
pub use error::EngineError;
pub use parallel::{
    ParallelEngine, ParallelSession, DEFAULT_HOT_CACHE_BYTES, DEFAULT_MIN_SHARD_ROWS,
    DEFAULT_PART_BUDGET_BYTES,
};
pub use request::{
    assemble_response, validate_request, ExecOutcome, InferRequest, InferResponse, RequestMode,
    PAPER_FANOUTS,
};
pub use stats::{LatencyHistogram, ServeStats};
pub use versioned::GraphHandle;
// Mutation types callers hand to `Engine::apply_delta`, re-exported so
// serving code does not need a direct `blockgnn-graph` dependency.
pub use blockgnn_graph::{DeltaError, GraphDelta};
