//! Serving statistics: per-session counters and the latency histogram
//! shared by [`crate::Session`] and the server-side telemetry.

use crate::request::InferResponse;
use std::time::Duration;

/// Number of log₂-spaced latency buckets; bucket `i` covers
/// `[2^i, 2^(i+1))` microseconds, so the range spans 1 µs to ≈ 36 min.
const HISTOGRAM_BUCKETS: usize = 31;

/// A fixed-footprint latency histogram with log₂-spaced microsecond
/// buckets and `p50`/`p95`/`p99` accessors.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))` µs (sub-µs samples land
/// in bucket 0). Quantiles report the *upper edge* of the bucket where
/// the cumulative count crosses the rank, clamped into the exact
/// observed `[min, max]` sample range — the octave resolution is plenty
/// for p50/p95/p99 trend tracking, while the clamp keeps sparse
/// populations honest (a single-sample class reports its one latency as
/// every percentile, not a bucket upper bound up to 2× larger) and the
/// histogram stays cheap enough to merge across worker threads.
///
/// ```
/// use blockgnn_engine::LatencyHistogram;
/// use std::time::Duration;
///
/// let mut h = LatencyHistogram::default();
/// for ms in [1u64, 1, 1, 1, 20] {
///     h.record(Duration::from_millis(ms));
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.p50() < h.p99());
/// assert!(h.p99() >= Duration::from_millis(20));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    /// Smallest recorded sample in µs (`u64::MAX` while empty, so merge
    /// can take a plain minimum).
    min_micros: u64,
    /// Largest recorded sample in µs (0 while empty).
    max_micros: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self { buckets: [0; HISTOGRAM_BUCKETS], count: 0, min_micros: u64::MAX, max_micros: 0 }
    }
}

impl LatencyHistogram {
    /// Folds one sample into the histogram.
    pub fn record(&mut self, latency: Duration) {
        let micros = latency.as_micros().max(1);
        let bucket = (127 - u128::leading_zeros(micros) as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
        let clamped = micros.min(u128::from(u64::MAX)) as u64;
        self.min_micros = self.min_micros.min(clamped);
        self.max_micros = self.max_micros.max(clamped);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.min_micros = self.min_micros.min(other.min_micros);
        self.max_micros = self.max_micros.max(other.max_micros);
    }

    /// Smallest recorded sample (after the sub-µs clamp to 1 µs), or
    /// `None` while empty.
    #[must_use]
    pub fn min(&self) -> Option<Duration> {
        (self.count > 0).then(|| Duration::from_micros(self.min_micros))
    }

    /// Largest recorded sample, or `None` while empty.
    #[must_use]
    pub fn max(&self) -> Option<Duration> {
        (self.count > 0).then(|| Duration::from_micros(self.max_micros))
    }

    /// The latency at quantile `q` (clamped to `[0, 1]`): the upper edge
    /// of the bucket containing the `⌈q·count⌉`-th sample, clamped into
    /// the exact observed `[min, max]` range, or zero when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let edge = 1u64 << (i + 1).min(63);
                return Duration::from_micros(edge.clamp(self.min_micros, self.max_micros));
            }
        }
        Duration::from_micros(
            (1u64 << HISTOGRAM_BUCKETS).clamp(self.min_micros, self.max_micros),
        )
    }

    /// Median latency estimate.
    #[must_use]
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 95th-percentile latency estimate.
    #[must_use]
    pub fn p95(&self) -> Duration {
        self.quantile(0.95)
    }

    /// 99th-percentile latency estimate.
    #[must_use]
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    /// Non-empty buckets as `(bucket_floor, count)` pairs, for
    /// machine-readable export.
    pub fn iter_buckets(&self) -> impl Iterator<Item = (Duration, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Duration::from_micros(1u64 << i), c))
    }
}

/// Counters a [`crate::Session`] accumulates across requests — the
/// observability base the serving runtime's telemetry builds on.
/// Mergeable ([`ServeStats::merge`]) so per-worker stats roll up into
/// one server-wide view.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStats {
    /// Requests answered.
    pub requests: usize,
    /// Total logits rows returned.
    pub nodes_served: usize,
    /// Summed request latency (queue + compute).
    pub total_latency: Duration,
    /// Summed time requests spent queued before execution (zero for
    /// direct [`crate::Session`] callers, who never queue).
    pub total_queue_time: Duration,
    /// Summed execution time.
    pub total_compute_time: Duration,
    /// Fastest request, if any.
    pub min_latency: Option<Duration>,
    /// Slowest request.
    pub max_latency: Duration,
    /// End-to-end latency distribution with `p50/p95/p99` accessors.
    pub latency_histogram: LatencyHistogram,
    /// Full-graph requests answered from the engine's logits cache.
    pub full_graph_cache_hits: usize,
    /// Simulated accelerator cycles charged (fresh executions only —
    /// cache hits cost the hardware nothing).
    pub simulated_cycles: u64,
    /// Simulated accelerator energy in joules (fresh executions only).
    pub simulated_energy_joules: f64,
    /// Graph parts executed across all requests (0 per cache hit, 1 per
    /// unpartitioned execution, `k` per partition-parallel execution).
    pub parts_executed: usize,
    /// Stage-output rows served from the parallel engine's hot-vertex
    /// aggregation cache instead of being recomputed.
    pub hot_rows_served: usize,
}

impl ServeStats {
    /// Folds one answered request into the counters (the single record
    /// path — sessions and the serving runtime both go through here, so
    /// their accounting cannot drift).
    pub fn record_response(&mut self, response: &InferResponse) {
        self.requests += 1;
        self.nodes_served += response.logits.rows();
        self.total_latency += response.latency;
        self.total_queue_time += response.queue_time;
        self.total_compute_time += response.compute_time;
        self.min_latency =
            Some(self.min_latency.map_or(response.latency, |m| m.min(response.latency)));
        self.max_latency = self.max_latency.max(response.latency);
        self.latency_histogram.record(response.latency);
        self.parts_executed += response.parts;
        self.hot_rows_served += response.hot_rows;
        if response.from_cache {
            self.full_graph_cache_hits += 1;
        } else {
            self.simulated_cycles += response.sim.as_ref().map_or(0, |s| s.total_cycles);
            self.simulated_energy_joules += response.energy_joules.unwrap_or(0.0);
        }
    }

    /// Adds every counter of `other` into `self` — how per-worker
    /// session stats roll up into one server-wide view.
    pub fn merge(&mut self, other: &ServeStats) {
        self.requests += other.requests;
        self.nodes_served += other.nodes_served;
        self.total_latency += other.total_latency;
        self.total_queue_time += other.total_queue_time;
        self.total_compute_time += other.total_compute_time;
        self.min_latency = match (self.min_latency, other.min_latency) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max_latency = self.max_latency.max(other.max_latency);
        self.latency_histogram.merge(&other.latency_histogram);
        self.full_graph_cache_hits += other.full_graph_cache_hits;
        self.simulated_cycles += other.simulated_cycles;
        self.simulated_energy_joules += other.simulated_energy_joules;
        self.parts_executed += other.parts_executed;
        self.hot_rows_served += other.hot_rows_served;
    }

    /// Serving throughput in nodes per second of summed per-request
    /// compute time (queue time excluded; a shared batch execution is
    /// counted once per rider, so this is a conservative per-request
    /// rate — for wall-clock server throughput see `ServerStats::qps`
    /// in `blockgnn-server`).
    #[must_use]
    pub fn nodes_per_second(&self) -> f64 {
        let secs = self.total_compute_time.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.nodes_served as f64 / secs
        }
    }

    /// Mean request latency.
    #[must_use]
    pub fn mean_latency(&self) -> Duration {
        if self.requests == 0 {
            Duration::ZERO
        } else {
            self.total_latency / self.requests as u32
        }
    }

    /// Median latency ([`LatencyHistogram::p50`]).
    #[must_use]
    pub fn p50(&self) -> Duration {
        self.latency_histogram.p50()
    }

    /// 95th-percentile latency ([`LatencyHistogram::p95`]).
    #[must_use]
    pub fn p95(&self) -> Duration {
        self.latency_histogram.p95()
    }

    /// 99th-percentile latency ([`LatencyHistogram::p99`]).
    #[must_use]
    pub fn p99(&self) -> Duration {
        self.latency_histogram.p99()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockgnn_linalg::Matrix;

    fn response(
        nodes: usize,
        queue_ms: u64,
        compute_ms: u64,
        from_cache: bool,
        parts: usize,
    ) -> InferResponse {
        InferResponse {
            logits: Matrix::zeros(nodes, 2),
            predictions: vec![0; nodes],
            latency: Duration::from_millis(queue_ms + compute_ms),
            queue_time: Duration::from_millis(queue_ms),
            compute_time: Duration::from_millis(compute_ms),
            sim: None,
            energy_joules: if from_cache { None } else { Some(0.25) },
            from_cache,
            parts,
            batch_size: 1,
            graph_version: 0,
            trace_id: 0,
            hot_rows: 0,
        }
    }

    #[test]
    fn record_accumulates() {
        let mut s = ServeStats::default();
        s.record_response(&response(3, 1, 3, false, 4));
        s.record_response(&response(2, 0, 2, true, 0));
        assert_eq!(s.requests, 2);
        assert_eq!(s.nodes_served, 5);
        assert_eq!(s.parts_executed, 4);
        assert_eq!(s.min_latency, Some(Duration::from_millis(2)));
        assert_eq!(s.max_latency, Duration::from_millis(4));
        assert_eq!(s.full_graph_cache_hits, 1);
        assert_eq!(s.total_queue_time, Duration::from_millis(1));
        assert_eq!(s.total_compute_time, Duration::from_millis(5));
        // cache hits charge no hardware
        assert!((s.simulated_energy_joules - 0.25).abs() < 1e-12);
        assert_eq!(s.mean_latency(), Duration::from_millis(3));
        assert!(s.nodes_per_second() > 0.0);
        assert_eq!(s.latency_histogram.count(), 2);
    }

    #[test]
    fn empty_stats_are_quiet() {
        let s = ServeStats::default();
        assert_eq!(s.nodes_per_second(), 0.0);
        assert_eq!(s.mean_latency(), Duration::ZERO);
        assert_eq!(s.min_latency, None);
        assert_eq!(s.p99(), Duration::ZERO);
    }

    #[test]
    fn merge_combines_every_counter() {
        let mut a = ServeStats::default();
        a.record_response(&response(1, 0, 1, false, 1));
        let mut b = ServeStats::default();
        b.record_response(&response(4, 2, 6, false, 2));
        b.record_response(&response(2, 0, 0, true, 0));
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.requests, 3);
        assert_eq!(merged.nodes_served, 7);
        assert_eq!(merged.min_latency, Some(Duration::from_millis(0)));
        assert_eq!(merged.max_latency, Duration::from_millis(8));
        assert_eq!(merged.parts_executed, 3);
        assert_eq!(merged.full_graph_cache_hits, 1);
        assert_eq!(merged.latency_histogram.count(), 3);
        // Merging into empty equals the source.
        let mut from_empty = ServeStats::default();
        from_empty.merge(&merged);
        assert_eq!(from_empty, merged);
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let mut h = LatencyHistogram::default();
        for _ in 0..98 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(50));
        h.record(Duration::from_millis(50));
        assert_eq!(h.count(), 100);
        // p50 sits in the 100 µs octave [64, 128) → upper edge 128 µs.
        assert_eq!(h.p50(), Duration::from_micros(128));
        assert_eq!(h.p95(), Duration::from_micros(128));
        // p99 reaches the 50 ms octave [32.768, 65.536) ms, but the
        // reported value clamps to the exact observed maximum.
        assert_eq!(h.p99(), Duration::from_millis(50));
        assert_eq!(h.max(), Some(Duration::from_millis(50)));
        assert_eq!(h.min(), Some(Duration::from_micros(100)));
        assert!(h.iter_buckets().count() == 2);
    }

    #[test]
    fn quantiles_clamp_into_observed_range() {
        // One sample: every percentile IS that sample, not the octave
        // upper bound (a 300 µs request must not report p99 = 512 µs).
        let mut h = LatencyHistogram::default();
        h.record(Duration::from_micros(300));
        assert_eq!(h.p50(), Duration::from_micros(300));
        assert_eq!(h.p99(), Duration::from_micros(300));
        // Two distant samples: p50 still cannot fall below the minimum.
        h.record(Duration::from_micros(70_000));
        assert!(h.p50() >= Duration::from_micros(300));
        assert_eq!(h.p99(), Duration::from_micros(70_000));
        // Empty stays quiet and merge carries the extremes across.
        let empty = LatencyHistogram::default();
        assert_eq!(empty.quantile(0.99), Duration::ZERO);
        assert_eq!(empty.min(), None);
        assert_eq!(empty.max(), None);
        let mut merged = LatencyHistogram::default();
        merged.merge(&h);
        merged.merge(&empty);
        assert_eq!(merged.min(), Some(Duration::from_micros(300)));
        assert_eq!(merged.max(), Some(Duration::from_micros(70_000)));
    }

    #[test]
    fn histogram_merge_and_extremes() {
        let mut a = LatencyHistogram::default();
        a.record(Duration::ZERO); // clamps into bucket 0
        a.record(Duration::from_secs(3_600)); // clamps into the top bucket
        let mut b = LatencyHistogram::default();
        b.record(Duration::from_millis(1));
        b.merge(&a);
        assert_eq!(b.count(), 3);
        assert_eq!(b.quantile(0.0), Duration::from_micros(2));
        assert!(b.quantile(1.0) >= Duration::from_secs(1_000));
    }
}
