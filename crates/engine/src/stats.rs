//! Per-session serving statistics.

use std::time::Duration;

/// Counters a [`crate::Session`] accumulates across requests — the
/// observability base later batching/sharding work builds on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStats {
    /// Requests answered.
    pub requests: usize,
    /// Total logits rows returned.
    pub nodes_served: usize,
    /// Summed request latency.
    pub total_latency: Duration,
    /// Fastest request, if any.
    pub min_latency: Option<Duration>,
    /// Slowest request.
    pub max_latency: Duration,
    /// Full-graph requests answered from the engine's logits cache.
    pub full_graph_cache_hits: usize,
    /// Simulated accelerator cycles charged (fresh executions only —
    /// cache hits cost the hardware nothing).
    pub simulated_cycles: u64,
    /// Simulated accelerator energy in joules (fresh executions only).
    pub simulated_energy_joules: f64,
    /// Graph parts executed across all requests (0 per cache hit, 1 per
    /// unpartitioned execution, `k` per partition-parallel execution).
    pub parts_executed: usize,
}

impl ServeStats {
    /// Folds one answered request into the counters.
    pub(crate) fn record(
        &mut self,
        nodes: usize,
        latency: Duration,
        sim_cycles: u64,
        sim_energy_joules: f64,
        from_cache: bool,
        parts: usize,
    ) {
        self.requests += 1;
        self.nodes_served += nodes;
        self.total_latency += latency;
        self.min_latency = Some(self.min_latency.map_or(latency, |m| m.min(latency)));
        self.max_latency = self.max_latency.max(latency);
        self.parts_executed += parts;
        if from_cache {
            self.full_graph_cache_hits += 1;
        } else {
            self.simulated_cycles += sim_cycles;
            self.simulated_energy_joules += sim_energy_joules;
        }
    }

    /// Serving throughput in nodes per second of session compute time.
    #[must_use]
    pub fn nodes_per_second(&self) -> f64 {
        let secs = self.total_latency.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.nodes_served as f64 / secs
        }
    }

    /// Mean request latency.
    #[must_use]
    pub fn mean_latency(&self) -> Duration {
        if self.requests == 0 {
            Duration::ZERO
        } else {
            self.total_latency / self.requests as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut s = ServeStats::default();
        s.record(3, Duration::from_millis(4), 100, 0.5, false, 4);
        s.record(2, Duration::from_millis(2), 70, 0.25, true, 0);
        assert_eq!(s.requests, 2);
        assert_eq!(s.nodes_served, 5);
        assert_eq!(s.parts_executed, 4);
        assert_eq!(s.min_latency, Some(Duration::from_millis(2)));
        assert_eq!(s.max_latency, Duration::from_millis(4));
        assert_eq!(s.full_graph_cache_hits, 1);
        // cache hits charge no hardware
        assert_eq!(s.simulated_cycles, 100);
        assert!((s.simulated_energy_joules - 0.5).abs() < 1e-12);
        assert_eq!(s.mean_latency(), Duration::from_millis(3));
        assert!(s.nodes_per_second() > 0.0);
    }

    #[test]
    fn empty_stats_are_quiet() {
        let s = ServeStats::default();
        assert_eq!(s.nodes_per_second(), 0.0);
        assert_eq!(s.mean_latency(), Duration::ZERO);
        assert_eq!(s.min_latency, None);
    }
}
