//! Request/response types of the serving API.

use blockgnn_accel::SimReport;
use blockgnn_linalg::Matrix;
use std::time::Duration;

/// The paper's sampling fan-outs `S₁ = 25, S₂ = 10` (§IV-A).
pub const PAPER_FANOUTS: (usize, usize) = (25, 10);

/// How a request's computation graph is formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestMode {
    /// Run the full-graph forward pass and read off the requested rows.
    /// Because an engine's weights are immutable, the full-graph logits
    /// are computed once per engine and served from cache afterwards.
    FullGraph,
    /// Materialize the two-hop sampled computation graph around the
    /// requested nodes (the workload shape the accelerator runs) and
    /// infer on it.
    Sampled {
        /// First-hop fan-out `S₁`.
        s1: usize,
        /// Second-hop fan-out `S₂`.
        s2: usize,
        /// Sampling seed; equal seeds reproduce the same subgraph.
        seed: u64,
    },
}

/// A micro-batched node-classification request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferRequest {
    /// Target nodes to classify. For [`RequestMode::FullGraph`] an empty
    /// list means "every node"; sampled requests must be non-empty.
    pub nodes: Vec<usize>,
    /// Computation-graph policy.
    pub mode: RequestMode,
}

impl InferRequest {
    /// Full-graph request for the given nodes.
    #[must_use]
    pub fn full_graph(nodes: impl Into<Vec<usize>>) -> Self {
        Self { nodes: nodes.into(), mode: RequestMode::FullGraph }
    }

    /// Full-graph request for every node.
    #[must_use]
    pub fn all_nodes() -> Self {
        Self { nodes: Vec::new(), mode: RequestMode::FullGraph }
    }

    /// Sampled two-hop request with explicit fan-outs.
    #[must_use]
    pub fn sampled(nodes: impl Into<Vec<usize>>, s1: usize, s2: usize, seed: u64) -> Self {
        Self { nodes: nodes.into(), mode: RequestMode::Sampled { s1, s2, seed } }
    }

    /// Sampled request with the paper's fan-outs ([`PAPER_FANOUTS`]).
    #[must_use]
    pub fn paper_sampled(nodes: impl Into<Vec<usize>>, seed: u64) -> Self {
        let (s1, s2) = PAPER_FANOUTS;
        Self::sampled(nodes, s1, s2, seed)
    }
}

/// The answer to one [`InferRequest`].
#[derive(Debug, Clone)]
pub struct InferResponse {
    /// One logits row per requested node, in request order.
    pub logits: Matrix,
    /// Argmax class per requested node.
    pub predictions: Vec<usize>,
    /// Wall-clock time this request took inside the session.
    pub latency: Duration,
    /// Cycle-level hardware report (simulated-accelerator backend only;
    /// `None` on full-graph cache hits, which cost the hardware nothing).
    pub sim: Option<SimReport>,
    /// Energy estimate in joules at the configured accelerator power
    /// (simulated-accelerator backend only; `None` on cache hits).
    pub energy_joules: Option<f64>,
    /// Whether the logits were served from the engine's full-graph cache.
    pub from_cache: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_modes() {
        let full = InferRequest::full_graph(vec![1, 2]);
        assert_eq!(full.mode, RequestMode::FullGraph);
        assert_eq!(full.nodes, vec![1, 2]);
        assert!(InferRequest::all_nodes().nodes.is_empty());
        let s = InferRequest::paper_sampled(vec![3], 9);
        assert_eq!(s.mode, RequestMode::Sampled { s1: 25, s2: 10, seed: 9 });
    }
}
