//! Request/response types of the serving API, plus the request-handling
//! steps shared by the sequential and parallel engines (validation, row
//! extraction, response assembly) — one implementation so the two paths
//! cannot drift.

use crate::error::EngineError;
use crate::stats::ServeStats;
use blockgnn_accel::SimReport;
use blockgnn_gnn::sampled::SampledSubgraph;
use blockgnn_linalg::vector::argmax;
use blockgnn_linalg::Matrix;
use std::time::Duration;

/// The paper's sampling fan-outs `S₁ = 25, S₂ = 10` (§IV-A).
pub const PAPER_FANOUTS: (usize, usize) = (25, 10);

/// How a request's computation graph is formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestMode {
    /// Run the full-graph forward pass and read off the requested rows.
    /// Because an engine's weights are immutable, the full-graph logits
    /// are computed once per engine and served from cache afterwards.
    FullGraph,
    /// Materialize the two-hop sampled computation graph around the
    /// requested nodes (the workload shape the accelerator runs) and
    /// infer on it.
    Sampled {
        /// First-hop fan-out `S₁`.
        s1: usize,
        /// Second-hop fan-out `S₂`.
        s2: usize,
        /// Sampling seed; equal seeds reproduce the same subgraph.
        seed: u64,
    },
}

/// A micro-batched node-classification request.
///
/// `Hash`/`Eq` compare the full request content — the serving batcher
/// uses them to deduplicate identical requests within a coalesced batch
/// (equal requests are served by one execution).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InferRequest {
    /// Target nodes to classify. For [`RequestMode::FullGraph`] an empty
    /// list means "every node"; sampled requests must be non-empty.
    pub nodes: Vec<usize>,
    /// Computation-graph policy.
    pub mode: RequestMode,
}

impl InferRequest {
    /// Full-graph request for the given nodes.
    #[must_use]
    pub fn full_graph(nodes: impl Into<Vec<usize>>) -> Self {
        Self { nodes: nodes.into(), mode: RequestMode::FullGraph }
    }

    /// Full-graph request for every node.
    #[must_use]
    pub fn all_nodes() -> Self {
        Self { nodes: Vec::new(), mode: RequestMode::FullGraph }
    }

    /// Sampled two-hop request with explicit fan-outs.
    #[must_use]
    pub fn sampled(nodes: impl Into<Vec<usize>>, s1: usize, s2: usize, seed: u64) -> Self {
        Self { nodes: nodes.into(), mode: RequestMode::Sampled { s1, s2, seed } }
    }

    /// Sampled request with the paper's fan-outs ([`PAPER_FANOUTS`]).
    #[must_use]
    pub fn paper_sampled(nodes: impl Into<Vec<usize>>, seed: u64) -> Self {
        let (s1, s2) = PAPER_FANOUTS;
        Self::sampled(nodes, s1, s2, seed)
    }
}

/// The answer to one [`InferRequest`].
#[derive(Debug, Clone)]
pub struct InferResponse {
    /// One logits row per requested node, in request order.
    pub logits: Matrix,
    /// Argmax class per requested node.
    pub predictions: Vec<usize>,
    /// End-to-end wall-clock time: `queue_time + compute_time` (kept as
    /// the sum for compatibility with pre-split callers).
    pub latency: Duration,
    /// Time the request waited in a queue before execution started
    /// (zero when served directly by a [`crate::Session`], which never
    /// queues).
    pub queue_time: Duration,
    /// Time the execution itself took. For a coalesced batch this is
    /// the shared batch execution time — the wall-clock the request
    /// actually rode on, not a per-request attribution.
    pub compute_time: Duration,
    /// Cycle-level hardware report (simulated-accelerator backend only;
    /// `None` on full-graph cache hits, which cost the hardware nothing).
    pub sim: Option<SimReport>,
    /// Energy estimate in joules at the configured accelerator power
    /// (simulated-accelerator backend only; `None` on cache hits).
    pub energy_joules: Option<f64>,
    /// Whether the logits were served from the engine's full-graph cache.
    pub from_cache: bool,
    /// Number of graph parts executed to answer this request: 0 on cache
    /// hits, 1 on unpartitioned execution, and the partition size `k`
    /// when the parallel engine sharded the computation (§IV-C).
    pub parts: usize,
    /// Number of requests coalesced into the execution that answered
    /// this one (1 when served alone).
    pub batch_size: usize,
    /// Version of the graph this answer was computed against (0 until
    /// the first applied [`blockgnn_graph::GraphDelta`]). A response's
    /// version is resolved once per micro-batch, so concurrent updates
    /// never land mid-batch — in-flight requests finish on the version
    /// they started on.
    pub graph_version: u64,
    /// Process-unique trace id the serving runtime assigned at
    /// admission, correlating this answer with its recorded spans in the
    /// flight recorder (`trace id=…` on the wire). Zero when the answer
    /// was produced outside a traced serving path (direct
    /// [`crate::Session`] callers, or a server with tracing disabled).
    pub trace_id: u64,
    /// Stage-output rows served from the parallel engine's hot-vertex
    /// aggregation cache instead of being recomputed (summed over
    /// stages; 0 on sequential engines, cache hits, and sampled
    /// requests).
    pub hot_rows: usize,
}

/// The raw outcome of executing one request — everything about the
/// answer except timing, predictions, and stats, which
/// [`assemble_response`] attaches. Produced by
/// [`crate::Engine::execute_request`],
/// [`crate::Engine::infer_coalesced`], and
/// [`crate::ParallelEngine::execute_request`].
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// One logits row per requested node, in request order.
    pub logits: Matrix,
    /// Hardware cycle report, when the backend simulates one.
    pub sim: Option<SimReport>,
    /// Energy estimate in joules, when the backend models power.
    pub energy_joules: Option<f64>,
    /// Whether the logits came from the engine's full-graph cache.
    pub from_cache: bool,
    /// Graph parts executed (see [`InferResponse::parts`]).
    pub parts: usize,
    /// Requests coalesced into the producing execution.
    pub batch_size: usize,
    /// Graph version the execution resolved (see
    /// [`InferResponse::graph_version`]).
    pub graph_version: u64,
    /// Hot-vertex cache row hits (see [`InferResponse::hot_rows`]).
    pub hot_rows: usize,
}

/// Rejects requests naming nodes outside the served graph.
pub(crate) fn validate_nodes(nodes: &[usize], num_nodes: usize) -> Result<(), EngineError> {
    for &node in nodes {
        if node >= num_nodes {
            return Err(EngineError::NodeOutOfRange { node, num_nodes });
        }
    }
    Ok(())
}

/// The single definition of request validity against a graph of
/// `num_nodes` nodes: every named node must exist, and sampled requests
/// must name at least one. Used by the engines before executing and by
/// the serving runtime at admission, so the two can never drift.
///
/// # Errors
///
/// [`EngineError::NodeOutOfRange`] or [`EngineError::EmptyRequest`].
pub fn validate_request(request: &InferRequest, num_nodes: usize) -> Result<(), EngineError> {
    validate_nodes(&request.nodes, num_nodes)?;
    if matches!(request.mode, RequestMode::Sampled { .. }) && request.nodes.is_empty() {
        return Err(EngineError::EmptyRequest);
    }
    Ok(())
}

/// Reads the requested rows off a full-graph logits matrix; an empty
/// request means "every node".
pub(crate) fn full_graph_rows(logits: &Matrix, nodes: &[usize]) -> Matrix {
    if nodes.is_empty() {
        logits.clone()
    } else {
        Matrix::from_fn(nodes.len(), logits.cols(), |i, j| logits[(nodes[i], j)])
    }
}

/// Reads one logits row per request position off a sampled sub-universe's
/// output, mapping global ids through the subgraph's intern table
/// (duplicate request nodes share one interned row).
pub(crate) fn sampled_rows(logits: &Matrix, sub: &SampledSubgraph, nodes: &[usize]) -> Matrix {
    Matrix::from_fn(nodes.len(), logits.cols(), |i, j| {
        let local =
            sub.local_of(nodes[i]).expect("request nodes are interned into the subgraph");
        logits[(local, j)]
    })
}

/// Finishes a served request: attaches argmax predictions and the
/// queue/compute timing split, folds the result into `stats`, and
/// assembles the response. Shared by the sequential session, the
/// parallel session, and the serving runtime's batcher, so their
/// accounting cannot drift.
pub fn assemble_response(
    outcome: ExecOutcome,
    queue_time: Duration,
    compute_time: Duration,
    stats: &mut ServeStats,
) -> InferResponse {
    let ExecOutcome {
        logits,
        sim,
        energy_joules,
        from_cache,
        parts,
        batch_size,
        graph_version,
        hot_rows,
    } = outcome;
    let predictions: Vec<usize> = (0..logits.rows())
        .map(|i| argmax(logits.row(i)).expect("logits rows are non-empty"))
        .collect();
    let response = InferResponse {
        logits,
        predictions,
        latency: queue_time + compute_time,
        queue_time,
        compute_time,
        sim,
        energy_joules,
        from_cache,
        parts,
        batch_size,
        graph_version,
        // Trace ids belong to the serving runtime: it stamps the id on
        // the response after assembly, so direct sessions stay at 0.
        trace_id: 0,
        hot_rows,
    };
    stats.record_response(&response);
    response
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_modes() {
        let full = InferRequest::full_graph(vec![1, 2]);
        assert_eq!(full.mode, RequestMode::FullGraph);
        assert_eq!(full.nodes, vec![1, 2]);
        assert!(InferRequest::all_nodes().nodes.is_empty());
        let s = InferRequest::paper_sampled(vec![3], 9);
        assert_eq!(s.mode, RequestMode::Sampled { s1: 25, s2: 10, seed: 9 });
    }
}
