//! Engine error type: everything that can go wrong between a request and
//! a response.

use blockgnn_accel::AccelError;
use blockgnn_graph::DeltaError;
use blockgnn_nn::NnError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by [`crate::EngineBuilder`] and
/// [`crate::Session::infer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Model construction failed (bad dimensions or block size).
    Build(NnError),
    /// The simulated accelerator rejected the prepared weights (e.g.
    /// Weight Buffer overflow — the §IV-B deployability check).
    Accel(AccelError),
    /// A request named a node outside the engine's graph.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// Number of nodes in the graph.
        num_nodes: usize,
    },
    /// A sampled request carried no target nodes.
    EmptyRequest,
    /// A parallel engine was requested with zero worker threads.
    NoWorkers,
    /// A graph update was rejected by the versioned graph (missing
    /// edge, out-of-range node, bad feature row, empty delta); the
    /// served graph stays at its previous version.
    Delta(DeltaError),
    /// A delta would grow the graph past the engine's feature-residency
    /// budget (the §IV-B/§IV-C bound: graphs exceeding device memory
    /// must be partitioned, which a live engine cannot do mid-flight).
    GraphBudget {
        /// Bytes the grown graph would need resident.
        needed: usize,
        /// The configured budget.
        budget: usize,
    },
    /// A delta was offered to an engine serving a frozen snapshot (the
    /// partition-parallel engine plans its shards once and cannot
    /// absorb mutations).
    ImmutableGraph,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Build(e) => write!(f, "model construction failed: {e}"),
            EngineError::Accel(e) => write!(f, "accelerator rejected the model: {e}"),
            EngineError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "request node {node} out of range (graph has {num_nodes} nodes)")
            }
            EngineError::EmptyRequest => write!(f, "sampled request carries no target nodes"),
            EngineError::NoWorkers => {
                write!(f, "a parallel engine needs at least one worker thread")
            }
            EngineError::Delta(e) => write!(f, "graph update rejected: {e}"),
            EngineError::GraphBudget { needed, budget } => {
                write!(
                    f,
                    "update would grow the graph past the residency budget \
                     ({needed} bytes needed, {budget} allowed)"
                )
            }
            EngineError::ImmutableGraph => {
                write!(f, "this engine serves a frozen graph snapshot; updates not supported")
            }
        }
    }
}

impl Error for EngineError {}

impl From<DeltaError> for EngineError {
    fn from(e: DeltaError) -> Self {
        EngineError::Delta(e)
    }
}

impl From<NnError> for EngineError {
    fn from(e: NnError) -> Self {
        EngineError::Build(e)
    }
}

impl From<AccelError> for EngineError {
    fn from(e: AccelError) -> Self {
        EngineError::Accel(e)
    }
}
