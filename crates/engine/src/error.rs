//! Engine error type: everything that can go wrong between a request and
//! a response.

use blockgnn_accel::AccelError;
use blockgnn_nn::NnError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by [`crate::EngineBuilder`] and
/// [`crate::Session::infer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Model construction failed (bad dimensions or block size).
    Build(NnError),
    /// The simulated accelerator rejected the prepared weights (e.g.
    /// Weight Buffer overflow — the §IV-B deployability check).
    Accel(AccelError),
    /// A request named a node outside the engine's graph.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// Number of nodes in the graph.
        num_nodes: usize,
    },
    /// A sampled request carried no target nodes.
    EmptyRequest,
    /// A parallel engine was requested with zero worker threads.
    NoWorkers,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Build(e) => write!(f, "model construction failed: {e}"),
            EngineError::Accel(e) => write!(f, "accelerator rejected the model: {e}"),
            EngineError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "request node {node} out of range (graph has {num_nodes} nodes)")
            }
            EngineError::EmptyRequest => write!(f, "sampled request carries no target nodes"),
            EngineError::NoWorkers => {
                write!(f, "a parallel engine needs at least one worker thread")
            }
        }
    }
}

impl Error for EngineError {}

impl From<NnError> for EngineError {
    fn from(e: NnError) -> Self {
        EngineError::Build(e)
    }
}

impl From<AccelError> for EngineError {
    fn from(e: AccelError) -> Self {
        EngineError::Accel(e)
    }
}
