//! `EngineBuilder` → [`Engine`] → [`Session`]: the serving flow.

use crate::backend::{
    BackendKind, BackendOutput, DenseBackend, ExecutionBackend, RequestShape,
    SimulatedAccelBackend, SpectralBackend,
};
use crate::error::EngineError;
use crate::request::{InferRequest, InferResponse, RequestMode, PAPER_FANOUTS};
use crate::stats::ServeStats;
use blockgnn_accel::SimReport;
use blockgnn_gnn::sampled::SampledSubgraph;
use blockgnn_gnn::{build_model_with_policy, CompressionPolicy, GnnModel, ModelKind};
use blockgnn_graph::Dataset;
use blockgnn_linalg::Matrix;
use blockgnn_nn::{Compression, LinearLayer};
use blockgnn_perf::coeffs::HardwareCoeffs;
use blockgnn_perf::params::CirCoreParams;
use std::sync::Arc;
use std::time::Instant;

/// Configures and constructs an [`Engine`].
///
/// ```
/// use blockgnn_engine::{BackendKind, EngineBuilder, InferRequest};
/// use blockgnn_gnn::ModelKind;
/// use blockgnn_graph::datasets;
/// use std::sync::Arc;
///
/// let dataset = Arc::new(datasets::cora_like_small(7));
/// let mut engine = EngineBuilder::new(ModelKind::Gcn, BackendKind::Spectral)
///     .hidden_dim(16)
///     .build(dataset)
///     .unwrap();
/// let mut session = engine.session();
/// let response = session.infer(&InferRequest::full_graph(vec![0, 1, 2])).unwrap();
/// assert_eq!(response.predictions.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    model_kind: ModelKind,
    backend: BackendKind,
    hidden_dim: usize,
    policy: CompressionPolicy,
    seed: u64,
    fanouts: (usize, usize),
    circore: CirCoreParams,
    coeffs: HardwareCoeffs,
}

impl EngineBuilder {
    /// Starts a builder for `model_kind` served on `backend`. Defaults:
    /// hidden width 32, uniform block-circulant compression with `n = 8`,
    /// seed 42, the paper's sampling fan-outs, and the base CirCore
    /// configuration on ZC706 coefficients.
    #[must_use]
    pub fn new(model_kind: ModelKind, backend: BackendKind) -> Self {
        Self {
            model_kind,
            backend,
            hidden_dim: 32,
            policy: CompressionPolicy::uniform(Compression::BlockCirculant { block_size: 8 }),
            seed: 42,
            fanouts: PAPER_FANOUTS,
            circore: CirCoreParams::base(),
            coeffs: HardwareCoeffs::zc706(),
        }
    }

    /// Hidden-layer width for models constructed by [`EngineBuilder::build`]
    /// ([`EngineBuilder::build_with_model`] reads the width off the
    /// supplied model instead).
    #[must_use]
    pub fn hidden_dim(mut self, hidden_dim: usize) -> Self {
        self.hidden_dim = hidden_dim;
        self
    }

    /// Uniform compression for every weight matrix.
    #[must_use]
    pub fn compression(mut self, compression: Compression) -> Self {
        self.policy = CompressionPolicy::uniform(compression);
        self
    }

    /// Per-phase compression control (the §V aggregator-only ablation).
    #[must_use]
    pub fn compression_policy(mut self, policy: CompressionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Weight-initialization seed; equal seeds yield identical weights
    /// across backends (the basis of the parity tests).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sampling fan-outs `(S₁, S₂)` the cycle model charges for
    /// full-graph requests (sampled requests are charged their own
    /// request fan-outs).
    #[must_use]
    pub fn fanouts(mut self, s1: usize, s2: usize) -> Self {
        self.fanouts = (s1, s2);
        self
    }

    /// Accelerator configuration for [`BackendKind::SimulatedAccel`].
    #[must_use]
    pub fn accelerator(mut self, params: CirCoreParams, coeffs: HardwareCoeffs) -> Self {
        self.circore = params;
        self.coeffs = coeffs;
        self
    }

    /// Builds an engine with freshly initialized weights (inference over
    /// an untrained model — useful for parity tests and benchmarks; for
    /// serving a trained model, see [`EngineBuilder::build_with_model`]).
    ///
    /// # Errors
    ///
    /// [`EngineError::Build`] for invalid dimensions/block sizes;
    /// [`EngineError::Accel`] if the simulated accelerator rejects the
    /// weights.
    pub fn build(self, dataset: Arc<Dataset>) -> Result<Engine, EngineError> {
        let model = build_model_with_policy(
            self.model_kind,
            dataset.feature_dim(),
            self.hidden_dim,
            dataset.num_classes,
            self.policy,
            self.seed,
        )?;
        self.build_with_model(model, dataset)
    }

    /// Builds an engine around an existing (typically trained) model.
    /// The model's weights are frozen into the backend's prepared form;
    /// its kind overrides the builder's.
    ///
    /// # Errors
    ///
    /// [`EngineError::Accel`] if the simulated accelerator rejects the
    /// weights.
    pub fn build_with_model(
        self,
        mut model: Box<dyn GnnModel>,
        dataset: Arc<Dataset>,
    ) -> Result<Engine, EngineError> {
        let model_kind = model.kind();
        let block_size = largest_block_size(model.as_mut());
        let hidden_dim = model.hidden_dim();
        let backend: Box<dyn ExecutionBackend> = match self.backend {
            BackendKind::Dense => Box::new(DenseBackend::new(model)),
            BackendKind::Spectral => Box::new(SpectralBackend::new(model)),
            BackendKind::SimulatedAccel => Box::new(SimulatedAccelBackend::new(
                model,
                self.circore,
                self.coeffs,
                hidden_dim,
                block_size,
            )?),
        };
        Ok(Engine {
            dataset,
            backend,
            model_kind,
            backend_kind: self.backend,
            fanouts: self.fanouts,
            full_graph_cache: None,
        })
    }
}

/// The largest circulant block size in the model — the `n` the hardware
/// cycle model executes (1 when every weight is dense).
fn largest_block_size(model: &mut dyn GnnModel) -> usize {
    let mut n = 1usize;
    model.visit_linear_layers(&mut |layer| {
        if let LinearLayer::Circulant(c) = layer {
            n = n.max(c.block_size());
        }
    });
    n
}

/// A prepared model bound to one dataset and one execution backend — the
/// single front door for inference.
///
/// The engine owns immutable prepared weights: construction freezes the
/// model (see [`blockgnn_nn::ExecMode`]), and every [`Session`] serves
/// from that frozen state. Open a session with [`Engine::session`].
pub struct Engine {
    pub(crate) dataset: Arc<Dataset>,
    pub(crate) backend: Box<dyn ExecutionBackend>,
    pub(crate) model_kind: ModelKind,
    pub(crate) backend_kind: BackendKind,
    /// Fan-outs the cycle model charges for full-graph requests.
    pub(crate) fanouts: (usize, usize),
    /// Full-graph output, computed at most once per engine (weights are
    /// immutable, so it can never go stale).
    pub(crate) full_graph_cache: Option<BackendOutput>,
}

impl Engine {
    /// Starts a builder (alias for [`EngineBuilder::new`]).
    #[must_use]
    pub fn builder(model_kind: ModelKind, backend: BackendKind) -> EngineBuilder {
        EngineBuilder::new(model_kind, backend)
    }

    /// Which of the paper's four algorithms this engine serves.
    #[must_use]
    pub fn model_kind(&self) -> ModelKind {
        self.model_kind
    }

    /// Which execution substrate answers requests.
    #[must_use]
    pub fn backend_kind(&self) -> BackendKind {
        self.backend_kind
    }

    /// The dataset handle requests are resolved against.
    #[must_use]
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }

    /// Opens a serving session. Sessions borrow the engine mutably (one
    /// active session at a time) and accumulate their own [`ServeStats`].
    #[must_use]
    pub fn session(&mut self) -> Session<'_> {
        Session { engine: self, stats: ServeStats::default() }
    }

    /// Drops the full-graph logits cache so the next full-graph request
    /// recomputes (and re-charges the hardware models). Useful for
    /// benchmarking the execution path itself; regular serving never
    /// needs this, since an engine's weights are immutable.
    pub fn clear_full_graph_cache(&mut self) {
        self.full_graph_cache = None;
    }

    /// Resolves and executes one request; returns the per-node logits,
    /// the hardware report/energy (when freshly simulated), and whether
    /// the cache answered.
    fn run_request(
        &mut self,
        request: &InferRequest,
    ) -> Result<(Matrix, Option<SimReport>, Option<f64>, bool), EngineError> {
        crate::request::validate_nodes(&request.nodes, self.dataset.num_nodes())?;
        match request.mode {
            RequestMode::FullGraph => {
                let from_cache = self.full_graph_cache.is_some();
                if !from_cache {
                    let shape = RequestShape {
                        target_nodes: self.dataset.num_nodes(),
                        fanouts: self.fanouts,
                    };
                    let out = self.backend.execute(
                        &self.dataset.graph,
                        &self.dataset.features,
                        shape,
                    );
                    self.full_graph_cache = Some(out);
                }
                let cached = self.full_graph_cache.as_ref().expect("just populated");
                let logits = crate::request::full_graph_rows(&cached.logits, &request.nodes);
                // Cache hits cost the hardware nothing — only the fresh
                // computation carries its cycle/energy report, so summing
                // per-response cost over a session stays truthful.
                let (sim, energy) = if from_cache {
                    (None, None)
                } else {
                    (cached.sim.clone(), cached.energy_joules)
                };
                Ok((logits, sim, energy, from_cache))
            }
            RequestMode::Sampled { s1, s2, seed } => {
                if request.nodes.is_empty() {
                    return Err(EngineError::EmptyRequest);
                }
                // The subgraph interns duplicate request nodes to one
                // local row; `local_of` maps every request position back.
                let sub =
                    SampledSubgraph::build(&self.dataset.graph, &request.nodes, s1, s2, seed);
                let local_features = sub.gather_features(&self.dataset.features);
                let shape = RequestShape { target_nodes: sub.batch_len, fanouts: (s1, s2) };
                let out = self.backend.execute(&sub.graph, &local_features, shape);
                let logits = crate::request::sampled_rows(&out.logits, &sub, &request.nodes);
                Ok((logits, out.sim, out.energy_joules, false))
            }
        }
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("model", &self.model_kind)
            .field("backend", &self.backend_kind)
            .field("dataset", &self.dataset.name)
            .field("full_graph_cached", &self.full_graph_cache.is_some())
            .finish()
    }
}

/// A serving session: answers micro-batched requests against a borrowed
/// [`Engine`] and accumulates [`ServeStats`].
#[derive(Debug)]
pub struct Session<'e> {
    engine: &'e mut Engine,
    stats: ServeStats,
}

impl Session<'_> {
    /// Answers one request.
    ///
    /// # Errors
    ///
    /// [`EngineError::NodeOutOfRange`] for invalid node ids;
    /// [`EngineError::EmptyRequest`] for sampled requests with no nodes.
    pub fn infer(&mut self, request: &InferRequest) -> Result<InferResponse, EngineError> {
        let start = Instant::now();
        let (logits, sim, energy_joules, from_cache) = self.engine.run_request(request)?;
        let parts = usize::from(!from_cache);
        Ok(crate::request::assemble_response(
            logits,
            sim,
            energy_joules,
            from_cache,
            parts,
            start,
            &mut self.stats,
        ))
    }

    /// Answers a batch of requests in order, stopping at the first error.
    ///
    /// # Errors
    ///
    /// Propagates the first [`EngineError`] encountered.
    pub fn infer_batch(
        &mut self,
        requests: &[InferRequest],
    ) -> Result<Vec<InferResponse>, EngineError> {
        requests.iter().map(|r| self.infer(r)).collect()
    }

    /// The statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The engine this session serves from.
    #[must_use]
    pub fn engine(&self) -> &Engine {
        self.engine
    }

    /// Closes the session, returning its statistics.
    #[must_use]
    pub fn finish(self) -> ServeStats {
        self.stats
    }
}
