//! `EngineBuilder` → [`Engine`] → [`Session`]: the serving flow.

use crate::backend::{
    BackendKind, DenseBackend, ExecutionBackend, RequestShape, SimulatedAccelBackend,
    SpectralBackend,
};
use crate::error::EngineError;
use crate::request::{ExecOutcome, InferRequest, InferResponse, RequestMode, PAPER_FANOUTS};
use crate::stats::ServeStats;
use crate::versioned::{GraphEpoch, GraphHandle, ResidencyPolicy, SharedGraphState};
use blockgnn_gnn::batch::MergedUniverse;
use blockgnn_gnn::sampled::SampledSubgraph;
use blockgnn_gnn::{build_model_with_policy, CompressionPolicy, GnnModel, ModelKind};
use blockgnn_graph::{Dataset, GraphDelta};
use blockgnn_nn::{Compression, LinearLayer};
use blockgnn_perf::coeffs::HardwareCoeffs;
use blockgnn_perf::params::CirCoreParams;
use blockgnn_perf::resources::DRAM_BYTES;
use std::collections::HashMap;
use std::sync::{Arc, PoisonError};
use std::time::{Duration, Instant};

/// Configures and constructs an [`Engine`].
///
/// ```
/// use blockgnn_engine::{BackendKind, EngineBuilder, InferRequest};
/// use blockgnn_gnn::ModelKind;
/// use blockgnn_graph::datasets;
/// use std::sync::Arc;
///
/// let dataset = Arc::new(datasets::cora_like_small(7));
/// let mut engine = EngineBuilder::new(ModelKind::Gcn, BackendKind::Spectral)
///     .hidden_dim(16)
///     .build(dataset)
///     .unwrap();
/// let mut session = engine.session();
/// let response = session.infer(&InferRequest::full_graph(vec![0, 1, 2])).unwrap();
/// assert_eq!(response.predictions.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    model_kind: ModelKind,
    backend: BackendKind,
    hidden_dim: usize,
    policy: CompressionPolicy,
    seed: u64,
    fanouts: (usize, usize),
    circore: CirCoreParams,
    coeffs: HardwareCoeffs,
    graph_budget: Option<usize>,
}

impl EngineBuilder {
    /// Starts a builder for `model_kind` served on `backend`. Defaults:
    /// hidden width 32, uniform block-circulant compression with `n = 8`,
    /// seed 42, the paper's sampling fan-outs, and the base CirCore
    /// configuration on ZC706 coefficients.
    #[must_use]
    pub fn new(model_kind: ModelKind, backend: BackendKind) -> Self {
        Self {
            model_kind,
            backend,
            hidden_dim: 32,
            policy: CompressionPolicy::uniform(Compression::BlockCirculant { block_size: 8 }),
            seed: 42,
            fanouts: PAPER_FANOUTS,
            circore: CirCoreParams::base(),
            coeffs: HardwareCoeffs::zc706(),
            graph_budget: None,
        }
    }

    /// Hidden-layer width for models constructed by [`EngineBuilder::build`]
    /// ([`EngineBuilder::build_with_model`] reads the width off the
    /// supplied model instead).
    #[must_use]
    pub fn hidden_dim(mut self, hidden_dim: usize) -> Self {
        self.hidden_dim = hidden_dim;
        self
    }

    /// Uniform compression for every weight matrix.
    #[must_use]
    pub fn compression(mut self, compression: Compression) -> Self {
        self.policy = CompressionPolicy::uniform(compression);
        self
    }

    /// Per-phase compression control (the §V aggregator-only ablation).
    #[must_use]
    pub fn compression_policy(mut self, policy: CompressionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Weight-initialization seed; equal seeds yield identical weights
    /// across backends (the basis of the parity tests).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sampling fan-outs `(S₁, S₂)` the cycle model charges for
    /// full-graph requests (sampled requests are charged their own
    /// request fan-outs).
    #[must_use]
    pub fn fanouts(mut self, s1: usize, s2: usize) -> Self {
        self.fanouts = (s1, s2);
        self
    }

    /// Accelerator configuration for [`BackendKind::SimulatedAccel`].
    #[must_use]
    pub fn accelerator(mut self, params: CirCoreParams, coeffs: HardwareCoeffs) -> Self {
        self.circore = params;
        self.coeffs = coeffs;
        self
    }

    /// Device-memory budget (bytes) the §IV-B/§IV-C residency check
    /// enforces when graph updates grow the node count: the grown
    /// graph's features plus the model's packed weight spectra must fit,
    /// or [`Engine::apply_delta`] rejects the delta with
    /// [`EngineError::GraphBudget`]. Defaults to the ZC706's 1 GB DRAM
    /// for [`BackendKind::SimulatedAccel`] and to no limit for the
    /// software backends.
    #[must_use]
    pub fn graph_budget_bytes(mut self, budget: usize) -> Self {
        self.graph_budget = Some(budget);
        self
    }

    /// Builds an engine with freshly initialized weights (inference over
    /// an untrained model — useful for parity tests and benchmarks; for
    /// serving a trained model, see [`EngineBuilder::build_with_model`]).
    ///
    /// # Errors
    ///
    /// [`EngineError::Build`] for invalid dimensions/block sizes;
    /// [`EngineError::Accel`] if the simulated accelerator rejects the
    /// weights.
    pub fn build(self, dataset: Arc<Dataset>) -> Result<Engine, EngineError> {
        let model = build_model_with_policy(
            self.model_kind,
            dataset.feature_dim(),
            self.hidden_dim,
            dataset.num_classes,
            self.policy,
            self.seed,
        )?;
        self.build_with_model(model, dataset)
    }

    /// Builds an engine around an existing (typically trained) model.
    /// The model's weights are frozen into the backend's prepared form;
    /// its kind overrides the builder's.
    ///
    /// # Errors
    ///
    /// [`EngineError::Accel`] if the simulated accelerator rejects the
    /// weights.
    pub fn build_with_model(
        self,
        mut model: Box<dyn GnnModel>,
        dataset: Arc<Dataset>,
    ) -> Result<Engine, EngineError> {
        let model_kind = model.kind();
        let block_size = largest_block_size(model.as_mut());
        let hidden_dim = model.hidden_dim();
        let spectral_weight_bytes = spectral_weight_bytes(model.as_mut());
        let backend: Box<dyn ExecutionBackend> = match self.backend {
            BackendKind::Dense => Box::new(DenseBackend::new(model)),
            BackendKind::Spectral => Box::new(SpectralBackend::new(model)),
            BackendKind::SimulatedAccel => Box::new(SimulatedAccelBackend::new(
                model,
                self.circore,
                self.coeffs,
                hidden_dim,
                block_size,
            )?),
        };
        // Graph updates that grow the node count re-run this residency
        // policy: the simulated accelerator is bounded by device DRAM
        // (§IV-C) unless overridden; software backends only check when
        // the caller set an explicit budget.
        let budget_bytes = match (self.backend, self.graph_budget) {
            (_, Some(budget)) => Some(budget),
            (BackendKind::SimulatedAccel, None) => Some(DRAM_BYTES),
            _ => None,
        };
        let residency = budget_bytes.map(|budget_bytes| ResidencyPolicy {
            spectral_weight_bytes,
            bytes_per_feature: self.backend.bytes_per_feature(),
            budget_bytes,
        });
        Ok(Engine {
            shared: Arc::new(SharedGraphState::new(dataset, residency)),
            backend,
            model_kind,
            backend_kind: self.backend,
            fanouts: self.fanouts,
            weight_bytes: spectral_weight_bytes,
        })
    }
}

/// The largest circulant block size in the model — the `n` the hardware
/// cycle model executes (1 when every weight is dense).
fn largest_block_size(model: &mut dyn GnnModel) -> usize {
    let mut n = 1usize;
    model.visit_linear_layers(&mut |layer| {
        if let LinearLayer::Circulant(c) = layer {
            n = n.max(c.block_size());
        }
    });
    n
}

/// Summed packed spectral footprint of the model's circulant layers —
/// the weight-side term of the residency budget (same accounting as the
/// §IV-B Weight-Buffer check).
fn spectral_weight_bytes(model: &mut dyn GnnModel) -> usize {
    let mut bytes = 0usize;
    model.visit_linear_layers(&mut |layer| {
        if let LinearLayer::Circulant(c) = layer {
            bytes += c.spectral_weight_bytes();
        }
    });
    bytes
}

/// A prepared model bound to one (versioned) dataset and one execution
/// backend — the single front door for inference.
///
/// The engine owns immutable prepared weights: construction freezes the
/// model (see [`blockgnn_nn::ExecMode`]), and every [`Session`] serves
/// from that frozen state. The *graph*, by contrast, is versioned:
/// [`Engine::apply_delta`] applies a [`GraphDelta`] atomically and
/// publishes a new snapshot (fresh
/// [`blockgnn_graph::CsrGraph::instance_id`], version bumped by one)
/// that the next micro-batch picks up — in-flight batches finish on the
/// version they resolved at entry, and every response reports the
/// version it was served from.
///
/// Open a session with [`Engine::session`], or fork replicas for
/// concurrent serving with [`Engine::fork`]: forks share the prepared
/// weights *and* the versioned graph state (current snapshot, mutable
/// master, version-keyed full-graph logits cache), so a whole worker
/// pool computes the full graph at most once per version and observes
/// updates in the same total order.
pub struct Engine {
    /// Versioned graph state shared across the engine family (see
    /// [`crate::versioned`]): current epoch, mutable master, and the
    /// version-keyed full-graph cache.
    pub(crate) shared: Arc<SharedGraphState>,
    pub(crate) backend: Box<dyn ExecutionBackend>,
    pub(crate) model_kind: ModelKind,
    pub(crate) backend_kind: BackendKind,
    /// Fan-outs the cycle model charges for full-graph requests.
    pub(crate) fanouts: (usize, usize),
    /// Summed packed spectral footprint of the circulant layers — the
    /// weight-side term of the §IV-B residency accounting, retained even
    /// when no per-engine budget is enforced so aggregate accountants
    /// (the multi-tenant registry) can sum it across engines.
    pub(crate) weight_bytes: usize,
}

impl Engine {
    /// Starts a builder (alias for [`EngineBuilder::new`]).
    #[must_use]
    pub fn builder(model_kind: ModelKind, backend: BackendKind) -> EngineBuilder {
        EngineBuilder::new(model_kind, backend)
    }

    /// Which of the paper's four algorithms this engine serves.
    #[must_use]
    pub fn model_kind(&self) -> ModelKind {
        self.model_kind
    }

    /// Which execution substrate answers requests.
    #[must_use]
    pub fn backend_kind(&self) -> BackendKind {
        self.backend_kind
    }

    /// The currently served dataset snapshot (updates swap in a new
    /// `Arc`; holders of the returned one are unaffected).
    #[must_use]
    pub fn dataset(&self) -> Arc<Dataset> {
        Arc::clone(&self.shared.epoch().dataset)
    }

    /// Summed packed spectral footprint of the model's circulant layers
    /// (0 when every weight is dense) — the weight-side term of the
    /// §IV-B Weight-Buffer accounting.
    #[must_use]
    pub fn weight_bytes(&self) -> usize {
        self.weight_bytes
    }

    /// This engine family's current device-residency footprint under the
    /// §IV-B/§IV-C accounting: packed weight spectra plus the *current*
    /// graph version's node features at the backend's scalar width.
    /// Graph deltas that append nodes grow it. A multi-tenant registry
    /// sums this across deployed engines against one device budget.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        let epoch = self.shared.epoch();
        self.weight_bytes
            + epoch.dataset.num_nodes()
                * epoch.dataset.feature_dim()
                * self.backend_kind.bytes_per_feature()
    }

    /// The currently served graph version (0 until the first applied
    /// delta).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.shared.version()
    }

    /// Applies a [`GraphDelta`] atomically and publishes the new graph
    /// version, returning it. The swap happens between micro-batches:
    /// executions already in flight finish on the version they resolved,
    /// the next batch (on every fork) sees the new one. The full-graph
    /// logits cache is version-keyed, so the next full-graph request
    /// recomputes; when the delta grows the node count, the §IV-B/§IV-C
    /// feature-residency check re-runs first (see
    /// [`EngineBuilder::graph_budget_bytes`]).
    ///
    /// # Errors
    ///
    /// [`EngineError::Delta`] for invalid deltas (missing edge,
    /// out-of-range node, bad feature width, empty delta);
    /// [`EngineError::GraphBudget`] when growth violates the residency
    /// budget. The served graph is untouched on failure.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<u64, EngineError> {
        Ok(self.shared.apply_delta(delta)?.version)
    }

    /// A cloneable handle for applying deltas and reading the version
    /// without holding any engine replica — what the serving runtime
    /// keeps after the workers take ownership of the forks.
    #[must_use]
    pub fn graph_handle(&self) -> GraphHandle {
        GraphHandle { shared: Arc::clone(&self.shared) }
    }

    /// Opens a serving session. Sessions borrow the engine mutably (one
    /// active session at a time) and accumulate their own [`ServeStats`].
    #[must_use]
    pub fn session(&mut self) -> Session<'_> {
        Session { engine: self, stats: ServeStats::default() }
    }

    /// Drops the full-graph logits cache so the next full-graph request
    /// recomputes (and re-charges the hardware models). Useful for
    /// benchmarking the execution path itself; regular serving never
    /// needs this — the cache is version-keyed and [`Engine::apply_delta`]
    /// already invalidates it. Affects every [`Engine::fork`] replica —
    /// the cache is shared.
    pub fn clear_full_graph_cache(&self) {
        *self.shared.cache.lock().unwrap_or_else(PoisonError::into_inner) = None;
    }

    /// Forks an independent replica for another worker thread: the
    /// backend's prepared weights and cached spectra are `Arc`-shared
    /// (see [`ExecutionBackend::fork`]), as is the whole versioned graph
    /// state — snapshot, mutable master, and the version-keyed
    /// full-graph logits cache. Forks execute concurrently and observe
    /// graph updates in the same total order — this is how the serving
    /// runtime places one engine per worker without duplicating the
    /// model.
    #[must_use]
    pub fn fork(&self) -> Engine {
        Engine {
            shared: Arc::clone(&self.shared),
            backend: self.backend.fork(),
            model_kind: self.model_kind,
            backend_kind: self.backend_kind,
            fanouts: self.fanouts,
            weight_bytes: self.weight_bytes,
        }
    }

    /// Resolves and executes one request, returning the raw
    /// [`ExecOutcome`] (logits, hardware report, cache provenance)
    /// without response assembly — the building block [`Session::infer`]
    /// and the serving runtime share.
    ///
    /// # Errors
    ///
    /// [`EngineError::NodeOutOfRange`] for invalid node ids;
    /// [`EngineError::EmptyRequest`] for sampled requests with no nodes.
    pub fn execute_request(
        &mut self,
        request: &InferRequest,
    ) -> Result<ExecOutcome, EngineError> {
        let epoch = self.shared.epoch();
        self.execute_request_on(&epoch, request)
    }

    /// Executes one request against a resolved snapshot — the shared
    /// core of [`Engine::execute_request`] and the coalesced batcher
    /// (which resolves one epoch for its whole batch, making updates
    /// atomic between micro-batches).
    fn execute_request_on(
        &mut self,
        epoch: &GraphEpoch,
        request: &InferRequest,
    ) -> Result<ExecOutcome, EngineError> {
        crate::request::validate_request(request, epoch.dataset.num_nodes())?;
        match request.mode {
            RequestMode::FullGraph => Ok(self.full_graph_outcome(epoch, &request.nodes)),
            RequestMode::Sampled { s1, s2, seed } => {
                // The subgraph interns duplicate request nodes to one
                // local row; `local_of` maps every request position back.
                let sub =
                    SampledSubgraph::build(&epoch.dataset.graph, &request.nodes, s1, s2, seed);
                let local_features = sub.gather_features(&epoch.dataset.features);
                let shape = RequestShape { target_nodes: sub.batch_len, fanouts: (s1, s2) };
                let out = self.backend.execute(&sub.graph, &local_features, shape);
                let logits = crate::request::sampled_rows(&out.logits, &sub, &request.nodes);
                Ok(ExecOutcome {
                    logits,
                    sim: out.sim,
                    energy_joules: out.energy_joules,
                    from_cache: false,
                    parts: 1,
                    batch_size: 1,
                    graph_version: epoch.version,
                    hot_rows: 0,
                })
            }
        }
    }

    /// Answers one full-graph request through the shared version-keyed
    /// cache, computing the full-graph pass under the cache lock if the
    /// snapshot's version is not the cached one (concurrent forks block
    /// rather than duplicate the work; a delta bumps the version, so a
    /// stale entry can never answer).
    fn full_graph_outcome(&mut self, epoch: &GraphEpoch, nodes: &[usize]) -> ExecOutcome {
        let mut guard = self.shared.cache.lock().unwrap_or_else(PoisonError::into_inner);
        let from_cache = matches!(&*guard, Some((v, _)) if *v == epoch.version);
        if !from_cache {
            let shape =
                RequestShape { target_nodes: epoch.dataset.num_nodes(), fanouts: self.fanouts };
            let out =
                self.backend.execute(&epoch.dataset.graph, &epoch.dataset.features, shape);
            // A batch still draining an older version may pass through
            // here after a newer version was cached; it stores its own
            // version (hits require an exact match, so this only costs
            // the newer version one recomputation, never correctness).
            *guard = Some((epoch.version, out));
        }
        let (_, cached) = guard.as_ref().expect("just populated");
        let logits = crate::request::full_graph_rows(&cached.logits, nodes);
        // Cache hits cost the hardware nothing — only the fresh
        // computation carries its cycle/energy report, so summing
        // per-response cost over a session stays truthful.
        let (sim, energy_joules) =
            if from_cache { (None, None) } else { (cached.sim.clone(), cached.energy_joules) };
        ExecOutcome {
            logits,
            sim,
            energy_joules,
            from_cache,
            parts: usize::from(!from_cache),
            batch_size: 1,
            graph_version: epoch.version,
            hot_rows: 0,
        }
    }

    /// Executes a micro-batch of requests as **one coalesced pass**: the
    /// dynamic batcher's compute core.
    ///
    /// Duplicate requests (equal nodes *and* mode) are deduplicated to a
    /// single execution; the remaining unique sampled requests'
    /// sub-universes are concatenated into one block-diagonal
    /// [`MergedUniverse`] and answered by a single backend execution,
    /// with per-request logits scattered back and per-request hardware
    /// cost re-charged on each request's own sub-universe shape.
    /// Full-graph requests are answered through the shared cache.
    ///
    /// Every outcome is **bit-identical** to [`Engine::execute_request`]
    /// on the same request: blocks preserve each sub-universe's exact
    /// adjacency and neighbor order (see [`blockgnn_gnn::batch`]), and
    /// the cycle model is a pure function of the per-request shape.
    ///
    /// Per-request errors (out-of-range nodes, empty sampled requests)
    /// fail only their own slot, never the batch.
    ///
    /// The graph snapshot is resolved **once** for the whole batch:
    /// every member executes against the same version (reported in its
    /// outcome), and a concurrent [`Engine::apply_delta`] only takes
    /// effect from the next batch on.
    pub fn infer_coalesced(&mut self, requests: &[InferRequest]) -> CoalescedOutcome {
        let epoch = self.shared.epoch();
        let batch_size = requests.len();
        let mut outcomes: Vec<Option<Result<ExecOutcome, EngineError>>> =
            (0..batch_size).map(|_| None).collect();
        // Dedup map: first index of each distinct request → follower
        // indexes answered by cloning the leader's outcome.
        let mut leaders: HashMap<&InferRequest, usize> = HashMap::new();
        let mut followers: Vec<(usize, usize)> = Vec::new();
        // Unique sampled requests awaiting the merged execution.
        let mut sampled: Vec<(usize, SampledSubgraph, (usize, usize))> = Vec::new();
        let mut unique_executions = 0usize;
        let mut timings = StageAccum::default();
        for (i, request) in requests.iter().enumerate() {
            if let Some(&leader) = leaders.get(request) {
                followers.push((i, leader));
                continue;
            }
            leaders.insert(request, i);
            if let Err(e) = crate::request::validate_request(request, epoch.dataset.num_nodes())
            {
                outcomes[i] = Some(Err(e));
                continue;
            }
            match request.mode {
                RequestMode::FullGraph => {
                    unique_executions += 1;
                    let start = Instant::now();
                    let mut outcome = self.full_graph_outcome(&epoch, &request.nodes);
                    timings.add("full_graph", start.elapsed());
                    outcome.batch_size = batch_size;
                    outcomes[i] = Some(Ok(outcome));
                }
                RequestMode::Sampled { s1, s2, seed } => {
                    unique_executions += 1;
                    let start = Instant::now();
                    let sub = SampledSubgraph::build(
                        &epoch.dataset.graph,
                        &request.nodes,
                        s1,
                        s2,
                        seed,
                    );
                    timings.add("sample", start.elapsed());
                    sampled.push((i, sub, (s1, s2)));
                }
            }
        }
        let merged_universe_nodes =
            self.execute_sampled_group(&epoch, requests, &mut outcomes, &sampled, &mut timings);
        drop(leaders);
        let deduped = followers.len();
        for (i, leader) in followers {
            let mut outcome =
                outcomes[leader].clone().expect("leader outcome resolved before followers");
            // A duplicate full-graph request served alone would be a
            // cache hit (the leader populated the cache), charging no
            // hardware; mirror that here. Duplicate *sampled* requests
            // keep the leader's report — solo serving re-executes and
            // re-charges them identically (the cycle model is a pure
            // function of the request shape).
            if requests[i].mode == RequestMode::FullGraph {
                if let Ok(o) = &mut outcome {
                    o.from_cache = true;
                    o.sim = None;
                    o.energy_joules = None;
                    o.parts = 0;
                }
            }
            outcomes[i] = Some(outcome);
        }
        CoalescedOutcome {
            outcomes: outcomes
                .into_iter()
                .map(|o| o.expect("every request slot resolved"))
                .collect(),
            unique_executions,
            deduped,
            merged_universe_nodes,
            stage_timings: timings.entries,
        }
    }

    /// Runs the unique sampled requests of a coalesced batch as one
    /// merged-universe execution (or a direct single-subgraph execution
    /// when only one is left after dedup), filling their outcome slots.
    /// Returns the executed universe's node count.
    fn execute_sampled_group(
        &mut self,
        epoch: &GraphEpoch,
        requests: &[InferRequest],
        outcomes: &mut [Option<Result<ExecOutcome, EngineError>>],
        sampled: &[(usize, SampledSubgraph, (usize, usize))],
        timings: &mut StageAccum,
    ) -> usize {
        let batch_size = requests.len();
        match sampled {
            [] => 0,
            [(i, sub, fanouts)] => {
                // One unique sampled request: execute its sub-universe
                // directly (bit-identical to the merged path, without
                // copying the adjacency into a one-block merge).
                let gather_start = Instant::now();
                let local_features = sub.gather_features(&epoch.dataset.features);
                timings.add("gather", gather_start.elapsed());
                let shape = RequestShape { target_nodes: sub.batch_len, fanouts: *fanouts };
                let (out, execute_time) =
                    self.backend.execute_timed(&sub.graph, &local_features, shape);
                timings.add("execute", execute_time);
                let scatter_start = Instant::now();
                let logits =
                    crate::request::sampled_rows(&out.logits, sub, &requests[*i].nodes);
                timings.add("scatter", scatter_start.elapsed());
                outcomes[*i] = Some(Ok(ExecOutcome {
                    logits,
                    sim: out.sim,
                    energy_joules: out.energy_joules,
                    from_cache: false,
                    parts: 1,
                    batch_size,
                    graph_version: epoch.version,
                    hot_rows: 0,
                }));
                sub.local_to_global.len()
            }
            many => {
                let merge_start = Instant::now();
                let subs: Vec<&SampledSubgraph> = many.iter().map(|(_, sub, _)| sub).collect();
                let merged = MergedUniverse::build(&subs);
                timings.add("merge", merge_start.elapsed());
                let gather_start = Instant::now();
                let merged_features = merged.gather_features(&epoch.dataset.features);
                timings.add("gather", gather_start.elapsed());
                // The merged call's own hardware charge describes the
                // whole universe; it is discarded and each request is
                // re-charged below on its own sub-universe shape, so
                // per-response cost matches solo execution exactly.
                let shape =
                    RequestShape { target_nodes: merged.total_targets, fanouts: many[0].2 };
                let (out, execute_time) =
                    self.backend.execute_timed(&merged.graph, &merged_features, shape);
                timings.add("execute", execute_time);
                let scatter_start = Instant::now();
                let feature_dim = epoch.dataset.feature_dim();
                let num_classes = out.logits.cols();
                for (block, (i, sub, fanouts)) in many.iter().enumerate() {
                    let logits = merged.scatter(&out.logits, block, sub, &requests[*i].nodes);
                    let charge = self.backend.charge(
                        sub.graph.num_arcs(),
                        feature_dim,
                        num_classes,
                        RequestShape { target_nodes: sub.batch_len, fanouts: *fanouts },
                    );
                    let (sim, energy_joules) = match charge {
                        Some((sim, energy)) => (Some(sim), Some(energy)),
                        None => (None, None),
                    };
                    outcomes[*i] = Some(Ok(ExecOutcome {
                        logits,
                        sim,
                        energy_joules,
                        from_cache: false,
                        parts: 1,
                        batch_size,
                        graph_version: epoch.version,
                        hot_rows: 0,
                    }));
                }
                timings.add("scatter", scatter_start.elapsed());
                merged.universe.len()
            }
        }
    }
}

/// What [`Engine::infer_coalesced`] returns: one outcome per request (in
/// request order) plus batch-level accounting for the serving
/// telemetry.
#[derive(Debug)]
pub struct CoalescedOutcome {
    /// Per-request outcomes, aligned with the input slice. A request
    /// that failed validation carries its own error; it never poisons
    /// the batch.
    pub outcomes: Vec<Result<ExecOutcome, EngineError>>,
    /// Distinct executions performed after deduplication (full-graph
    /// cache hits count as their request's execution).
    pub unique_executions: usize,
    /// Requests answered by sharing an identical earlier request's
    /// execution (`requests.len() − distinct requests`).
    pub deduped: usize,
    /// Node count of the executed merged universe (0 when the batch had
    /// no sampled requests).
    pub merged_universe_nodes: usize,
    /// Wall-clock breakdown of the batch's engine stages, in first-run
    /// order (see [`StageTiming`]); stages that did not run for this
    /// batch are absent. Recording is two clock reads per stage and
    /// never touches the computed logits, so outcomes stay bit-identical
    /// with or without a consumer.
    pub stage_timings: Vec<StageTiming>,
}

/// Summed wall-clock time one named engine stage took across a coalesced
/// batch. Stage names are stable: `"sample"` (two-hop subgraph
/// materialization), `"full_graph"` (cache lookup or full-graph pass),
/// `"merge"` ([`MergedUniverse::build`]), `"gather"` (feature
/// gathering), `"execute"` (the backend call, via
/// [`crate::ExecutionBackend::execute_timed`]), and `"scatter"`
/// (per-request logits extraction and hardware re-charge).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTiming {
    /// Stable stage name.
    pub stage: &'static str,
    /// Summed wall-clock duration across the batch.
    pub elapsed: Duration,
}

/// Accumulates [`StageTiming`] entries, summing repeats of a stage.
#[derive(Default)]
struct StageAccum {
    entries: Vec<StageTiming>,
}

impl StageAccum {
    fn add(&mut self, stage: &'static str, elapsed: Duration) {
        match self.entries.iter_mut().find(|e| e.stage == stage) {
            Some(entry) => entry.elapsed += elapsed,
            None => self.entries.push(StageTiming { stage, elapsed }),
        }
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let epoch = self.shared.epoch();
        f.debug_struct("Engine")
            .field("model", &self.model_kind)
            .field("backend", &self.backend_kind)
            .field("dataset", &epoch.dataset.name)
            .field("graph_version", &epoch.version)
            .field(
                "full_graph_cached",
                &matches!(
                    &*self.shared.cache.lock().unwrap_or_else(PoisonError::into_inner),
                    Some((v, _)) if *v == epoch.version
                ),
            )
            .finish()
    }
}

/// A serving session: answers micro-batched requests against a borrowed
/// [`Engine`] and accumulates [`ServeStats`].
#[derive(Debug)]
pub struct Session<'e> {
    engine: &'e mut Engine,
    stats: ServeStats,
}

impl Session<'_> {
    /// Answers one request.
    ///
    /// # Errors
    ///
    /// [`EngineError::NodeOutOfRange`] for invalid node ids;
    /// [`EngineError::EmptyRequest`] for sampled requests with no nodes.
    pub fn infer(&mut self, request: &InferRequest) -> Result<InferResponse, EngineError> {
        let start = Instant::now();
        let outcome = self.engine.execute_request(request)?;
        let compute_time = start.elapsed();
        // Direct sessions never queue: the whole latency is compute.
        Ok(crate::request::assemble_response(
            outcome,
            Duration::ZERO,
            compute_time,
            &mut self.stats,
        ))
    }

    /// Answers a batch of requests in order, stopping at the first error.
    ///
    /// # Errors
    ///
    /// Propagates the first [`EngineError`] encountered.
    pub fn infer_batch(
        &mut self,
        requests: &[InferRequest],
    ) -> Result<Vec<InferResponse>, EngineError> {
        requests.iter().map(|r| self.infer(r)).collect()
    }

    /// The statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The engine this session serves from.
    #[must_use]
    pub fn engine(&self) -> &Engine {
        self.engine
    }

    /// Closes the session, returning its statistics.
    #[must_use]
    pub fn finish(self) -> ServeStats {
        self.stats
    }
}
