//! Versioned graph state shared by an engine and all of its forks: the
//! mutation side of the serving stack.
//!
//! An [`crate::Engine`] family (the original plus every
//! [`crate::Engine::fork`]) serves from one [`SharedGraphState`]:
//!
//! * `current` holds the **epoch** — an `Arc` of the immutable dataset
//!   snapshot plus its version. Workers resolve it once per micro-batch
//!   and keep their `Arc` for the whole batch, so an update lands
//!   *between* batches, never inside one.
//! * `master` is the lazily built mutable copy
//!   ([`blockgnn_graph::VersionedGraph`]) deltas apply to. Engines that
//!   never mutate never pay for it.
//! * `cache` is the full-graph logits cache, **keyed by version**: a
//!   hit requires an exact version match, so a delta can never serve
//!   stale logits. (Per-graph model caches — GCN's `Â` normalization,
//!   sampled-subgraph interning — key on
//!   [`blockgnn_graph::CsrGraph::instance_id`], and every applied delta
//!   produces a graph with a fresh id, so they are version-safe by
//!   construction.)
//! * `residency` re-runs the §IV-B/§IV-C feature-residency check when a
//!   delta grows the node count: the grown graph's resident features
//!   (plus the model's packed weight spectra) must still fit the
//!   configured device-memory budget, or the delta is rejected with
//!   [`EngineError::GraphBudget`] before anything mutates.

use crate::backend::BackendOutput;
use crate::error::EngineError;
use blockgnn_graph::{Dataset, GraphDelta, VersionedGraph};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Version-keyed cache of per-stage aggregated feature rows for
/// high-degree hub vertices, shared across an engine family like the
/// full-graph logits cache.
///
/// Staged full-graph execution recomputes every hub's aggregation on
/// every request even though hub rows dominate the work on power-law
/// graphs. This cache keeps the computed stage outputs of a bounded set
/// of hot vertices; a staged run copies cached rows instead of
/// re-aggregating them. Correctness rests on two facts: (1) a stage
/// row's value is a pure function of (graph version, stage, input
/// matrix), and full-graph stage inputs are canonical (stage 0 reads the
/// dataset features, stage `s` reads the full merged stage `s − 1`
/// output); (2) entries are **version-keyed with strict invalidation** —
/// [`HotVertexCache::invalidate_to`] runs inside `apply_delta` before
/// the new epoch is published, and a publish from an engine still
/// holding a stale version is rejected, so a delta can never see or
/// leave stale rows.
#[derive(Debug, Default)]
pub(crate) struct HotVertexCache {
    inner: Mutex<HotState>,
}

#[derive(Debug, Default)]
struct HotState {
    /// Version the cached rows belong to; `None` until first use.
    version: Option<u64>,
    /// One map per model stage: node id → that node's stage-output row.
    /// `Arc` so staged runs snapshot a stage map without holding the
    /// lock while computing.
    stages: Vec<Arc<HashMap<u32, Vec<f64>>>>,
}

impl HotVertexCache {
    /// Snapshot of the cached rows for `stage` at `version`; empty when
    /// the cache holds a different version (or nothing yet).
    pub fn stage_snapshot(
        &self,
        version: u64,
        num_stages: usize,
        stage: usize,
    ) -> Arc<HashMap<u32, Vec<f64>>> {
        let state = self.inner.lock().expect("hot cache lock");
        if state.version == Some(version) && state.stages.len() == num_stages {
            if let Some(map) = state.stages.get(stage) {
                return Arc::clone(map);
            }
        }
        Arc::new(HashMap::new())
    }

    /// Publishes freshly computed rows for `stage` at `version`. Adopts
    /// the version when the cache is empty; merges when it matches;
    /// **rejects silently** when it differs — an engine that resolved an
    /// older epoch (a delta landed mid-run) must not poison the cache,
    /// and the invalidated cache must not resurrect pre-delta rows.
    pub fn publish(
        &self,
        version: u64,
        num_stages: usize,
        stage: usize,
        rows: Vec<(u32, Vec<f64>)>,
    ) {
        if rows.is_empty() {
            return;
        }
        let mut state = self.inner.lock().expect("hot cache lock");
        match state.version {
            None => {
                state.version = Some(version);
                state.stages = (0..num_stages).map(|_| Arc::new(HashMap::new())).collect();
            }
            Some(v) if v == version => {
                if state.stages.len() != num_stages {
                    state.stages = (0..num_stages).map(|_| Arc::new(HashMap::new())).collect();
                }
            }
            Some(_) => return,
        }
        let Some(slot) = state.stages.get_mut(stage) else {
            return;
        };
        let map = Arc::make_mut(slot);
        for (node, row) in rows {
            map.insert(node, row);
        }
    }

    /// Drops every cached row and pins the cache to `new_version`, so a
    /// straggler publish from an engine still computing against the old
    /// version is rejected. Runs inside `apply_delta` before the new
    /// epoch is visible.
    pub fn invalidate_to(&self, new_version: u64) {
        let mut state = self.inner.lock().expect("hot cache lock");
        state.version = Some(new_version);
        state.stages.clear();
    }

    /// Total cached rows across all stages (test/introspection hook).
    pub fn cached_rows(&self) -> usize {
        let state = self.inner.lock().expect("hot cache lock");
        state.stages.iter().map(|m| m.len()).sum()
    }
}

/// One immutable serving snapshot: what a micro-batch executes against.
#[derive(Debug)]
pub(crate) struct GraphEpoch {
    /// The frozen dataset of this version.
    pub dataset: Arc<Dataset>,
    /// Monotone version (0 until the first applied delta).
    pub version: u64,
}

/// The §IV-B/§IV-C feature-residency policy re-checked on node growth.
#[derive(Debug, Clone)]
pub(crate) struct ResidencyPolicy {
    /// Packed spectral weight bytes of the served model (resident for
    /// the engine's whole lifetime).
    pub spectral_weight_bytes: usize,
    /// Bytes per feature scalar at the backend's number format.
    pub bytes_per_feature: usize,
    /// Device-memory budget in bytes.
    pub budget_bytes: usize,
}

/// The mutable master copy deltas apply to. Labels of appended nodes
/// get placeholder class 0 — labels drive training, never inference.
#[derive(Debug)]
struct MasterState {
    versioned: VersionedGraph,
    labels: Vec<usize>,
}

/// Versioned graph state shared across an engine family (see the module
/// docs for the field roles).
#[derive(Debug)]
pub(crate) struct SharedGraphState {
    master: Mutex<Option<MasterState>>,
    current: Mutex<Arc<GraphEpoch>>,
    /// Version-keyed full-graph logits cache. Holds the most recently
    /// *computed* version; hits require an exact version match.
    pub(crate) cache: Mutex<Option<(u64, BackendOutput)>>,
    /// Current node count mirrored out of the epoch, so the serving
    /// runtime's per-submission admission check reads an atomic instead
    /// of contending on the epoch lock with every worker.
    node_count: AtomicUsize,
    residency: Option<ResidencyPolicy>,
    /// Hot-vertex aggregation cache shared by every parallel engine of
    /// the family (see [`HotVertexCache`]); invalidated by
    /// [`SharedGraphState::apply_delta`] like the logits cache.
    pub(crate) hot: Arc<HotVertexCache>,
}

impl SharedGraphState {
    /// Wraps `dataset` as version 0.
    pub fn new(dataset: Arc<Dataset>, residency: Option<ResidencyPolicy>) -> Self {
        let node_count = AtomicUsize::new(dataset.num_nodes());
        Self {
            master: Mutex::new(None),
            current: Mutex::new(Arc::new(GraphEpoch { dataset, version: 0 })),
            cache: Mutex::new(None),
            node_count,
            residency,
            hot: Arc::new(HotVertexCache::default()),
        }
    }

    /// The current epoch (cheap: one lock + `Arc` clone). Callers hold
    /// the returned `Arc` for a whole micro-batch; updates swap the
    /// slot without disturbing holders.
    pub fn epoch(&self) -> Arc<GraphEpoch> {
        Arc::clone(&self.current.lock().expect("epoch lock"))
    }

    /// The current version.
    pub fn version(&self) -> u64 {
        self.epoch().version
    }

    /// Node count of the current version (lock-free; node counts only
    /// grow, so a marginally stale read can only under-admit a request
    /// that names a node appended microseconds ago — the engine-side
    /// re-validation against the batch's resolved epoch is what
    /// decides).
    pub fn num_nodes(&self) -> usize {
        self.node_count.load(Ordering::Acquire)
    }

    /// Applies one delta atomically and publishes the new epoch,
    /// returning it (callers wanting to describe the post-delta graph —
    /// version, node/arc counts — read them off the returned epoch, a
    /// consistent snapshot even under concurrent further updates).
    /// Deltas serialize on the master lock, so returned versions are
    /// unique and totally ordered; readers see either the old epoch or
    /// the new one, never a mix.
    ///
    /// # Errors
    ///
    /// [`EngineError::Delta`] for invalid deltas;
    /// [`EngineError::GraphBudget`] when growth violates the residency
    /// budget. The served graph is untouched in both cases.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<Arc<GraphEpoch>, EngineError> {
        let mut master_slot = self.master.lock().expect("master lock");
        let master = match master_slot.as_mut() {
            Some(master) => master,
            None => {
                // First mutation: materialize the master copy from the
                // current epoch (version 0 by construction — only this
                // method ever bumps it).
                let epoch = self.epoch();
                let versioned = VersionedGraph::new(
                    epoch.dataset.graph.clone(),
                    epoch.dataset.features.clone(),
                    true,
                )
                .expect("dataset graph and features agree on the node count");
                master_slot
                    .insert(MasterState { versioned, labels: epoch.dataset.labels.clone() })
            }
        };
        if let Some(policy) = &self.residency {
            let grown = master.versioned.num_nodes() + delta.append_nodes.len();
            if !delta.append_nodes.is_empty() {
                let needed = policy.spectral_weight_bytes
                    + grown * master.versioned.features().cols() * policy.bytes_per_feature;
                if needed > policy.budget_bytes {
                    return Err(EngineError::GraphBudget {
                        needed,
                        budget: policy.budget_bytes,
                    });
                }
            }
        }
        let version = master.versioned.apply(delta)?;
        master.labels.resize(master.versioned.num_nodes(), 0);
        let template = self.epoch();
        let dataset = Arc::new(Dataset {
            graph: master.versioned.graph().clone(),
            features: master.versioned.features().clone(),
            labels: master.labels.clone(),
            num_classes: template.dataset.num_classes,
            masks: template.dataset.masks.clone(),
            name: template.dataset.name.clone(),
        });
        let epoch = Arc::new(GraphEpoch { dataset, version });
        // Strict invalidation *before* the new epoch is visible: no
        // reader can pair post-delta structure with pre-delta hot rows.
        self.hot.invalidate_to(version);
        *self.current.lock().expect("epoch lock") = Arc::clone(&epoch);
        self.node_count.store(epoch.dataset.num_nodes(), Ordering::Release);
        // The cache is version-keyed (correct without this), but the old
        // version's logits are dead weight now — drop them eagerly.
        *self.cache.lock().expect("cache lock") = None;
        Ok(epoch)
    }
}

/// A cloneable mutation/introspection handle on an engine family's
/// shared graph — what the serving runtime holds to apply updates
/// without owning any engine replica.
///
/// Obtained from [`crate::Engine::graph_handle`]; all clones (and every
/// engine fork) observe the same versions.
#[derive(Debug, Clone)]
pub struct GraphHandle {
    pub(crate) shared: Arc<SharedGraphState>,
}

impl GraphHandle {
    /// Applies one delta atomically (see [`crate::Engine::apply_delta`]),
    /// returning the new version.
    ///
    /// # Errors
    ///
    /// [`EngineError::Delta`] or [`EngineError::GraphBudget`]; the
    /// served graph is untouched on failure.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<u64, EngineError> {
        Ok(self.shared.apply_delta(delta)?.version)
    }

    /// Like [`GraphHandle::apply_delta`], but also returns the node and
    /// arc counts of the epoch this delta published — read off that
    /// epoch itself, so the triple stays consistent even when another
    /// update lands immediately after (the serving runtime's `update`
    /// ack must describe version *N*, not whatever is current by the
    /// time the reply is encoded).
    ///
    /// # Errors
    ///
    /// As [`GraphHandle::apply_delta`].
    pub fn apply_delta_acked(
        &self,
        delta: &GraphDelta,
    ) -> Result<(u64, usize, usize), EngineError> {
        let epoch = self.shared.apply_delta(delta)?;
        Ok((epoch.version, epoch.dataset.num_nodes(), epoch.dataset.graph.num_arcs()))
    }

    /// The currently served graph version.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.shared.version()
    }

    /// Node count of the currently served version.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.shared.num_nodes()
    }

    /// Stored arc count of the currently served version.
    #[must_use]
    pub fn num_arcs(&self) -> usize {
        self.shared.epoch().dataset.graph.num_arcs()
    }
}
