//! Pluggable execution backends: the interchangeable substrates the same
//! GNN runs on.
//!
//! The paper's central claim is that one model executes equivalently on
//! dense GEMM hardware, via Algorithm 1's spectral products, or on the
//! CirCore accelerator. Each backend here owns a prepared copy of the
//! model (see [`blockgnn_nn::ExecMode`]) and turns a computation graph +
//! features into logits; the simulated-accelerator backend additionally
//! returns the Eq. 3–7 cycle report and an energy estimate, so functional
//! results and hardware cost come back from one call.

use crate::error::EngineError;
use blockgnn_accel::{AccelError, BlockGnnAccelerator, GlobalBuffer, SimReport};
use blockgnn_gnn::workload::GnnWorkload;
use blockgnn_gnn::GnnModel;
use blockgnn_graph::{CsrGraph, DatasetSpec};
use blockgnn_linalg::Matrix;
use blockgnn_nn::{ExecMode, LinearLayer};
use blockgnn_perf::coeffs::HardwareCoeffs;
use blockgnn_perf::params::CirCoreParams;
use std::fmt;

/// Which execution substrate a backend represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Dense GEMM over decompressed weights — the uncompressed baseline.
    Dense,
    /// Algorithm 1 (FFT → spectral MAC → IFFT) with kernel spectra
    /// cached across calls.
    Spectral,
    /// Spectral execution plus the CirCore cycle/energy model: responses
    /// carry a [`SimReport`].
    SimulatedAccel,
}

impl BackendKind {
    /// All backends, baseline first.
    #[must_use]
    pub fn all() -> [BackendKind; 3] {
        [BackendKind::Dense, BackendKind::Spectral, BackendKind::SimulatedAccel]
    }

    /// Bytes one feature scalar occupies while resident for this
    /// backend — the divisor of the §IV-C memory-budget partitioning.
    /// The simulated accelerator streams Q16.16 fixed-point features
    /// (4 bytes); the software backends hold f64 host matrices
    /// (8 bytes). Kept per-backend (rather than a hardcoded fp32) so
    /// residency budgets stay honest across number formats.
    #[must_use]
    pub fn bytes_per_feature(&self) -> usize {
        match self {
            BackendKind::Dense | BackendKind::Spectral => 8,
            BackendKind::SimulatedAccel => 4,
        }
    }

    /// Human-readable name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Dense => "dense",
            BackendKind::Spectral => "spectral",
            BackendKind::SimulatedAccel => "simulated-accel",
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What one backend execution produces.
#[derive(Debug, Clone)]
pub struct BackendOutput {
    /// Logits over the executed computation graph (one row per node).
    pub logits: Matrix,
    /// Hardware cycle report, when the backend simulates one.
    pub sim: Option<SimReport>,
    /// Energy estimate in joules, when the backend models power.
    pub energy_joules: Option<f64>,
}

/// Shape of the workload one request executes — what hardware cost
/// models charge for. The cycle model (Eqs. 3–7) prices the full
/// two-hop sampled aggregation *per target node*, so `target_nodes`
/// counts requested (unique) nodes, not the materialized sub-universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestShape {
    /// Number of target nodes the request classifies.
    pub target_nodes: usize,
    /// Sampling fan-outs `(S₁, S₂)` of the executed workload.
    pub fanouts: (usize, usize),
}

/// An execution substrate: runs a prepared model over a computation
/// graph.
///
/// Backends are `Send` and forkable: [`ExecutionBackend::fork`] produces
/// an independent replica whose prepared weights and cached spectra are
/// `Arc`-shared with the original (see [`blockgnn_nn::ExecMode`]), which
/// is how the parallel serving engine places one backend per worker
/// thread without duplicating the model. The staged methods
/// ([`ExecutionBackend::num_stages`] / [`ExecutionBackend::execute_stage`])
/// expose the model's row-parallel inference stages
/// ([`blockgnn_gnn::GnnModel::forward_stage`]) so a scheduler can shard
/// each stage's rows across workers and barrier between stages.
pub trait ExecutionBackend: Send {
    /// Which substrate this is.
    fn kind(&self) -> BackendKind;

    /// Runs one inference pass over `graph`/`features`. Backends that
    /// model hardware charge their cycle estimate with `shape`;
    /// software backends ignore it.
    fn execute(
        &mut self,
        graph: &CsrGraph,
        features: &Matrix,
        shape: RequestShape,
    ) -> BackendOutput;

    /// [`ExecutionBackend::execute`] plus the wall-clock time the call
    /// took — the per-stage timing hook the coalesced batcher records
    /// into request traces. The default wraps `execute` with two clock
    /// reads and changes nothing about the output, so tracing can never
    /// perturb the computed logits.
    fn execute_timed(
        &mut self,
        graph: &CsrGraph,
        features: &Matrix,
        shape: RequestShape,
    ) -> (BackendOutput, std::time::Duration) {
        let start = std::time::Instant::now();
        let out = self.execute(graph, features, shape);
        (out, start.elapsed())
    }

    /// Forks an independent replica for another worker thread. Prepared
    /// weights/spectra are shared (`Arc`), per-call scratch state is not.
    fn fork(&self) -> Box<dyn ExecutionBackend>;

    /// Precomputes per-graph state before a staged request (delegates to
    /// [`blockgnn_gnn::GnnModel::prepare_graph`]); the scheduler calls
    /// it once per worker per request so stages skip repeated
    /// per-part recomputation.
    fn prepare_graph(&mut self, graph: &CsrGraph);

    /// Number of row-parallel inference stages of the underlying model.
    fn num_stages(&self) -> usize;

    /// Output width of stage `stage` at the given input feature width.
    fn stage_width(&self, stage: usize, feature_dim: usize) -> usize;

    /// Computes stage `stage` output rows for target nodes `rows` from
    /// the full previous-stage matrix `input` — bit-identical to the
    /// corresponding slice of [`ExecutionBackend::execute`]'s logits
    /// when chained over all stages.
    fn execute_stage(
        &mut self,
        stage: usize,
        graph: &CsrGraph,
        input: &Matrix,
        rows: &[u32],
    ) -> Matrix;

    /// Hardware cost of serving `shape` over a computation graph with
    /// `num_arcs` arcs, `feature_dim`-wide inputs and `num_classes`
    /// outputs: the Eq. 3–7 [`SimReport`] and an energy estimate in
    /// joules. `None` for software backends, which model no hardware.
    /// The partition-parallel scheduler calls this once per part and
    /// merges with [`SimReport::merge`] (the §IV-C sub-graph accounting).
    fn charge(
        &self,
        _num_arcs: usize,
        _feature_dim: usize,
        _num_classes: usize,
        _shape: RequestShape,
    ) -> Option<(SimReport, f64)> {
        None
    }
}

/// Dense-GEMM backend: circulant weights are decompressed once at
/// construction and every product runs as a dense matrix–vector kernel.
pub struct DenseBackend {
    model: Box<dyn GnnModel>,
}

impl DenseBackend {
    /// Wraps and prepares `model` for dense execution.
    #[must_use]
    pub fn new(mut model: Box<dyn GnnModel>) -> Self {
        model.prepare(ExecMode::Gemm);
        Self { model }
    }
}

impl ExecutionBackend for DenseBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Dense
    }

    fn execute(
        &mut self,
        graph: &CsrGraph,
        features: &Matrix,
        _shape: RequestShape,
    ) -> BackendOutput {
        BackendOutput {
            logits: self.model.forward(graph, features, false),
            sim: None,
            energy_joules: None,
        }
    }

    fn fork(&self) -> Box<dyn ExecutionBackend> {
        Box::new(Self { model: self.model.clone_boxed() })
    }

    fn prepare_graph(&mut self, graph: &CsrGraph) {
        self.model.prepare_graph(graph);
    }

    fn num_stages(&self) -> usize {
        self.model.num_stages()
    }

    fn stage_width(&self, stage: usize, feature_dim: usize) -> usize {
        self.model.stage_width(stage, feature_dim)
    }

    fn execute_stage(
        &mut self,
        stage: usize,
        graph: &CsrGraph,
        input: &Matrix,
        rows: &[u32],
    ) -> Matrix {
        self.model.forward_stage(stage, graph, input, rows)
    }
}

/// Spectral backend: Algorithm 1 with **packed half-spectrum** kernel
/// caches and RFFT plans shared across calls (the software realization
/// of the paper's compressed execution).
///
/// Steady-state `execute` performs zero spectral-path heap allocations:
/// each prepared `CirculantDense` layer owns a
/// [`blockgnn_core::SpectralScratch`] (padded tail block, per-chunk
/// input half-spectra, spectral accumulator, IRFFT block) that is
/// reused across rows and requests. [`ExecutionBackend::fork`] clones
/// the model — prepared spectra stay `Arc`-shared, while each scratch
/// clones *empty* — so every session/worker replica owns private hot
/// buffers and forks never contend.
pub struct SpectralBackend {
    model: Box<dyn GnnModel>,
}

impl SpectralBackend {
    /// Wraps and prepares `model` for spectral execution.
    #[must_use]
    pub fn new(mut model: Box<dyn GnnModel>) -> Self {
        model.prepare(ExecMode::Spectral);
        Self { model }
    }
}

impl ExecutionBackend for SpectralBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Spectral
    }

    fn execute(
        &mut self,
        graph: &CsrGraph,
        features: &Matrix,
        _shape: RequestShape,
    ) -> BackendOutput {
        BackendOutput {
            logits: self.model.forward(graph, features, false),
            sim: None,
            energy_joules: None,
        }
    }

    fn fork(&self) -> Box<dyn ExecutionBackend> {
        Box::new(Self { model: self.model.clone_boxed() })
    }

    fn prepare_graph(&mut self, graph: &CsrGraph) {
        self.model.prepare_graph(graph);
    }

    fn num_stages(&self) -> usize {
        self.model.num_stages()
    }

    fn stage_width(&self, stage: usize, feature_dim: usize) -> usize {
        self.model.stage_width(stage, feature_dim)
    }

    fn execute_stage(
        &mut self,
        stage: usize,
        graph: &CsrGraph,
        input: &Matrix,
        rows: &[u32],
    ) -> Matrix {
        self.model.forward_stage(stage, graph, input, rows)
    }
}

/// Simulated-accelerator backend: functional output via the spectral
/// path (the computation CirCore performs), plus the Eq. 3–7 cycle model
/// and an energy estimate for every executed request.
///
/// Functional execution shares the half-spectrum scratch machinery of
/// [`SpectralBackend`] (per-layer workspaces, empty-cloning forks). The
/// cycle model is analytic — Eqs. 3–7 price the *logical* FFT/MAC/IFFT
/// work from the workload shape, never from the software data layout —
/// so the packed representation changes wall-clock only: `SimReport`
/// cycles and energy are bit-identical to the full-spectrum
/// implementation's.
///
/// Construction performs the §IV-B deployability check: the model's
/// circulant weight spectra must *co-reside* in the accelerator's
/// 256 KB Weight Buffer (the whole-model residency the serving loop
/// assumes), or the backend refuses to build.
pub struct SimulatedAccelBackend {
    model: Box<dyn GnnModel>,
    accel: BlockGnnAccelerator,
    power_w: f64,
    hidden_dim: usize,
    block_size: usize,
}

impl SimulatedAccelBackend {
    /// Wraps `model`, prepares it spectrally, and validates that all of
    /// its circulant weight spectra co-reside in the Weight Buffer of
    /// the given accelerator configuration.
    ///
    /// `hidden_dim` parameterizes the per-request [`GnnWorkload`] the
    /// cycle model charges for; `block_size` is the circulant block size
    /// `n` the hardware executes (1 for a fully dense model).
    ///
    /// # Errors
    ///
    /// [`EngineError::Accel`] if the summed circulant spectra overflow
    /// the Weight Buffer.
    pub fn new(
        mut model: Box<dyn GnnModel>,
        params: CirCoreParams,
        coeffs: HardwareCoeffs,
        hidden_dim: usize,
        block_size: usize,
    ) -> Result<Self, EngineError> {
        model.prepare(ExecMode::Spectral);
        let power_w = coeffs.accel_power_w;
        let accel = BlockGnnAccelerator::new(params, coeffs.clone());
        // Whole-model residency: sum every circulant layer's spectral
        // footprint (complex Q16.16, 8 bytes per retained bin — the
        // packed Hermitian half-spectrum of `n/2 + 1` bins per block,
        // the same accounting as `BlockGnnAccelerator::load_weights`).
        let mut spectral_bytes = 0usize;
        model.visit_linear_layers(&mut |layer| {
            if let LinearLayer::Circulant(c) = layer {
                spectral_bytes += c.spectral_weight_bytes();
            }
        });
        if !GlobalBuffer::zc706().model_fits(spectral_bytes) {
            return Err(EngineError::Accel(AccelError::WeightBufferOverflow {
                needed: spectral_bytes,
            }));
        }
        Ok(Self { model, accel, power_w, hidden_dim, block_size })
    }

    /// The configured accelerator (e.g. to inspect its parameters).
    #[must_use]
    pub fn accelerator(&self) -> &BlockGnnAccelerator {
        &self.accel
    }
}

impl ExecutionBackend for SimulatedAccelBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::SimulatedAccel
    }

    fn execute(
        &mut self,
        graph: &CsrGraph,
        features: &Matrix,
        shape: RequestShape,
    ) -> BackendOutput {
        let logits = self.model.forward(graph, features, false);
        let (sim, energy) = self
            .charge(graph.num_arcs(), features.cols(), logits.cols(), shape)
            .expect("the simulated accelerator always reports hardware cost");
        BackendOutput { logits, sim: Some(sim), energy_joules: Some(energy) }
    }

    fn fork(&self) -> Box<dyn ExecutionBackend> {
        // The residency check ran when the original was built; the fork
        // serves the same weights, so it holds by construction.
        Box::new(Self {
            model: self.model.clone_boxed(),
            accel: self.accel.clone(),
            power_w: self.power_w,
            hidden_dim: self.hidden_dim,
            block_size: self.block_size,
        })
    }

    fn prepare_graph(&mut self, graph: &CsrGraph) {
        self.model.prepare_graph(graph);
    }

    fn num_stages(&self) -> usize {
        self.model.num_stages()
    }

    fn stage_width(&self, stage: usize, feature_dim: usize) -> usize {
        self.model.stage_width(stage, feature_dim)
    }

    fn execute_stage(
        &mut self,
        stage: usize,
        graph: &CsrGraph,
        input: &Matrix,
        rows: &[u32],
    ) -> Matrix {
        self.model.forward_stage(stage, graph, input, rows)
    }

    fn charge(
        &self,
        num_arcs: usize,
        feature_dim: usize,
        num_classes: usize,
        shape: RequestShape,
    ) -> Option<(SimReport, f64)> {
        // The workload is priced per *target* node (each already charged
        // its full two-hop sampled aggregation by the per-layer model),
        // not per materialized sub-universe node.
        let spec = DatasetSpec::new(
            "request",
            shape.target_nodes,
            num_arcs / 2,
            feature_dim,
            num_classes,
        );
        let workload = GnnWorkload::new(
            self.model.kind(),
            &spec,
            self.hidden_dim,
            &[shape.fanouts.0, shape.fanouts.1],
        );
        let sim = self.accel.simulate_workload(&workload, self.block_size);
        let energy = sim.seconds * self.power_w;
        Some((sim, energy))
    }
}
