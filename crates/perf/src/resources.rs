//! FPGA resource estimation (Table VI).
//!
//! DSP usage is exact (Eq. 8). BRAM/FF/LUT are linear models over the
//! configuration, anchored to the ZC706 totals (1090 BRAM18K, 437,200
//! FF, 218,600 LUT) and calibrated against the four utilization rows the
//! paper reports (39–43% BRAM, 28–39% FF, 32–45% LUT, 94–100% DSP).
//! With only four published data points the per-unit costs are
//! curve-fits, not synthesis results — they are meant to reproduce the
//! *utilization bands* and the DSP-bound character of the design.

use crate::coeffs::HardwareCoeffs;
use crate::params::CirCoreParams;

/// ZC706 capacity (Table VI's "Total" row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpgaCapacity {
    /// 18 Kb BRAM blocks.
    pub bram_18k: usize,
    /// DSP48 slices.
    pub dsp48: usize,
    /// Flip-flops.
    pub ff: usize,
    /// Look-up tables.
    pub lut: usize,
}

impl FpgaCapacity {
    /// The Xilinx ZC706 (XC7Z045).
    #[must_use]
    pub fn zc706() -> Self {
        Self { bram_18k: 1090, dsp48: 900, ff: 437_200, lut: 218_600 }
    }
}

/// Absolute resource usage plus utilization against a capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceEstimate {
    /// 18 Kb BRAM blocks used.
    pub bram_18k: usize,
    /// DSP48 slices used (exact, Eq. 8).
    pub dsp48: usize,
    /// Flip-flops used.
    pub ff: usize,
    /// LUTs used.
    pub lut: usize,
}

/// Buffer sizes of the prototype (§IV-B): 256 KB Weight Buffer, 512 KB
/// Node-Feature Buffer.
pub const WEIGHT_BUFFER_BYTES: usize = 256 * 1024;
/// Node-Feature Buffer size in bytes.
pub const NODE_FEATURE_BUFFER_BYTES: usize = 512 * 1024;
/// PS-side DDR3 capacity of the ZC706 board (1 GB SODIMM) — the
/// device-memory bound behind §IV-C's decision to serve Reddit as two
/// partitioned sub-graphs. The serving engine re-checks a growing
/// graph's feature residency against this budget when streaming updates
/// append nodes.
pub const DRAM_BYTES: usize = 1024 * 1024 * 1024;

impl ResourceEstimate {
    /// Estimates the resources of configuration `params` at block size
    /// `n`, for a task whose widest feature vector is
    /// `max_feature_dim` (wider features need deeper staging FIFOs,
    /// which is why Citeseer's BRAM share exceeds Cora's in Table VI).
    #[must_use]
    pub fn for_config(
        params: &CirCoreParams,
        n: usize,
        max_feature_dim: usize,
        coeffs: &HardwareCoeffs,
    ) -> Self {
        // --- BRAM: global buffers + per-channel working sets. ---
        // A BRAM18K holds 18 Kbit = 2.25 KB.
        let buffer_brams =
            (WEIGHT_BUFFER_BYTES + NODE_FEATURE_BUFFER_BYTES).div_ceil(18 * 1024 / 8);
        // Each FFT/IFFT channel: twiddle ROM + double-buffered frame.
        let channel_brams = 3 * (params.x + params.y);
        // Each PE row stages packed spectra.
        let systolic_brams = params.r * params.c / 2;
        // Feature staging scales with the widest vector (ping-pong,
        // 8 B/elem across the double buffer).
        let staging_brams = (max_feature_dim * 8).div_ceil(18 * 1024 / 8) * 4;
        let bram = buffer_brams + channel_brams + systolic_brams + staging_brams;

        // --- DSP: exact (Eq. 8). ---
        let dsp = params.dsp_usage(n, coeffs);

        // --- FF/LUT: linear in the instantiated units. ---
        let ff = 22_000
            + 3_300 * (params.x + params.y)
            + 900 * params.r * params.c * params.l
            + 9_000 * params.m
            + max_feature_dim * 12;
        let lut = 20_000
            + 1_500 * (params.x + params.y)
            + 600 * params.r * params.c * params.l
            + 5_000 * params.m
            + max_feature_dim * 3;

        Self { bram_18k: bram, dsp48: dsp, ff, lut }
    }

    /// Utilization fractions against `capacity` in the order
    /// (BRAM, DSP, FF, LUT).
    #[must_use]
    pub fn utilization(&self, capacity: &FpgaCapacity) -> (f64, f64, f64, f64) {
        (
            self.bram_18k as f64 / capacity.bram_18k as f64,
            self.dsp48 as f64 / capacity.dsp48 as f64,
            self.ff as f64 / capacity.ff as f64,
            self.lut as f64 / capacity.lut as f64,
        )
    }

    /// Whether the estimate fits the device.
    #[must_use]
    pub fn fits(&self, capacity: &FpgaCapacity) -> bool {
        self.bram_18k <= capacity.bram_18k
            && self.dsp48 <= capacity.dsp48
            && self.ff <= capacity.ff
            && self.lut <= capacity.lut
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table V's searched configurations with each dataset's feature
    /// width; utilizations must land in the paper's Table VI bands.
    #[test]
    fn table6_utilization_bands() {
        let coeffs = HardwareCoeffs::zc706();
        let cap = FpgaCapacity::zc706();
        let rows = [
            (CirCoreParams { x: 18, y: 7, r: 6, c: 4, l: 1, m: 1 }, 1433), // CR
            (CirCoreParams { x: 21, y: 4, r: 6, c: 4, l: 1, m: 1 }, 3703), // CS
            (CirCoreParams { x: 14, y: 15, r: 4, c: 4, l: 1, m: 1 }, 500), // PB
            (CirCoreParams { x: 15, y: 13, r: 5, c: 4, l: 1, m: 1 }, 602), // RD
        ];
        for (params, feat) in rows {
            let est = ResourceEstimate::for_config(&params, 128, feat, &coeffs);
            let (bram, dsp, ff, lut) = est.utilization(&cap);
            assert!(est.fits(&cap), "{params} with feat={feat} must fit the chip");
            assert!(
                (0.35..0.50).contains(&bram),
                "{params}: BRAM {bram:.2} outside the paper's ~0.39-0.43 band"
            );
            assert!(
                (0.90..=1.0).contains(&dsp),
                "{params}: DSP {dsp:.2} should be nearly saturated"
            );
            assert!((0.25..0.48).contains(&ff), "{params}: FF {ff:.2} out of band");
            assert!((0.30..0.52).contains(&lut), "{params}: LUT {lut:.2} out of band");
        }
    }

    #[test]
    fn wider_features_use_more_bram() {
        let coeffs = HardwareCoeffs::zc706();
        let p = CirCoreParams::base();
        let narrow = ResourceEstimate::for_config(&p, 128, 500, &coeffs);
        let wide = ResourceEstimate::for_config(&p, 128, 3703, &coeffs);
        assert!(wide.bram_18k > narrow.bram_18k);
    }

    #[test]
    fn dsp_estimate_is_exact_eq8() {
        let coeffs = HardwareCoeffs::zc706();
        let p = CirCoreParams { x: 10, y: 10, r: 3, c: 5, l: 2, m: 2 };
        let est = ResourceEstimate::for_config(&p, 128, 1000, &coeffs);
        assert_eq!(est.dsp48, 18 * 20 + 15 * 32 + 2 * 64);
    }

    #[test]
    fn capacity_matches_table6_totals() {
        let cap = FpgaCapacity::zc706();
        assert_eq!(cap.bram_18k, 1090);
        assert_eq!(cap.dsp48, 900);
        assert_eq!(cap.ff, 437_200);
        assert_eq!(cap.lut, 218_600);
    }
}
