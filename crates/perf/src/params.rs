//! CirCore hardware parameters `{x, y, r, c, l, m}`.

use crate::coeffs::HardwareCoeffs;
use std::fmt;

/// One CirCore/VPU configuration — the tunables the performance and
/// resource model searches over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CirCoreParams {
    /// FFT channels `x` (stage 1 parallelism).
    pub x: usize,
    /// IFFT channels `y` (stage 3 parallelism).
    pub y: usize,
    /// Systolic array rows `r` (input spectral sub-vectors in flight).
    pub r: usize,
    /// Systolic array columns `c` (output spectral sub-vectors in flight).
    pub c: usize,
    /// Pack size `l`: complex MACs per PE per cycle.
    pub l: usize,
    /// VPU lanes `m` (each SIMD-16).
    pub m: usize,
}

impl CirCoreParams {
    /// The fixed BlockGNN-base configuration (§IV-B): 16 FFT and 16 IFFT
    /// channels, a 4×4 systolic array, `l = m = 1`.
    #[must_use]
    pub fn base() -> Self {
        Self { x: 16, y: 16, r: 4, c: 4, l: 1, m: 1 }
    }

    /// Eq. 8's left-hand side: total DSPs this configuration consumes.
    #[must_use]
    pub fn dsp_usage(&self, n: usize, coeffs: &HardwareCoeffs) -> usize {
        coeffs.beta(n) * (self.x + self.y)
            + self.r * self.c * coeffs.gamma(self.l)
            + self.m * coeffs.eta_dsp_per_lane
    }

    /// Whether the configuration fits the DSP budget (Eq. 8).
    #[must_use]
    pub fn is_feasible(&self, n: usize, coeffs: &HardwareCoeffs) -> bool {
        self.x >= 1
            && self.y >= 1
            && self.r >= 1
            && self.c >= 1
            && self.l >= 1
            && self.m >= 1
            && self.dsp_usage(n, coeffs) <= coeffs.total_dsps
    }
}

impl fmt::Display for CirCoreParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "x={} y={} r={} c={} l={} m={}",
            self.x, self.y, self.r, self.c, self.l, self.m
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_configuration_exactly_fills_the_chip() {
        // 18·32 + 16·16 + 64 = 576 + 256 + 64 = 896 ≤ 900.
        let coeffs = HardwareCoeffs::zc706();
        let base = CirCoreParams::base();
        assert_eq!(base.dsp_usage(128, &coeffs), 896);
        assert!(base.is_feasible(128, &coeffs));
    }

    #[test]
    fn paper_table5_configs_reproduce_table6_dsp_utilization() {
        // Plugging Table V's searched optima into Eq. 8 must reproduce
        // Table VI's DSP utilization percentages *exactly* — this is the
        // strongest internal-consistency check the paper offers.
        let coeffs = HardwareCoeffs::zc706();
        let rows = [
            (CirCoreParams { x: 18, y: 7, r: 6, c: 4, l: 1, m: 1 }, 99.8), // CR
            (CirCoreParams { x: 21, y: 4, r: 6, c: 4, l: 1, m: 1 }, 99.8), // CS
            (CirCoreParams { x: 14, y: 15, r: 4, c: 4, l: 1, m: 1 }, 93.6), // PB
            (CirCoreParams { x: 15, y: 13, r: 5, c: 4, l: 1, m: 1 }, 98.7), // RD
        ];
        for (p, paper_pct) in rows {
            assert!(p.is_feasible(128, &coeffs), "{p} violates the DSP budget");
            let pct = 100.0 * p.dsp_usage(128, &coeffs) as f64 / coeffs.total_dsps as f64;
            assert!(
                (pct - paper_pct).abs() < 0.05,
                "{p}: DSP utilization {pct:.1}% but Table VI says {paper_pct}%"
            );
        }
    }

    #[test]
    fn infeasible_configurations_are_rejected() {
        let coeffs = HardwareCoeffs::zc706();
        let huge = CirCoreParams { x: 30, y: 30, r: 8, c: 8, l: 4, m: 4 };
        assert!(!huge.is_feasible(128, &coeffs));
        let zero = CirCoreParams { x: 0, y: 1, r: 1, c: 1, l: 1, m: 1 };
        assert!(!zero.is_feasible(128, &coeffs));
    }

    #[test]
    fn display_is_compact() {
        let s = format!("{}", CirCoreParams::base());
        assert_eq!(s, "x=16 y=16 r=4 c=4 l=1 m=1");
    }
}
