//! BlockGNN's performance and resource model (§III-D) with automatic
//! design-space exploration.
//!
//! Given a GNN task (per-layer matrix–vector shapes, sample sizes, VPU
//! work) and the FPGA's DSP budget, the model estimates the cycles each
//! CirCore pipeline stage spends per node (Eqs. 3–6), takes the pipeline
//! bottleneck (the `max` in the paper), and scales by the node count
//! (Eq. 7). The resource constraint (Eq. 8) prunes infeasible
//! configurations, and [`dse::search_optimal`] exhaustively scans the
//! remaining space — the paper reports this takes under a minute on a
//! desktop; here it takes milliseconds.
//!
//! Coefficients are the paper's measured ZC706 values: `α(128) = 484`
//! cycles per FFT, `β = 18` DSPs per FFT channel, `γ(l) = 16·l` DSPs per
//! PE, `η = 64` DSPs per SIMD-16 VPU lane, 900 DSPs total, 100 MHz.
//!
//! # Example
//!
//! ```
//! use blockgnn_perf::{coeffs::HardwareCoeffs, cycles::{LayerTask, MatvecCount}, dse};
//!
//! // A single GS-Pool-like aggregation layer: 25 sampled neighbors,
//! // each through a 512x512 weight with 128-blocks.
//! let task = LayerTask {
//!     matvecs: vec![MatvecCount { count_per_node: 25.0, out_dim: 512, in_dim: 512 }],
//!     vpu_macs_per_node: 25.0 * 512.0,
//! };
//! let best = dse::search_optimal(&[task], 2708, 128, &HardwareCoeffs::zc706());
//! assert!(best.params.dsp_usage(128, &HardwareCoeffs::zc706()) <= 900);
//! ```

#![deny(missing_docs)]

pub mod coeffs;
pub mod cycles;
pub mod dse;
pub mod params;
pub mod resources;

pub use coeffs::HardwareCoeffs;
pub use cycles::{FftMode, LayerCycles, LayerTask, MatvecCount};
pub use dse::{search_optimal, DseResult};
pub use params::CirCoreParams;
pub use resources::ResourceEstimate;
