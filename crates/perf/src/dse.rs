//! Exhaustive design-space exploration under the DSP constraint (Eq. 8).
//!
//! "Given a GNN model and input graph, we can traversal search all of the
//! legal configurations and choose the optimal parameters with the
//! minimal cycle_total" (§III-D). The space is small enough for brute
//! force; we additionally parallelize over the systolic-array shapes with
//! scoped threads, which brings the full Table V sweep to milliseconds.

use crate::coeffs::HardwareCoeffs;
use crate::cycles::{total_cycles, LayerTask};
use crate::params::CirCoreParams;
use std::sync::Mutex;

/// The outcome of a design-space search.
#[derive(Debug, Clone, PartialEq)]
pub struct DseResult {
    /// The winning configuration.
    pub params: CirCoreParams,
    /// Its total cycle estimate (Eq. 7).
    pub cycles: u64,
    /// Number of feasible configurations examined.
    pub explored: usize,
}

/// Searches every feasible `{x, y, r, c, l, m}` and returns the
/// configuration minimizing [`total_cycles`]. Ties break toward lower
/// DSP usage, then lexicographically smaller parameters, making the
/// result deterministic.
///
/// # Panics
///
/// Panics if `tasks` is empty or no feasible configuration exists.
#[must_use]
pub fn search_optimal(
    tasks: &[LayerTask],
    num_nodes: usize,
    n: usize,
    coeffs: &HardwareCoeffs,
) -> DseResult {
    assert!(!tasks.is_empty(), "design-space search needs at least one layer task");
    let budget = coeffs.total_dsps;
    let beta = coeffs.beta(n);

    // Enumerate systolic shapes and VPU lanes first; the FFT/IFFT split
    // is scanned within whatever DSP budget remains.
    let mut shape_space = Vec::new();
    let mut l = 1usize;
    while coeffs.gamma(l) <= budget {
        for r in 1..=64usize {
            for c in 1..=64usize {
                let pe_cost = r * c * coeffs.gamma(l);
                if pe_cost + beta * 2 + coeffs.eta_dsp_per_lane > budget {
                    continue;
                }
                let max_m = (budget - pe_cost - beta * 2) / coeffs.eta_dsp_per_lane;
                for m in 1..=max_m {
                    shape_space.push((r, c, l, m));
                }
            }
        }
        l *= 2;
    }

    let best: Mutex<Option<(u64, usize, CirCoreParams)>> = Mutex::new(None);
    let explored = Mutex::new(0usize);
    let chunk = shape_space.len().div_ceil(8).max(1);
    std::thread::scope(|scope| {
        for shapes in shape_space.chunks(chunk) {
            let (best, explored) = (&best, &explored);
            scope.spawn(move || {
                let mut local_best: Option<(u64, usize, CirCoreParams)> = None;
                let mut local_explored = 0usize;
                for &(r, c, l, m) in shapes {
                    let fixed = r * c * coeffs.gamma(l) + m * coeffs.eta_dsp_per_lane;
                    let channel_budget = (budget - fixed) / beta;
                    if channel_budget < 2 {
                        continue;
                    }
                    // Using the full channel budget is never worse for the
                    // bottleneck, so only the x/y split is scanned.
                    for x in 1..channel_budget {
                        let y = channel_budget - x;
                        let params = CirCoreParams { x, y, r, c, l, m };
                        debug_assert!(params.is_feasible(n, coeffs));
                        let cycles = total_cycles(tasks, num_nodes, &params, n, coeffs);
                        local_explored += 1;
                        let dsp = params.dsp_usage(n, coeffs);
                        let candidate = (cycles, dsp, params);
                        let better = match &local_best {
                            None => true,
                            Some(cur) => {
                                (candidate.0, candidate.1, key(&candidate.2))
                                    < (cur.0, cur.1, key(&cur.2))
                            }
                        };
                        if better {
                            local_best = Some(candidate);
                        }
                    }
                }
                *explored.lock().expect("dse workers do not poison") += local_explored;
                let mut guard = best.lock().expect("dse workers do not poison");
                let better = match (&*guard, &local_best) {
                    (_, None) => false,
                    (None, Some(_)) => true,
                    (Some(cur), Some(cand)) => {
                        (cand.0, cand.1, key(&cand.2)) < (cur.0, cur.1, key(&cur.2))
                    }
                };
                if better {
                    *guard = local_best;
                }
            });
        }
    });

    let (cycles, _, params) = best
        .into_inner()
        .expect("dse workers do not poison")
        .expect("at least one feasible configuration exists");
    DseResult {
        params,
        cycles,
        explored: explored.into_inner().expect("dse workers do not poison"),
    }
}

fn key(p: &CirCoreParams) -> (usize, usize, usize, usize, usize, usize) {
    (p.x, p.y, p.r, p.c, p.l, p.m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycles::gs_pool_aggregation_task;

    fn zc706() -> HardwareCoeffs {
        HardwareCoeffs::zc706()
    }

    fn gs_pool_tasks(feature_dim: usize) -> Vec<LayerTask> {
        // K = 2 layers, hidden 512, S = (25, 10) — the Table V setup.
        vec![
            gs_pool_aggregation_task(25, 512, feature_dim),
            gs_pool_aggregation_task(10, 512, 512),
        ]
    }

    #[test]
    fn search_beats_the_base_configuration() {
        let coeffs = zc706();
        for feat in [1433usize, 3703, 500, 602] {
            let tasks = gs_pool_tasks(feat);
            let best = search_optimal(&tasks, 2708, 128, &coeffs);
            let base = total_cycles(&tasks, 2708, &CirCoreParams::base(), 128, &coeffs);
            assert!(
                best.cycles <= base,
                "DSE must not lose to the fixed base config (feat={feat})"
            );
            assert!(best.params.is_feasible(128, &coeffs));
        }
    }

    #[test]
    fn optimum_reproduces_table5_signature() {
        // Table V's headline finding: for GS-Pool at n=128 the FFT/IFFT
        // stages are the bottleneck, so the optimizer pours DSPs into
        // channels (large x+y) and never buys extra VPU lanes (m = 1).
        // Our re-derived α(n) admits near-tie single-PE/l>1 MAC arrays
        // the paper's search did not report, so `l` itself is not pinned;
        // the DSP mass spent on the MAC stage stays small either way.
        let coeffs = zc706();
        for feat in [1433usize, 3703, 500, 602] {
            let best = search_optimal(&gs_pool_tasks(feat), 10_000, 128, &coeffs);
            assert_eq!(best.params.m, 1, "feat={feat}: m must stay 1");
            assert!(
                best.params.x + best.params.y > 20,
                "feat={feat}: optimizer should buy many FFT/IFFT channels, got {}",
                best.params
            );
            let mac_dsp = best.params.r * best.params.c * coeffs.gamma(best.params.l);
            assert!(
                mac_dsp <= 448,
                "feat={feat}: MAC stage got {mac_dsp} DSPs, should stay the minority"
            );
            // And it must beat the paper's own reported configuration
            // under the same model, or at least tie it.
            let paper = CirCoreParams { x: 18, y: 7, r: 6, c: 4, l: 1, m: 1 };
            let paper_cycles = total_cycles(&gs_pool_tasks(feat), 10_000, &paper, 128, &coeffs);
            assert!(best.cycles <= paper_cycles);
        }
    }

    #[test]
    fn cora_optimum_is_near_paper_cycle_count() {
        // Paper Table V reports 24.9M cycles for Cora; our re-derived
        // model lands in the same few-tens-of-millions band.
        let best = search_optimal(&gs_pool_tasks(1433), 2708, 128, &zc706());
        assert!(
            (10_000_000..60_000_000).contains(&best.cycles),
            "Cora GS-Pool cycles {} out of expected band",
            best.cycles
        );
    }

    #[test]
    fn explores_a_nontrivial_space() {
        let best = search_optimal(&gs_pool_tasks(500), 1000, 128, &zc706());
        assert!(best.explored > 10_000, "only {} configs explored", best.explored);
    }

    #[test]
    fn search_is_deterministic() {
        let a = search_optimal(&gs_pool_tasks(1433), 2708, 128, &zc706());
        let b = search_optimal(&gs_pool_tasks(1433), 2708, 128, &zc706());
        assert_eq!(a.params, b.params);
        assert_eq!(a.cycles, b.cycles);
    }
}
