//! The cycle model: Eqs. 3–7.
//!
//! For layer `k`, the paper estimates each pipeline stage independently
//! and takes the maximum — the pipeline is throughput-limited by its
//! slowest stage once full:
//!
//! * Eq. 3 `cycle_fft  = α(n) · ⌈S·q / x⌉`
//! * Eq. 4 `cycle_mac  = S · ⌈q/r⌉ · ⌈p/c⌉ · ⌈n/l⌉`
//! * Eq. 5 `cycle_ifft = α(n) · ⌈S·p / y⌉`
//! * Eq. 6 `cycle_vpu  = ⌈S·N / (m·16)⌉`
//! * Eq. 7 `cycle_total ≈ Σ_k max(stage cycles) · |V|`
//!
//! [`LayerTask`] generalizes "S matrix–vector products of shape N×M" to
//! any multiset of weighted shapes so the same model covers every
//! algorithm in Table I (GCN's weight-free aggregation contributes only
//! VPU work; G-GCN contributes 2S products; GAT projects into the
//! attention dimension).

use crate::coeffs::HardwareCoeffs;
use crate::params::CirCoreParams;

/// A weighted matrix–vector shape: `count_per_node` products of an
/// `out_dim × in_dim` block-circulant weight per target node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatvecCount {
    /// Products per target node (fractional counts allowed — e.g.
    /// amortized per-layer matvecs).
    pub count_per_node: f64,
    /// Rows `N` of the weight.
    pub out_dim: usize,
    /// Columns `M` of the weight.
    pub in_dim: usize,
}

impl MatvecCount {
    /// Grid rows `p = ⌈N/n⌉` for block size `n`.
    #[must_use]
    pub fn p(&self, n: usize) -> usize {
        self.out_dim.div_ceil(n)
    }

    /// Grid cols `q = ⌈M/n⌉` for block size `n`.
    #[must_use]
    pub fn q(&self, n: usize) -> usize {
        self.in_dim.div_ceil(n)
    }
}

/// All CirCore/VPU work of one layer, per target node.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerTask {
    /// Weight products routed through CirCore.
    pub matvecs: Vec<MatvecCount>,
    /// Element-wise MACs routed through the VPU (pooling, gating,
    /// normalization, activations).
    pub vpu_macs_per_node: f64,
}

/// Per-stage cycle estimate for one layer (per target node).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerCycles {
    /// Eq. 3.
    pub fft: u64,
    /// Eq. 4.
    pub mac: u64,
    /// Eq. 5.
    pub ifft: u64,
    /// Eq. 6.
    pub vpu: u64,
}

impl LayerCycles {
    /// The pipeline bottleneck: `max` of the four stages (the paper's
    /// `cycle(k)`).
    #[must_use]
    pub fn bottleneck(&self) -> u64 {
        self.fft.max(self.mac).max(self.ifft).max(self.vpu)
    }
}

/// Which transform the CirCore channels implement.
///
/// The prototype uses the complex Xilinx FFT IP; §V observes that GNN
/// features are always real, so RFFT/IRFFT channels would roughly halve
/// both the transform latency (a length-`n` RFFT rides on a length-`n/2`
/// complex FFT plus an O(n) untangling pass) and the spectral MAC work
/// (only `n/2 + 1` non-redundant bins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FftMode {
    /// Complex FFT channels (the paper's implemented prototype).
    #[default]
    Complex,
    /// Real FFT channels (the §V proposal).
    Real,
}

impl FftMode {
    /// Frame cycles per transform of block size `n` under `coeffs`.
    #[must_use]
    pub fn frame_cycles(&self, n: usize, coeffs: &HardwareCoeffs) -> u64 {
        match self {
            FftMode::Complex => coeffs.alpha_effective(n),
            // Half-length complex FFT + one output pass of untangling.
            FftMode::Real => {
                let half = (n / 2).max(2);
                coeffs.alpha_effective(half) + (n as u64) / 2
            }
        }
    }

    /// Spectral bins each block contributes to the MAC stage.
    #[must_use]
    pub fn spectral_bins(&self, n: usize) -> usize {
        match self {
            FftMode::Complex => n,
            FftMode::Real => n / 2 + 1,
        }
    }
}

/// Evaluates Eqs. 3–6 for one layer under configuration `params` with
/// block size `n` (complex-FFT channels; see
/// [`layer_cycles_with_mode`] for the §V RFFT variant).
///
/// # Panics
///
/// Panics if `n < 2` or any parallelism parameter is zero.
#[must_use]
pub fn layer_cycles(
    task: &LayerTask,
    params: &CirCoreParams,
    n: usize,
    coeffs: &HardwareCoeffs,
) -> LayerCycles {
    layer_cycles_with_mode(task, params, n, coeffs, FftMode::Complex)
}

/// Evaluates Eqs. 3–6 with an explicit transform mode.
///
/// # Panics
///
/// Panics if `n < 2` or any parallelism parameter is zero.
#[must_use]
pub fn layer_cycles_with_mode(
    task: &LayerTask,
    params: &CirCoreParams,
    n: usize,
    coeffs: &HardwareCoeffs,
    mode: FftMode,
) -> LayerCycles {
    assert!(
        params.x >= 1
            && params.y >= 1
            && params.r >= 1
            && params.c >= 1
            && params.l >= 1
            && params.m >= 1,
        "all CirCore parallelism parameters must be at least 1"
    );
    let alpha = mode.frame_cycles(n, coeffs);
    let bins = mode.spectral_bins(n);
    let mut fft_subvecs = 0.0;
    let mut ifft_subvecs = 0.0;
    let mut mac_cycles = 0.0;
    for mv in &task.matvecs {
        let p = mv.p(n) as f64;
        let q = mv.q(n) as f64;
        fft_subvecs += mv.count_per_node * q;
        ifft_subvecs += mv.count_per_node * p;
        mac_cycles += mv.count_per_node
            * (mv.q(n).div_ceil(params.r) as f64)
            * (mv.p(n).div_ceil(params.c) as f64)
            * (bins.div_ceil(params.l) as f64);
    }
    LayerCycles {
        fft: alpha * (fft_subvecs / params.x as f64).ceil() as u64,
        mac: mac_cycles.ceil() as u64,
        ifft: alpha * (ifft_subvecs / params.y as f64).ceil() as u64,
        vpu: (task.vpu_macs_per_node / (params.m as f64 * 16.0)).ceil() as u64,
    }
}

/// Eq. 7: total cycles for `num_nodes` target nodes across all layers.
#[must_use]
pub fn total_cycles(
    tasks: &[LayerTask],
    num_nodes: usize,
    params: &CirCoreParams,
    n: usize,
    coeffs: &HardwareCoeffs,
) -> u64 {
    let per_node: u64 =
        tasks.iter().map(|t| layer_cycles(t, params, n, coeffs).bottleneck()).sum();
    per_node * num_nodes as u64
}

/// Converts a cycle count to seconds at the configured clock.
#[must_use]
pub fn cycles_to_seconds(cycles: u64, coeffs: &HardwareCoeffs) -> f64 {
    cycles as f64 / coeffs.clock_hz
}

/// The paper's worked example: a GS-Pool aggregation layer with `S`
/// sampled neighbors through an `N × M` pool weight, plus the `S·N`
/// max-pooling MACs on the VPU.
#[must_use]
pub fn gs_pool_aggregation_task(s: usize, n_out: usize, m_in: usize) -> LayerTask {
    LayerTask {
        matvecs: vec![MatvecCount { count_per_node: s as f64, out_dim: n_out, in_dim: m_in }],
        vpu_macs_per_node: (s * n_out) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn zc706() -> HardwareCoeffs {
        HardwareCoeffs::zc706()
    }

    /// Hand-evaluated Eqs. 3–6 for Cora layer 1 (GS-Pool, n = 128,
    /// M = 1433, N = 512, S = 25) under Table V's CR configuration.
    #[test]
    fn matches_hand_computed_paper_example() {
        let task = gs_pool_aggregation_task(25, 512, 1433);
        let params = CirCoreParams { x: 18, y: 7, r: 6, c: 4, l: 1, m: 1 };
        let cy = layer_cycles(&task, &params, 128, &zc706());
        // q = ceil(1433/128) = 12, p = 4.
        assert_eq!(cy.fft, 484 * 17); // ceil(25*12/18) = 17
        assert_eq!(cy.mac, 25 * 2 * 128); // ceil(12/6)=2, ceil(4/4)=1
        assert_eq!(cy.ifft, 484 * 15); // ceil(25*4/7) = 15
        assert_eq!(cy.vpu, 800); // ceil(25*512/16)
        assert_eq!(cy.bottleneck(), 484 * 17);
    }

    #[test]
    fn total_cycles_scales_with_nodes() {
        let task = gs_pool_aggregation_task(25, 512, 512);
        let params = CirCoreParams::base();
        let one = total_cycles(std::slice::from_ref(&task), 1, &params, 128, &zc706());
        let many = total_cycles(&[task], 2708, &params, 128, &zc706());
        assert_eq!(many, one * 2708);
    }

    #[test]
    fn more_channels_never_slow_the_fft_stage() {
        let task = gs_pool_aggregation_task(25, 512, 1433);
        let coeffs = zc706();
        let mut prev = u64::MAX;
        for x in 1..32 {
            let params = CirCoreParams { x, y: 8, r: 4, c: 4, l: 1, m: 1 };
            let cy = layer_cycles(&task, &params, 128, &coeffs);
            assert!(cy.fft <= prev, "fft cycles increased at x={x}");
            prev = cy.fft;
        }
    }

    #[test]
    fn empty_task_is_vpu_only() {
        let task = LayerTask { matvecs: vec![], vpu_macs_per_node: 1024.0 };
        let cy = layer_cycles(&task, &CirCoreParams::base(), 128, &zc706());
        assert_eq!(cy.fft, 0);
        assert_eq!(cy.mac, 0);
        assert_eq!(cy.ifft, 0);
        assert_eq!(cy.vpu, 64);
        assert_eq!(cy.bottleneck(), 64);
    }

    #[test]
    fn seconds_conversion_uses_100mhz() {
        assert_eq!(cycles_to_seconds(100_000_000, &zc706()), 1.0);
    }

    #[test]
    fn rfft_mode_roughly_halves_fft_bound_layers() {
        // §V: "By using RFFT and IRFFT, the total computation can be
        // greatly reduced" — for an FFT-bound GS-Pool layer the
        // bottleneck should drop by ~1.7-2x.
        let task = gs_pool_aggregation_task(25, 512, 1433);
        let params = CirCoreParams { x: 18, y: 7, r: 6, c: 4, l: 1, m: 1 };
        let complex = layer_cycles_with_mode(&task, &params, 128, &zc706(), FftMode::Complex);
        let real = layer_cycles_with_mode(&task, &params, 128, &zc706(), FftMode::Real);
        let ratio = complex.bottleneck() as f64 / real.bottleneck() as f64;
        assert!(
            (1.5..2.2).contains(&ratio),
            "rfft bottleneck ratio {ratio:.2} (complex {} vs real {})",
            complex.bottleneck(),
            real.bottleneck()
        );
        // MAC work also shrinks (n -> n/2 + 1 bins).
        assert!(real.mac < complex.mac);
    }

    #[test]
    fn fft_mode_accounting() {
        let coeffs = zc706();
        assert_eq!(FftMode::Complex.spectral_bins(128), 128);
        assert_eq!(FftMode::Real.spectral_bins(128), 65);
        assert_eq!(FftMode::Complex.frame_cycles(128, &coeffs), 484);
        // RFFT frame: alpha(64) + 64 = 228 + 64 = 292.
        assert_eq!(FftMode::Real.frame_cycles(128, &coeffs), 292);
    }

    proptest! {
        #[test]
        fn prop_bottleneck_bounds_every_stage(
            s in 1usize..40,
            m_in in 64usize..2048,
            x in 1usize..24,
            y in 1usize..24,
            r in 1usize..8,
            c in 1usize..8,
        ) {
            let task = gs_pool_aggregation_task(s, 512, m_in);
            let params = CirCoreParams { x, y, r, c, l: 1, m: 1 };
            let cy = layer_cycles(&task, &params, 128, &zc706());
            prop_assert!(cy.bottleneck() >= cy.fft);
            prop_assert!(cy.bottleneck() >= cy.mac);
            prop_assert!(cy.bottleneck() >= cy.ifft);
            prop_assert!(cy.bottleneck() >= cy.vpu);
        }

        #[test]
        fn prop_smaller_blocks_do_not_break_model(logn in 1u32..8) {
            let n = 1usize << logn;
            let task = gs_pool_aggregation_task(10, 512, 512);
            let cy = layer_cycles(&task, &CirCoreParams::base(), n.max(2), &zc706());
            prop_assert!(cy.bottleneck() > 0);
        }
    }
}
