//! Hardware cost coefficients (§IV-B's measured ZC706 values).

/// Latency and DSP-cost coefficients for one FPGA target.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareCoeffs {
    /// Pipeline-overhead cycles added to each streaming FFT
    /// (`α(n) = (n/2)·log₂n + fft_overhead`); calibrated so
    /// `α(128) = 484`, the paper's measured value for the 32-bit Xilinx
    /// FFT IP.
    pub fft_overhead: u64,
    /// DSPs per FFT/IFFT channel (`β`).
    pub beta_dsp_per_fft: usize,
    /// DSPs per PE per unit of pack parallelism (`γ(l) = γ·l`; a
    /// complex MAC on 32-bit operands costs 16 DSPs).
    pub gamma_dsp_per_pe: usize,
    /// DSPs per SIMD-16 VPU lane (`η`).
    pub eta_dsp_per_lane: usize,
    /// Total DSP budget (Eq. 8's right-hand side).
    pub total_dsps: usize,
    /// Clock frequency in Hz (the prototype closes timing at 100 MHz).
    pub clock_hz: f64,
    /// Board power for the accelerator in watts (measured: 4.6 W).
    pub accel_power_w: f64,
    /// Sustained fraction of peak FFT/IFFT channel throughput.
    ///
    /// The paper's §V explains the gap between the implemented speedup
    /// (up to 8.3×) and the theoretical one (up to 18.3×): "the FFT
    /// implementation using Xilinx IP can not get the ideal performance."
    /// The analytical model (Table V) uses 1.0; the *measured-system*
    /// calibration uses ≈0.55, the ratio the paper's own numbers imply.
    pub fft_streaming_efficiency: f64,
}

impl HardwareCoeffs {
    /// The paper's Xilinx ZC706 calibration with ideal FFT streaming —
    /// the coefficient set behind the §III-D analytical model and the
    /// Table V search.
    #[must_use]
    pub fn zc706() -> Self {
        Self {
            fft_overhead: 36,
            beta_dsp_per_fft: 18,
            gamma_dsp_per_pe: 16,
            eta_dsp_per_lane: 64,
            total_dsps: 900,
            clock_hz: 100.0e6,
            accel_power_w: 4.6,
            fft_streaming_efficiency: 1.0,
        }
    }

    /// The ZC706 calibration with the measured FFT-IP streaming
    /// efficiency folded in (§V's implemented-vs-theoretical gap);
    /// used when simulating the *as-built* system for Figures 6–7.
    #[must_use]
    pub fn zc706_measured() -> Self {
        Self { fft_streaming_efficiency: 0.55, ..Self::zc706() }
    }

    /// Effective cycles per length-`n` FFT frame once the streaming
    /// duty cycle is applied: `α(n) / efficiency`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn alpha_effective(&self, n: usize) -> u64 {
        (self.alpha(n) as f64 / self.fft_streaming_efficiency).round() as u64
    }

    /// `α(n)`: cycles for one length-`n` FFT on one channel.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn alpha(&self, n: usize) -> u64 {
        assert!(n >= 2, "alpha is defined for FFT lengths >= 2");
        let logn = usize::BITS - (n - 1).leading_zeros();
        (n as u64 / 2) * u64::from(logn) + self.fft_overhead
    }

    /// `β(n)`: DSPs per FFT channel (the paper measured a single value
    /// at n = 128; DSP usage of a streaming core is dominated by its
    /// per-stage multipliers, so we keep it constant like the paper).
    #[must_use]
    pub fn beta(&self, _n: usize) -> usize {
        self.beta_dsp_per_fft
    }

    /// `γ(l)`: DSPs per systolic PE with pack size `l`.
    #[must_use]
    pub fn gamma(&self, l: usize) -> usize {
        self.gamma_dsp_per_pe * l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_matches_paper_at_n128() {
        let c = HardwareCoeffs::zc706();
        assert_eq!(c.alpha(128), 484);
    }

    #[test]
    fn alpha_scales_n_log_n() {
        let c = HardwareCoeffs::zc706();
        assert_eq!(c.alpha(16), 8 * 4 + 36);
        assert_eq!(c.alpha(64), 32 * 6 + 36);
        assert!(c.alpha(256) > 2 * c.alpha(128) - c.fft_overhead * 2);
    }

    #[test]
    fn dsp_coefficients_match_paper() {
        let c = HardwareCoeffs::zc706();
        assert_eq!(c.beta(128), 18);
        assert_eq!(c.gamma(1), 16);
        assert_eq!(c.gamma(4), 64);
        assert_eq!(c.eta_dsp_per_lane, 64);
        assert_eq!(c.total_dsps, 900);
    }

    #[test]
    #[should_panic(expected = "FFT lengths")]
    fn alpha_rejects_tiny_n() {
        let _ = HardwareCoeffs::zc706().alpha(1);
    }

    #[test]
    fn measured_variant_derates_fft_throughput_only() {
        let ideal = HardwareCoeffs::zc706();
        let measured = HardwareCoeffs::zc706_measured();
        assert_eq!(ideal.alpha_effective(128), 484);
        assert_eq!(measured.alpha(128), 484);
        assert_eq!(measured.alpha_effective(128), 880); // 484 / 0.55
        assert_eq!(measured.total_dsps, ideal.total_dsps);
        assert_eq!(measured.accel_power_w, ideal.accel_power_w);
    }
}
