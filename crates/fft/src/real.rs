//! Real-input FFT (RFFT) and its inverse (IRFFT).
//!
//! GNN feature vectors are always real-valued, so the paper's §V
//! discussion proposes replacing the complex FFT with a real FFT to close
//! the gap between the implemented (8.3×) and theoretical (18.3×)
//! speedups. The classic trick: pack a length-`n` real signal into a
//! length-`n/2` complex signal, transform, and untangle the two
//! interleaved half-spectra. The result is the non-redundant half-spectrum
//! of `n/2 + 1` bins; the remaining bins are conjugate mirrors (see
//! [`crate::half`]).
//!
//! The element-wise spectral product of two half-spectra followed by
//! [`RealFftPlan::inverse`] realizes the same circular convolution as the
//! complex path at roughly half the arithmetic, which is exactly what a
//! CirCore built with RFFT channels would compute.
//!
//! The serving hot paths use the allocation-free
//! [`RealFftPlan::forward_into`] / [`RealFftPlan::inverse_into`] pair:
//! both transforms untangle *in place* inside the caller's buffers (the
//! output buffer doubles as the packed work area), so a steady-state
//! inference loop performs zero heap allocations per transform.

use crate::complex::Complex;
use crate::float::FftFloat;
use crate::half::{half_spectrum_bins, HalfSpectrum};
use crate::plan::{FftError, FftPlan};

/// A reusable real-input FFT plan for a fixed power-of-two length.
///
/// The forward direction maps `n` reals to `n/2 + 1` complex bins
/// (unscaled); the inverse maps them back (scaled by `1/n`). The
/// degenerate `n = 1` plan is the identity (one purely real DC bin), so
/// circulant layers with `block_size = 1` — the paper's uncompressed
/// baseline — can run the same code path.
///
/// ```
/// use blockgnn_fft::RealFftPlan;
/// # fn main() -> Result<(), blockgnn_fft::FftError> {
/// let plan = RealFftPlan::<f64>::new(8)?;
/// let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
/// let spectrum = plan.forward(&x)?;
/// assert_eq!(spectrum.len(), 5); // n/2 + 1 bins
/// let back = plan.inverse(&spectrum)?;
/// for (a, b) in back.iter().zip(&x) {
///     assert!((a - b).abs() < 1e-9);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RealFftPlan<T> {
    len: usize,
    half_plan: FftPlan<T>,
    /// `e^{-2πik/n}` for `k = 0..n/2`, the untangling twiddles.
    twiddles: Vec<Complex<T>>,
}

impl<T: FftFloat> RealFftPlan<T> {
    /// Builds an RFFT plan for real signals of length `len`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::NotPowerOfTwo`] if `len` is not a non-zero
    /// power of two.
    pub fn new(len: usize) -> Result<Self, FftError> {
        if !crate::is_power_of_two(len) {
            return Err(FftError::NotPowerOfTwo { len });
        }
        let half = len / 2;
        let half_plan = FftPlan::new(half.max(1))?;
        let twiddles = (0..half)
            .map(|k| {
                let theta = -(T::from_usize(2) * T::PI * T::from_usize(k)) / T::from_usize(len);
                Complex::from_polar_unit(theta)
            })
            .collect();
        Ok(Self { len, half_plan, twiddles })
    }

    /// The real signal length this plan transforms.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always `false`; plans cannot be built for length 0.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of complex bins in the half-spectrum (`n/2 + 1`, or `1`
    /// for the degenerate `n = 1` plan).
    #[must_use]
    pub fn spectrum_len(&self) -> usize {
        half_spectrum_bins(self.len)
    }

    /// Forward RFFT: `n` reals → `n/2 + 1` complex bins (unscaled).
    ///
    /// Bins `0` and `n/2` are purely real for real input.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `input.len() != n`.
    pub fn forward(&self, input: &[T]) -> Result<Vec<Complex<T>>, FftError> {
        let mut out = vec![Complex::zero(); self.spectrum_len()];
        self.forward_into(input, &mut out)?;
        Ok(out)
    }

    /// Forward RFFT returning the packed [`HalfSpectrum`].
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `input.len() != n`.
    pub fn forward_half(&self, input: &[T]) -> Result<HalfSpectrum<T>, FftError> {
        Ok(HalfSpectrum::from_bins(self.len, self.forward(input)?))
    }

    /// Allocation-free forward RFFT into a caller-provided buffer of
    /// [`RealFftPlan::spectrum_len`] bins. The output buffer doubles as
    /// the packed work area (the half-length complex signal lives in
    /// `out[..n/2]` during the transform), so no scratch is needed.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `input.len() != n` or
    /// `out.len() != spectrum_len()`.
    pub fn forward_into(&self, input: &[T], out: &mut [Complex<T>]) -> Result<(), FftError> {
        if input.len() != self.len {
            return Err(FftError::LengthMismatch { expected: self.len, got: input.len() });
        }
        if out.len() != self.spectrum_len() {
            return Err(FftError::LengthMismatch {
                expected: self.spectrum_len(),
                got: out.len(),
            });
        }
        if self.len == 1 {
            out[0] = Complex::from_real(input[0]);
            return Ok(());
        }
        let half = self.len / 2;
        // Pack: z[k] = x[2k] + i x[2k+1], in place in the output buffer.
        for k in 0..half {
            out[k] = Complex::new(input[2 * k], input[2 * k + 1]);
        }
        self.half_plan.try_forward(&mut out[..half])?;

        let two = T::from_usize(2);
        let inv_two = T::ONE / two;
        // Untangle in place. Bin k reads z[k] and z[half-k], so process
        // k = 0 alone (it also yields the Nyquist bin) and then the
        // mirror pairs (k, half-k), saving both sources before either
        // destination is overwritten. The per-bin arithmetic is the
        // textbook even/odd split, identical to the allocating path.
        let untangle = |zk: Complex<T>, zr: Complex<T>, tw: Complex<T>| {
            let xe = (zk + zr.conj()).scale(inv_two);
            let xo = (zk - zr.conj()).scale(inv_two).mul_i_neg();
            xe + tw * xo
        };
        let z0 = out[0];
        out[0] = untangle(z0, z0, self.twiddles[0]);
        let nyquist = Complex::from_real(z0.re) - Complex::from_real(z0.im);
        let mut k = 1;
        while k <= half - k {
            let zk = out[k];
            let zr = out[half - k];
            out[k] = untangle(zk, zr, self.twiddles[k]);
            if k != half - k {
                out[half - k] = untangle(zr, zk, self.twiddles[half - k]);
            }
            k += 1;
        }
        // Nyquist bin: W^{n/2} = -1, so X[n/2] = Xe[0] - Xo[0].
        out[half] = nyquist;
        Ok(())
    }

    /// Inverse RFFT: `n/2 + 1` complex bins → `n` reals (scaled by `1/n`).
    ///
    /// The imaginary parts of bins `0` and `n/2` are ignored, as they are
    /// zero for any spectrum arising from a real signal.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if
    /// `spectrum.len() != n/2 + 1`.
    pub fn inverse(&self, spectrum: &[Complex<T>]) -> Result<Vec<T>, FftError> {
        if spectrum.len() != self.spectrum_len() {
            return Err(FftError::LengthMismatch {
                expected: self.spectrum_len(),
                got: spectrum.len(),
            });
        }
        let mut work = spectrum.to_vec();
        let mut out = vec![T::ZERO; self.len];
        self.inverse_into(&mut work, &mut out)?;
        Ok(out)
    }

    /// Allocation-free inverse RFFT. **Destroys `spectrum`**: the packed
    /// half-length signal is rebuilt in place inside it (the spectral
    /// accumulator of Algorithm 1 is consumed exactly once per grid row,
    /// so the serving loops hand their accumulator over directly).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if
    /// `spectrum.len() != n/2 + 1` or `out.len() != n`.
    pub fn inverse_into(
        &self,
        spectrum: &mut [Complex<T>],
        out: &mut [T],
    ) -> Result<(), FftError> {
        if spectrum.len() != self.spectrum_len() {
            return Err(FftError::LengthMismatch {
                expected: self.spectrum_len(),
                got: spectrum.len(),
            });
        }
        if out.len() != self.len {
            return Err(FftError::LengthMismatch { expected: self.len, got: out.len() });
        }
        if self.len == 1 {
            out[0] = spectrum[0].re;
            return Ok(());
        }
        let half = self.len / 2;
        let two = T::from_usize(2);
        let inv_two = T::ONE / two;
        // Rebuild the packed half-length spectrum Z[k] = Xe[k] + i·Xo[k]
        // in place. Bin k reads X[k] and X[half-k]; k = 0 (which reads
        // the Nyquist bin) goes first, then the mirror pairs.
        let retangle = |xk: Complex<T>, xm: Complex<T>, tw: Complex<T>| {
            let xr = xm.conj();
            let xe = (xk + xr).scale(inv_two);
            // Xo[k] = conj(W^k) * (X[k] - conj(X[half-k])) / 2
            let xo = tw.conj() * (xk - xr).scale(inv_two);
            xe + xo.mul_i()
        };
        spectrum[0] = retangle(spectrum[0], spectrum[half], self.twiddles[0]);
        let mut k = 1;
        while k <= half - k {
            let xk = spectrum[k];
            let xm = spectrum[half - k];
            spectrum[k] = retangle(xk, xm, self.twiddles[k]);
            if k != half - k {
                spectrum[half - k] = retangle(xm, xk, self.twiddles[half - k]);
            }
            k += 1;
        }
        self.half_plan.try_inverse(&mut spectrum[..half])?;
        for (k, v) in spectrum[..half].iter().enumerate() {
            out[2 * k] = v.re;
            out[2 * k + 1] = v.im;
        }
        Ok(())
    }
}

impl<T: FftFloat> Complex<T> {
    /// Multiplication by `-i` (a −90° rotation); helper for the RFFT
    /// untangling step where `Xo = (Z[k] - conj(Z[N-k])) / (2i)`.
    #[inline]
    #[must_use]
    pub fn mul_i_neg(self) -> Self {
        Self { re: self.im, im: -self.re }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_reference;
    use proptest::prelude::*;

    type C = Complex<f64>;

    #[test]
    fn rejects_bad_lengths() {
        assert!(RealFftPlan::<f64>::new(0).is_err());
        assert!(RealFftPlan::<f64>::new(12).is_err());
        assert!(RealFftPlan::<f64>::new(1).is_ok());
        assert!(RealFftPlan::<f64>::new(2).is_ok());
    }

    #[test]
    fn length_one_plan_is_identity() {
        let plan = RealFftPlan::<f64>::new(1).unwrap();
        assert_eq!(plan.spectrum_len(), 1);
        let spec = plan.forward(&[4.25]).unwrap();
        assert_eq!(spec[0], C::from_real(4.25));
        assert_eq!(plan.inverse(&spec).unwrap(), vec![4.25]);
    }

    #[test]
    fn forward_matches_complex_dft_half_spectrum() {
        for n in [2usize, 4, 8, 16, 64, 128] {
            let plan = RealFftPlan::<f64>::new(n).unwrap();
            let x: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
            let rspec = plan.forward(&x).unwrap();
            let full: Vec<C> = x.iter().map(|&v| C::from_real(v)).collect();
            let fspec = dft_reference(&full);
            assert_eq!(rspec.len(), n / 2 + 1);
            for k in 0..=n / 2 {
                assert!(
                    rspec[k].linf_distance(fspec[k]) < 1e-8,
                    "n={n} bin {k}: rfft={} dft={}",
                    rspec[k],
                    fspec[k]
                );
            }
        }
    }

    #[test]
    fn into_variants_are_bit_identical_to_allocating_path() {
        for n in [2usize, 4, 8, 32, 128] {
            let plan = RealFftPlan::<f64>::new(n).unwrap();
            let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.83).sin() * 3.0).collect();
            let spec = plan.forward(&x).unwrap();
            let mut spec_into = vec![C::zero(); plan.spectrum_len()];
            plan.forward_into(&x, &mut spec_into).unwrap();
            assert_eq!(spec, spec_into, "forward_into drifted at n={n}");

            let back = plan.inverse(&spec).unwrap();
            let mut work = spec.clone();
            let mut back_into = vec![0.0; n];
            plan.inverse_into(&mut work, &mut back_into).unwrap();
            assert_eq!(back, back_into, "inverse_into drifted at n={n}");
        }
    }

    #[test]
    fn into_variants_validate_lengths() {
        let plan = RealFftPlan::<f64>::new(8).unwrap();
        let mut short = vec![C::zero(); 4];
        assert_eq!(
            plan.forward_into(&[0.0; 8], &mut short),
            Err(FftError::LengthMismatch { expected: 5, got: 4 })
        );
        assert_eq!(
            plan.forward_into(&[0.0; 6], &mut [C::zero(); 5]),
            Err(FftError::LengthMismatch { expected: 8, got: 6 })
        );
        let mut out = vec![0.0; 6];
        assert_eq!(
            plan.inverse_into(&mut [C::zero(); 5], &mut out),
            Err(FftError::LengthMismatch { expected: 8, got: 6 })
        );
    }

    #[test]
    fn dc_and_nyquist_bins_are_real() {
        let n = 32;
        let plan = RealFftPlan::<f64>::new(n).unwrap();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() * 3.0).collect();
        let spec = plan.forward(&x).unwrap();
        assert!(spec[0].im.abs() < 1e-10);
        assert!(spec[n / 2].im.abs() < 1e-10);
    }

    #[test]
    fn inverse_length_mismatch_detected() {
        let plan = RealFftPlan::<f64>::new(8).unwrap();
        let err = plan.inverse(&[C::zero(); 3]).unwrap_err();
        assert_eq!(err, FftError::LengthMismatch { expected: 5, got: 3 });
    }

    proptest! {
        #[test]
        fn prop_rfft_roundtrip(values in proptest::collection::vec(-50.0f64..50.0, 64)) {
            let plan = RealFftPlan::<f64>::new(64).unwrap();
            let spec = plan.forward(&values).unwrap();
            let back = plan.inverse(&spec).unwrap();
            for (a, b) in back.iter().zip(&values) {
                prop_assert!((a - b).abs() < 1e-8);
            }
        }

        #[test]
        fn prop_rfft_circular_convolution(
            w in proptest::collection::vec(-2.0f64..2.0, 32),
            h in proptest::collection::vec(-2.0f64..2.0, 32),
        ) {
            // The RFFT path must compute the same circulant product as the
            // direct method: y[i] = sum_j w[(i - j) mod n] * h[j] — i.e.
            // multiplication by the circulant matrix whose first COLUMN is w.
            let n = 32;
            let plan = RealFftPlan::<f64>::new(n).unwrap();
            let sw = plan.forward(&w).unwrap();
            let sh = plan.forward(&h).unwrap();
            let prod: Vec<C> = sw.iter().zip(&sh).map(|(a, b)| *a * *b).collect();
            let y = plan.inverse(&prod).unwrap();
            for i in 0..n {
                let mut direct = 0.0;
                for j in 0..n {
                    direct += w[(i + n - j) % n] * h[j];
                }
                prop_assert!((y[i] - direct).abs() < 1e-7);
            }
        }
    }
}
