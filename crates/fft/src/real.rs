//! Real-input FFT (RFFT) and its inverse (IRFFT).
//!
//! GNN feature vectors are always real-valued, so the paper's §V
//! discussion proposes replacing the complex FFT with a real FFT to close
//! the gap between the implemented (8.3×) and theoretical (18.3×)
//! speedups. The classic trick: pack a length-`n` real signal into a
//! length-`n/2` complex signal, transform, and untangle the two
//! interleaved half-spectra. The result is the non-redundant half-spectrum
//! of `n/2 + 1` bins; the remaining bins are conjugate mirrors.
//!
//! The element-wise spectral product of two half-spectra followed by
//! [`RealFftPlan::inverse`] realizes the same circular convolution as the
//! complex path at roughly half the arithmetic, which is exactly what a
//! CirCore built with RFFT channels would compute.

use crate::complex::Complex;
use crate::float::FftFloat;
use crate::plan::{FftError, FftPlan};

/// A reusable real-input FFT plan for a fixed power-of-two length `n ≥ 2`.
///
/// The forward direction maps `n` reals to `n/2 + 1` complex bins
/// (unscaled); the inverse maps them back (scaled by `1/n`).
///
/// ```
/// use blockgnn_fft::RealFftPlan;
/// # fn main() -> Result<(), blockgnn_fft::FftError> {
/// let plan = RealFftPlan::<f64>::new(8)?;
/// let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
/// let spectrum = plan.forward(&x)?;
/// assert_eq!(spectrum.len(), 5); // n/2 + 1 bins
/// let back = plan.inverse(&spectrum)?;
/// for (a, b) in back.iter().zip(&x) {
///     assert!((a - b).abs() < 1e-9);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RealFftPlan<T> {
    len: usize,
    half_plan: FftPlan<T>,
    /// `e^{-2πik/n}` for `k = 0..n/2`, the untangling twiddles.
    twiddles: Vec<Complex<T>>,
}

impl<T: FftFloat> RealFftPlan<T> {
    /// Builds an RFFT plan for real signals of length `len`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::NotPowerOfTwo`] if `len` is not a power of two
    /// or is smaller than 2 (the packing trick needs an even length).
    pub fn new(len: usize) -> Result<Self, FftError> {
        if len < 2 || !crate::is_power_of_two(len) {
            return Err(FftError::NotPowerOfTwo { len });
        }
        let half = len / 2;
        let half_plan = FftPlan::new(half)?;
        let twiddles = (0..half)
            .map(|k| {
                let theta = -(T::from_usize(2) * T::PI * T::from_usize(k)) / T::from_usize(len);
                Complex::from_polar_unit(theta)
            })
            .collect();
        Ok(Self { len, half_plan, twiddles })
    }

    /// The real signal length this plan transforms.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always `false`; plans cannot be built for length 0.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of complex bins in the half-spectrum (`n/2 + 1`).
    #[must_use]
    pub fn spectrum_len(&self) -> usize {
        self.len / 2 + 1
    }

    /// Forward RFFT: `n` reals → `n/2 + 1` complex bins (unscaled).
    ///
    /// Bins `0` and `n/2` are purely real for real input.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `input.len() != n`.
    pub fn forward(&self, input: &[T]) -> Result<Vec<Complex<T>>, FftError> {
        if input.len() != self.len {
            return Err(FftError::LengthMismatch { expected: self.len, got: input.len() });
        }
        let half = self.len / 2;
        // Pack: z[k] = x[2k] + i x[2k+1]
        let mut z: Vec<Complex<T>> =
            (0..half).map(|k| Complex::new(input[2 * k], input[2 * k + 1])).collect();
        self.half_plan.try_forward(&mut z)?;

        let two = T::from_usize(2);
        let mut out = Vec::with_capacity(half + 1);
        for k in 0..half {
            let zk = z[k];
            let zr = z[(half - k) % half].conj();
            // Even/odd half-spectra of the original signal.
            let xe = (zk + zr).scale(T::ONE / two);
            let xo = (zk - zr).scale(T::ONE / two).mul_i_neg();
            out.push(xe + self.twiddles[k] * xo);
        }
        // Nyquist bin: W^{n/2} = -1, so X[n/2] = Xe[0] - Xo[0].
        let xe0 = Complex::from_real(z[0].re);
        let xo0 = Complex::from_real(z[0].im);
        out.push(xe0 - xo0);
        Ok(out)
    }

    /// Inverse RFFT: `n/2 + 1` complex bins → `n` reals (scaled by `1/n`).
    ///
    /// The imaginary parts of bins `0` and `n/2` are ignored, as they are
    /// zero for any spectrum arising from a real signal.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if
    /// `spectrum.len() != n/2 + 1`.
    pub fn inverse(&self, spectrum: &[Complex<T>]) -> Result<Vec<T>, FftError> {
        let half = self.len / 2;
        if spectrum.len() != half + 1 {
            return Err(FftError::LengthMismatch { expected: half + 1, got: spectrum.len() });
        }
        let two = T::from_usize(2);
        // Rebuild the packed half-length spectrum Z[k] = Xe[k] + i·Xo[k].
        let mut z = Vec::with_capacity(half);
        for k in 0..half {
            let xk = spectrum[k];
            let xr = spectrum[half - k].conj();
            let xe = (xk + xr).scale(T::ONE / two);
            // Xo[k] = conj(W^k) * (X[k] - conj(X[half-k])) / 2
            let xo = self.twiddles[k].conj() * (xk - xr).scale(T::ONE / two);
            z.push(xe + xo.mul_i());
        }
        self.half_plan.try_inverse(&mut z)?;
        let mut out = Vec::with_capacity(self.len);
        for v in z {
            out.push(v.re);
            out.push(v.im);
        }
        Ok(out)
    }
}

impl<T: FftFloat> Complex<T> {
    /// Multiplication by `-i` (a −90° rotation); helper for the RFFT
    /// untangling step where `Xo = (Z[k] - conj(Z[N-k])) / (2i)`.
    #[inline]
    #[must_use]
    pub fn mul_i_neg(self) -> Self {
        Self { re: self.im, im: -self.re }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_reference;
    use proptest::prelude::*;

    type C = Complex<f64>;

    #[test]
    fn rejects_bad_lengths() {
        assert!(RealFftPlan::<f64>::new(0).is_err());
        assert!(RealFftPlan::<f64>::new(1).is_err());
        assert!(RealFftPlan::<f64>::new(12).is_err());
        assert!(RealFftPlan::<f64>::new(2).is_ok());
    }

    #[test]
    fn forward_matches_complex_dft_half_spectrum() {
        for n in [2usize, 4, 8, 16, 64, 128] {
            let plan = RealFftPlan::<f64>::new(n).unwrap();
            let x: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
            let rspec = plan.forward(&x).unwrap();
            let full: Vec<C> = x.iter().map(|&v| C::from_real(v)).collect();
            let fspec = dft_reference(&full);
            assert_eq!(rspec.len(), n / 2 + 1);
            for k in 0..=n / 2 {
                assert!(
                    rspec[k].linf_distance(fspec[k]) < 1e-8,
                    "n={n} bin {k}: rfft={} dft={}",
                    rspec[k],
                    fspec[k]
                );
            }
        }
    }

    #[test]
    fn dc_and_nyquist_bins_are_real() {
        let n = 32;
        let plan = RealFftPlan::<f64>::new(n).unwrap();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() * 3.0).collect();
        let spec = plan.forward(&x).unwrap();
        assert!(spec[0].im.abs() < 1e-10);
        assert!(spec[n / 2].im.abs() < 1e-10);
    }

    #[test]
    fn inverse_length_mismatch_detected() {
        let plan = RealFftPlan::<f64>::new(8).unwrap();
        let err = plan.inverse(&[C::zero(); 3]).unwrap_err();
        assert_eq!(err, FftError::LengthMismatch { expected: 5, got: 3 });
    }

    proptest! {
        #[test]
        fn prop_rfft_roundtrip(values in proptest::collection::vec(-50.0f64..50.0, 64)) {
            let plan = RealFftPlan::<f64>::new(64).unwrap();
            let spec = plan.forward(&values).unwrap();
            let back = plan.inverse(&spec).unwrap();
            for (a, b) in back.iter().zip(&values) {
                prop_assert!((a - b).abs() < 1e-8);
            }
        }

        #[test]
        fn prop_rfft_circular_convolution(
            w in proptest::collection::vec(-2.0f64..2.0, 32),
            h in proptest::collection::vec(-2.0f64..2.0, 32),
        ) {
            // The RFFT path must compute the same circulant product as the
            // direct method: y[i] = sum_j w[(i - j) mod n] * h[j] — i.e.
            // multiplication by the circulant matrix whose first COLUMN is w.
            let n = 32;
            let plan = RealFftPlan::<f64>::new(n).unwrap();
            let sw = plan.forward(&w).unwrap();
            let sh = plan.forward(&h).unwrap();
            let prod: Vec<C> = sw.iter().zip(&sh).map(|(a, b)| *a * *b).collect();
            let y = plan.inverse(&prod).unwrap();
            for i in 0..n {
                let mut direct = 0.0;
                for j in 0..n {
                    direct += w[(i + n - j) % n] * h[j];
                }
                prop_assert!((y[i] - direct).abs() < 1e-7);
            }
        }
    }
}
