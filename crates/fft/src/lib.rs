//! Fast Fourier transform substrate for the BlockGNN reproduction.
//!
//! The paper ("BlockGNN", DAC 2021) accelerates block-circulant
//! matrix–vector products by moving each length-`n` circulant block into
//! the spectral domain: `B · h = IFFT(FFT(w) ∘ FFT(h))`, where `w` is the
//! first row of the block. This crate provides everything needed for that
//! pipeline, with no external FFT dependency:
//!
//! * [`Complex`] — a minimal complex-number type generic over [`FftFloat`]
//!   (implemented for `f32` and `f64`).
//! * [`FftPlan`] — a plan-based radix-2 Cooley–Tukey FFT with precomputed
//!   twiddle factors and bit-reversal tables, mirroring how a streaming
//!   hardware FFT core loads its coefficient ROMs once.
//! * [`real`] — real-input FFT (RFFT/IRFFT) exploiting conjugate symmetry,
//!   implementing the §V "Use RFFT for Higher Speedup" discussion, with
//!   allocation-free `forward_into`/`inverse_into` variants for serving
//!   hot paths.
//! * [`half`] — [`HalfSpectrum`], the packed `n/2 + 1`-bin Hermitian
//!   half-spectrum the serving paths store and multiply.
//! * [`fixed`] — Q16.16 fixed-point arithmetic matching the paper's 32-bit
//!   fixed-point FPGA prototype, plus a bit-exercising fixed-point FFT used
//!   by the functional hardware simulator.
//! * [`dft`] — a naive O(n²) reference DFT used by the test-suite as a
//!   ground truth.
//!
//! # Example
//!
//! ```
//! use blockgnn_fft::{Complex, FftPlan};
//!
//! let plan = FftPlan::<f64>::new(8).expect("power-of-two size");
//! let mut data: Vec<Complex<f64>> =
//!     (0..8).map(|i| Complex::new(i as f64, 0.0)).collect();
//! let original = data.clone();
//! plan.forward(&mut data);
//! plan.inverse(&mut data);
//! for (a, b) in data.iter().zip(&original) {
//!     assert!((a.re - b.re).abs() < 1e-9);
//! }
//! ```

#![deny(missing_docs)]

pub mod complex;
pub mod dft;
pub mod fixed;
pub mod fixed_fft;
pub mod float;
pub mod half;
pub mod plan;
pub mod real;

pub use complex::Complex;
pub use fixed::Q16_16;
pub use fixed_fft::{FixedFftPlan, FixedRealFftPlan};
pub use float::FftFloat;
pub use half::{half_spectrum_bins, HalfSpectrum};
pub use plan::{FftError, FftPlan};
pub use real::RealFftPlan;

/// Returns `true` when `n` is a power of two (and non-zero).
///
/// Radix-2 plans only exist for power-of-two lengths; the block sizes used
/// by the paper (16–128) all qualify.
///
/// ```
/// assert!(blockgnn_fft::is_power_of_two(64));
/// assert!(!blockgnn_fft::is_power_of_two(48));
/// ```
#[must_use]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Number of butterfly stages for a length-`n` radix-2 FFT (`log2 n`).
///
/// # Panics
///
/// Panics if `n` is not a power of two.
///
/// ```
/// assert_eq!(blockgnn_fft::log2_exact(128), 7);
/// ```
#[must_use]
pub fn log2_exact(n: usize) -> u32 {
    assert!(is_power_of_two(n), "log2_exact requires a power of two, got {n}");
    n.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_of_two_detection() {
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(2));
        assert!(is_power_of_two(1024));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(3));
        assert!(!is_power_of_two(100));
    }

    #[test]
    fn log2_of_paper_block_sizes() {
        for (n, lg) in [(16, 4), (32, 5), (64, 6), (128, 7)] {
            assert_eq!(log2_exact(n), lg);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn log2_rejects_non_power() {
        let _ = log2_exact(24);
    }
}
