//! A minimal complex-number type.
//!
//! We implement complex arithmetic from scratch instead of pulling in
//! `num-complex`: the FFT kernels, the spectral weight storage in
//! `blockgnn-core`, and the systolic-array functional model all operate on
//! this type, and keeping it local lets the hardware simulator mirror the
//! exact multiply–accumulate structure a DSP slice performs (4 real
//! multiplies + 2 adds per complex MAC, which is where the paper's
//! `γ(l) = 16·l` DSP cost for `l` parallel complex MACs comes from).

use crate::float::FftFloat;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im` over an [`FftFloat`] scalar.
///
/// ```
/// use blockgnn_fft::Complex;
/// let a = Complex::new(1.0_f64, 2.0);
/// let b = Complex::new(3.0, -1.0);
/// assert_eq!(a * b, Complex::new(5.0, 5.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex<T> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

impl<T: FftFloat> Complex<T> {
    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    #[must_use]
    pub fn new(re: T, im: T) -> Self {
        Self { re, im }
    }

    /// The additive identity `0 + 0i`.
    #[inline]
    #[must_use]
    pub fn zero() -> Self {
        Self { re: T::ZERO, im: T::ZERO }
    }

    /// The multiplicative identity `1 + 0i`.
    #[inline]
    #[must_use]
    pub fn one() -> Self {
        Self { re: T::ONE, im: T::ZERO }
    }

    /// A purely real complex number.
    #[inline]
    #[must_use]
    pub fn from_real(re: T) -> Self {
        Self { re, im: T::ZERO }
    }

    /// `e^{iθ} = cos θ + i·sin θ`, the twiddle-factor constructor.
    #[inline]
    #[must_use]
    pub fn from_polar_unit(theta: T) -> Self {
        Self { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate `re - i·im`.
    #[inline]
    #[must_use]
    pub fn conj(self) -> Self {
        Self { re: self.re, im: -self.im }
    }

    /// Squared magnitude `re² + im²`.
    #[inline]
    #[must_use]
    pub fn norm_sqr(self) -> T {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `√(re² + im²)`.
    #[inline]
    #[must_use]
    pub fn norm(self) -> T {
        self.norm_sqr().sqrt()
    }

    /// Multiplies by a real scalar.
    #[inline]
    #[must_use]
    pub fn scale(self, k: T) -> Self {
        Self { re: self.re * k, im: self.im * k }
    }

    /// Fused multiply–accumulate: `self + a * b`.
    ///
    /// This is exactly the per-element operation the CirCore systolic
    /// array's "Parallel Mul-Add" units perform on spectral packs.
    #[inline]
    #[must_use]
    pub fn mul_add(self, a: Self, b: Self) -> Self {
        self + a * b
    }

    /// Multiplication by `i` (a 90° rotation), cheaper than a full multiply.
    #[inline]
    #[must_use]
    pub fn mul_i(self) -> Self {
        Self { re: -self.im, im: self.re }
    }

    /// L∞ distance between two complex numbers, used by tests.
    #[must_use]
    pub fn linf_distance(self, other: Self) -> T {
        let dr = (self.re - other.re).abs();
        let di = (self.im - other.im).abs();
        if dr > di {
            dr
        } else {
            di
        }
    }
}

impl<T: FftFloat> Add for Complex<T> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl<T: FftFloat> AddAssign for Complex<T> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl<T: FftFloat> Sub for Complex<T> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl<T: FftFloat> SubAssign for Complex<T> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl<T: FftFloat> Mul for Complex<T> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl<T: FftFloat> MulAssign for Complex<T> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<T: FftFloat> Div for Complex<T> {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        Self {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl<T: FftFloat> Neg for Complex<T> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self { re: -self.re, im: -self.im }
    }
}

impl<T: FftFloat> Sum for Complex<T> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::zero(), |acc, x| acc + x)
    }
}

impl<T: FftFloat> From<T> for Complex<T> {
    fn from(re: T) -> Self {
        Self::from_real(re)
    }
}

impl<T: FftFloat> std::fmt::Display for Complex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im < T::ZERO {
            write!(f, "{}-{}i", self.re, -self.im)
        } else {
            write!(f, "{}+{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type C = Complex<f64>;

    #[test]
    fn basic_arithmetic() {
        let a = C::new(1.0, 2.0);
        let b = C::new(3.0, -4.0);
        assert_eq!(a + b, C::new(4.0, -2.0));
        assert_eq!(a - b, C::new(-2.0, 6.0));
        assert_eq!(a * b, C::new(11.0, 2.0));
        assert_eq!(-a, C::new(-1.0, -2.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = C::new(1.5, -0.5);
        let b = C::new(2.0, 3.0);
        let q = (a * b) / b;
        assert!(q.linf_distance(a) < 1e-12);
    }

    #[test]
    fn conjugate_and_norm() {
        let a = C::new(3.0, 4.0);
        assert_eq!(a.conj(), C::new(3.0, -4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.norm(), 5.0);
        // |a|^2 == a * conj(a)
        let p = a * a.conj();
        assert_eq!(p, C::new(25.0, 0.0));
    }

    #[test]
    fn polar_unit_is_on_unit_circle() {
        for k in 0..16 {
            let theta = 2.0 * std::f64::consts::PI * k as f64 / 16.0;
            let z = C::from_polar_unit(theta);
            assert!((z.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mul_i_is_quarter_turn() {
        let a = C::new(2.0, 1.0);
        assert_eq!(a.mul_i(), a * C::new(0.0, 1.0));
    }

    #[test]
    fn mul_add_matches_expanded_form() {
        let acc = C::new(0.5, 0.5);
        let a = C::new(1.0, -1.0);
        let b = C::new(2.0, 3.0);
        assert_eq!(acc.mul_add(a, b), acc + a * b);
    }

    #[test]
    fn sum_of_roots_of_unity_is_zero() {
        let n = 8;
        let s: C = (0..n)
            .map(|k| C::from_polar_unit(2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .sum();
        assert!(s.norm() < 1e-12);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", C::new(1.0, 2.0)), "1+2i");
        assert_eq!(format!("{}", C::new(1.0, -2.0)), "1-2i");
    }
}
