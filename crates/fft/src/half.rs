//! Packed Hermitian half-spectrum of a real signal.
//!
//! The DFT of a length-`n` real signal is conjugate-symmetric:
//! `X[n-k] = conj(X[k])`. Only the first `n/2 + 1` bins carry
//! information (`1` bin for the degenerate `n = 1`), so a serving path
//! that stores and multiplies full spectra does twice the arithmetic
//! and holds twice the bytes it needs. [`HalfSpectrum`] is the packed
//! representation the paper's §V RFFT refinement implies: the
//! non-redundant prefix of the spectrum, tagged with the logical signal
//! length so the owning [`crate::RealFftPlan`] can reconstruct the
//! mirrored half on the way back to the time domain.
//!
//! Element-wise products of half-spectra of real signals stay Hermitian
//! (the product's mirror bins are the conjugate products of the mirror
//! bins), which is why Algorithm 1's spectral multiply–accumulate can
//! run entirely on the packed form.

use crate::complex::Complex;
use crate::float::FftFloat;

/// Number of non-redundant spectrum bins for a length-`n` real signal:
/// `n/2 + 1` (which also yields `1` for the degenerate `n = 1`).
///
/// ```
/// assert_eq!(blockgnn_fft::half_spectrum_bins(8), 5);
/// assert_eq!(blockgnn_fft::half_spectrum_bins(2), 2);
/// assert_eq!(blockgnn_fft::half_spectrum_bins(1), 1);
/// ```
#[must_use]
pub const fn half_spectrum_bins(n: usize) -> usize {
    n / 2 + 1
}

/// The packed non-redundant half of a real signal's spectrum:
/// [`half_spectrum_bins`]`(n)` complex bins for a logical length of `n`.
///
/// Produced by [`crate::RealFftPlan::forward_half`]; consumed (packed,
/// never expanded) by the spectral multiply–accumulate loops and
/// [`crate::RealFftPlan::inverse`].
///
/// ```
/// use blockgnn_fft::{HalfSpectrum, RealFftPlan};
/// let plan = RealFftPlan::<f64>::new(8).unwrap();
/// let spec: HalfSpectrum<f64> =
///     plan.forward_half(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]).unwrap();
/// assert_eq!(spec.logical_len(), 8);
/// assert_eq!(spec.bins().len(), 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HalfSpectrum<T> {
    logical_len: usize,
    bins: Vec<Complex<T>>,
}

impl<T: FftFloat> HalfSpectrum<T> {
    /// An all-zero half-spectrum for a length-`n` real signal.
    #[must_use]
    pub fn zeros(logical_len: usize) -> Self {
        Self { logical_len, bins: vec![Complex::zero(); half_spectrum_bins(logical_len)] }
    }

    /// Wraps pre-computed bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins.len() != half_spectrum_bins(logical_len)`.
    #[must_use]
    pub fn from_bins(logical_len: usize, bins: Vec<Complex<T>>) -> Self {
        assert_eq!(
            bins.len(),
            half_spectrum_bins(logical_len),
            "half-spectrum bin count must match the logical length"
        );
        Self { logical_len, bins }
    }

    /// Length `n` of the real signal this spectrum describes.
    #[must_use]
    pub fn logical_len(&self) -> usize {
        self.logical_len
    }

    /// The packed bins (`half_spectrum_bins(n)` of them).
    #[must_use]
    pub fn bins(&self) -> &[Complex<T>] {
        &self.bins
    }

    /// Mutable access to the packed bins.
    pub fn bins_mut(&mut self) -> &mut [Complex<T>] {
        &mut self.bins
    }

    /// Reconstructs the full `n`-bin spectrum by conjugate mirroring —
    /// test/debug aid; the hot paths never expand.
    #[must_use]
    pub fn expand(&self) -> Vec<Complex<T>> {
        let n = self.logical_len;
        (0..n)
            .map(|k| {
                let m = half_spectrum_bins(n);
                if k < m {
                    self.bins[k]
                } else {
                    self.bins[n - k].conj()
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RealFftPlan;

    #[test]
    fn bin_counts() {
        assert_eq!(half_spectrum_bins(1), 1);
        assert_eq!(half_spectrum_bins(2), 2);
        assert_eq!(half_spectrum_bins(4), 3);
        assert_eq!(half_spectrum_bins(64), 33);
    }

    #[test]
    fn zeros_and_accessors() {
        let mut s = HalfSpectrum::<f64>::zeros(8);
        assert_eq!(s.logical_len(), 8);
        assert_eq!(s.bins().len(), 5);
        s.bins_mut()[0] = Complex::from_real(3.0);
        assert_eq!(s.bins()[0].re, 3.0);
    }

    #[test]
    #[should_panic(expected = "bin count")]
    fn from_bins_validates_length() {
        let _ = HalfSpectrum::from_bins(8, vec![Complex::<f64>::zero(); 4]);
    }

    #[test]
    fn expand_reproduces_full_dft() {
        let n = 16;
        let plan = RealFftPlan::<f64>::new(n).unwrap();
        let x: Vec<f64> = (0..n).map(|i| ((i * 5 + 1) % 7) as f64 - 3.0).collect();
        let half = plan.forward_half(&x).unwrap();
        let full: Vec<Complex<f64>> = x.iter().map(|&v| Complex::from_real(v)).collect();
        let reference = crate::dft::dft_reference(&full);
        for (a, b) in half.expand().iter().zip(&reference) {
            assert!(a.linf_distance(*b) < 1e-8);
        }
    }
}
