//! Plan-based radix-2 Cooley–Tukey FFT.
//!
//! A [`FftPlan`] precomputes the bit-reversal permutation and the twiddle
//! factors for a fixed power-of-two length, then applies the transform
//! in-place to as many buffers as needed. This mirrors the hardware
//! structure: the Xilinx FFT IP the paper instantiates loads its twiddle
//! ROM once per configuration, and every CirCore FFT channel of the same
//! block size shares that configuration.
//!
//! The forward transform computes `X[k] = Σ_j x[j]·e^{-2πi jk/n}` (no
//! scaling); the inverse applies the conjugate twiddles and divides by
//! `n`, so `inverse(forward(x)) == x`.

use crate::complex::Complex;
use crate::float::FftFloat;
use crate::is_power_of_two;
use std::error::Error;
use std::fmt;

/// Error produced when constructing or applying an FFT plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FftError {
    /// The requested transform length is not a non-zero power of two.
    NotPowerOfTwo {
        /// The offending length.
        len: usize,
    },
    /// A buffer passed to the plan does not match the planned length.
    LengthMismatch {
        /// Length the plan was built for.
        expected: usize,
        /// Length of the buffer that was supplied.
        got: usize,
    },
}

impl fmt::Display for FftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FftError::NotPowerOfTwo { len } => {
                write!(f, "fft length {len} is not a non-zero power of two")
            }
            FftError::LengthMismatch { expected, got } => {
                write!(f, "buffer length {got} does not match planned fft length {expected}")
            }
        }
    }
}

impl Error for FftError {}

/// Direction of a transform; used internally to pick twiddle tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Forward,
    Inverse,
}

/// A reusable radix-2 FFT plan for a fixed power-of-two length.
///
/// ```
/// use blockgnn_fft::{Complex, FftPlan};
/// # fn main() -> Result<(), blockgnn_fft::FftError> {
/// let plan = FftPlan::<f64>::new(4)?;
/// let mut x = vec![
///     Complex::from_real(1.0),
///     Complex::from_real(2.0),
///     Complex::from_real(3.0),
///     Complex::from_real(4.0),
/// ];
/// plan.forward(&mut x);
/// // DC bin is the sum of the inputs.
/// assert!((x[0].re - 10.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FftPlan<T> {
    len: usize,
    /// Bit-reversed index for every position (identity-skipping pairs are
    /// still stored; the apply loop swaps only when `rev > i`).
    bit_rev: Vec<u32>,
    /// Forward twiddles, laid out stage-major: for stage with half-size
    /// `m`, entries `w^0..w^{m-1}` with `w = e^{-2πi/(2m)}`.
    twiddles_fwd: Vec<Complex<T>>,
    /// Conjugate twiddles for the inverse transform, same layout.
    twiddles_inv: Vec<Complex<T>>,
}

impl<T: FftFloat> FftPlan<T> {
    /// Builds a plan for transforms of length `len`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::NotPowerOfTwo`] if `len` is zero or not a power
    /// of two.
    pub fn new(len: usize) -> Result<Self, FftError> {
        if !is_power_of_two(len) {
            return Err(FftError::NotPowerOfTwo { len });
        }
        let bits = len.trailing_zeros();
        let mut bit_rev = Vec::with_capacity(len);
        for i in 0..len {
            bit_rev.push((i as u32).reverse_bits() >> (32 - bits.max(1)));
        }
        if len == 1 {
            bit_rev[0] = 0;
        }

        // Stage-major twiddle layout: total entries = 1 + 2 + 4 + ... + len/2 = len - 1.
        let mut twiddles_fwd = Vec::with_capacity(len.saturating_sub(1));
        let mut twiddles_inv = Vec::with_capacity(len.saturating_sub(1));
        let mut m = 1;
        while m < len {
            let step = -(T::PI / T::from_usize(m));
            for k in 0..m {
                let theta = step * T::from_usize(k);
                let w = Complex::from_polar_unit(theta);
                twiddles_fwd.push(w);
                twiddles_inv.push(w.conj());
            }
            m <<= 1;
        }

        Ok(Self { len, bit_rev, twiddles_fwd, twiddles_inv })
    }

    /// The transform length this plan was built for.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` for the degenerate length-1 plan.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// In-place forward FFT (unscaled).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the planned length. Use
    /// [`FftPlan::try_forward`] for a fallible variant.
    pub fn forward(&self, data: &mut [Complex<T>]) {
        self.try_forward(data).expect("fft buffer length mismatch");
    }

    /// In-place inverse FFT (scaled by `1/n`).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the planned length. Use
    /// [`FftPlan::try_inverse`] for a fallible variant.
    pub fn inverse(&self, data: &mut [Complex<T>]) {
        self.try_inverse(data).expect("fft buffer length mismatch");
    }

    /// Fallible in-place forward FFT.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] when the buffer length differs
    /// from the planned length.
    pub fn try_forward(&self, data: &mut [Complex<T>]) -> Result<(), FftError> {
        self.check_len(data)?;
        self.apply(data, Direction::Forward);
        Ok(())
    }

    /// Fallible in-place inverse FFT.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] when the buffer length differs
    /// from the planned length.
    pub fn try_inverse(&self, data: &mut [Complex<T>]) -> Result<(), FftError> {
        self.check_len(data)?;
        self.apply(data, Direction::Inverse);
        let inv_n = T::ONE / T::from_usize(self.len);
        for v in data.iter_mut() {
            *v = v.scale(inv_n);
        }
        Ok(())
    }

    /// Forward FFT of a real-valued slice, returning a fresh complex buffer.
    ///
    /// Convenience for callers holding plain `&[T]` feature data (the GNN
    /// feature sub-vectors are always real; see also [`crate::real`] for
    /// the packed RFFT that halves the work).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] when `data.len()` differs from
    /// the planned length.
    pub fn forward_real(&self, data: &[T]) -> Result<Vec<Complex<T>>, FftError> {
        if data.len() != self.len {
            return Err(FftError::LengthMismatch { expected: self.len, got: data.len() });
        }
        let mut buf: Vec<Complex<T>> = data.iter().map(|&x| Complex::from_real(x)).collect();
        self.try_forward(&mut buf)?;
        Ok(buf)
    }

    fn check_len(&self, data: &[Complex<T>]) -> Result<(), FftError> {
        if data.len() != self.len {
            Err(FftError::LengthMismatch { expected: self.len, got: data.len() })
        } else {
            Ok(())
        }
    }

    fn apply(&self, data: &mut [Complex<T>], dir: Direction) {
        let n = self.len;
        if n <= 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let r = self.bit_rev[i] as usize;
            if r > i {
                data.swap(i, r);
            }
        }
        let twiddles = match dir {
            Direction::Forward => &self.twiddles_fwd,
            Direction::Inverse => &self.twiddles_inv,
        };
        // Iterative butterflies. Stage with half-size m uses twiddle slice
        // [m-1 .. 2m-1) because stages are packed 1,2,4,... entries.
        let mut m = 1;
        let mut stage_base = 0;
        while m < n {
            let span = m << 1;
            for start in (0..n).step_by(span) {
                for k in 0..m {
                    let w = twiddles[stage_base + k];
                    let a = data[start + k];
                    let b = data[start + k + m] * w;
                    data[start + k] = a + b;
                    data[start + k + m] = a - b;
                }
            }
            stage_base += m;
            m = span;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft_reference, idft_reference};
    use proptest::prelude::*;

    type C = Complex<f64>;

    fn close(a: &[C], b: &[C], tol: f64) -> bool {
        a.iter().zip(b).all(|(x, y)| x.linf_distance(*y) < tol)
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert_eq!(FftPlan::<f64>::new(0).unwrap_err(), FftError::NotPowerOfTwo { len: 0 });
        assert_eq!(FftPlan::<f64>::new(12).unwrap_err(), FftError::NotPowerOfTwo { len: 12 });
    }

    #[test]
    fn length_mismatch_is_reported() {
        let plan = FftPlan::<f64>::new(8).unwrap();
        let mut buf = vec![C::zero(); 4];
        assert_eq!(
            plan.try_forward(&mut buf),
            Err(FftError::LengthMismatch { expected: 8, got: 4 })
        );
        let err = FftError::LengthMismatch { expected: 8, got: 4 };
        assert!(err.to_string().contains("does not match"));
    }

    #[test]
    fn length_one_is_identity() {
        let plan = FftPlan::<f64>::new(1).unwrap();
        let mut buf = vec![C::new(3.0, -2.0)];
        plan.forward(&mut buf);
        assert_eq!(buf[0], C::new(3.0, -2.0));
        plan.inverse(&mut buf);
        assert_eq!(buf[0], C::new(3.0, -2.0));
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let n = 16;
        let plan = FftPlan::<f64>::new(n).unwrap();
        let mut buf = vec![C::zero(); n];
        buf[0] = C::one();
        plan.forward(&mut buf);
        for v in &buf {
            assert!(v.linf_distance(C::one()) < 1e-12);
        }
    }

    #[test]
    fn dc_input_concentrates_in_bin_zero() {
        let n = 32;
        let plan = FftPlan::<f64>::new(n).unwrap();
        let mut buf = vec![C::one(); n];
        plan.forward(&mut buf);
        assert!((buf[0].re - n as f64).abs() < 1e-9);
        for v in &buf[1..] {
            assert!(v.norm() < 1e-9);
        }
    }

    #[test]
    fn single_tone_lands_in_its_bin() {
        let n = 64;
        let bin = 5;
        let plan = FftPlan::<f64>::new(n).unwrap();
        let mut buf: Vec<C> = (0..n)
            .map(|j| {
                C::from_polar_unit(2.0 * std::f64::consts::PI * (bin * j) as f64 / n as f64)
            })
            .collect();
        plan.forward(&mut buf);
        for (k, v) in buf.iter().enumerate() {
            if k == bin {
                assert!((v.re - n as f64).abs() < 1e-8, "bin {k} = {v}");
            } else {
                assert!(v.norm() < 1e-8, "bin {k} = {v}");
            }
        }
    }

    #[test]
    fn matches_reference_dft_all_paper_sizes() {
        let mut rng_state = 0x1234_5678_u64;
        let mut next = move || {
            // xorshift64 for deterministic pseudo-random data
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            (rng_state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        for n in [2usize, 4, 8, 16, 32, 64, 128, 256] {
            let plan = FftPlan::<f64>::new(n).unwrap();
            let input: Vec<C> = (0..n).map(|_| C::new(next(), next())).collect();
            let mut fast = input.clone();
            plan.forward(&mut fast);
            let slow = dft_reference(&input);
            assert!(close(&fast, &slow, 1e-8), "fft mismatch at n={n}");

            let mut back = fast.clone();
            plan.inverse(&mut back);
            assert!(close(&back, &input, 1e-9), "ifft roundtrip failed at n={n}");
            let slow_back = idft_reference(&slow);
            assert!(close(&slow_back, &input, 1e-8));
        }
    }

    #[test]
    fn f32_plan_agrees_with_f64() {
        let n = 64;
        let p32 = FftPlan::<f32>::new(n).unwrap();
        let p64 = FftPlan::<f64>::new(n).unwrap();
        let mut a32: Vec<Complex<f32>> =
            (0..n).map(|i| Complex::new((i as f32).sin(), 0.0)).collect();
        let mut a64: Vec<Complex<f64>> =
            (0..n).map(|i| Complex::new((i as f64).sin(), 0.0)).collect();
        p32.forward(&mut a32);
        p64.forward(&mut a64);
        for (x, y) in a32.iter().zip(&a64) {
            assert!((x.re as f64 - y.re).abs() < 1e-3);
            assert!((x.im as f64 - y.im).abs() < 1e-3);
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip(values in proptest::collection::vec(-100.0f64..100.0, 128)) {
            let plan = FftPlan::<f64>::new(128).unwrap();
            let input: Vec<C> = values.iter().map(|&x| C::from_real(x)).collect();
            let mut buf = input.clone();
            plan.forward(&mut buf);
            plan.inverse(&mut buf);
            for (a, b) in buf.iter().zip(&input) {
                prop_assert!(a.linf_distance(*b) < 1e-8);
            }
        }

        #[test]
        fn prop_linearity(
            xs in proptest::collection::vec(-10.0f64..10.0, 64),
            ys in proptest::collection::vec(-10.0f64..10.0, 64),
            alpha in -5.0f64..5.0,
        ) {
            let plan = FftPlan::<f64>::new(64).unwrap();
            let x: Vec<C> = xs.iter().map(|&v| C::from_real(v)).collect();
            let y: Vec<C> = ys.iter().map(|&v| C::from_real(v)).collect();
            // FFT(alpha*x + y)
            let mut combo: Vec<C> = x.iter().zip(&y).map(|(a, b)| a.scale(alpha) + *b).collect();
            plan.forward(&mut combo);
            // alpha*FFT(x) + FFT(y)
            let mut fx = x.clone();
            let mut fy = y.clone();
            plan.forward(&mut fx);
            plan.forward(&mut fy);
            for ((c, a), b) in combo.iter().zip(&fx).zip(&fy) {
                let expect = a.scale(alpha) + *b;
                prop_assert!(c.linf_distance(expect) < 1e-7);
            }
        }

        #[test]
        fn prop_parseval(values in proptest::collection::vec(-10.0f64..10.0, 32)) {
            // Energy is preserved: sum |x|^2 == (1/n) sum |X|^2
            let plan = FftPlan::<f64>::new(32).unwrap();
            let input: Vec<C> = values.iter().map(|&x| C::from_real(x)).collect();
            let time_energy: f64 = input.iter().map(|v| v.norm_sqr()).sum();
            let mut buf = input;
            plan.forward(&mut buf);
            let freq_energy: f64 = buf.iter().map(|v| v.norm_sqr()).sum::<f64>() / 32.0;
            prop_assert!((time_energy - freq_energy).abs() < 1e-6 * (1.0 + time_energy));
        }

        #[test]
        fn prop_convolution_theorem(
            xs in proptest::collection::vec(-3.0f64..3.0, 16),
            hs in proptest::collection::vec(-3.0f64..3.0, 16),
        ) {
            // Circular convolution in time == pointwise product in frequency.
            // This is precisely the identity BlockGNN exploits for circulant blocks.
            let n = 16;
            let plan = FftPlan::<f64>::new(n).unwrap();
            // Direct circular convolution
            let mut direct = vec![0.0f64; n];
            for (i, d) in direct.iter_mut().enumerate() {
                for j in 0..n {
                    *d += xs[j] * hs[(i + n - j) % n];
                }
            }
            // Spectral path
            let mut fx: Vec<C> = xs.iter().map(|&v| C::from_real(v)).collect();
            let mut fh: Vec<C> = hs.iter().map(|&v| C::from_real(v)).collect();
            plan.forward(&mut fx);
            plan.forward(&mut fh);
            let mut prod: Vec<C> = fx.iter().zip(&fh).map(|(a, b)| *a * *b).collect();
            plan.inverse(&mut prod);
            for (d, s) in direct.iter().zip(&prod) {
                prop_assert!((d - s.re).abs() < 1e-7, "direct={d} spectral={}", s.re);
                prop_assert!(s.im.abs() < 1e-7);
            }
        }
    }
}
