//! Naive O(n²) discrete Fourier transform, used as a test oracle.
//!
//! The fast plans in [`crate::plan`] and [`crate::real`] are validated
//! against these definitional implementations. They are also handy for
//! non-power-of-two experiments, although BlockGNN itself only ever needs
//! power-of-two block sizes.

use crate::complex::Complex;
use crate::float::FftFloat;

/// Computes the unscaled forward DFT by direct summation.
///
/// `X[k] = Σ_j x[j] · e^{-2πi jk / n}`
///
/// ```
/// use blockgnn_fft::{Complex, dft::dft_reference};
/// let x = vec![Complex::from_real(1.0_f64); 4];
/// let spectrum = dft_reference(&x);
/// assert!((spectrum[0].re - 4.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn dft_reference<T: FftFloat>(input: &[Complex<T>]) -> Vec<Complex<T>> {
    let n = input.len();
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let mut acc = Complex::zero();
        for (j, &x) in input.iter().enumerate() {
            let theta =
                -(T::from_usize(2) * T::PI * T::from_usize(k * j)) / T::from_usize(n.max(1));
            acc += x * Complex::from_polar_unit(theta);
        }
        out.push(acc);
    }
    out
}

/// Computes the inverse DFT by direct summation (scaled by `1/n`).
///
/// `x[j] = (1/n) Σ_k X[k] · e^{+2πi jk / n}`
#[must_use]
pub fn idft_reference<T: FftFloat>(input: &[Complex<T>]) -> Vec<Complex<T>> {
    let n = input.len();
    let inv_n = T::ONE / T::from_usize(n.max(1));
    let mut out = Vec::with_capacity(n);
    for j in 0..n {
        let mut acc = Complex::zero();
        for (k, &x) in input.iter().enumerate() {
            let theta =
                (T::from_usize(2) * T::PI * T::from_usize(k * j)) / T::from_usize(n.max(1));
            acc += x * Complex::from_polar_unit(theta);
        }
        out.push(acc.scale(inv_n));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    type C = Complex<f64>;

    #[test]
    fn empty_input_yields_empty_output() {
        assert!(dft_reference::<f64>(&[]).is_empty());
        assert!(idft_reference::<f64>(&[]).is_empty());
    }

    #[test]
    fn roundtrip_non_power_of_two() {
        let input: Vec<C> = (0..6).map(|i| C::new(i as f64, -(i as f64) / 2.0)).collect();
        let spec = dft_reference(&input);
        let back = idft_reference(&spec);
        for (a, b) in back.iter().zip(&input) {
            assert!(a.linf_distance(*b) < 1e-10);
        }
    }

    #[test]
    fn dft_of_shifted_impulse_is_complex_exponential() {
        let n = 8;
        let mut input = vec![C::zero(); n];
        input[1] = C::one();
        let spec = dft_reference(&input);
        for (k, v) in spec.iter().enumerate() {
            let expect = C::from_polar_unit(-2.0 * std::f64::consts::PI * k as f64 / n as f64);
            assert!(v.linf_distance(expect) < 1e-12);
        }
    }
}
