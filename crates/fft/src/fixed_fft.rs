//! Fixed-point FFT matching the 32-bit datapath of the FPGA prototype.
//!
//! Data flows through the butterflies as [`FixedComplex`] (a pair of
//! [`Q16_16`]); twiddle factors are stored in Q2.30 so the unit-circle
//! coefficients keep 30 fractional bits, the standard arrangement in
//! hardware FFT cores (data width ≠ coefficient width). The functional
//! hardware simulator in `blockgnn-accel` uses this plan so every value it
//! produces went through genuine fixed-point rounding/saturation.

use crate::complex::Complex;
use crate::fixed::Q16_16;
use crate::is_power_of_two;
use crate::plan::FftError;

/// Fractional bits used for twiddle-factor storage (Q2.30).
pub const TWIDDLE_FRAC: u32 = 30;

/// A complex number with Q16.16 components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FixedComplex {
    /// Real part.
    pub re: Q16_16,
    /// Imaginary part.
    pub im: Q16_16,
}

impl FixedComplex {
    /// Zero.
    pub const ZERO: Self = Self { re: Q16_16::ZERO, im: Q16_16::ZERO };

    /// Creates a fixed complex from parts.
    #[inline]
    #[must_use]
    pub fn new(re: Q16_16, im: Q16_16) -> Self {
        Self { re, im }
    }

    /// Quantizes a float complex into Q16.16.
    #[must_use]
    pub fn from_f64(c: Complex<f64>) -> Self {
        Self { re: Q16_16::from_f64(c.re), im: Q16_16::from_f64(c.im) }
    }

    /// Converts back to a float complex.
    #[must_use]
    pub fn to_complex_f64(self) -> Complex<f64> {
        Complex::new(self.re.to_f64(), self.im.to_f64())
    }

    /// Quantizes a real value.
    #[must_use]
    pub fn from_real_f64(re: f64) -> Self {
        Self { re: Q16_16::from_f64(re), im: Q16_16::ZERO }
    }

    /// Fixed-point complex addition (saturating). Deliberately a named
    /// method, not `std::ops` — saturating Q16.16 arithmetic should not
    /// masquerade as ordinary `+`/`-`/`*`.
    #[inline]
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Self) -> Self {
        Self { re: self.re + rhs.re, im: self.im + rhs.im }
    }

    /// Fixed-point complex subtraction (saturating).
    #[inline]
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Self) -> Self {
        Self { re: self.re - rhs.re, im: self.im - rhs.im }
    }

    /// Fixed-point complex multiplication (4 multiplies, 2 adds — the
    /// datapath a DSP-slice cluster implements).
    #[inline]
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }

    /// Multiplies by a Q2.30 twiddle factor `(tw_re, tw_im)`.
    #[inline]
    #[must_use]
    pub fn mul_twiddle(self, tw_re: i32, tw_im: i32) -> Self {
        Self {
            re: self.re.mul_qformat(tw_re, TWIDDLE_FRAC)
                - self.im.mul_qformat(tw_im, TWIDDLE_FRAC),
            im: self.re.mul_qformat(tw_im, TWIDDLE_FRAC)
                + self.im.mul_qformat(tw_re, TWIDDLE_FRAC),
        }
    }

    /// Complex conjugate.
    #[inline]
    #[must_use]
    pub fn conj(self) -> Self {
        Self { re: self.re, im: -self.im }
    }

    /// Multiplication by `i` (90° rotation) — a wire swap in hardware.
    #[inline]
    #[must_use]
    pub fn mul_i(self) -> Self {
        Self { re: -self.im, im: self.re }
    }

    /// Multiplication by `-i` (−90° rotation).
    #[inline]
    #[must_use]
    pub fn mul_i_neg(self) -> Self {
        Self { re: self.im, im: -self.re }
    }

    /// Division by two with round-to-nearest — the single arithmetic
    /// right shift the RFFT untangling butterflies use.
    #[inline]
    #[must_use]
    pub fn halve(self) -> Self {
        let h = |x: Q16_16| Q16_16::from_bits(((i64::from(x.to_bits()) + 1) >> 1) as i32);
        Self { re: h(self.re), im: h(self.im) }
    }
}

/// A radix-2 fixed-point FFT plan with Q2.30 twiddle ROMs.
///
/// ```
/// use blockgnn_fft::{FixedFftPlan, fixed_fft::FixedComplex};
/// # fn main() -> Result<(), blockgnn_fft::FftError> {
/// let plan = FixedFftPlan::new(8)?;
/// let mut data: Vec<FixedComplex> =
///     (0..8).map(|i| FixedComplex::from_real_f64(i as f64 * 0.25)).collect();
/// let orig = data.clone();
/// plan.forward(&mut data);
/// plan.inverse(&mut data);
/// for (a, b) in data.iter().zip(&orig) {
///     assert!((a.re.to_f64() - b.re.to_f64()).abs() < 1e-3);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FixedFftPlan {
    len: usize,
    bit_rev: Vec<u32>,
    /// Stage-major `(re, im)` twiddles in Q2.30 for the forward direction.
    twiddles_fwd: Vec<(i32, i32)>,
    /// Conjugates for the inverse direction.
    twiddles_inv: Vec<(i32, i32)>,
}

impl FixedFftPlan {
    /// Builds a fixed-point plan of length `len`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::NotPowerOfTwo`] if `len` is not a power of two.
    pub fn new(len: usize) -> Result<Self, FftError> {
        if !is_power_of_two(len) {
            return Err(FftError::NotPowerOfTwo { len });
        }
        let bits = len.trailing_zeros();
        let mut bit_rev = Vec::with_capacity(len);
        for i in 0..len {
            bit_rev.push((i as u32).reverse_bits() >> (32 - bits.max(1)));
        }
        if len == 1 {
            bit_rev[0] = 0;
        }
        let q = |x: f64| -> i32 {
            let v = (x * (1i64 << TWIDDLE_FRAC) as f64).round();
            v.clamp(i32::MIN as f64, i32::MAX as f64) as i32
        };
        let mut twiddles_fwd = Vec::with_capacity(len.saturating_sub(1));
        let mut twiddles_inv = Vec::with_capacity(len.saturating_sub(1));
        let mut m = 1usize;
        while m < len {
            for k in 0..m {
                let theta = -std::f64::consts::PI * k as f64 / m as f64;
                twiddles_fwd.push((q(theta.cos()), q(theta.sin())));
                twiddles_inv.push((q(theta.cos()), q(-theta.sin())));
            }
            m <<= 1;
        }
        Ok(Self { len, bit_rev, twiddles_fwd, twiddles_inv })
    }

    /// The planned transform length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` for the degenerate length-0 plan (never constructible).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// In-place forward fixed-point FFT (unscaled).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the planned length.
    pub fn forward(&self, data: &mut [FixedComplex]) {
        assert_eq!(data.len(), self.len, "fixed fft buffer length mismatch");
        self.apply(data, &self.twiddles_fwd);
    }

    /// In-place inverse fixed-point FFT (scaled by `1/n` via arithmetic
    /// right shift, which is exact for power-of-two lengths).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the planned length.
    pub fn inverse(&self, data: &mut [FixedComplex]) {
        assert_eq!(data.len(), self.len, "fixed fft buffer length mismatch");
        self.apply(data, &self.twiddles_inv);
        let shift = self.len.trailing_zeros();
        for v in data.iter_mut() {
            // Arithmetic shift divides by n with rounding toward -inf;
            // adding half-ulp first gives round-to-nearest like hardware.
            let round = |x: Q16_16| {
                let bits = x.to_bits() as i64;
                let half = 1i64 << (shift.saturating_sub(1));
                let adjusted = if shift == 0 { bits } else { (bits + half) >> shift };
                Q16_16::from_bits(adjusted.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
            };
            v.re = round(v.re);
            v.im = round(v.im);
        }
    }

    fn apply(&self, data: &mut [FixedComplex], twiddles: &[(i32, i32)]) {
        let n = self.len;
        if n <= 1 {
            return;
        }
        for i in 0..n {
            let r = self.bit_rev[i] as usize;
            if r > i {
                data.swap(i, r);
            }
        }
        let mut m = 1usize;
        let mut stage_base = 0usize;
        while m < n {
            let span = m << 1;
            for start in (0..n).step_by(span) {
                for k in 0..m {
                    let (tw_re, tw_im) = twiddles[stage_base + k];
                    let a = data[start + k];
                    let b = data[start + k + m].mul_twiddle(tw_re, tw_im);
                    data[start + k] = a.add(b);
                    data[start + k + m] = a.sub(b);
                }
            }
            stage_base += m;
            m = span;
        }
    }
}

/// A fixed-point real-input FFT plan: the Q16.16 counterpart of
/// [`crate::RealFftPlan`], producing the packed `n/2 + 1`-bin Hermitian
/// half-spectrum through the same pack → half-length FFT → untangle
/// datapath (see [`crate::half`]). This is what a CirCore built with
/// RFFT channels would synthesize: half the butterflies, half the
/// weight-stationary spectrum registers.
///
/// ```
/// use blockgnn_fft::fixed_fft::FixedRealFftPlan;
/// use blockgnn_fft::Q16_16;
/// # fn main() -> Result<(), blockgnn_fft::FftError> {
/// let plan = FixedRealFftPlan::new(8)?;
/// let x: Vec<Q16_16> = (0..8).map(|i| Q16_16::from_f64(i as f64 * 0.5)).collect();
/// let mut spectrum = vec![Default::default(); plan.spectrum_len()];
/// plan.forward_into(&x, &mut spectrum);
/// let mut back = vec![Q16_16::ZERO; 8];
/// plan.inverse_into(&mut spectrum, &mut back);
/// for (a, b) in back.iter().zip(&x) {
///     assert!((a.to_f64() - b.to_f64()).abs() < 1e-3);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FixedRealFftPlan {
    len: usize,
    half_plan: FixedFftPlan,
    /// Untangling twiddles `e^{-2πik/n}` for `k = 0..n/2` in Q2.30.
    twiddles: Vec<(i32, i32)>,
}

impl FixedRealFftPlan {
    /// Builds a fixed-point RFFT plan of length `len` (the degenerate
    /// `len = 1` plan is the identity, matching the float plan).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::NotPowerOfTwo`] if `len` is not a non-zero
    /// power of two.
    pub fn new(len: usize) -> Result<Self, FftError> {
        if !is_power_of_two(len) {
            return Err(FftError::NotPowerOfTwo { len });
        }
        let half = len / 2;
        let half_plan = FixedFftPlan::new(half.max(1))?;
        let q = |x: f64| -> i32 {
            let v = (x * (1i64 << TWIDDLE_FRAC) as f64).round();
            v.clamp(i32::MIN as f64, i32::MAX as f64) as i32
        };
        let twiddles = (0..half)
            .map(|k| {
                let theta = -2.0 * std::f64::consts::PI * k as f64 / len as f64;
                (q(theta.cos()), q(theta.sin()))
            })
            .collect();
        Ok(Self { len, half_plan, twiddles })
    }

    /// The real signal length this plan transforms.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always `false`; plans cannot be built for length 0.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of bins in the packed half-spectrum (`n/2 + 1`).
    #[must_use]
    pub fn spectrum_len(&self) -> usize {
        crate::half::half_spectrum_bins(self.len)
    }

    /// Allocation-free forward RFFT: `n` Q16.16 reals → `n/2 + 1` packed
    /// bins. The output buffer doubles as the packed work area.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != n` or `out.len() != spectrum_len()`.
    pub fn forward_into(&self, input: &[Q16_16], out: &mut [FixedComplex]) {
        assert_eq!(input.len(), self.len, "fixed rfft input length mismatch");
        assert_eq!(out.len(), self.spectrum_len(), "fixed rfft spectrum length mismatch");
        if self.len == 1 {
            out[0] = FixedComplex::new(input[0], Q16_16::ZERO);
            return;
        }
        let half = self.len / 2;
        for k in 0..half {
            out[k] = FixedComplex::new(input[2 * k], input[2 * k + 1]);
        }
        self.half_plan.forward(&mut out[..half]);

        let untangle = |zk: FixedComplex, zr: FixedComplex, tw: (i32, i32)| {
            let xe = zk.add(zr.conj()).halve();
            let xo = zk.sub(zr.conj()).halve().mul_i_neg();
            xe.add(xo.mul_twiddle(tw.0, tw.1))
        };
        let z0 = out[0];
        out[0] = untangle(z0, z0, self.twiddles[0]);
        let nyquist = FixedComplex::new(z0.re - z0.im, Q16_16::ZERO);
        let mut k = 1;
        while k <= half - k {
            let zk = out[k];
            let zr = out[half - k];
            out[k] = untangle(zk, zr, self.twiddles[k]);
            if k != half - k {
                out[half - k] = untangle(zr, zk, self.twiddles[half - k]);
            }
            k += 1;
        }
        out[half] = nyquist;
    }

    /// Allocation-free inverse RFFT (scaled by `1/n`). **Destroys
    /// `spectrum`** — the packed half-length signal is rebuilt in place
    /// inside it, mirroring [`crate::RealFftPlan::inverse_into`].
    ///
    /// # Panics
    ///
    /// Panics if `spectrum.len() != spectrum_len()` or `out.len() != n`.
    pub fn inverse_into(&self, spectrum: &mut [FixedComplex], out: &mut [Q16_16]) {
        assert_eq!(spectrum.len(), self.spectrum_len(), "fixed irfft spectrum length mismatch");
        assert_eq!(out.len(), self.len, "fixed irfft output length mismatch");
        if self.len == 1 {
            out[0] = spectrum[0].re;
            return;
        }
        let half = self.len / 2;
        let retangle = |xk: FixedComplex, xm: FixedComplex, tw: (i32, i32)| {
            let xr = xm.conj();
            let xe = xk.add(xr).halve();
            // conj(W^k) has twiddle (re, -im).
            let xo = xk.sub(xr).halve().mul_twiddle(tw.0, -tw.1);
            xe.add(xo.mul_i())
        };
        spectrum[0] = retangle(spectrum[0], spectrum[half], self.twiddles[0]);
        let mut k = 1;
        while k <= half - k {
            let xk = spectrum[k];
            let xm = spectrum[half - k];
            spectrum[k] = retangle(xk, xm, self.twiddles[k]);
            if k != half - k {
                spectrum[half - k] = retangle(xm, xk, self.twiddles[half - k]);
            }
            k += 1;
        }
        self.half_plan.inverse(&mut spectrum[..half]);
        for (k, v) in spectrum[..half].iter().enumerate() {
            out[2 * k] = v.re;
            out[2 * k + 1] = v.im;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FftPlan;
    use proptest::prelude::*;

    fn quantize(values: &[f64]) -> Vec<FixedComplex> {
        values.iter().map(|&v| FixedComplex::from_real_f64(v)).collect()
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(FixedFftPlan::new(10).is_err());
        assert!(FixedFftPlan::new(16).is_ok());
    }

    #[test]
    fn matches_float_fft_for_small_signals() {
        for n in [4usize, 16, 64, 128] {
            let fplan = FftPlan::<f64>::new(n).unwrap();
            let qplan = FixedFftPlan::new(n).unwrap();
            let input: Vec<f64> =
                (0..n).map(|i| ((i as f64 * 0.37).sin() * 2.0) - 0.5).collect();
            let mut float_buf: Vec<Complex<f64>> =
                input.iter().map(|&v| Complex::from_real(v)).collect();
            fplan.forward(&mut float_buf);
            let mut fixed_buf = quantize(&input);
            qplan.forward(&mut fixed_buf);
            for (f, q) in float_buf.iter().zip(&fixed_buf) {
                let qc = q.to_complex_f64();
                // Error grows with log2(n) stages of rounding.
                let tol = 1e-3 * (n as f64).log2().max(1.0);
                assert!(f.linf_distance(qc) < tol, "n={n}: float={f} fixed={qc}");
            }
        }
    }

    #[test]
    fn roundtrip_error_stays_small() {
        let n = 128;
        let plan = FixedFftPlan::new(n).unwrap();
        let input: Vec<f64> = (0..n).map(|i| ((i * 13 % 29) as f64 / 29.0) - 0.5).collect();
        let mut buf = quantize(&input);
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        for (q, &orig) in buf.iter().zip(&input) {
            assert!((q.re.to_f64() - orig).abs() < 5e-4);
            assert!(q.im.to_f64().abs() < 5e-4);
        }
    }

    #[test]
    fn fixed_complex_multiply_matches_float() {
        let a = Complex::new(1.25, -0.5);
        let b = Complex::new(-2.0, 0.75);
        let fa = FixedComplex::from_f64(a);
        let fb = FixedComplex::from_f64(b);
        let prod = fa.mul(fb).to_complex_f64();
        assert!(prod.linf_distance(a * b) < 1e-4);
    }

    #[test]
    fn real_plan_matches_float_half_spectrum() {
        for n in [2usize, 4, 16, 64] {
            let fplan = crate::RealFftPlan::<f64>::new(n).unwrap();
            let qplan = FixedRealFftPlan::new(n).unwrap();
            let input: Vec<f64> =
                (0..n).map(|i| ((i as f64 * 0.53).cos() * 1.5) - 0.2).collect();
            let float_spec = fplan.forward(&input).unwrap();
            let qx: Vec<Q16_16> = input.iter().map(|&v| Q16_16::from_f64(v)).collect();
            let mut fixed_spec = vec![FixedComplex::ZERO; qplan.spectrum_len()];
            qplan.forward_into(&qx, &mut fixed_spec);
            assert_eq!(fixed_spec.len(), n / 2 + 1);
            let tol = 2e-3 * (n as f64).log2().max(1.0);
            for (f, q) in float_spec.iter().zip(&fixed_spec) {
                assert!(f.linf_distance(q.to_complex_f64()) < tol, "n={n}");
            }
        }
    }

    #[test]
    fn real_plan_length_one_is_identity() {
        let plan = FixedRealFftPlan::new(1).unwrap();
        let x = [Q16_16::from_f64(-2.5)];
        let mut spec = vec![FixedComplex::ZERO; 1];
        plan.forward_into(&x, &mut spec);
        assert_eq!(spec[0].re, x[0]);
        let mut back = [Q16_16::ZERO; 1];
        plan.inverse_into(&mut spec, &mut back);
        assert_eq!(back[0], x[0]);
    }

    #[test]
    fn real_plan_rejects_non_power_of_two() {
        assert!(FixedRealFftPlan::new(0).is_err());
        assert!(FixedRealFftPlan::new(6).is_err());
    }

    proptest! {
        #[test]
        fn prop_fixed_roundtrip(values in proptest::collection::vec(-10.0f64..10.0, 32)) {
            let plan = FixedFftPlan::new(32).unwrap();
            let mut buf = quantize(&values);
            plan.forward(&mut buf);
            plan.inverse(&mut buf);
            for (q, &orig) in buf.iter().zip(&values) {
                prop_assert!((q.re.to_f64() - orig).abs() < 2e-3);
            }
        }

        #[test]
        fn prop_fixed_real_roundtrip(values in proptest::collection::vec(-10.0f64..10.0, 32)) {
            let plan = FixedRealFftPlan::new(32).unwrap();
            let qx: Vec<Q16_16> = values.iter().map(|&v| Q16_16::from_f64(v)).collect();
            let mut spec = vec![FixedComplex::ZERO; plan.spectrum_len()];
            plan.forward_into(&qx, &mut spec);
            let mut back = vec![Q16_16::ZERO; 32];
            plan.inverse_into(&mut spec, &mut back);
            for (q, &orig) in back.iter().zip(&values) {
                prop_assert!((q.to_f64() - orig).abs() < 3e-3);
            }
        }
    }
}
