//! Q16.16 fixed-point arithmetic.
//!
//! The BlockGNN FPGA prototype computes in 32-bit fixed point (§IV-B).
//! [`Q16_16`] models that format: a signed 32-bit integer interpreted as a
//! value scaled by 2¹⁶, i.e. 16 integer bits and 16 fractional bits, with
//! saturating arithmetic (overflow clamps instead of wrapping, matching
//! the saturation logic a DSP48-based datapath would use).
//!
//! The functional mode of the hardware simulator runs every FFT butterfly
//! and systolic MAC through this type, so quantization error observed in
//! end-to-end tests reflects what the bitstream would produce.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Number of fractional bits in the Q16.16 format.
pub const FRAC_BITS: u32 = 16;
/// Scale factor 2¹⁶.
pub const SCALE: i64 = 1 << FRAC_BITS;

/// A Q16.16 signed fixed-point number.
///
/// Range ≈ [−32768, 32767.99998], resolution 2⁻¹⁶ ≈ 1.5e-5.
///
/// ```
/// use blockgnn_fft::Q16_16;
/// let a = Q16_16::from_f64(1.5);
/// let b = Q16_16::from_f64(-2.25);
/// assert!((a * b).to_f64() + 3.375 < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Q16_16(i32);

impl Q16_16 {
    /// Zero.
    pub const ZERO: Self = Self(0);
    /// One (raw value 2¹⁶).
    pub const ONE: Self = Self(1 << FRAC_BITS);
    /// One half.
    pub const HALF: Self = Self(1 << (FRAC_BITS - 1));
    /// Largest representable value (≈ 32768).
    pub const MAX: Self = Self(i32::MAX);
    /// Smallest representable value (≈ −32768).
    pub const MIN: Self = Self(i32::MIN);
    /// Smallest positive increment, 2⁻¹⁶.
    pub const EPSILON: Self = Self(1);

    /// Constructs from the raw i32 bit pattern (no scaling applied).
    #[inline]
    #[must_use]
    pub const fn from_bits(bits: i32) -> Self {
        Self(bits)
    }

    /// Returns the raw i32 bit pattern.
    #[inline]
    #[must_use]
    pub const fn to_bits(self) -> i32 {
        self.0
    }

    /// Converts from `f64`, saturating at the representable range and
    /// rounding to nearest.
    #[inline]
    #[must_use]
    pub fn from_f64(v: f64) -> Self {
        let scaled = (v * SCALE as f64).round();
        if scaled >= i32::MAX as f64 {
            Self::MAX
        } else if scaled <= i32::MIN as f64 {
            Self::MIN
        } else {
            Self(scaled as i32)
        }
    }

    /// Converts from an integer, saturating.
    #[inline]
    #[must_use]
    pub fn from_int(v: i32) -> Self {
        let wide = (v as i64) << FRAC_BITS;
        Self::saturate(wide)
    }

    /// Converts to `f64` exactly (every Q16.16 value is representable).
    #[inline]
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / SCALE as f64
    }

    /// Absolute value, saturating on `MIN`.
    #[inline]
    #[must_use]
    pub fn abs(self) -> Self {
        Self(self.0.saturating_abs())
    }

    /// Saturating conversion from a wide Q16.16 intermediate.
    #[inline]
    fn saturate(wide: i64) -> Self {
        if wide > i32::MAX as i64 {
            Self::MAX
        } else if wide < i32::MIN as i64 {
            Self::MIN
        } else {
            Self(wide as i32)
        }
    }

    /// Multiply with a value in a different Q format: `self · (other / 2^frac)`.
    ///
    /// Used by the fixed-point FFT, whose twiddle factors are stored in
    /// Q2.30 for precision while data stays in Q16.16.
    #[inline]
    #[must_use]
    pub fn mul_qformat(self, other: i32, frac: u32) -> Self {
        let wide = (self.0 as i64) * (other as i64);
        // Round to nearest before dropping the other operand's fraction.
        let rounded = (wide + (1i64 << (frac - 1))) >> frac;
        Self::saturate(rounded)
    }
}

impl Add for Q16_16 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Q16_16 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for Q16_16 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Q16_16 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl Mul for Q16_16 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        let wide = (self.0 as i64) * (rhs.0 as i64);
        let rounded = (wide + (1i64 << (FRAC_BITS - 1))) >> FRAC_BITS;
        Self::saturate(rounded)
    }
}

impl MulAssign for Q16_16 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Div for Q16_16 {
    type Output = Self;
    /// Fixed-point division.
    ///
    /// # Panics
    ///
    /// Panics on division by zero, like integer division.
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let wide = ((self.0 as i64) << FRAC_BITS) / rhs.0 as i64;
        Self::saturate(wide)
    }
}

impl Neg for Q16_16 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self(self.0.saturating_neg())
    }
}

impl fmt::Display for Q16_16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

impl From<i16> for Q16_16 {
    fn from(v: i16) -> Self {
        Self::from_int(v as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constants_convert_exactly() {
        assert_eq!(Q16_16::ZERO.to_f64(), 0.0);
        assert_eq!(Q16_16::ONE.to_f64(), 1.0);
        assert_eq!(Q16_16::HALF.to_f64(), 0.5);
        assert_eq!(Q16_16::EPSILON.to_f64(), 1.0 / 65536.0);
    }

    #[test]
    fn from_f64_rounds_to_nearest() {
        // 0.000008 is below half an epsilon -> rounds to 0
        assert_eq!(Q16_16::from_f64(0.000_007), Q16_16::ZERO);
        // just above half an epsilon -> rounds to 1 ulp
        assert_eq!(Q16_16::from_f64(0.000_009), Q16_16::EPSILON);
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(Q16_16::from_f64(1e9), Q16_16::MAX);
        assert_eq!(Q16_16::from_f64(-1e9), Q16_16::MIN);
        assert_eq!(Q16_16::MAX + Q16_16::ONE, Q16_16::MAX);
        assert_eq!(Q16_16::MIN - Q16_16::ONE, Q16_16::MIN);
        let big = Q16_16::from_f64(30000.0);
        assert_eq!(big * big, Q16_16::MAX);
        assert_eq!(-Q16_16::MIN, Q16_16::MAX); // saturating negation
    }

    #[test]
    fn multiplication_precision() {
        let a = Q16_16::from_f64(3.25);
        let b = Q16_16::from_f64(-1.5);
        assert!((a * b).to_f64() - (-4.875) == 0.0);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Q16_16::from_f64(5.5);
        let b = Q16_16::from_f64(2.0);
        assert_eq!((a / b).to_f64(), 2.75);
    }

    #[test]
    fn qformat_multiply_with_q2_30() {
        // cos(pi/4) in Q2.30
        let c = (std::f64::consts::FRAC_1_SQRT_2 * (1i64 << 30) as f64).round() as i32;
        let x = Q16_16::from_f64(2.0);
        let y = x.mul_qformat(c, 30);
        assert!((y.to_f64() - std::f64::consts::SQRT_2).abs() < 1e-4);
    }

    #[test]
    fn int_conversion_saturates() {
        assert_eq!(Q16_16::from_int(1).to_f64(), 1.0);
        assert_eq!(Q16_16::from_int(40000), Q16_16::MAX);
        assert_eq!(Q16_16::from_int(-40000), Q16_16::MIN);
        assert_eq!(Q16_16::from(-3i16).to_f64(), -3.0);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_within_epsilon(v in -30000.0f64..30000.0) {
            let q = Q16_16::from_f64(v);
            prop_assert!((q.to_f64() - v).abs() <= 0.5 / SCALE as f64 + 1e-12);
        }

        #[test]
        fn prop_addition_matches_f64(a in -1000.0f64..1000.0, b in -1000.0f64..1000.0) {
            let qa = Q16_16::from_f64(a);
            let qb = Q16_16::from_f64(b);
            prop_assert!(((qa + qb).to_f64() - (a + b)).abs() < 2.0 / SCALE as f64);
        }

        #[test]
        fn prop_multiplication_error_bounded(a in -100.0f64..100.0, b in -100.0f64..100.0) {
            let qa = Q16_16::from_f64(a);
            let qb = Q16_16::from_f64(b);
            // error ~ |a|*eps + |b|*eps + eps
            let tol = (a.abs() + b.abs() + 1.0) * (1.5 / SCALE as f64);
            prop_assert!(((qa * qb).to_f64() - a * b).abs() < tol);
        }

        #[test]
        fn prop_ordering_consistent(a in -1000.0f64..1000.0, b in -1000.0f64..1000.0) {
            let qa = Q16_16::from_f64(a);
            let qb = Q16_16::from_f64(b);
            if (a - b).abs() > 1.0 / SCALE as f64 {
                prop_assert_eq!(qa < qb, a < b);
            }
        }
    }
}
