//! Floating-point abstraction so the FFT works for both `f32` and `f64`.
//!
//! The algorithm-level experiments in the paper run in floating point
//! (training uses full precision; Table III), while the FPGA prototype is
//! 32-bit fixed point. Making the plan generic lets the same code serve
//! the accuracy experiments (`f64`) and a faithful single-precision mode
//! (`f32`) without duplicating butterflies.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Scalar floating-point trait required by the FFT kernels.
///
/// This is a deliberately small, sealed-in-practice trait: only `f32` and
/// `f64` implement it, and only the operations the butterflies need are
/// present.
pub trait FftFloat:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Archimedes' constant π.
    const PI: Self;

    /// Lossy conversion from `usize`, used for twiddle angles and scaling.
    fn from_usize(v: usize) -> Self;
    /// Lossy conversion from `f64`, used for constants.
    fn from_f64(v: f64) -> Self;
    /// Lossy conversion to `f64`, used when exporting results.
    fn to_f64(self) -> f64;
    /// Sine.
    fn sin(self) -> Self;
    /// Cosine.
    fn cos(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
}

macro_rules! impl_fft_float {
    ($t:ty, $pi:expr) => {
        impl FftFloat for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const PI: Self = $pi;

            #[inline]
            fn from_usize(v: usize) -> Self {
                v as $t
            }
            #[inline]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn sin(self) -> Self {
                <$t>::sin(self)
            }
            #[inline]
            fn cos(self) -> Self {
                <$t>::cos(self)
            }
            #[inline]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
        }
    };
}

impl_fft_float!(f32, std::f32::consts::PI);
impl_fft_float!(f64, std::f64::consts::PI);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: FftFloat>() {
        assert_eq!(T::from_usize(7).to_f64(), 7.0);
        assert_eq!(T::from_f64(0.5).to_f64(), 0.5);
        assert!((T::PI.to_f64() - std::f64::consts::PI).abs() < 1e-6);
    }

    #[test]
    fn conversions_f32_f64() {
        roundtrip::<f32>();
        roundtrip::<f64>();
    }

    #[test]
    fn trig_matches_std() {
        let x = 0.3_f64;
        assert_eq!(FftFloat::sin(x), x.sin());
        assert_eq!(FftFloat::cos(x), x.cos());
        assert_eq!(FftFloat::sqrt(2.0_f64), 2.0_f64.sqrt());
    }
}
