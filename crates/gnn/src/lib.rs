//! The four GNN algorithms of BlockGNN's Table I, in dense and
//! block-circulant form, plus training and profiling.
//!
//! | Variant | Aggregation | Combination |
//! |---------|-------------|-------------|
//! | GCN     | degree-normalized neighbor sum | `ReLU(W·a_v)` |
//! | GS-Pool | `max_u ReLU(W_pool·h_u + b)`   | `ReLU(W·(a_v ‖ h_v))` |
//! | G-GCN   | `Σ_u σ(W_H·h_u + W_C·h_v) ⊙ h_u` | `ReLU(W·a_v)` |
//! | GAT     | `Σ_j softmax_j(a(W·h_i, W·h_j))·h_j` | `ELU(W·a_v)` |
//!
//! Every weight matrix can be dense (the paper's `n = 1` rows) or
//! block-circulant ([`Compression::BlockCirculant`]); the switch is the
//! *only* difference between the uncompressed and compressed models, just
//! as in the paper's experiments. All backward passes are hand-written
//! and covered by finite-difference tests.
//!
//! Entry points:
//! * [`build_model`] — construct any of the four models.
//! * [`train::train_node_classifier`] — the full-batch training loop used
//!   by the Table III accuracy experiments.
//! * [`profile`] — the Table II FLOP/arithmetic-intensity profiler.
//! * [`workload`] — per-layer operation inventories consumed by the
//!   hardware performance models.
//! * [`sampled`] — mini-batch inference over sampled two-hop computation
//!   graphs (S₁/S₂ fan-outs), the workload shape the accelerator runs.
//! * [`batch`] — coalesced execution of several sampled requests over a
//!   merged node universe, the serving batcher's compute core.
//!
//! # Example
//!
//! ```
//! use blockgnn_gnn::{build_model, GnnModel, ModelKind};
//! use blockgnn_graph::datasets;
//! use blockgnn_nn::Compression;
//!
//! let ds = datasets::cora_like_small(1);
//! let mut model = build_model(
//!     ModelKind::Gcn,
//!     ds.feature_dim(),
//!     32,
//!     ds.num_classes,
//!     Compression::BlockCirculant { block_size: 8 },
//!     42,
//! )
//! .unwrap();
//! let logits = model.forward(&ds.graph, &ds.features, false);
//! assert_eq!(logits.shape(), (ds.num_nodes(), ds.num_classes));
//! ```

#![deny(missing_docs)]

pub mod adjacency;
pub mod batch;
pub mod models;
pub mod profile;
pub mod sampled;
pub mod train;
pub mod workload;

pub use adjacency::NormalizedAdjacency;
pub use models::{
    build_model, build_model_with_policy, CompressionPolicy, GnnModel, ModelKind,
};
pub use nn_reexports::Compression;

mod nn_reexports {
    pub use blockgnn_nn::Compression;
}
