//! Full-batch training loop for the Table III accuracy experiments.
//!
//! The paper trains each GNN on Reddit with the GraphSAGE framework and
//! reports test accuracy per block size. Here we train full-batch (all
//! nodes each step) on the synthesized datasets — a faithful substitution
//! because the quantity under study is the accuracy cost of the
//! block-circulant constraint, not the training-system throughput.

use crate::models::GnnModel;
use blockgnn_graph::Dataset;
use blockgnn_linalg::Matrix;
use blockgnn_nn::loss::{accuracy, softmax_cross_entropy};
use blockgnn_nn::{Adam, Layer, Optimizer, Param};

/// Hyper-parameters for a training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Maximum epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Early-stopping patience in epochs (0 disables early stopping).
    pub patience: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 120, lr: 0.01, patience: 25 }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Test accuracy at the best-validation epoch.
    pub test_accuracy: f64,
    /// Best validation accuracy reached.
    pub best_val_accuracy: f64,
    /// Final training loss.
    pub final_loss: f64,
    /// Epochs actually run.
    pub epochs_run: usize,
    /// Training-loss trajectory.
    pub loss_history: Vec<f64>,
}

/// Adapter presenting a [`GnnModel`] as a parameter container for the
/// optimizers (which operate on the [`Layer`] trait).
struct ParamsOnly<'m>(&'m mut dyn GnnModel);

impl Layer for ParamsOnly<'_> {
    fn forward(&mut self, x: &Matrix, _train: bool) -> Matrix {
        x.clone()
    }
    fn backward(&mut self, g: &Matrix) -> Matrix {
        g.clone()
    }
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.0.visit_params(f);
    }
}

/// Trains `model` on `dataset` with Adam and validation-based early
/// stopping; returns the report with test accuracy measured at the
/// best-validation snapshot (parameters are *not* rolled back — the
/// snapshot's accuracy is captured at the time it occurs, as common in
/// compact GNN harnesses).
pub fn train_node_classifier(
    model: &mut dyn GnnModel,
    dataset: &Dataset,
    config: &TrainConfig,
) -> TrainReport {
    let mut optimizer = Adam::new(config.lr);
    let mut best_val = f64::NEG_INFINITY;
    let mut best_test = 0.0;
    let mut since_best = 0usize;
    let mut loss_history = Vec::with_capacity(config.epochs);
    let mut final_loss = f64::NAN;
    let mut epochs_run = 0;

    for _epoch in 0..config.epochs {
        epochs_run += 1;
        model.zero_grad();
        let logits = model.forward(&dataset.graph, &dataset.features, true);
        let (loss, grad) =
            softmax_cross_entropy(&logits, &dataset.labels, &dataset.masks.train);
        let _ = model.backward(&dataset.graph, &grad);
        optimizer.step(&mut ParamsOnly(model));
        final_loss = loss;
        loss_history.push(loss);

        // Evaluate in inference mode.
        let eval_logits = model.forward(&dataset.graph, &dataset.features, false);
        let val_acc = accuracy(&eval_logits, &dataset.labels, &dataset.masks.val);
        if val_acc > best_val {
            best_val = val_acc;
            best_test = accuracy(&eval_logits, &dataset.labels, &dataset.masks.test);
            since_best = 0;
        } else {
            since_best += 1;
            if config.patience > 0 && since_best >= config.patience {
                break;
            }
        }
    }

    TrainReport {
        test_accuracy: best_test,
        best_val_accuracy: best_val,
        final_loss,
        epochs_run,
        loss_history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{build_model, ModelKind};
    use blockgnn_graph::dataset::DatasetSpec;
    use blockgnn_nn::Compression;

    fn quick_dataset() -> Dataset {
        let spec = DatasetSpec::new("train-test", 160, 700, 24, 3);
        Dataset::synthesize(&spec, 0.85, 3.0, 11)
    }

    #[test]
    fn gcn_learns_separable_classes() {
        let ds = quick_dataset();
        let mut model = build_model(ModelKind::Gcn, 24, 16, 3, Compression::Dense, 7).unwrap();
        let cfg = TrainConfig { epochs: 60, lr: 0.02, patience: 0 };
        let report = train_node_classifier(model.as_mut(), &ds, &cfg);
        assert!(
            report.test_accuracy > 0.75,
            "GCN should learn an easy SBM task, got {}",
            report.test_accuracy
        );
        assert!(report.loss_history.len() == 60);
        // Loss must fall substantially.
        assert!(report.final_loss < report.loss_history[0] * 0.6);
    }

    #[test]
    fn circulant_gcn_also_learns() {
        let ds = quick_dataset();
        let mut model = build_model(
            ModelKind::Gcn,
            24,
            16,
            3,
            Compression::BlockCirculant { block_size: 8 },
            7,
        )
        .unwrap();
        let cfg = TrainConfig { epochs: 60, lr: 0.02, patience: 0 };
        let report = train_node_classifier(model.as_mut(), &ds, &cfg);
        assert!(report.test_accuracy > 0.7, "compressed GCN accuracy {}", report.test_accuracy);
    }

    #[test]
    fn early_stopping_halts_training() {
        let ds = quick_dataset();
        let mut model = build_model(ModelKind::Gcn, 24, 8, 3, Compression::Dense, 1).unwrap();
        let cfg = TrainConfig { epochs: 500, lr: 0.02, patience: 5 };
        let report = train_node_classifier(model.as_mut(), &ds, &cfg);
        assert!(report.epochs_run < 500, "patience should trigger before 500 epochs");
    }
}
