//! The Table II profiler: total computations and arithmetic intensity.
//!
//! §II-B profiles the four GNN algorithms on Reddit with sampled
//! aggregation (S = 25), 512-dim hidden features, and two 128-dim
//! attention heads for GAT. [`table2_profile`] reproduces that analysis
//! from the [`crate::workload`] inventories.

use crate::models::ModelKind;
use crate::workload::GnnWorkload;
use blockgnn_graph::datasets;

/// One row of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRow {
    /// Algorithm.
    pub model: ModelKind,
    /// Aggregation-phase operations (MACs, matching the paper's FLOP
    /// accounting) across the whole graph, layer 1.
    pub agg_ops: f64,
    /// Combination-phase operations, layer 1.
    pub comb_ops: f64,
    /// Aggregation arithmetic intensity (FLOPs / byte).
    pub agg_intensity: f64,
    /// Combination arithmetic intensity (FLOPs / byte).
    pub comb_intensity: f64,
}

/// Profiling configuration (defaults = the paper's §II-B setup).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileConfig {
    /// Sampling fan-out.
    pub sample_size: usize,
    /// Hidden feature width.
    pub hidden: usize,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        Self { sample_size: 25, hidden: 512 }
    }
}

/// Generates the Table II rows (Reddit, layer 1).
#[must_use]
pub fn table2_profile(config: &ProfileConfig) -> Vec<ProfileRow> {
    let spec = datasets::reddit_like();
    ModelKind::all()
        .into_iter()
        .map(|model| {
            let w = GnnWorkload::new(model, &spec, config.hidden, &[config.sample_size]);
            let layer = &w.layers[0];
            let v = spec.num_nodes as f64;
            ProfileRow {
                model,
                agg_ops: layer.agg.macs_per_node() * v,
                comb_ops: layer.comb.macs_per_node() * v,
                agg_intensity: layer.agg.arithmetic_intensity(),
                comb_intensity: layer.comb.arithmetic_intensity(),
            }
        })
        .collect()
}

/// Formats the profile as an aligned text table (the `repro table2`
/// output).
#[must_use]
pub fn render_table2(rows: &[ProfileRow]) -> String {
    let mut out = String::new();
    out.push_str("Algorithm | Agg ops    | Comb ops   | Agg ops/B | Comb ops/B\n");
    out.push_str("----------+------------+------------+-----------+-----------\n");
    for r in rows {
        out.push_str(&format!(
            "{:<9} | {:>10.2e} | {:>10.2e} | {:>9.1} | {:>10.1}\n",
            r.model.name(),
            r.agg_ops,
            r.comb_ops,
            r.agg_intensity,
            r.comb_intensity
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_has_four_rows_in_paper_order() {
        let rows = table2_profile(&ProfileConfig::default());
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].model, ModelKind::Gcn);
        assert_eq!(rows[3].model, ModelKind::Gat);
    }

    #[test]
    fn gcn_aggregation_is_three_orders_lighter_than_ggcn() {
        let rows = table2_profile(&ProfileConfig::default());
        let gcn = &rows[0];
        let ggcn = &rows[2];
        assert!(ggcn.agg_ops > 500.0 * gcn.agg_ops);
    }

    #[test]
    fn weighted_aggregators_dominate_combination() {
        // For GS-Pool/G-GCN/GAT the aggregation phase carries more
        // compute than combination (the paper's core observation).
        let rows = table2_profile(&ProfileConfig::default());
        for r in &rows[1..] {
            assert!(
                r.agg_ops > r.comb_ops,
                "{}: agg {:.2e} should exceed comb {:.2e}",
                r.model,
                r.agg_ops,
                r.comb_ops
            );
        }
        // ...but for GCN it is the opposite.
        assert!(rows[0].comb_ops > rows[0].agg_ops);
    }

    #[test]
    fn render_contains_all_models() {
        let text = render_table2(&table2_profile(&ProfileConfig::default()));
        for name in ["GCN", "GS-Pool", "G-GCN", "GAT"] {
            assert!(text.contains(name), "missing {name} in\n{text}");
        }
    }
}
