//! Batched sampled execution over a merged node universe — the compute
//! core of the serving runtime's dynamic micro-batcher.
//!
//! Several [`SampledSubgraph`]s (one per coalesced request) are
//! concatenated into a single *merged universe*: a block-diagonal
//! [`CsrGraph`] ([`CsrGraph::block_diagonal`]) whose blocks are the
//! per-request sub-universes, with one feature gather over the merged
//! local numbering. One model forward over the merged universe then
//! answers every request at once, and per-request logits are scattered
//! back through [`MergedUniverse::row_of`].
//!
//! # Why block-diagonal instead of interning shared nodes
//!
//! The batcher's contract is that coalesced execution is **bit-identical**
//! to serving each request alone. Sharing a node between two requests'
//! sub-universes would rewire its neighborhood: sampled edges are
//! symmetrized, so request B sampling node `v` would hand `v` an extra
//! neighbor that request A's solo execution never saw — changing degree
//! normalizations, attention softmaxes, and aggregation sums. Keeping
//! each request's block disjoint preserves every node's exact neighbor
//! list *and order* (block offsets shift sorted adjacency uniformly), so
//! each output row is produced by the same float operations as a solo
//! run. Deduplication therefore happens one level up, at request
//! granularity: identical requests share one block.

use crate::sampled::SampledSubgraph;
use blockgnn_graph::CsrGraph;
use blockgnn_linalg::Matrix;

/// The merged node universe of a coalesced micro-batch: one
/// block-diagonal graph over the concatenated sub-universes of the
/// batched requests.
#[derive(Debug, Clone)]
pub struct MergedUniverse {
    /// Block-diagonal adjacency over the merged local numbering.
    pub graph: CsrGraph,
    /// Merged local id → global node id (concatenated per-block
    /// `local_to_global` tables; a global node appearing in two blocks
    /// occupies two merged rows, by design — see module docs).
    pub universe: Vec<u32>,
    /// Merged row offset of each input subgraph's block.
    pub offsets: Vec<usize>,
    /// Total unique target nodes across blocks (the sum of per-block
    /// `batch_len`s) — what the hardware cycle model charges for.
    pub total_targets: usize,
}

impl MergedUniverse {
    /// Merges `subs` into one universe. Block `i` of the result is
    /// `subs[i]` verbatim, renumbered by the cumulative node count of
    /// blocks `0..i`.
    #[must_use]
    pub fn build(subs: &[&SampledSubgraph]) -> Self {
        let graphs: Vec<&CsrGraph> = subs.iter().map(|s| &s.graph).collect();
        let graph = CsrGraph::block_diagonal(&graphs);
        let mut universe = Vec::with_capacity(graph.num_nodes());
        let mut offsets = Vec::with_capacity(subs.len());
        let mut total_targets = 0;
        for sub in subs {
            offsets.push(universe.len());
            universe.extend_from_slice(&sub.local_to_global);
            total_targets += sub.batch_len;
        }
        Self { graph, universe, offsets, total_targets }
    }

    /// Gathers the merged universe's feature rows from the global
    /// matrix. Row `offsets[i] + l` equals row `l` of block `i`'s solo
    /// [`SampledSubgraph::gather_features`] — bit-identical inputs.
    ///
    /// # Panics
    ///
    /// Panics if `features` has fewer rows than the global graph.
    #[must_use]
    pub fn gather_features(&self, features: &Matrix) -> Matrix {
        Matrix::from_fn(self.universe.len(), features.cols(), |i, j| {
            features[(self.universe[i] as usize, j)]
        })
    }

    /// Merged output row holding global node `global` of block `block`
    /// (`None` if the node was not interned into that block — target
    /// nodes always are).
    #[must_use]
    pub fn row_of(&self, block: usize, sub: &SampledSubgraph, global: usize) -> Option<usize> {
        sub.local_of(global).map(|l| self.offsets[block] + l)
    }

    /// Scatters one request's logits rows out of the merged output:
    /// one row per entry of `nodes` (request order, duplicates allowed),
    /// read from block `block` of `merged_logits`.
    ///
    /// # Panics
    ///
    /// Panics if a node of `nodes` was not a target of block `block`.
    #[must_use]
    pub fn scatter(
        &self,
        merged_logits: &Matrix,
        block: usize,
        sub: &SampledSubgraph,
        nodes: &[usize],
    ) -> Matrix {
        Matrix::from_fn(nodes.len(), merged_logits.cols(), |i, j| {
            let row = self
                .row_of(block, sub, nodes[i])
                .expect("request nodes are interned into their block");
            merged_logits[(row, j)]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockgnn_graph::datasets;
    use proptest::prelude::*;

    #[test]
    fn merge_concatenates_blocks() {
        let ds = datasets::cora_like_small(5);
        let a = SampledSubgraph::build(&ds.graph, &[1, 2], 4, 3, 7);
        let b = SampledSubgraph::build(&ds.graph, &[2, 9, 2], 3, 2, 8);
        let m = MergedUniverse::build(&[&a, &b]);
        assert_eq!(m.offsets, vec![0, a.local_to_global.len()]);
        assert_eq!(m.universe.len(), a.local_to_global.len() + b.local_to_global.len());
        assert_eq!(m.total_targets, a.batch_len + b.batch_len);
        // Node 2 is a target of both blocks — two distinct merged rows.
        let ra = m.row_of(0, &a, 2).unwrap();
        let rb = m.row_of(1, &b, 2).unwrap();
        assert_ne!(ra, rb);
        // Features gathered per block match the solo gathers exactly.
        let merged = m.gather_features(&ds.features);
        let solo_a = a.gather_features(&ds.features);
        let solo_b = b.gather_features(&ds.features);
        for i in 0..solo_a.rows() {
            assert_eq!(merged.row(i), solo_a.row(i));
        }
        for i in 0..solo_b.rows() {
            assert_eq!(merged.row(m.offsets[1] + i), solo_b.row(i));
        }
    }

    #[test]
    fn scatter_aligns_duplicate_nodes() {
        let ds = datasets::cora_like_small(6);
        let sub = SampledSubgraph::build(&ds.graph, &[4, 4, 11], 3, 2, 1);
        let m = MergedUniverse::build(&[&sub]);
        let fake = Matrix::from_fn(m.universe.len(), 2, |i, j| (i * 10 + j) as f64);
        let out = m.scatter(&fake, 0, &sub, &[4, 4, 11]);
        assert_eq!(out.row(0), out.row(1), "duplicate positions share one interned row");
        assert_ne!(out.row(0), out.row(2));
    }

    // Coalesce/scatter row alignment with duplicate node ids across
    // requests: every block of the merged universe reproduces its solo
    // subgraph's numbering, features, and adjacency exactly.
    proptest! {
        #[test]
        fn prop_blocks_reproduce_solo_subgraphs(
            batches in proptest::collection::vec(
                proptest::collection::vec(0usize..120, 1..5),
                1..5,
            ),
            seed in 0u64..1_000,
        ) {
            let ds = datasets::citeseer_like_small(3);
            let subs: Vec<SampledSubgraph> = batches
                .iter()
                .map(|b| SampledSubgraph::build(&ds.graph, b, 3, 2, seed))
                .collect();
            let refs: Vec<&SampledSubgraph> = subs.iter().collect();
            let m = MergedUniverse::build(&refs);
            let merged_features = m.gather_features(&ds.features);
            prop_assert_eq!(
                m.universe.len(),
                subs.iter().map(|s| s.local_to_global.len()).sum::<usize>()
            );
            for (bi, (sub, batch)) in subs.iter().zip(&batches).enumerate() {
                let base = m.offsets[bi];
                let solo_features = sub.gather_features(&ds.features);
                for l in 0..sub.local_to_global.len() {
                    // Universe rows land block-contiguously…
                    prop_assert_eq!(m.universe[base + l], sub.local_to_global[l]);
                    // …with bit-identical gathered features…
                    prop_assert_eq!(merged_features.row(base + l), solo_features.row(l));
                    // …and the solo adjacency shifted by the block base.
                    let want: Vec<u32> =
                        sub.graph.neighbors(l).iter().map(|&v| v + base as u32).collect();
                    prop_assert_eq!(m.graph.neighbors(base + l), &want[..]);
                }
                // Every request position (duplicates included) scatters to
                // its block's interned target row.
                for &node in batch {
                    let row = m.row_of(bi, sub, node);
                    prop_assert_eq!(row, sub.local_of(node).map(|l| base + l));
                    prop_assert!(row.unwrap() < base + sub.batch_len);
                }
            }
        }
    }
}
