//! Per-layer operation inventories — the bridge from GNN algorithms to
//! the hardware models.
//!
//! The performance/resource model (Eqs. 3–7), the HyGCN baseline, and the
//! CPU roofline all consume the same facts: how many matrix–vector
//! products of which shapes, and how many plain vector operations, each
//! phase of each layer performs per target node. [`GnnWorkload`]
//! enumerates those facts for the paper's evaluation configuration
//! (sampled aggregation with fan-outs `S(k)`, hidden width 512, GAT with
//! two 128-dim attention heads).
//!
//! Counting convention: one multiply–accumulate = 1 MAC; reported FLOPs
//! are `2 × MACs` (multiply + add), matching §II-B's profiling.

use crate::models::ModelKind;
use blockgnn_graph::DatasetSpec;

/// A matrix–vector product shape with its per-node multiplicity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatvecShape {
    /// Output dimension `N`.
    pub out_dim: usize,
    /// Input dimension `M`.
    pub in_dim: usize,
    /// How many such products run per target node per layer.
    pub per_node: f64,
}

impl MatvecShape {
    /// MACs per target node contributed by this shape.
    #[must_use]
    pub fn macs_per_node(&self) -> f64 {
        self.per_node * self.out_dim as f64 * self.in_dim as f64
    }
}

/// One phase (aggregation or combination) of one layer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhaseWorkload {
    /// Weight-matrix products in this phase.
    pub matvecs: Vec<MatvecShape>,
    /// Plain vector-op MACs per node (scaling, sums, gates, pooling) —
    /// the work the VPU absorbs.
    pub vector_macs_per_node: f64,
    /// Unique input floats streamed per node (fp32 ⇒ ×4 bytes).
    pub input_floats_per_node: f64,
}

impl PhaseWorkload {
    /// Total MACs per node (matrix + vector work).
    #[must_use]
    pub fn macs_per_node(&self) -> f64 {
        self.matvecs.iter().map(MatvecShape::macs_per_node).sum::<f64>()
            + self.vector_macs_per_node
    }

    /// Total FLOPs across the whole graph (`2 × MACs × |V|`).
    #[must_use]
    pub fn total_flops(&self, num_nodes: usize) -> f64 {
        2.0 * self.macs_per_node() * num_nodes as f64
    }

    /// Arithmetic intensity in FLOPs per byte (fp32 input traffic).
    #[must_use]
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.input_floats_per_node * 4.0;
        if bytes == 0.0 {
            0.0
        } else {
            2.0 * self.macs_per_node() / bytes
        }
    }
}

/// One layer's workload.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerWorkload {
    /// Sampling fan-out `S(k)`.
    pub sample_size: usize,
    /// Input feature dimension `M(k)`.
    pub in_dim: usize,
    /// Output feature dimension `N(k)`.
    pub out_dim: usize,
    /// Aggregation phase.
    pub agg: PhaseWorkload,
    /// Combination phase.
    pub comb: PhaseWorkload,
}

/// The full inference workload of a model on a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct GnnWorkload {
    /// Which algorithm.
    pub model: ModelKind,
    /// Number of target nodes `|V|`.
    pub num_nodes: usize,
    /// Per-layer workloads, input layer first.
    pub layers: Vec<LayerWorkload>,
}

/// GAT's total attention dimension in the paper's profiling setup
/// ("two 128-dimensional attention heads").
pub const GAT_ATTENTION_DIM: usize = 256;

impl GnnWorkload {
    /// Builds the workload for `model` on `spec` with hidden width
    /// `hidden` and per-layer fan-outs `samples` (layer count =
    /// `samples.len()`).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    #[must_use]
    pub fn new(model: ModelKind, spec: &DatasetSpec, hidden: usize, samples: &[usize]) -> Self {
        assert!(!samples.is_empty(), "at least one layer is required");
        let mut layers = Vec::with_capacity(samples.len());
        for (k, &s) in samples.iter().enumerate() {
            let m = if k == 0 { spec.feature_dim } else { hidden };
            let n = hidden;
            layers.push(Self::layer_workload(model, s, m, n));
        }
        Self { model, num_nodes: spec.num_nodes, layers }
    }

    fn layer_workload(model: ModelKind, s: usize, m: usize, n: usize) -> LayerWorkload {
        let sf = s as f64;
        let (agg, comb) = match model {
            ModelKind::Gcn => (
                PhaseWorkload {
                    matvecs: vec![],
                    // one scale-and-accumulate MAC per streamed element
                    vector_macs_per_node: sf * m as f64,
                    input_floats_per_node: sf * m as f64,
                },
                PhaseWorkload {
                    matvecs: vec![MatvecShape { out_dim: n, in_dim: m, per_node: 1.0 }],
                    vector_macs_per_node: n as f64, // ReLU
                    input_floats_per_node: m as f64,
                },
            ),
            ModelKind::GsPool => (
                PhaseWorkload {
                    // W_pool applied to every sampled neighbor
                    matvecs: vec![MatvecShape { out_dim: n, in_dim: m, per_node: sf }],
                    // ReLU + running max over S pooled vectors
                    vector_macs_per_node: 2.0 * sf * n as f64,
                    input_floats_per_node: sf * m as f64,
                },
                PhaseWorkload {
                    // W over the concatenation (a_v ‖ h_v)
                    matvecs: vec![MatvecShape { out_dim: n, in_dim: n + m, per_node: 1.0 }],
                    vector_macs_per_node: n as f64,
                    input_floats_per_node: (n + m) as f64,
                },
            ),
            ModelKind::Ggcn => (
                PhaseWorkload {
                    // W_H·h_u and W_C·h_v for every sampled neighbor
                    // (the paper's Table II counts both per edge).
                    matvecs: vec![MatvecShape { out_dim: n, in_dim: m, per_node: 2.0 * sf }],
                    // sigmoid + Hadamard + accumulate
                    vector_macs_per_node: 3.0 * sf * n as f64,
                    // Both edge endpoints are streamed per sampled pair
                    // (h_u feeds the gate *and* the Hadamard product) —
                    // the accounting that reproduces Table II's 256 ops/B
                    // for G-GCN aggregation.
                    input_floats_per_node: 2.0 * sf * m as f64,
                },
                PhaseWorkload {
                    matvecs: vec![MatvecShape { out_dim: n, in_dim: m, per_node: 1.0 }],
                    vector_macs_per_node: n as f64,
                    input_floats_per_node: m as f64,
                },
            ),
            ModelKind::Gat => (
                PhaseWorkload {
                    // a(W·h_i, W·h_j): both endpoints of every sampled
                    // pair are projected into the attention space (the
                    // accounting that reproduces Table II's 1.9e12).
                    matvecs: vec![MatvecShape {
                        out_dim: GAT_ATTENTION_DIM,
                        in_dim: m,
                        per_node: 2.0 * sf,
                    }],
                    // attention dots + softmax + weighted feature sum
                    vector_macs_per_node: sf * (2.0 * GAT_ATTENTION_DIM as f64)
                        + 3.0 * sf
                        + sf * m as f64,
                    input_floats_per_node: sf * m as f64,
                },
                PhaseWorkload {
                    matvecs: vec![MatvecShape { out_dim: n, in_dim: m, per_node: 1.0 }],
                    vector_macs_per_node: n as f64, // ELU
                    input_floats_per_node: m as f64,
                },
            ),
        };
        LayerWorkload { sample_size: s, in_dim: m, out_dim: n, agg, comb }
    }

    /// Total aggregation FLOPs across all layers and nodes.
    #[must_use]
    pub fn aggregation_flops(&self) -> f64 {
        self.layers.iter().map(|l| l.agg.total_flops(self.num_nodes)).sum()
    }

    /// Total combination FLOPs across all layers and nodes.
    #[must_use]
    pub fn combination_flops(&self) -> f64 {
        self.layers.iter().map(|l| l.comb.total_flops(self.num_nodes)).sum()
    }

    /// Grand-total FLOPs.
    #[must_use]
    pub fn total_flops(&self) -> f64 {
        self.aggregation_flops() + self.combination_flops()
    }

    /// Dense weight parameters across all layers (for buffer sizing).
    #[must_use]
    pub fn weight_params(&self) -> usize {
        self.layers
            .iter()
            .flat_map(|l| l.agg.matvecs.iter().chain(&l.comb.matvecs))
            .map(|mv| mv.out_dim * mv.in_dim)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockgnn_graph::datasets;

    fn reddit_layer1(model: ModelKind) -> LayerWorkload {
        let spec = datasets::reddit_like();
        GnnWorkload::new(model, &spec, 512, &[25, 10]).layers[0].clone()
    }

    /// The paper's Table II values for layer 1 on Reddit (S = 25,
    /// features 602 → 512). Our MAC accounting must land within ~25% —
    /// the paper's own numbers are rounded to two significant digits.
    #[test]
    fn table2_total_computation_shapes_match_paper() {
        let v = datasets::reddit_like().num_nodes as f64;
        let cases = [
            (ModelKind::Gcn, 3.7e9, 7.5e10),
            (ModelKind::GsPool, 1.9e12, 1.5e11),
            (ModelKind::Ggcn, 3.7e12, 7.5e10),
            (ModelKind::Gat, 1.9e12, 7.5e10),
        ];
        for (kind, paper_agg, paper_comb) in cases {
            let layer = reddit_layer1(kind);
            // Paper counts MACs as single operations.
            let agg = layer.agg.macs_per_node() * v;
            let comb = layer.comb.macs_per_node() * v;
            assert!(
                (agg / paper_agg - 1.0).abs() < 0.25,
                "{kind}: aggregation {agg:.2e} vs paper {paper_agg:.1e}"
            );
            assert!(
                (comb / paper_comb - 1.0).abs() < 0.25,
                "{kind}: combination {comb:.2e} vs paper {paper_comb:.1e}"
            );
        }
    }

    #[test]
    fn gcn_aggregation_is_memory_bound() {
        let layer = reddit_layer1(ModelKind::Gcn);
        // Paper: 0.5 FLOPs/byte for GCN aggregation.
        let intensity = layer.agg.arithmetic_intensity();
        assert!((0.3..1.0).contains(&intensity), "GCN aggregation intensity {intensity}");
        // Everything else is compute-bound (hundreds of FLOPs/byte).
        for kind in [ModelKind::GsPool, ModelKind::Ggcn, ModelKind::Gat] {
            let l = reddit_layer1(kind);
            assert!(
                l.agg.arithmetic_intensity() > 50.0,
                "{kind} aggregation should be compute-bound"
            );
        }
    }

    #[test]
    fn combination_intensity_is_high_for_all() {
        for kind in ModelKind::all() {
            let l = reddit_layer1(kind);
            assert!(
                l.comb.arithmetic_intensity() > 100.0,
                "{kind} combination intensity too low"
            );
        }
    }

    #[test]
    fn layer2_uses_hidden_dims() {
        let spec = datasets::reddit_like();
        let w = GnnWorkload::new(ModelKind::GsPool, &spec, 512, &[25, 10]);
        assert_eq!(w.layers.len(), 2);
        assert_eq!(w.layers[1].in_dim, 512);
        assert_eq!(w.layers[1].sample_size, 10);
        assert!(w.total_flops() > 0.0);
        assert!(w.weight_params() > 0);
    }

    #[test]
    fn gs_pool_reddit_is_about_two_trillion_flops_per_layer() {
        // §I: "GS-Pool requires about 1.9 trillion floating-point
        // operations per-layer when used on Reddit".
        let layer = reddit_layer1(ModelKind::GsPool);
        let v = datasets::reddit_like().num_nodes as f64;
        let macs = layer.agg.macs_per_node() * v;
        assert!((1.0e12..3.0e12).contains(&macs), "got {macs:.2e}");
    }
}
