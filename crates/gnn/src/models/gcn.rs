//! GCN (Kipf & Welling): normalized-sum aggregation, `ReLU(W·a_v)`
//! combination.
//!
//! GCN's aggregator has no weights (Table I), so compression only
//! touches the two combiner matrices — the reason the paper's Figure 6
//! shows the smallest speedup on GCN.

use crate::adjacency::NormalizedAdjacency;
use crate::models::{GnnModel, ModelKind};
use blockgnn_graph::CsrGraph;
use blockgnn_linalg::Matrix;
use blockgnn_nn::{Compression, Layer, LinearLayer, NnError, Param, Relu};

/// Two-layer GCN: `logits = W₂·Â·ReLU(W₁·Â·X)`.
#[derive(Debug, Clone)]
pub struct Gcn {
    lin1: LinearLayer,
    act1: Relu,
    lin2: LinearLayer,
    /// `Â` coefficients cached by [`GnnModel::prepare_graph`], keyed by
    /// the graph's process-unique [`CsrGraph::instance_id`] so staged
    /// execution skips the per-part recomputation while a different
    /// graph — even one with identical counts, or one reusing a freed
    /// allocation — can never hit stale coefficients.
    adj_cache: Option<(u64, NormalizedAdjacency)>,
    /// Recycled aggregation output buffer for the inference forward
    /// (`Â·H` is fully overwritten by `apply_into`, so one buffer serves
    /// both layers across requests). Cleared on `clone_boxed` — forks
    /// grow their own.
    agg_scratch: Matrix,
}

impl Gcn {
    /// Builds the model. `compression` applies to both combiner weights.
    ///
    /// # Errors
    ///
    /// Propagates layer-construction errors.
    pub fn new(
        in_dim: usize,
        hidden_dim: usize,
        num_classes: usize,
        compression: Compression,
        seed: u64,
    ) -> Result<Self, NnError> {
        Ok(Self {
            lin1: LinearLayer::new(hidden_dim, in_dim, compression, seed)?,
            act1: Relu::new(),
            lin2: LinearLayer::new(num_classes, hidden_dim, compression, seed ^ 0xBEEF)?,
            adj_cache: None,
            agg_scratch: Matrix::default(),
        })
    }

    /// Borrows the two combiner layers, e.g. to export trained weights
    /// for hardware deployment.
    #[must_use]
    pub fn combiner_layers(&self) -> (&LinearLayer, &LinearLayer) {
        (&self.lin1, &self.lin2)
    }
}

impl GnnModel for Gcn {
    fn kind(&self) -> ModelKind {
        ModelKind::Gcn
    }

    fn hidden_dim(&self) -> usize {
        self.lin1.out_dim()
    }

    fn forward(&mut self, graph: &CsrGraph, features: &Matrix, train: bool) -> Matrix {
        // Reuse the instance-id-keyed coefficients and recycle one
        // aggregation buffer for both layers: `apply_into` fully
        // overwrites it, so a steady-state serving loop performs no
        // aggregation allocations after the first request.
        self.prepare_graph(graph);
        let mut agg = std::mem::take(&mut self.agg_scratch);
        let (_, adj) = self.adj_cache.as_ref().expect("just prepared");
        agg.resize(features.rows(), features.cols());
        adj.apply_into(graph, features, &mut agg);
        let h1 = self.act1.forward(&self.lin1.forward(&agg, train), train);
        agg.resize(h1.rows(), h1.cols());
        adj.apply_into(graph, &h1, &mut agg);
        let out = self.lin2.forward(&agg, train);
        self.agg_scratch = agg;
        out
    }

    fn backward(&mut self, graph: &CsrGraph, grad_logits: &Matrix) -> Matrix {
        // Reuse the coefficients the preceding forward cached for this
        // graph (instance-id keyed, so never stale).
        self.prepare_graph(graph);
        let (_, adj) = self.adj_cache.as_ref().expect("just prepared");
        let g_a2 = self.lin2.backward(grad_logits);
        // Â is symmetric, so ∂L/∂h1 = Â·∂L/∂a2.
        let g_h1 = adj.apply(graph, &g_a2);
        let g_lin1_out = self.act1.backward(&g_h1);
        let g_a1 = self.lin1.backward(&g_lin1_out);
        adj.apply(graph, &g_a1)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.lin1.visit_params(f);
        self.lin2.visit_params(f);
    }

    fn visit_linear_layers(&mut self, f: &mut dyn FnMut(&mut LinearLayer)) {
        f(&mut self.lin1);
        f(&mut self.lin2);
    }

    fn clone_boxed(&self) -> Box<dyn GnnModel> {
        let mut copy = self.clone();
        copy.act1.clear_cached();
        copy.agg_scratch = Matrix::default();
        Box::new(copy)
    }

    fn prepare_graph(&mut self, graph: &CsrGraph) {
        // Idempotent: repeat preparations for the same graph (one per
        // request in the parallel scheduler) cost O(1).
        if !matches!(&self.adj_cache, Some((id, _)) if *id == graph.instance_id()) {
            self.adj_cache = Some((graph.instance_id(), NormalizedAdjacency::new(graph)));
        }
    }

    // GCN's aggregator has no weights, so each layer is a single
    // row-parallel stage: `Â`-rows then the combiner matvec. Stage `s`
    // reads the full previous hidden matrix only at `N(v) ∪ {v}`.
    fn num_stages(&self) -> usize {
        2
    }

    fn stage_width(&self, stage: usize, _feature_dim: usize) -> usize {
        match stage {
            0 => self.lin1.out_dim(),
            1 => self.lin2.out_dim(),
            _ => panic!("GCN has 2 stages, got stage {stage}"),
        }
    }

    fn forward_stage(
        &mut self,
        stage: usize,
        graph: &CsrGraph,
        input: &Matrix,
        rows: &[u32],
    ) -> Matrix {
        // Idempotent: a hit on the instance-id key is O(1), so callers
        // that never prepared explicitly still pay the normalization
        // build only once per graph.
        self.prepare_graph(graph);
        let (_, adj) = self.adj_cache.as_ref().expect("just prepared");
        let a = adj.apply_rows(graph, input, rows);
        match stage {
            0 => self.act1.apply(&self.lin1.forward(&a, false)),
            1 => self.lin2.forward(&a, false),
            _ => panic!("GCN has 2 stages, got stage {stage}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::testutil::{check_model_gradients, tiny_features, tiny_graph};

    #[test]
    fn forward_shape() {
        let g = tiny_graph();
        let x = tiny_features(6, 10);
        let mut model = Gcn::new(10, 8, 3, Compression::Dense, 1).unwrap();
        let y = model.forward(&g, &x, false);
        assert_eq!(y.shape(), (6, 3));
    }

    #[test]
    fn gradients_dense() {
        let g = tiny_graph();
        let x = tiny_features(6, 5);
        let mut model = Gcn::new(5, 4, 3, Compression::Dense, 2).unwrap();
        check_model_gradients(&mut model, &g, &x, 1e-4);
    }

    #[test]
    fn gradients_circulant() {
        let g = tiny_graph();
        let x = tiny_features(6, 6);
        let mut model =
            Gcn::new(6, 4, 3, Compression::BlockCirculant { block_size: 2 }, 3).unwrap();
        check_model_gradients(&mut model, &g, &x, 1e-4);
    }

    #[test]
    fn compressed_model_has_fewer_params() {
        let mut dense = Gcn::new(32, 16, 4, Compression::Dense, 1).unwrap();
        let mut circ =
            Gcn::new(32, 16, 4, Compression::BlockCirculant { block_size: 8 }, 1).unwrap();
        assert!(circ.num_params() < dense.num_params());
    }
}
