//! GAT (graph attention network, Veličković et al.).
//!
//! Table I: `α_ij = softmax_j(a(W·h_i, W·h_j))`, `a_v = Σ_j α_ij·h_j`,
//! combination `ELU(W·a_v)`. The attention function is the standard
//! additive form `a(x, y) = LeakyReLU(a_srcᵀx + a_dstᵀy)`; neighborhoods
//! include a self-loop so every softmax is well-defined.
//!
//! Multi-head attention is supported (the paper's profiling setup uses
//! "two 128-dimensional attention heads"): each head owns its projection
//! `W_h` and attention vectors, the per-head aggregations are
//! concatenated, and the combiner maps `heads·M → N`.

use crate::models::{CompressionPolicy, GnnModel, ModelKind};
use blockgnn_graph::CsrGraph;
use blockgnn_linalg::init::InitRng;
use blockgnn_linalg::Matrix;
use blockgnn_nn::{Elu, Layer, LinearLayer, NnError, Param};

const LEAKY_SLOPE: f64 = 0.2;

fn leaky(x: f64) -> f64 {
    if x > 0.0 {
        x
    } else {
        LEAKY_SLOPE * x
    }
}

fn leaky_deriv(x: f64) -> f64 {
    if x > 0.0 {
        1.0
    } else {
        LEAKY_SLOPE
    }
}

/// One attention head: its projection, score vectors, and forward caches.
#[derive(Debug, Clone)]
struct GatHead {
    /// Attention feature projection `W` (in_dim → att_dim).
    w: LinearLayer,
    /// Source attention vector `a_src` (att_dim).
    a_src: Param,
    /// Destination attention vector `a_dst` (att_dim).
    a_dst: Param,
    att_dim: usize,
    // Forward caches.
    s_cache: Matrix,
    ssrc: Vec<f64>,
    sdst: Vec<f64>,
    /// Post-LeakyReLU attention logits per (node, self + neighbors) pair.
    pre: Vec<Vec<f64>>,
    /// Softmax weights, aligned with `pre`.
    alpha: Vec<Vec<f64>>,
}

impl GatHead {
    fn new(
        in_dim: usize,
        att_dim: usize,
        policy: CompressionPolicy,
        seed: u64,
    ) -> Result<Self, NnError> {
        let mut rng = InitRng::new(seed ^ 0xA77A);
        let bound = (3.0 / att_dim as f64).sqrt();
        Ok(Self {
            w: LinearLayer::new(att_dim, in_dim, policy.aggregator, seed)?,
            a_src: Param::new((0..att_dim).map(|_| rng.uniform(-bound, bound)).collect()),
            a_dst: Param::new((0..att_dim).map(|_| rng.uniform(-bound, bound)).collect()),
            att_dim,
            s_cache: Matrix::zeros(0, 0),
            ssrc: Vec::new(),
            sdst: Vec::new(),
            pre: Vec::new(),
            alpha: Vec::new(),
        })
    }

    /// Computes this head's attention-weighted aggregation `a_v` (an
    /// `in_dim`-wide matrix) and caches everything backward needs.
    fn forward(&mut self, graph: &CsrGraph, h: &Matrix, train: bool) -> Matrix {
        let nodes = graph.num_nodes();
        let s = self.w.forward(h, train);
        self.ssrc = (0..nodes)
            .map(|i| s.row(i).iter().zip(&self.a_src.data).map(|(a, b)| a * b).sum())
            .collect();
        self.sdst = (0..nodes)
            .map(|j| s.row(j).iter().zip(&self.a_dst.data).map(|(a, b)| a * b).sum())
            .collect();
        self.pre = Vec::with_capacity(nodes);
        self.alpha = Vec::with_capacity(nodes);
        let mut a = Matrix::zeros(nodes, h.cols());
        for v in 0..nodes {
            let neigh = extended_neighbors(graph, v);
            let pre: Vec<f64> =
                neigh.iter().map(|&u| leaky(self.ssrc[v] + self.sdst[u])).collect();
            let alpha = blockgnn_linalg::vector::softmax(&pre);
            let arow = a.row_mut(v);
            for (&u, &al) in neigh.iter().zip(&alpha) {
                let hu = h.row(u);
                for (o, &x) in arow.iter_mut().zip(hu) {
                    *o += al * x;
                }
            }
            self.pre.push(pre);
            self.alpha.push(alpha);
        }
        self.s_cache = s;
        a
    }

    /// Backward through this head: consumes `∂L/∂a` for the head's slice,
    /// accumulates parameter gradients, returns `∂L/∂h`.
    fn backward(&mut self, graph: &CsrGraph, h_cache: &Matrix, ga: &Matrix) -> Matrix {
        let nodes = graph.num_nodes();
        let in_dim = h_cache.cols();
        let mut gh = Matrix::zeros(nodes, in_dim);
        let mut g_ssrc = vec![0.0; nodes];
        let mut g_sdst = vec![0.0; nodes];
        // `v` indexes four parallel per-node structures; a zipped
        // iterator would obscure, not clarify.
        #[allow(clippy::needless_range_loop)]
        for v in 0..nodes {
            let neigh = extended_neighbors(graph, v);
            let alpha = &self.alpha[v];
            let pre = &self.pre[v];
            let gav = ga.row(v);
            // ∂L/∂α_u = <ga_v, h_u>; ∂L/∂h_u += α_u · ga_v.
            let grad_alpha: Vec<f64> = neigh
                .iter()
                .map(|&u| {
                    let hu = h_cache.row(u);
                    gav.iter().zip(hu).map(|(a, b)| a * b).sum()
                })
                .collect();
            for (&u, &al) in neigh.iter().zip(alpha) {
                let ghu = gh.row_mut(u);
                for (o, &g) in ghu.iter_mut().zip(gav) {
                    *o += al * g;
                }
            }
            // Softmax backward then LeakyReLU backward. `pre` stores the
            // post-LeakyReLU logits; leaky is sign-preserving, so the
            // stored sign recovers the derivative branch.
            let dot: f64 = alpha.iter().zip(&grad_alpha).map(|(a, g)| a * g).sum();
            for ((&u, (&al, &gal)), &p) in
                neigh.iter().zip(alpha.iter().zip(&grad_alpha)).zip(pre)
            {
                let ge = al * (gal - dot);
                let gpre = ge * leaky_deriv(p);
                g_ssrc[v] += gpre;
                g_sdst[u] += gpre;
            }
        }
        // Through the score dot-products into s, a_src, a_dst.
        let mut gs = Matrix::zeros(nodes, self.att_dim);
        for i in 0..nodes {
            let si = self.s_cache.row(i);
            let gsrow = gs.row_mut(i);
            for d in 0..self.att_dim {
                gsrow[d] = g_ssrc[i] * self.a_src.data[d] + g_sdst[i] * self.a_dst.data[d];
                self.a_src.grad[d] += g_ssrc[i] * si[d];
                self.a_dst.grad[d] += g_sdst[i] * si[d];
            }
        }
        let gh_w = self.w.backward(&gs);
        gh += &gh_w;
        gh
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.w.visit_params(f);
        f(&mut self.a_src);
        f(&mut self.a_dst);
    }

    fn visit_linear_layers(&mut self, f: &mut dyn FnMut(&mut LinearLayer)) {
        f(&mut self.w);
    }
}

/// Neighborhood including the self-loop, in deterministic order
/// (self first).
fn extended_neighbors(graph: &CsrGraph, v: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(graph.degree(v) + 1);
    out.push(v);
    out.extend(graph.neighbors(v).iter().map(|&u| u as usize));
    out
}

/// One GAT layer with one or more attention heads.
#[derive(Debug, Clone)]
struct GatLayer {
    heads: Vec<GatHead>,
    /// Combiner (heads·in_dim → out_dim) over the concatenated
    /// per-head aggregations.
    comb: LinearLayer,
    act: Option<Elu>,
    in_dim: usize,
    h_cache: Matrix,
}

impl GatLayer {
    fn new(
        in_dim: usize,
        att_dim: usize,
        out_dim: usize,
        num_heads: usize,
        policy: CompressionPolicy,
        last: bool,
        seed: u64,
    ) -> Result<Self, NnError> {
        if num_heads == 0 {
            return Err(NnError::new("GAT needs at least one attention head"));
        }
        let heads = (0..num_heads)
            .map(|k| GatHead::new(in_dim, att_dim, policy, seed ^ ((k as u64 + 1) << 20)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            heads,
            comb: LinearLayer::new(
                out_dim,
                in_dim * num_heads,
                policy.combiner,
                seed ^ 0x3333,
            )?,
            act: if last { None } else { Some(Elu::new()) },
            in_dim,
            h_cache: Matrix::zeros(0, 0),
        })
    }

    fn forward(&mut self, graph: &CsrGraph, h: &Matrix, train: bool) -> Matrix {
        assert_eq!(h.cols(), self.in_dim, "gat layer input width mismatch");
        let mut concat: Option<Matrix> = None;
        for head in &mut self.heads {
            let a = head.forward(graph, h, train);
            concat = Some(match concat {
                None => a,
                Some(prev) => prev.hconcat(&a).expect("equal row counts"),
            });
        }
        self.h_cache = h.clone();
        let y = self.comb.forward(&concat.expect("at least one head"), train);
        match &mut self.act {
            Some(act) => act.forward(&y, train),
            None => y,
        }
    }

    fn backward(&mut self, graph: &CsrGraph, grad: &Matrix) -> Matrix {
        let nodes = graph.num_nodes();
        let grad = match &mut self.act {
            Some(act) => act.backward(grad),
            None => grad.clone(),
        };
        let g_concat = self.comb.backward(&grad);
        let mut gh = Matrix::zeros(nodes, self.in_dim);
        for (k, head) in self.heads.iter_mut().enumerate() {
            // Slice this head's columns out of the concatenated gradient.
            let ga =
                Matrix::from_fn(nodes, self.in_dim, |i, j| g_concat[(i, k * self.in_dim + j)]);
            let gh_head = head.backward(graph, &self.h_cache, &ga);
            gh += &gh_head;
        }
        gh
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for head in &mut self.heads {
            head.visit_params(f);
        }
        self.comb.visit_params(f);
    }

    fn visit_linear_layers(&mut self, f: &mut dyn FnMut(&mut LinearLayer)) {
        for head in &mut self.heads {
            head.visit_linear_layers(f);
        }
        f(&mut self.comb);
    }

    /// Drops request-scoped forward caches (attention scores, softmax
    /// weights, input and activation snapshots) — called when forking
    /// worker replicas, which never read another request's scratch.
    fn clear_scratch(&mut self) {
        self.h_cache = Matrix::zeros(0, 0);
        if let Some(act) = &mut self.act {
            act.clear_cached();
        }
        for head in &mut self.heads {
            head.s_cache = Matrix::zeros(0, 0);
            head.ssrc = Vec::new();
            head.sdst = Vec::new();
            head.pre = Vec::new();
            head.alpha = Vec::new();
        }
    }

    /// Transform half-stage: per-head attention scores for each target
    /// row — `[s₀ᵛ, d₀ᵛ, s₁ᵛ, d₁ᵛ, … ‖ h_v]` where `sₖᵛ = ⟨Wₖ·h_v, a_src⟩`
    /// and `dₖᵛ = ⟨Wₖ·h_v, a_dst⟩`. Node-local, no neighbor reads.
    fn stage_transform(&mut self, input: &Matrix, rows: &[u32]) -> Matrix {
        let h = Matrix::from_fn(rows.len(), input.cols(), |i, j| input[(rows[i] as usize, j)]);
        let num_heads = self.heads.len();
        let mut out = Matrix::zeros(rows.len(), 2 * num_heads + self.in_dim);
        for (k, head) in self.heads.iter_mut().enumerate() {
            let s = head.w.forward(&h, false);
            for i in 0..rows.len() {
                let srow = s.row(i);
                out[(i, 2 * k)] = srow.iter().zip(&head.a_src.data).map(|(a, b)| a * b).sum();
                out[(i, 2 * k + 1)] =
                    srow.iter().zip(&head.a_dst.data).map(|(a, b)| a * b).sum();
            }
        }
        for (i, &v) in rows.iter().enumerate() {
            out.row_mut(i)[2 * num_heads..].copy_from_slice(input.row(v as usize));
        }
        out
    }

    /// Aggregate-and-combine half-stage: per-head softmax attention over
    /// each target's extended neighborhood, reading scores and features
    /// from the full transform matrix, then the combiner (+ activation).
    /// Score, softmax, and accumulation arithmetic match
    /// [`GatHead::forward`] exactly.
    fn stage_combine(&mut self, graph: &CsrGraph, input: &Matrix, rows: &[u32]) -> Matrix {
        let num_heads = self.heads.len();
        let off = 2 * num_heads;
        assert_eq!(
            input.cols(),
            off + self.in_dim,
            "gat combine stage expects [scores ‖ features] input"
        );
        let mut concat = Matrix::zeros(rows.len(), num_heads * self.in_dim);
        for (i, &v) in rows.iter().enumerate() {
            let v = v as usize;
            let neigh = extended_neighbors(graph, v);
            for k in 0..num_heads {
                let pre: Vec<f64> = neigh
                    .iter()
                    .map(|&u| leaky(input[(v, 2 * k)] + input[(u, 2 * k + 1)]))
                    .collect();
                let alpha = blockgnn_linalg::vector::softmax(&pre);
                let crow = &mut concat.row_mut(i)[k * self.in_dim..(k + 1) * self.in_dim];
                for (&u, &al) in neigh.iter().zip(&alpha) {
                    let hu = &input.row(u)[off..];
                    for (o, &x) in crow.iter_mut().zip(hu) {
                        *o += al * x;
                    }
                }
            }
        }
        let y = self.comb.forward(&concat, false);
        match &self.act {
            Some(act) => act.apply(&y),
            None => y,
        }
    }
}

/// Two-layer GAT model with attention dimension equal to the hidden
/// dimension.
#[derive(Debug, Clone)]
pub struct Gat {
    layer1: GatLayer,
    layer2: GatLayer,
}

impl Gat {
    /// Builds a single-head model (the Table III training configuration).
    ///
    /// # Errors
    ///
    /// Propagates layer-construction errors.
    pub fn new(
        in_dim: usize,
        hidden_dim: usize,
        num_classes: usize,
        policy: CompressionPolicy,
        seed: u64,
    ) -> Result<Self, NnError> {
        Self::with_heads(in_dim, hidden_dim, num_classes, 1, policy, seed)
    }

    /// Builds a multi-head model (the paper's profiling setup uses two
    /// heads); per-head aggregations are concatenated before combination.
    ///
    /// # Errors
    ///
    /// Propagates layer-construction errors; `num_heads` must be ≥ 1.
    pub fn with_heads(
        in_dim: usize,
        hidden_dim: usize,
        num_classes: usize,
        num_heads: usize,
        policy: CompressionPolicy,
        seed: u64,
    ) -> Result<Self, NnError> {
        Ok(Self {
            layer1: GatLayer::new(
                in_dim, hidden_dim, hidden_dim, num_heads, policy, false, seed,
            )?,
            layer2: GatLayer::new(
                hidden_dim,
                hidden_dim,
                num_classes,
                num_heads,
                policy,
                true,
                seed ^ 0xFACE,
            )?,
        })
    }
}

impl GnnModel for Gat {
    fn kind(&self) -> ModelKind {
        ModelKind::Gat
    }

    fn hidden_dim(&self) -> usize {
        self.layer1.comb.out_dim()
    }

    fn forward(&mut self, graph: &CsrGraph, features: &Matrix, train: bool) -> Matrix {
        let h1 = self.layer1.forward(graph, features, train);
        self.layer2.forward(graph, &h1, train)
    }

    fn backward(&mut self, graph: &CsrGraph, grad_logits: &Matrix) -> Matrix {
        let g1 = self.layer2.backward(graph, grad_logits);
        self.layer1.backward(graph, &g1)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.layer1.visit_params(f);
        self.layer2.visit_params(f);
    }

    fn visit_linear_layers(&mut self, f: &mut dyn FnMut(&mut LinearLayer)) {
        self.layer1.visit_linear_layers(f);
        self.layer2.visit_linear_layers(f);
    }

    fn clone_boxed(&self) -> Box<dyn GnnModel> {
        let mut copy = self.clone();
        copy.layer1.clear_scratch();
        copy.layer2.clear_scratch();
        Box::new(copy)
    }

    // Each GAT layer splits at its natural seam: the node-local
    // attention projections/scores (stage 0/2, zero halo) and the
    // softmax-weighted neighbor aggregation + combiner (stage 1/3,
    // one-hop halo reads).
    fn num_stages(&self) -> usize {
        4
    }

    fn stage_width(&self, stage: usize, feature_dim: usize) -> usize {
        let hidden = self.layer1.comb.out_dim();
        match stage {
            0 => 2 * self.layer1.heads.len() + feature_dim,
            1 => hidden,
            2 => 2 * self.layer2.heads.len() + hidden,
            3 => self.layer2.comb.out_dim(),
            _ => panic!("GAT has 4 stages, got stage {stage}"),
        }
    }

    fn forward_stage(
        &mut self,
        stage: usize,
        graph: &CsrGraph,
        input: &Matrix,
        rows: &[u32],
    ) -> Matrix {
        match stage {
            0 => self.layer1.stage_transform(input, rows),
            1 => self.layer1.stage_combine(graph, input, rows),
            2 => self.layer2.stage_transform(input, rows),
            3 => self.layer2.stage_combine(graph, input, rows),
            _ => panic!("GAT has 4 stages, got stage {stage}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::testutil::{check_model_gradients, tiny_features, tiny_graph};
    use blockgnn_nn::Compression;

    #[test]
    fn forward_shape() {
        let g = tiny_graph();
        let x = tiny_features(6, 7);
        let mut model =
            Gat::new(7, 5, 3, CompressionPolicy::uniform(Compression::Dense), 1).unwrap();
        assert_eq!(model.forward(&g, &x, false).shape(), (6, 3));
    }

    #[test]
    fn attention_weights_sum_to_one() {
        let g = tiny_graph();
        let x = tiny_features(6, 4);
        let mut model =
            Gat::new(4, 3, 2, CompressionPolicy::uniform(Compression::Dense), 5).unwrap();
        let _ = model.forward(&g, &x, false);
        for alpha in &model.layer1.heads[0].alpha {
            let sum: f64 = alpha.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(alpha.iter().all(|&a| a >= 0.0));
        }
    }

    #[test]
    fn gradients_dense() {
        let g = tiny_graph();
        let x = tiny_features(6, 4);
        let mut model =
            Gat::new(4, 3, 2, CompressionPolicy::uniform(Compression::Dense), 2).unwrap();
        check_model_gradients(&mut model, &g, &x, 2e-4);
    }

    #[test]
    fn gradients_circulant() {
        let g = tiny_graph();
        let x = tiny_features(6, 4);
        let policy = CompressionPolicy::uniform(Compression::BlockCirculant { block_size: 2 });
        let mut model = Gat::new(4, 4, 2, policy, 3).unwrap();
        check_model_gradients(&mut model, &g, &x, 2e-4);
    }

    #[test]
    fn gradients_two_heads() {
        let g = tiny_graph();
        let x = tiny_features(6, 4);
        let mut model =
            Gat::with_heads(4, 3, 2, 2, CompressionPolicy::uniform(Compression::Dense), 4)
                .unwrap();
        check_model_gradients(&mut model, &g, &x, 2e-4);
    }

    #[test]
    fn multi_head_shapes_and_params() {
        let g = tiny_graph();
        let x = tiny_features(6, 8);
        let policy = CompressionPolicy::uniform(Compression::Dense);
        let mut one = Gat::with_heads(8, 4, 3, 1, policy, 9).unwrap();
        let mut two = Gat::with_heads(8, 4, 3, 2, policy, 9).unwrap();
        assert_eq!(two.forward(&g, &x, false).shape(), (6, 3));
        // Two heads double the attention parameters and widen the
        // combiner input.
        assert!(two.num_params() > one.num_params());
        let _ = one.forward(&g, &x, false);
    }

    #[test]
    fn zero_heads_rejected() {
        let policy = CompressionPolicy::uniform(Compression::Dense);
        assert!(Gat::with_heads(4, 3, 2, 0, policy, 1).is_err());
    }
}
