//! The model zoo: GCN, GS-Pool, G-GCN, GAT (Table I).

pub mod gat;
pub mod gcn;
pub mod ggcn;
pub mod gs_pool;

pub use gat::Gat;
pub use gcn::Gcn;
pub use ggcn::Ggcn;
pub use gs_pool::GsPool;

use blockgnn_graph::CsrGraph;
use blockgnn_linalg::Matrix;
use blockgnn_nn::{Compression, ExecMode, LinearLayer, NnError, Param};
use std::fmt;

/// Which of the paper's four GNN algorithms a model implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Graph Convolutional Network (Kipf & Welling).
    Gcn,
    /// GraphSAGE with the max-pooling aggregator.
    GsPool,
    /// Gated GCN (Marcheggiani & Titov).
    Ggcn,
    /// Graph Attention Network (Veličković et al.).
    Gat,
}

impl ModelKind {
    /// All four kinds in the paper's presentation order.
    #[must_use]
    pub fn all() -> [ModelKind; 4] {
        [ModelKind::Gcn, ModelKind::GsPool, ModelKind::Ggcn, ModelKind::Gat]
    }

    /// The paper's display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Gcn => "GCN",
            ModelKind::GsPool => "GS-Pool",
            ModelKind::Ggcn => "G-GCN",
            ModelKind::Gat => "GAT",
        }
    }

    /// Whether the aggregation phase contains learnable weight matrices
    /// (everything except GCN — the property behind Table II's profile
    /// and the paper's observation that GCN benefits least from
    /// compression).
    #[must_use]
    pub fn has_weighted_aggregation(&self) -> bool {
        !matches!(self, ModelKind::Gcn)
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A two-layer GNN for full-batch node classification.
///
/// `forward` produces per-node logits; `backward` takes `∂L/∂logits`,
/// accumulates parameter gradients, and returns `∂L/∂features`.
///
/// # Staged row-parallel inference
///
/// Every model also exposes its forward pass as a sequence of
/// *row-parallel stages* ([`GnnModel::num_stages`] /
/// [`GnnModel::forward_stage`]): stage `s` computes any subset of its
/// output rows from the **full** output matrix of stage `s − 1` (stage 0
/// reads the input features). Within a stage, rows are independent —
/// each target row reads only its own neighborhood of the previous
/// stage's matrix — so a scheduler can shard a stage's rows across
/// worker threads and barrier between stages. The contract is
/// *bit-exactness*: chaining every stage over all rows must reproduce
/// `forward(graph, features, false)` exactly, which is what makes
/// partition-parallel serving indistinguishable from the sequential
/// path. Models achieve this by splitting each GNN layer at its natural
/// seam: a node-local transform stage (gate/pool/attention projections —
/// no neighbor reads, zero halo) followed by an aggregate-and-combine
/// stage (reads the transform matrix at `N(v) ∪ {v}` — a one-hop halo).
pub trait GnnModel: Send {
    /// Which algorithm this is.
    fn kind(&self) -> ModelKind;

    /// Width of the hidden representation (the first layer's output) —
    /// the per-layer dimension the hardware workload models charge with.
    fn hidden_dim(&self) -> usize;

    /// Full-batch forward pass over all nodes.
    fn forward(&mut self, graph: &CsrGraph, features: &Matrix, train: bool) -> Matrix;

    /// Backward pass; must follow a `forward` on the same graph/features.
    fn backward(&mut self, graph: &CsrGraph, grad_logits: &Matrix) -> Matrix;

    /// Visits all trainable parameters in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Visits every weight-matrix layer in a stable order — the hook the
    /// serving engine uses to [`LinearLayer::prepare`] a trained model
    /// for an execution backend, or to export circulant weights for
    /// accelerator deployment.
    fn visit_linear_layers(&mut self, f: &mut dyn FnMut(&mut LinearLayer));

    /// Deep-copies the model behind a fresh box. Prepared layers share
    /// their frozen weights/spectra across copies (they live behind an
    /// `Arc`), which is how the parallel serving engine forks one
    /// backend replica per worker without duplicating the model.
    fn clone_boxed(&self) -> Box<dyn GnnModel>;

    /// Staged-inference hook: precomputes per-graph state the stages
    /// reuse (e.g. GCN's degree normalization, an `O(n)` pass otherwise
    /// repeated per part per stage). A staged scheduler calls this once
    /// per request, before fanning [`GnnModel::forward_stage`] calls
    /// out; callers must re-prepare before switching graphs.
    /// `forward_stage` stays correct (just slower) if this was never
    /// called. Models without per-graph precomputation ignore it.
    fn prepare_graph(&mut self, _graph: &CsrGraph) {}

    /// Number of row-parallel inference stages (see the trait docs).
    fn num_stages(&self) -> usize;

    /// Output width (columns) of stage `stage`, given the width of the
    /// input feature matrix. The final stage's width is the number of
    /// classes.
    ///
    /// # Panics
    ///
    /// Panics if `stage >= num_stages()`.
    fn stage_width(&self, stage: usize, feature_dim: usize) -> usize;

    /// Computes stage `stage` output rows for target nodes `rows`,
    /// reading the full previous-stage matrix `input` (the feature
    /// matrix when `stage == 0`). Returns one output row per entry of
    /// `rows`, in order. Inference-only (no backward caches are
    /// maintained for the training path).
    ///
    /// # Panics
    ///
    /// Panics if `stage >= num_stages()`, `input` has the wrong row
    /// count or width, or a target id is out of range.
    fn forward_stage(
        &mut self,
        stage: usize,
        graph: &CsrGraph,
        input: &Matrix,
        rows: &[u32],
    ) -> Matrix;

    /// Prepares every linear layer for inference under `mode` (see
    /// [`LinearLayer::prepare`]); the model becomes inference-only until
    /// [`GnnModel::clear_prepared`].
    fn prepare(&mut self, mode: ExecMode) {
        self.visit_linear_layers(&mut |l| l.prepare(mode));
    }

    /// Drops prepared state from every linear layer, restoring
    /// trainability.
    fn clear_prepared(&mut self) {
        self.visit_linear_layers(&mut LinearLayer::clear_prepared);
    }

    /// Zeroes all gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total scalar parameter count.
    fn num_params(&mut self) -> usize {
        let mut total = 0;
        self.visit_params(&mut |p| total += p.len());
        total
    }
}

/// Per-phase compression choices (the §V "only compress the aggregators"
/// ablation needs them to differ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressionPolicy {
    /// Compression for aggregation-phase weight matrices.
    pub aggregator: Compression,
    /// Compression for combination-phase weight matrices.
    pub combiner: Compression,
}

impl CompressionPolicy {
    /// Same compression everywhere (the paper's default experiment).
    #[must_use]
    pub fn uniform(c: Compression) -> Self {
        Self { aggregator: c, combiner: c }
    }

    /// Compress only the aggregators, keep combiners dense (§V).
    #[must_use]
    pub fn aggregator_only(c: Compression) -> Self {
        Self { aggregator: c, combiner: Compression::Dense }
    }
}

/// Builds a two-layer model of the given kind with uniform compression.
///
/// # Errors
///
/// Propagates layer-construction errors (zero dims, non-power-of-two
/// block sizes).
pub fn build_model(
    kind: ModelKind,
    in_dim: usize,
    hidden_dim: usize,
    num_classes: usize,
    compression: Compression,
    seed: u64,
) -> Result<Box<dyn GnnModel>, NnError> {
    build_model_with_policy(
        kind,
        in_dim,
        hidden_dim,
        num_classes,
        CompressionPolicy::uniform(compression),
        seed,
    )
}

/// Builds a two-layer model with per-phase compression control.
///
/// # Errors
///
/// Propagates layer-construction errors.
pub fn build_model_with_policy(
    kind: ModelKind,
    in_dim: usize,
    hidden_dim: usize,
    num_classes: usize,
    policy: CompressionPolicy,
    seed: u64,
) -> Result<Box<dyn GnnModel>, NnError> {
    Ok(match kind {
        ModelKind::Gcn => {
            Box::new(Gcn::new(in_dim, hidden_dim, num_classes, policy.combiner, seed)?)
        }
        ModelKind::GsPool => {
            Box::new(GsPool::new(in_dim, hidden_dim, num_classes, policy, seed)?)
        }
        ModelKind::Ggcn => Box::new(Ggcn::new(in_dim, hidden_dim, num_classes, policy, seed)?),
        ModelKind::Gat => Box::new(Gat::new(in_dim, hidden_dim, num_classes, policy, seed)?),
    })
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Finite-difference gradient checking for whole models.

    use super::*;
    use blockgnn_linalg::init::InitRng;

    /// A 6-node test graph with varied degrees (including a pendant).
    pub fn tiny_graph() -> CsrGraph {
        CsrGraph::from_edges(6, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (0, 5)], true)
            .unwrap()
    }

    /// Deterministic smooth features away from activation kinks.
    pub fn tiny_features(nodes: usize, dim: usize) -> Matrix {
        Matrix::from_fn(nodes, dim, |i, j| ((i * dim + j) as f64 * 0.43 + 0.21).sin() * 0.7)
    }

    /// Verifies a model's parameter and feature gradients against central
    /// differences under a random linear loss `L = Σ w ∘ logits`.
    pub fn check_model_gradients(
        model: &mut dyn GnnModel,
        graph: &CsrGraph,
        features: &Matrix,
        tol: f64,
    ) {
        let eps = 1e-5;
        let logits0 = model.forward(graph, features, false);
        let mut rng = InitRng::new(4242);
        let w = Matrix::from_fn(logits0.rows(), logits0.cols(), |_, _| rng.uniform(-1.0, 1.0));
        let loss_of = |y: &Matrix| -> f64 {
            y.as_slice().iter().zip(w.as_slice()).map(|(a, b)| a * b).sum()
        };

        model.zero_grad();
        // `train = true` so every layer snapshots its backward caches
        // (inference forwards skip them); no model uses dropout, so the
        // values are identical to the inference pass.
        let _ = model.forward(graph, features, true);
        let grad_x = model.backward(graph, &w);
        let mut analytic: Vec<Vec<f64>> = Vec::new();
        model.visit_params(&mut |p| analytic.push(p.grad.clone()));

        // Parameter gradients.
        for (pi, grads) in analytic.iter().enumerate() {
            // Sample a subset of coordinates to keep runtime bounded.
            let stride = (grads.len() / 25).max(1);
            for k in (0..grads.len()).step_by(stride) {
                let eval = |delta: f64, model: &mut dyn GnnModel| -> f64 {
                    let mut idx = 0;
                    model.visit_params(&mut |p| {
                        if idx == pi {
                            p.data[k] += delta;
                        }
                        idx += 1;
                    });
                    let l = loss_of(&model.forward(graph, features, false));
                    let mut idx2 = 0;
                    model.visit_params(&mut |p| {
                        if idx2 == pi {
                            p.data[k] -= delta;
                        }
                        idx2 += 1;
                    });
                    l
                };
                let numeric = (eval(eps, model) - eval(-eps, model)) / (2.0 * eps);
                let diff = (numeric - grads[k]).abs();
                assert!(
                    diff < tol * numeric.abs().max(1.0),
                    "param {pi}[{k}]: numeric {numeric} analytic {}",
                    grads[k]
                );
            }
        }

        // Feature gradients (sampled).
        for i in (0..features.rows()).step_by(2) {
            for j in (0..features.cols()).step_by(3) {
                let mut plus = features.clone();
                plus[(i, j)] += eps;
                let mut minus = features.clone();
                minus[(i, j)] -= eps;
                let numeric = (loss_of(&model.forward(graph, &plus, false))
                    - loss_of(&model.forward(graph, &minus, false)))
                    / (2.0 * eps);
                let diff = (numeric - grad_x[(i, j)]).abs();
                assert!(
                    diff < tol * numeric.abs().max(1.0),
                    "feature[{i}][{j}]: numeric {numeric} analytic {}",
                    grad_x[(i, j)]
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_match_paper() {
        assert_eq!(ModelKind::Gcn.name(), "GCN");
        assert_eq!(ModelKind::GsPool.name(), "GS-Pool");
        assert_eq!(ModelKind::Ggcn.name(), "G-GCN");
        assert_eq!(ModelKind::Gat.name(), "GAT");
        assert_eq!(format!("{}", ModelKind::Gat), "GAT");
    }

    #[test]
    fn weighted_aggregation_flag() {
        assert!(!ModelKind::Gcn.has_weighted_aggregation());
        assert!(ModelKind::GsPool.has_weighted_aggregation());
        assert!(ModelKind::Ggcn.has_weighted_aggregation());
        assert!(ModelKind::Gat.has_weighted_aggregation());
    }

    #[test]
    fn factory_builds_all_kinds() {
        for kind in ModelKind::all() {
            let mut model =
                build_model(kind, 12, 8, 3, Compression::BlockCirculant { block_size: 4 }, 1)
                    .unwrap();
            assert_eq!(model.kind(), kind);
            assert!(model.num_params() > 0);
        }
    }

    #[test]
    fn staged_inference_matches_forward_bit_exactly() {
        use blockgnn_linalg::Matrix;
        let g = testutil::tiny_graph();
        let x = testutil::tiny_features(6, 6);
        for kind in ModelKind::all() {
            let mut model =
                build_model(kind, 6, 4, 3, Compression::BlockCirculant { block_size: 2 }, 9)
                    .unwrap();
            let reference = model.forward(&g, &x, false);
            // Shard every stage into two row blocks and merge — the
            // partition-parallel execution shape.
            let mut current = x.clone();
            for stage in 0..model.num_stages() {
                let width = model.stage_width(stage, x.cols());
                let mut merged = Matrix::zeros(6, width);
                for rows in [[0u32, 1, 2], [3u32, 4, 5]] {
                    let part = model.forward_stage(stage, &g, &current, &rows);
                    assert_eq!(part.shape(), (3, width), "{kind} stage {stage} shape");
                    for (i, &v) in rows.iter().enumerate() {
                        merged.row_mut(v as usize).copy_from_slice(part.row(i));
                    }
                }
                current = merged;
            }
            assert_eq!(
                current.linf_distance(&reference),
                0.0,
                "{kind} staged inference must be bit-identical to forward"
            );
        }
    }

    #[test]
    fn clone_boxed_preserves_outputs() {
        let g = testutil::tiny_graph();
        let x = testutil::tiny_features(6, 6);
        for kind in ModelKind::all() {
            let mut model = build_model(kind, 6, 4, 3, Compression::Dense, 5).unwrap();
            let reference = model.forward(&g, &x, false);
            let mut copy = model.clone_boxed();
            assert_eq!(copy.kind(), kind);
            let replay = copy.forward(&g, &x, false);
            assert_eq!(replay.linf_distance(&reference), 0.0, "{kind} clone drifted");
        }
    }

    #[test]
    fn policy_constructors() {
        let c = Compression::BlockCirculant { block_size: 16 };
        let uni = CompressionPolicy::uniform(c);
        assert_eq!(uni.aggregator, c);
        assert_eq!(uni.combiner, c);
        let agg = CompressionPolicy::aggregator_only(c);
        assert_eq!(agg.aggregator, c);
        assert_eq!(agg.combiner, Compression::Dense);
    }
}
