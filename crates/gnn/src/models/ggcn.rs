//! G-GCN (gated GCN, Marcheggiani & Titov).
//!
//! Table I: per-edge gates `η_u = σ(W_H·h_u + W_C·h_v)` modulate the
//! neighbor sum `a_v = Σ_{u∈N(v)} η_u ⊙ h_u`; combination is
//! `ReLU(W·a_v)`. The gate matrices `W_H`, `W_C` act on every sampled
//! neighbor, which is why G-GCN tops Table II's aggregation FLOPs
//! (3.7 × 10¹²) and shows the paper's largest speedup (8.3× on Reddit).

use crate::models::{CompressionPolicy, GnnModel, ModelKind};
use blockgnn_graph::CsrGraph;
use blockgnn_linalg::Matrix;
use blockgnn_nn::{Layer, LinearLayer, NnError, Param, Relu};

/// One G-GCN layer. Gate dimension equals the input dimension so the
/// Hadamard product `η_u ⊙ h_u` is well-typed.
#[derive(Debug, Clone)]
struct GgcnLayer {
    w_h: LinearLayer,
    w_c: LinearLayer,
    comb: LinearLayer,
    act: Option<Relu>,
    in_dim: usize,
    /// Cached input features (needed for gate gradients).
    h_cache: Matrix,
    /// Cached per-arc gate values, arc-major then feature.
    gates: Vec<f64>,
}

impl GgcnLayer {
    fn new(
        in_dim: usize,
        out_dim: usize,
        policy: CompressionPolicy,
        last: bool,
        seed: u64,
    ) -> Result<Self, NnError> {
        Ok(Self {
            w_h: LinearLayer::new(in_dim, in_dim, policy.aggregator, seed)?,
            w_c: LinearLayer::new(in_dim, in_dim, policy.aggregator, seed ^ 0x1111)?,
            comb: LinearLayer::new(out_dim, in_dim, policy.combiner, seed ^ 0x2222)?,
            act: if last { None } else { Some(Relu::new()) },
            in_dim,
            h_cache: Matrix::zeros(0, 0),
            gates: Vec::new(),
        })
    }

    fn forward(&mut self, graph: &CsrGraph, h: &Matrix, train: bool) -> Matrix {
        assert_eq!(h.cols(), self.in_dim, "g-gcn layer input width mismatch");
        let nodes = graph.num_nodes();
        let dim = self.in_dim;
        let p = self.w_h.forward(h, train); // per-source gate term
        let q = self.w_c.forward(h, train); // per-target gate term
        self.gates = vec![0.0; graph.num_arcs() * dim];
        let mut a = Matrix::zeros(nodes, dim);
        let mut arc = 0usize;
        for v in 0..nodes {
            let qv = q.row(v);
            for &u in graph.neighbors(v) {
                let u = u as usize;
                let pu = p.row(u);
                let hu = h.row(u);
                let arow = a.row_mut(v);
                let gslice = &mut self.gates[arc * dim..(arc + 1) * dim];
                for d in 0..dim {
                    let gate = 1.0 / (1.0 + (-(pu[d] + qv[d])).exp());
                    gslice[d] = gate;
                    arow[d] += gate * hu[d];
                }
                arc += 1;
            }
        }
        self.h_cache = h.clone();
        let y = self.comb.forward(&a, train);
        match &mut self.act {
            Some(act) => act.forward(&y, train),
            None => y,
        }
    }

    fn backward(&mut self, graph: &CsrGraph, grad: &Matrix) -> Matrix {
        let nodes = graph.num_nodes();
        let dim = self.in_dim;
        let grad = match &mut self.act {
            Some(act) => act.backward(grad),
            None => grad.clone(),
        };
        let ga = self.comb.backward(&grad);
        let mut gp = Matrix::zeros(nodes, dim);
        let mut gq = Matrix::zeros(nodes, dim);
        let mut gh = Matrix::zeros(nodes, dim);
        let mut arc = 0usize;
        for v in 0..nodes {
            for &u in graph.neighbors(v) {
                let u = u as usize;
                let gav = ga.row(v);
                let hu = self.h_cache.row(u);
                let gates = &self.gates[arc * dim..(arc + 1) * dim];
                for d in 0..dim {
                    let g = gates[d];
                    // ∂/∂h_u of (g ⊙ h_u): direct term.
                    gh[(u, d)] += g * gav[d];
                    // Gate gradient through the sigmoid.
                    let pre = gav[d] * hu[d] * g * (1.0 - g);
                    gp[(u, d)] += pre;
                    gq[(v, d)] += pre;
                }
                arc += 1;
            }
        }
        let gh_p = self.w_h.backward(&gp);
        let gh_q = self.w_c.backward(&gq);
        gh += &gh_p;
        gh += &gh_q;
        gh
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.w_h.visit_params(f);
        self.w_c.visit_params(f);
        self.comb.visit_params(f);
    }

    fn visit_linear_layers(&mut self, f: &mut dyn FnMut(&mut LinearLayer)) {
        f(&mut self.w_h);
        f(&mut self.w_c);
        f(&mut self.comb);
    }

    /// Drops request-scoped forward caches (per-arc gates, input and
    /// activation snapshots) — called when forking worker replicas,
    /// which never read another request's scratch.
    fn clear_scratch(&mut self) {
        self.h_cache = Matrix::zeros(0, 0);
        self.gates = Vec::new();
        if let Some(act) = &mut self.act {
            act.clear_cached();
        }
    }

    /// Transform half-stage: `[W_H·h_v ‖ W_C·h_v ‖ h_v]` per target row —
    /// node-local gate terms, no neighbor reads.
    fn stage_transform(&mut self, input: &Matrix, rows: &[u32]) -> Matrix {
        let h = Matrix::from_fn(rows.len(), input.cols(), |i, j| input[(rows[i] as usize, j)]);
        let p = self.w_h.forward(&h, false);
        let q = self.w_c.forward(&h, false);
        p.hconcat(&q).and_then(|pq| pq.hconcat(&h)).expect("row counts match by construction")
    }

    /// Aggregate-and-combine half-stage: gated neighbor sum reading
    /// `[p ‖ q ‖ h]` columns of the full transform matrix, then the
    /// combiner (+ activation). The gate expression matches
    /// [`GgcnLayer::forward`] exactly.
    fn stage_combine(&mut self, graph: &CsrGraph, input: &Matrix, rows: &[u32]) -> Matrix {
        let dim = self.in_dim;
        assert_eq!(input.cols(), 3 * dim, "g-gcn combine stage expects [p ‖ q ‖ h] input");
        let mut a = Matrix::zeros(rows.len(), dim);
        for (i, &v) in rows.iter().enumerate() {
            let v = v as usize;
            let qv = &input.row(v)[dim..2 * dim];
            for &u in graph.neighbors(v) {
                let urow = input.row(u as usize);
                let (pu, hu) = (&urow[..dim], &urow[2 * dim..]);
                let arow = a.row_mut(i);
                for d in 0..dim {
                    let gate = 1.0 / (1.0 + (-(pu[d] + qv[d])).exp());
                    arow[d] += gate * hu[d];
                }
            }
        }
        let y = self.comb.forward(&a, false);
        match &self.act {
            Some(act) => act.apply(&y),
            None => y,
        }
    }
}

/// Two-layer G-GCN model.
#[derive(Debug, Clone)]
pub struct Ggcn {
    layer1: GgcnLayer,
    layer2: GgcnLayer,
}

impl Ggcn {
    /// Builds the model.
    ///
    /// # Errors
    ///
    /// Propagates layer-construction errors.
    pub fn new(
        in_dim: usize,
        hidden_dim: usize,
        num_classes: usize,
        policy: CompressionPolicy,
        seed: u64,
    ) -> Result<Self, NnError> {
        Ok(Self {
            layer1: GgcnLayer::new(in_dim, hidden_dim, policy, false, seed)?,
            layer2: GgcnLayer::new(hidden_dim, num_classes, policy, true, seed ^ 0xD00D)?,
        })
    }
}

impl GnnModel for Ggcn {
    fn kind(&self) -> ModelKind {
        ModelKind::Ggcn
    }

    fn hidden_dim(&self) -> usize {
        self.layer1.comb.out_dim()
    }

    fn forward(&mut self, graph: &CsrGraph, features: &Matrix, train: bool) -> Matrix {
        let h1 = self.layer1.forward(graph, features, train);
        self.layer2.forward(graph, &h1, train)
    }

    fn backward(&mut self, graph: &CsrGraph, grad_logits: &Matrix) -> Matrix {
        let g1 = self.layer2.backward(graph, grad_logits);
        self.layer1.backward(graph, &g1)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.layer1.visit_params(f);
        self.layer2.visit_params(f);
    }

    fn visit_linear_layers(&mut self, f: &mut dyn FnMut(&mut LinearLayer)) {
        self.layer1.visit_linear_layers(f);
        self.layer2.visit_linear_layers(f);
    }

    fn clone_boxed(&self) -> Box<dyn GnnModel> {
        let mut copy = self.clone();
        copy.layer1.clear_scratch();
        copy.layer2.clear_scratch();
        Box::new(copy)
    }

    // Each G-GCN layer splits at its natural seam: the node-local gate
    // transforms (stage 0/2, zero halo) and the gated neighbor sum +
    // combiner (stage 1/3, one-hop halo reads).
    fn num_stages(&self) -> usize {
        4
    }

    fn stage_width(&self, stage: usize, feature_dim: usize) -> usize {
        match stage {
            0 => 3 * feature_dim,
            1 => self.layer1.comb.out_dim(),
            2 => 3 * self.layer1.comb.out_dim(),
            3 => self.layer2.comb.out_dim(),
            _ => panic!("G-GCN has 4 stages, got stage {stage}"),
        }
    }

    fn forward_stage(
        &mut self,
        stage: usize,
        graph: &CsrGraph,
        input: &Matrix,
        rows: &[u32],
    ) -> Matrix {
        match stage {
            0 => self.layer1.stage_transform(input, rows),
            1 => self.layer1.stage_combine(graph, input, rows),
            2 => self.layer2.stage_transform(input, rows),
            3 => self.layer2.stage_combine(graph, input, rows),
            _ => panic!("G-GCN has 4 stages, got stage {stage}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::testutil::{check_model_gradients, tiny_features, tiny_graph};
    use blockgnn_nn::Compression;

    #[test]
    fn forward_shape() {
        let g = tiny_graph();
        let x = tiny_features(6, 8);
        let mut model =
            Ggcn::new(8, 5, 3, CompressionPolicy::uniform(Compression::Dense), 1).unwrap();
        assert_eq!(model.forward(&g, &x, false).shape(), (6, 3));
    }

    #[test]
    fn gates_lie_in_unit_interval() {
        let g = tiny_graph();
        let x = tiny_features(6, 4);
        let mut model =
            Ggcn::new(4, 3, 2, CompressionPolicy::uniform(Compression::Dense), 9).unwrap();
        let _ = model.forward(&g, &x, false);
        assert!(!model.layer1.gates.is_empty());
        assert!(model.layer1.gates.iter().all(|&g| (0.0..=1.0).contains(&g)));
    }

    #[test]
    fn gradients_dense() {
        let g = tiny_graph();
        let x = tiny_features(6, 4);
        let mut model =
            Ggcn::new(4, 3, 2, CompressionPolicy::uniform(Compression::Dense), 2).unwrap();
        check_model_gradients(&mut model, &g, &x, 1e-4);
    }

    #[test]
    fn gradients_circulant() {
        let g = tiny_graph();
        let x = tiny_features(6, 4);
        let policy = CompressionPolicy::uniform(Compression::BlockCirculant { block_size: 2 });
        let mut model = Ggcn::new(4, 4, 2, policy, 3).unwrap();
        check_model_gradients(&mut model, &g, &x, 1e-4);
    }
}
