//! GraphSAGE with max-pooling aggregation (GS-Pool).
//!
//! Table I: `a_v = max_{u∈N(v)} ReLU(W_pool·h_u + b)` followed by
//! `h'_v = ReLU(W·(a_v ‖ h_v))`. Both `W_pool` (the aggregator weight —
//! the FLOP-heaviest matrix in Table II) and the combiner `W` can be
//! block-circulant.

use crate::models::{CompressionPolicy, GnnModel, ModelKind};
use blockgnn_graph::CsrGraph;
use blockgnn_linalg::Matrix;
use blockgnn_nn::{Layer, LinearLayer, NnError, Param, Relu};

/// One GS-Pool layer.
#[derive(Debug, Clone)]
struct GsPoolLayer {
    pool: LinearLayer,
    pool_act: Relu,
    comb: LinearLayer,
    act: Option<Relu>,
    pool_dim: usize,
    in_dim: usize,
    /// `argmax[v * pool_dim + d]` = node whose pooled feature won the max.
    argmax: Vec<u32>,
}

impl GsPoolLayer {
    fn new(
        in_dim: usize,
        pool_dim: usize,
        out_dim: usize,
        policy: CompressionPolicy,
        last: bool,
        seed: u64,
    ) -> Result<Self, NnError> {
        Ok(Self {
            pool: LinearLayer::new(pool_dim, in_dim, policy.aggregator, seed)?,
            pool_act: Relu::new(),
            comb: LinearLayer::new(out_dim, pool_dim + in_dim, policy.combiner, seed ^ 0x5A5A)?,
            act: if last { None } else { Some(Relu::new()) },
            pool_dim,
            in_dim,
            argmax: Vec::new(),
        })
    }

    fn forward(&mut self, graph: &CsrGraph, h: &Matrix, train: bool) -> Matrix {
        assert_eq!(h.cols(), self.in_dim, "gs-pool layer input width mismatch");
        let nodes = graph.num_nodes();
        let t = self.pool_act.forward(&self.pool.forward(h, train), train);
        let mut a = Matrix::zeros(nodes, self.pool_dim);
        self.argmax = vec![0u32; nodes * self.pool_dim];
        for v in 0..nodes {
            let neigh = graph.neighbors(v);
            // GraphSAGE falls back to the node itself when isolated.
            let self_source = [v as u32];
            let sources: &[u32] = if neigh.is_empty() { &self_source } else { neigh };
            let arow = a.row_mut(v);
            for (d, av) in arow.iter_mut().enumerate() {
                let mut best = f64::NEG_INFINITY;
                let mut best_u = sources[0];
                for &u in sources {
                    let val = t[(u as usize, d)];
                    if val > best {
                        best = val;
                        best_u = u;
                    }
                }
                *av = best;
                self.argmax[v * self.pool_dim + d] = best_u;
            }
        }
        let z = a.hconcat(h).expect("row counts match by construction");
        let y = self.comb.forward(&z, train);
        match &mut self.act {
            Some(act) => act.forward(&y, train),
            None => y,
        }
    }

    fn backward(&mut self, graph: &CsrGraph, grad: &Matrix) -> Matrix {
        let nodes = graph.num_nodes();
        let grad = match &mut self.act {
            Some(act) => act.backward(grad),
            None => grad.clone(),
        };
        let gz = self.comb.backward(&grad);
        // Split the concatenated gradient.
        let mut ga = Matrix::zeros(nodes, self.pool_dim);
        let mut gh = Matrix::zeros(nodes, self.in_dim);
        for v in 0..nodes {
            let row = gz.row(v);
            ga.row_mut(v).copy_from_slice(&row[..self.pool_dim]);
            gh.row_mut(v).copy_from_slice(&row[self.pool_dim..]);
        }
        // Max-pool routes gradients to the winning neighbor.
        let mut gt = Matrix::zeros(nodes, self.pool_dim);
        for v in 0..nodes {
            for d in 0..self.pool_dim {
                let u = self.argmax[v * self.pool_dim + d] as usize;
                gt[(u, d)] += ga[(v, d)];
            }
        }
        let gt = self.pool_act.backward(&gt);
        let gh_pool = self.pool.backward(&gt);
        &gh + &gh_pool
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.pool.visit_params(f);
        self.comb.visit_params(f);
    }

    fn visit_linear_layers(&mut self, f: &mut dyn FnMut(&mut LinearLayer)) {
        f(&mut self.pool);
        f(&mut self.comb);
    }

    /// Drops request-scoped scratch (max-pool argmax, activation
    /// snapshots) — called when forking worker replicas, which never
    /// read another request's scratch.
    fn clear_scratch(&mut self) {
        self.argmax = Vec::new();
        self.pool_act.clear_cached();
        if let Some(act) = &mut self.act {
            act.clear_cached();
        }
    }

    /// Transform half-stage: `[ReLU(W_pool·h_v + b) ‖ h_v]` for each
    /// target row — node-local, no neighbor reads.
    fn stage_transform(&mut self, input: &Matrix, rows: &[u32]) -> Matrix {
        let h = Matrix::from_fn(rows.len(), input.cols(), |i, j| input[(rows[i] as usize, j)]);
        let t = self.pool_act.apply(&self.pool.forward(&h, false));
        t.hconcat(&h).expect("row counts match by construction")
    }

    /// Aggregate-and-combine half-stage: element-wise max over each
    /// target's neighbors in the pooled columns of the full transform
    /// matrix, concatenated with the target's own feature columns, then
    /// the combiner (+ activation). Max-pooling iterates sources in CSR
    /// order, matching [`GsPoolLayer::forward`] exactly.
    fn stage_combine(&mut self, graph: &CsrGraph, input: &Matrix, rows: &[u32]) -> Matrix {
        assert_eq!(
            input.cols(),
            self.pool_dim + self.in_dim,
            "gs-pool combine stage expects [pooled ‖ features] input"
        );
        let mut z = Matrix::zeros(rows.len(), self.pool_dim + self.in_dim);
        for (i, &v) in rows.iter().enumerate() {
            let v = v as usize;
            let neigh = graph.neighbors(v);
            // GraphSAGE falls back to the node itself when isolated.
            let self_source = [v as u32];
            let sources: &[u32] = if neigh.is_empty() { &self_source } else { neigh };
            let zrow = z.row_mut(i);
            for (d, zv) in zrow[..self.pool_dim].iter_mut().enumerate() {
                let mut best = f64::NEG_INFINITY;
                for &u in sources {
                    let val = input[(u as usize, d)];
                    if val > best {
                        best = val;
                    }
                }
                *zv = best;
            }
            zrow[self.pool_dim..].copy_from_slice(&input.row(v)[self.pool_dim..]);
        }
        let y = self.comb.forward(&z, false);
        match &self.act {
            Some(act) => act.apply(&y),
            None => y,
        }
    }
}

/// Two-layer GS-Pool model. The pooling dimension equals the hidden
/// dimension for both layers (the GraphSAGE reference configuration).
#[derive(Debug, Clone)]
pub struct GsPool {
    layer1: GsPoolLayer,
    layer2: GsPoolLayer,
}

impl GsPool {
    /// Builds the model.
    ///
    /// # Errors
    ///
    /// Propagates layer-construction errors.
    pub fn new(
        in_dim: usize,
        hidden_dim: usize,
        num_classes: usize,
        policy: CompressionPolicy,
        seed: u64,
    ) -> Result<Self, NnError> {
        Ok(Self {
            layer1: GsPoolLayer::new(in_dim, hidden_dim, hidden_dim, policy, false, seed)?,
            layer2: GsPoolLayer::new(
                hidden_dim,
                hidden_dim,
                num_classes,
                policy,
                true,
                seed ^ 0xC0DE,
            )?,
        })
    }
}

impl GnnModel for GsPool {
    fn kind(&self) -> ModelKind {
        ModelKind::GsPool
    }

    fn hidden_dim(&self) -> usize {
        self.layer1.comb.out_dim()
    }

    fn forward(&mut self, graph: &CsrGraph, features: &Matrix, train: bool) -> Matrix {
        let h1 = self.layer1.forward(graph, features, train);
        self.layer2.forward(graph, &h1, train)
    }

    fn backward(&mut self, graph: &CsrGraph, grad_logits: &Matrix) -> Matrix {
        let g1 = self.layer2.backward(graph, grad_logits);
        self.layer1.backward(graph, &g1)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.layer1.visit_params(f);
        self.layer2.visit_params(f);
    }

    fn visit_linear_layers(&mut self, f: &mut dyn FnMut(&mut LinearLayer)) {
        self.layer1.visit_linear_layers(f);
        self.layer2.visit_linear_layers(f);
    }

    fn clone_boxed(&self) -> Box<dyn GnnModel> {
        let mut copy = self.clone();
        copy.layer1.clear_scratch();
        copy.layer2.clear_scratch();
        Box::new(copy)
    }

    // Each GS-Pool layer splits at its natural seam: the node-local pool
    // transform (stage 0/2, zero halo) and the max-pool + combiner
    // (stage 1/3, one-hop halo reads).
    fn num_stages(&self) -> usize {
        4
    }

    fn stage_width(&self, stage: usize, feature_dim: usize) -> usize {
        match stage {
            0 => self.layer1.pool_dim + feature_dim,
            1 => self.layer1.comb.out_dim(),
            2 => self.layer2.pool_dim + self.layer1.comb.out_dim(),
            3 => self.layer2.comb.out_dim(),
            _ => panic!("GS-Pool has 4 stages, got stage {stage}"),
        }
    }

    fn forward_stage(
        &mut self,
        stage: usize,
        graph: &CsrGraph,
        input: &Matrix,
        rows: &[u32],
    ) -> Matrix {
        match stage {
            0 => self.layer1.stage_transform(input, rows),
            1 => self.layer1.stage_combine(graph, input, rows),
            2 => self.layer2.stage_transform(input, rows),
            3 => self.layer2.stage_combine(graph, input, rows),
            _ => panic!("GS-Pool has 4 stages, got stage {stage}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::testutil::{check_model_gradients, tiny_features, tiny_graph};
    use blockgnn_nn::Compression;

    #[test]
    fn forward_shape() {
        let g = tiny_graph();
        let x = tiny_features(6, 10);
        let mut model =
            GsPool::new(10, 8, 3, CompressionPolicy::uniform(Compression::Dense), 1).unwrap();
        assert_eq!(model.forward(&g, &x, false).shape(), (6, 3));
    }

    #[test]
    fn max_pooling_picks_maximum() {
        // Node 5 is a pendant attached to node 0: its aggregated feature
        // must equal node 0's pooled vector.
        let g = tiny_graph();
        let x = tiny_features(6, 4);
        let mut model =
            GsPool::new(4, 3, 2, CompressionPolicy::uniform(Compression::Dense), 7).unwrap();
        let _ = model.forward(&g, &x, false);
        let l1 = &model.layer1;
        for d in 0..3 {
            assert_eq!(l1.argmax[5 * 3 + d], 0, "pendant must pool from its only neighbor");
        }
    }

    #[test]
    fn gradients_dense() {
        let g = tiny_graph();
        let x = tiny_features(6, 5);
        let mut model =
            GsPool::new(5, 4, 3, CompressionPolicy::uniform(Compression::Dense), 2).unwrap();
        check_model_gradients(&mut model, &g, &x, 1e-4);
    }

    #[test]
    fn gradients_circulant() {
        let g = tiny_graph();
        let x = tiny_features(6, 6);
        let policy = CompressionPolicy::uniform(Compression::BlockCirculant { block_size: 2 });
        let mut model = GsPool::new(6, 4, 3, policy, 3).unwrap();
        check_model_gradients(&mut model, &g, &x, 1e-4);
    }

    #[test]
    fn gradients_aggregator_only_policy() {
        let g = tiny_graph();
        let x = tiny_features(6, 6);
        let policy =
            CompressionPolicy::aggregator_only(Compression::BlockCirculant { block_size: 2 });
        let mut model = GsPool::new(6, 4, 3, policy, 4).unwrap();
        check_model_gradients(&mut model, &g, &x, 1e-4);
    }
}
