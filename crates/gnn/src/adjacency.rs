//! GCN's degree-normalized adjacency operator.
//!
//! GCN's aggregation (Table I) is the linear map
//! `a_v = Σ_{u ∈ N(v) ∪ {v}} h_u / √(d̃_u · d̃_v)` with self-loops added
//! (`d̃` = degree + 1), i.e. multiplication by the symmetric matrix
//! `Â = D̃^{-1/2}(A + I)D̃^{-1/2}`. Because `Â` is symmetric, the
//! backward pass is the same operator applied to the output gradient.

use blockgnn_graph::CsrGraph;
use blockgnn_linalg::Matrix;

/// The symmetric normalized adjacency `Â` with self-loops, applied
/// row-batch-wise to feature matrices.
#[derive(Debug, Clone)]
pub struct NormalizedAdjacency {
    /// `1/√(deg+1)` per node, precomputed.
    inv_sqrt_deg: Vec<f64>,
}

impl NormalizedAdjacency {
    /// Precomputes normalization coefficients for `graph`.
    #[must_use]
    pub fn new(graph: &CsrGraph) -> Self {
        let inv_sqrt_deg = (0..graph.num_nodes())
            .map(|v| 1.0 / ((graph.degree(v) + 1) as f64).sqrt())
            .collect();
        Self { inv_sqrt_deg }
    }

    /// Applies `Â · H` (features as rows: output row `v` is the
    /// normalized sum over `N(v) ∪ {v}`).
    ///
    /// # Panics
    ///
    /// Panics if `h.rows()` differs from the graph's node count.
    #[must_use]
    pub fn apply(&self, graph: &CsrGraph, h: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(h.rows(), h.cols());
        self.apply_into(graph, h, &mut out);
        out
    }

    /// Write-into form of [`NormalizedAdjacency::apply`]: every entry of
    /// `out` is fully overwritten (the self-loop term assigns, neighbor
    /// terms accumulate), so callers can recycle an arbitrary buffer —
    /// after a [`Matrix::resize`] — without zeroing it first. This is
    /// the allocation-hoisted path GCN's serving forward uses.
    ///
    /// # Panics
    ///
    /// Panics if `h.rows()` differs from the graph's node count or
    /// `out.shape() != h.shape()`.
    pub fn apply_into(&self, graph: &CsrGraph, h: &Matrix, out: &mut Matrix) {
        assert_eq!(h.rows(), graph.num_nodes(), "feature rows must equal node count");
        assert_eq!(out.shape(), h.shape(), "output buffer shape must match input");
        for v in 0..graph.num_nodes() {
            self.write_row(graph, h, v, out.row_mut(v));
        }
    }

    /// Row-restricted `Â · H`: output row `i` is the normalized sum for
    /// target node `rows[i]`, reading neighbor rows from the *full*
    /// matrix `h`. This is the per-part operator of the partition-
    /// parallel serving path; each row is computed by exactly the same
    /// arithmetic (and accumulation order) as [`NormalizedAdjacency::apply`],
    /// so sharded execution is bit-identical to the full-graph pass.
    ///
    /// # Panics
    ///
    /// Panics if `h.rows()` differs from the graph's node count or a
    /// target id is out of range.
    #[must_use]
    pub fn apply_rows(&self, graph: &CsrGraph, h: &Matrix, rows: &[u32]) -> Matrix {
        let mut out = Matrix::zeros(rows.len(), h.cols());
        self.apply_rows_into(graph, h, rows, &mut out);
        out
    }

    /// Write-into form of [`NormalizedAdjacency::apply_rows`]; like
    /// [`NormalizedAdjacency::apply_into`], every output row is fully
    /// overwritten so the buffer needs no zeroing.
    ///
    /// # Panics
    ///
    /// Panics if `h.rows()` differs from the graph's node count,
    /// `out.shape() != (rows.len(), h.cols())`, or a target id is out of
    /// range.
    pub fn apply_rows_into(
        &self,
        graph: &CsrGraph,
        h: &Matrix,
        rows: &[u32],
        out: &mut Matrix,
    ) {
        assert_eq!(h.rows(), graph.num_nodes(), "feature rows must equal node count");
        assert_eq!(
            out.shape(),
            (rows.len(), h.cols()),
            "output buffer shape must match the target row set"
        );
        for (i, &v) in rows.iter().enumerate() {
            self.write_row(graph, h, v as usize, out.row_mut(i));
        }
    }

    /// Writes `(Â · H)_v` into `orow` — the shared kernel of
    /// [`NormalizedAdjacency::apply`] and
    /// [`NormalizedAdjacency::apply_rows`] (one code path keeps the two
    /// bit-identical). The self-loop term *assigns* (overwriting
    /// whatever the recycled buffer held) and neighbor terms accumulate,
    /// so rows need no pre-zeroing.
    fn write_row(&self, graph: &CsrGraph, h: &Matrix, v: usize, orow: &mut [f64]) {
        let cv = self.inv_sqrt_deg[v];
        // self-loop term overwrites the row
        {
            let hr = h.row(v);
            let w = cv * cv;
            for (o, &x) in orow.iter_mut().zip(hr) {
                *o = w * x;
            }
        }
        for &u in graph.neighbors(v) {
            let u = u as usize;
            let w = cv * self.inv_sqrt_deg[u];
            let hr = h.row(u);
            for (o, &x) in orow.iter_mut().zip(hr) {
                *o += w * x;
            }
        }
    }

    /// The per-node coefficient `1/√(deg+1)`.
    #[must_use]
    pub fn coefficient(&self, v: usize) -> f64 {
        self.inv_sqrt_deg[v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)], true).unwrap()
    }

    #[test]
    fn normalization_coefficients() {
        let g = triangle();
        let a = NormalizedAdjacency::new(&g);
        for v in 0..3 {
            assert!((a.coefficient(v) - 1.0 / 3.0_f64.sqrt()).abs() < 1e-12);
        }
    }

    #[test]
    fn apply_matches_dense_operator() {
        let g = triangle();
        let a = NormalizedAdjacency::new(&g);
        // Â for a triangle with self-loops: every entry 1/3.
        let h = Matrix::from_rows(&[vec![3.0], vec![6.0], vec![9.0]]).unwrap();
        let out = a.apply(&g, &h);
        for v in 0..3 {
            assert!((out[(v, 0)] - 6.0).abs() < 1e-12);
        }
    }

    #[test]
    fn operator_is_symmetric() {
        // <Â·x, y> == <x, Â·y> for random vectors.
        let g =
            CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)], true).unwrap();
        let a = NormalizedAdjacency::new(&g);
        let x = Matrix::from_fn(5, 1, |i, _| (i as f64 + 1.0).sin());
        let y = Matrix::from_fn(5, 1, |i, _| (i as f64 * 2.0).cos());
        let ax = a.apply(&g, &x);
        let ay = a.apply(&g, &y);
        let lhs: f64 = (0..5).map(|i| ax[(i, 0)] * y[(i, 0)]).sum();
        let rhs: f64 = (0..5).map(|i| x[(i, 0)] * ay[(i, 0)]).sum();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn into_variants_fully_overwrite_dirty_buffers() {
        // The write-into kernels must not depend on the buffer's prior
        // contents: a poisoned recycled buffer must give bit-identical
        // results to a fresh allocation, for both the full and the
        // row-restricted operator.
        let g =
            CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)], true).unwrap();
        let a = NormalizedAdjacency::new(&g);
        let h = Matrix::from_fn(5, 3, |i, j| ((i * 3 + j) as f64 * 0.7).sin());
        let fresh = a.apply(&g, &h);
        let mut dirty = Matrix::filled(2, 9, f64::NAN);
        dirty.resize(5, 3);
        a.apply_into(&g, &h, &mut dirty);
        assert_eq!(dirty, fresh, "recycled buffer drifted from fresh allocation");

        let rows = [4u32, 0, 2];
        let fresh_rows = a.apply_rows(&g, &h, &rows);
        let mut dirty_rows = Matrix::filled(3, 3, f64::NAN);
        a.apply_rows_into(&g, &h, &rows, &mut dirty_rows);
        assert_eq!(dirty_rows, fresh_rows);
        for (i, &v) in rows.iter().enumerate() {
            assert_eq!(dirty_rows.row(i), fresh.row(v as usize), "row kernel must be shared");
        }
    }

    #[test]
    fn isolated_node_keeps_self_only() {
        let g = CsrGraph::from_edges(2, &[], true).unwrap();
        let a = NormalizedAdjacency::new(&g);
        let h = Matrix::from_rows(&[vec![5.0], vec![7.0]]).unwrap();
        let out = a.apply(&g, &h);
        assert_eq!(out[(0, 0)], 5.0);
        assert_eq!(out[(1, 0)], 7.0);
    }
}
