//! GCN's degree-normalized adjacency operator.
//!
//! GCN's aggregation (Table I) is the linear map
//! `a_v = Σ_{u ∈ N(v) ∪ {v}} h_u / √(d̃_u · d̃_v)` with self-loops added
//! (`d̃` = degree + 1), i.e. multiplication by the symmetric matrix
//! `Â = D̃^{-1/2}(A + I)D̃^{-1/2}`. Because `Â` is symmetric, the
//! backward pass is the same operator applied to the output gradient.

use blockgnn_graph::CsrGraph;
use blockgnn_linalg::Matrix;

/// The symmetric normalized adjacency `Â` with self-loops, applied
/// row-batch-wise to feature matrices.
#[derive(Debug, Clone)]
pub struct NormalizedAdjacency {
    /// `1/√(deg+1)` per node, precomputed.
    inv_sqrt_deg: Vec<f64>,
}

impl NormalizedAdjacency {
    /// Precomputes normalization coefficients for `graph`.
    #[must_use]
    pub fn new(graph: &CsrGraph) -> Self {
        let inv_sqrt_deg = (0..graph.num_nodes())
            .map(|v| 1.0 / ((graph.degree(v) + 1) as f64).sqrt())
            .collect();
        Self { inv_sqrt_deg }
    }

    /// Applies `Â · H` (features as rows: output row `v` is the
    /// normalized sum over `N(v) ∪ {v}`).
    ///
    /// # Panics
    ///
    /// Panics if `h.rows()` differs from the graph's node count.
    #[must_use]
    pub fn apply(&self, graph: &CsrGraph, h: &Matrix) -> Matrix {
        assert_eq!(h.rows(), graph.num_nodes(), "feature rows must equal node count");
        let mut out = Matrix::zeros(h.rows(), h.cols());
        for v in 0..graph.num_nodes() {
            self.accumulate_row(graph, h, v, out.row_mut(v));
        }
        out
    }

    /// Row-restricted `Â · H`: output row `i` is the normalized sum for
    /// target node `rows[i]`, reading neighbor rows from the *full*
    /// matrix `h`. This is the per-part operator of the partition-
    /// parallel serving path; each row is computed by exactly the same
    /// arithmetic (and accumulation order) as [`NormalizedAdjacency::apply`],
    /// so sharded execution is bit-identical to the full-graph pass.
    ///
    /// # Panics
    ///
    /// Panics if `h.rows()` differs from the graph's node count or a
    /// target id is out of range.
    #[must_use]
    pub fn apply_rows(&self, graph: &CsrGraph, h: &Matrix, rows: &[u32]) -> Matrix {
        assert_eq!(h.rows(), graph.num_nodes(), "feature rows must equal node count");
        let mut out = Matrix::zeros(rows.len(), h.cols());
        for (i, &v) in rows.iter().enumerate() {
            self.accumulate_row(graph, h, v as usize, out.row_mut(i));
        }
        out
    }

    /// Accumulates `(Â · H)_v` into `orow` — the shared kernel of
    /// [`NormalizedAdjacency::apply`] and
    /// [`NormalizedAdjacency::apply_rows`] (one code path keeps the two
    /// bit-identical).
    fn accumulate_row(&self, graph: &CsrGraph, h: &Matrix, v: usize, orow: &mut [f64]) {
        let cv = self.inv_sqrt_deg[v];
        // self-loop term
        {
            let hr = h.row(v);
            let w = cv * cv;
            for (o, &x) in orow.iter_mut().zip(hr) {
                *o += w * x;
            }
        }
        for &u in graph.neighbors(v) {
            let u = u as usize;
            let w = cv * self.inv_sqrt_deg[u];
            let hr = h.row(u);
            for (o, &x) in orow.iter_mut().zip(hr) {
                *o += w * x;
            }
        }
    }

    /// The per-node coefficient `1/√(deg+1)`.
    #[must_use]
    pub fn coefficient(&self, v: usize) -> f64 {
        self.inv_sqrt_deg[v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)], true).unwrap()
    }

    #[test]
    fn normalization_coefficients() {
        let g = triangle();
        let a = NormalizedAdjacency::new(&g);
        for v in 0..3 {
            assert!((a.coefficient(v) - 1.0 / 3.0_f64.sqrt()).abs() < 1e-12);
        }
    }

    #[test]
    fn apply_matches_dense_operator() {
        let g = triangle();
        let a = NormalizedAdjacency::new(&g);
        // Â for a triangle with self-loops: every entry 1/3.
        let h = Matrix::from_rows(&[vec![3.0], vec![6.0], vec![9.0]]).unwrap();
        let out = a.apply(&g, &h);
        for v in 0..3 {
            assert!((out[(v, 0)] - 6.0).abs() < 1e-12);
        }
    }

    #[test]
    fn operator_is_symmetric() {
        // <Â·x, y> == <x, Â·y> for random vectors.
        let g =
            CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)], true).unwrap();
        let a = NormalizedAdjacency::new(&g);
        let x = Matrix::from_fn(5, 1, |i, _| (i as f64 + 1.0).sin());
        let y = Matrix::from_fn(5, 1, |i, _| (i as f64 * 2.0).cos());
        let ax = a.apply(&g, &x);
        let ay = a.apply(&g, &y);
        let lhs: f64 = (0..5).map(|i| ax[(i, 0)] * y[(i, 0)]).sum();
        let rhs: f64 = (0..5).map(|i| x[(i, 0)] * ay[(i, 0)]).sum();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn isolated_node_keeps_self_only() {
        let g = CsrGraph::from_edges(2, &[], true).unwrap();
        let a = NormalizedAdjacency::new(&g);
        let h = Matrix::from_rows(&[vec![5.0], vec![7.0]]).unwrap();
        let out = a.apply(&g, &h);
        assert_eq!(out[(0, 0)], 5.0);
        assert_eq!(out[(1, 0)], 7.0);
    }
}
