//! Sampling-based mini-batch inference — the execution mode the
//! accelerator actually runs.
//!
//! The paper "adopts the sampling-based aggregation strategy \[2\] for all
//! algorithms" (§II-B) with fan-outs `S₁ = 25, S₂ = 10` (§IV-A): instead
//! of aggregating full neighborhoods, each layer draws a fixed number of
//! neighbors per node. We realize this by materializing the *sampled
//! computation graph* — a sub-universe containing the batch, its sampled
//! 1-hop frontier, and the frontier's sampled 2-hop frontier, wired with
//! exactly the sampled edges — and running the unmodified full-batch
//! models on it. Predictions are read off the batch rows.
//!
//! This is precisely the workload shape the hardware models charge for
//! (S·q sub-vector FFTs per node, Eq. 3), so software inference and the
//! cycle model describe the same computation.

use crate::models::GnnModel;
use blockgnn_graph::{CsrGraph, NeighborSampler};
use blockgnn_linalg::Matrix;
use std::collections::HashMap;

/// The materialized sampled computation graph for one mini-batch.
#[derive(Debug, Clone)]
pub struct SampledSubgraph {
    /// The sampled adjacency over renumbered local ids.
    pub graph: CsrGraph,
    /// `local_to_global[i]` = original node id of local node `i`.
    pub local_to_global: Vec<u32>,
    /// Number of **unique** batch nodes; they form the prefix of the
    /// local numbering (duplicate batch entries collapse to one local
    /// node — map request positions back with
    /// [`SampledSubgraph::local_of`]).
    pub batch_len: usize,
    /// Global id → local id for every interned node.
    local_of: InternTable,
}

/// Sentinel for "not interned" in the direct-indexed table.
const NOT_INTERNED: u32 = u32::MAX;

/// Largest graph for which the direct-indexed intern table is used
/// (128 KB of `u32`s). A request interns thousands of (frequently
/// repeated) ids, so on graphs this size a flat table beats the hash
/// map's per-lookup hashing by a wide margin and its `O(|V|)`
/// alloc+memset stays in the microsecond range; past this size the
/// memset would rival a small request's entire inference, so larger
/// graphs keep the map.
const FLAT_INTERN_MAX_NODES: usize = 1 << 15;

/// Global→local intern table: flat and direct-indexed on graphs small
/// enough that an `O(|V|)` table is cheap, a hash map beyond that.
/// Both variants intern in first-occurrence order, so the local
/// numbering (and therefore every downstream result) is identical.
#[derive(Debug, Clone)]
enum InternTable {
    /// `table[global]` is the local id, or [`NOT_INTERNED`].
    Flat(Vec<u32>),
    Map(HashMap<u32, u32>),
}

impl InternTable {
    fn for_graph(num_nodes: usize) -> Self {
        if num_nodes <= FLAT_INTERN_MAX_NODES {
            InternTable::Flat(vec![NOT_INTERNED; num_nodes])
        } else {
            InternTable::Map(HashMap::new())
        }
    }

    /// Interns `g` (first-occurrence order) and returns its local id.
    fn intern(&mut self, g: u32, local_to_global: &mut Vec<u32>) -> u32 {
        match self {
            InternTable::Flat(table) => {
                let slot = &mut table[g as usize];
                if *slot == NOT_INTERNED {
                    local_to_global.push(g);
                    *slot = (local_to_global.len() - 1) as u32;
                }
                *slot
            }
            InternTable::Map(map) => *map.entry(g).or_insert_with(|| {
                local_to_global.push(g);
                (local_to_global.len() - 1) as u32
            }),
        }
    }

    fn get(&self, global: usize) -> Option<usize> {
        match self {
            InternTable::Flat(table) => {
                table.get(global).copied().filter(|&l| l != NOT_INTERNED).map(|l| l as usize)
            }
            InternTable::Map(map) => {
                u32::try_from(global).ok().and_then(|g| map.get(&g)).map(|&l| l as usize)
            }
        }
    }
}

impl SampledSubgraph {
    /// Builds the two-hop sampled sub-universe for `batch` with fan-outs
    /// `s1`, `s2` (sampling with replacement; duplicate draws collapse
    /// into parallel edges, preserving GraphSAGE's weighting).
    ///
    /// # Panics
    ///
    /// Panics if a batch node is out of range.
    #[must_use]
    pub fn build(graph: &CsrGraph, batch: &[usize], s1: usize, s2: usize, seed: u64) -> Self {
        let sampler = NeighborSampler::new(graph, seed);
        let mut local_of = InternTable::for_graph(graph.num_nodes());
        let mut local_to_global: Vec<u32> = Vec::new();
        // Batch nodes first, so logits rows 0..batch_len are the batch
        // (each unique node once, in first-occurrence order).
        for &v in batch {
            assert!(v < graph.num_nodes(), "batch node {v} out of range");
            let _ = local_of.intern(v as u32, &mut local_to_global);
        }
        let batch_len = local_to_global.len();
        let mut edges: Vec<(usize, usize)> = Vec::with_capacity(batch_len * s1 * 2);
        // Hop 1: sampled neighbors of the unique batch nodes (sampling
        // per unique node, so duplicated batch entries don't oversample
        // their neighborhood).
        let mut frontier: Vec<u32> = Vec::with_capacity(batch_len * s1);
        let mut draws: Vec<u32> = Vec::with_capacity(s1.max(s2));
        for lv in 0..batch_len {
            let v = local_to_global[lv] as usize;
            sampler.sample_into(v, s1, &mut draws);
            for &u in &draws {
                let lu = local_of.intern(u, &mut local_to_global) as usize;
                edges.push((lv, lu));
                frontier.push(u);
            }
        }
        frontier.sort_unstable();
        frontier.dedup();
        // Hop 2: sampled neighbors of the frontier.
        for &u in &frontier {
            let lu = local_of.intern(u, &mut local_to_global) as usize;
            sampler.sample_into(u as usize, s2, &mut draws);
            for &w in &draws {
                let lw = local_of.intern(w, &mut local_to_global) as usize;
                edges.push((lu, lw));
            }
        }
        let graph = CsrGraph::from_edges(local_to_global.len(), &edges, true)
            .expect("locally renumbered endpoints are in range");
        Self { graph, local_to_global, batch_len, local_of }
    }

    /// Local row of global node `global`, if it was interned into the
    /// sub-universe (batch nodes always are).
    #[must_use]
    pub fn local_of(&self, global: usize) -> Option<usize> {
        self.local_of.get(global)
    }

    /// Gathers the sub-universe's feature rows from the global matrix
    /// (one row memcpy per interned node).
    ///
    /// # Panics
    ///
    /// Panics if `features` has fewer rows than the global graph.
    #[must_use]
    pub fn gather_features(&self, features: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.local_to_global.len(), features.cols());
        for (i, &g) in self.local_to_global.iter().enumerate() {
            out.row_mut(i).copy_from_slice(features.row(g as usize));
        }
        out
    }
}

/// Runs sampled two-hop inference for `batch`, returning one logits row
/// per batch entry, in batch order (duplicate entries get identical
/// rows).
///
/// # Panics
///
/// Panics if a batch node is out of range or feature rows mismatch the
/// graph.
#[must_use]
pub fn sampled_forward(
    model: &mut dyn GnnModel,
    graph: &CsrGraph,
    features: &Matrix,
    batch: &[usize],
    s1: usize,
    s2: usize,
    seed: u64,
) -> Matrix {
    let sub = SampledSubgraph::build(graph, batch, s1, s2, seed);
    let local_features = sub.gather_features(features);
    let logits = model.forward(&sub.graph, &local_features, false);
    Matrix::from_fn(batch.len(), logits.cols(), |i, j| {
        logits[(sub.local_of(batch[i]).expect("batch nodes are interned"), j)]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{build_model, ModelKind};
    use crate::train::{train_node_classifier, TrainConfig};
    use blockgnn_graph::{Dataset, DatasetSpec};
    use blockgnn_nn::loss::accuracy;
    use blockgnn_nn::Compression;

    fn task() -> Dataset {
        let spec = DatasetSpec::new("sampled-test", 300, 1_800, 24, 3);
        Dataset::synthesize(&spec, 0.8, 2.0, 55)
    }

    #[test]
    fn subgraph_contains_batch_as_prefix() {
        let ds = task();
        let batch = vec![5, 17, 200];
        let sub = SampledSubgraph::build(&ds.graph, &batch, 4, 3, 1);
        assert_eq!(sub.batch_len, 3);
        assert_eq!(&sub.local_to_global[..3], &[5, 17, 200]);
        // Universe covers at most batch + s1*batch + s2*s1*batch nodes.
        assert!(sub.local_to_global.len() <= 3 + 12 + 36);
        // Every batch node got its s1 sampled arcs (with replacement, so
        // parallel arcs count individually) plus hop-2 reverse arcs.
        assert!(sub.graph.degree(0) >= 4);
    }

    #[test]
    fn huge_graphs_fall_back_to_the_map_intern_table() {
        // Above FLAT_INTERN_MAX_NODES the build must not allocate an
        // O(|V|) table per request; the map variant interns with the
        // same first-occurrence numbering.
        let n = FLAT_INTERN_MAX_NODES + 1;
        let g = CsrGraph::from_edges(n, &[(0, 1), (1, 2), (2, 0), (n - 1, 0)], true).unwrap();
        let sub = SampledSubgraph::build(&g, &[n - 1, 0, 2], 3, 2, 7);
        assert!(matches!(sub.local_of, InternTable::Map(_)));
        assert_eq!(sub.batch_len, 3);
        assert_eq!(&sub.local_to_global[..3], &[(n - 1) as u32, 0, 2]);
        assert_eq!(sub.local_of(n - 1), Some(0));
        assert_eq!(sub.local_of(0), Some(1));
        assert_eq!(sub.local_of(n - 2), None);
    }

    #[test]
    fn duplicate_batch_nodes_share_one_row_and_stay_aligned() {
        let ds = task();
        let mut model =
            build_model(ModelKind::Gcn, ds.feature_dim(), 8, 3, Compression::Dense, 2).unwrap();
        let sub = SampledSubgraph::build(&ds.graph, &[7, 7, 12, 7], 4, 3, 1);
        // Duplicates collapse: the unique prefix is [7, 12].
        assert_eq!(sub.batch_len, 2);
        assert_eq!(&sub.local_to_global[..2], &[7, 12]);
        assert_eq!(sub.local_of(7), Some(0));
        assert_eq!(sub.local_of(12), Some(1));
        assert_eq!(sub.local_of(usize::MAX), None);
        // sampled_forward still returns one row per batch position…
        let out =
            sampled_forward(model.as_mut(), &ds.graph, &ds.features, &[7, 7, 12, 7], 4, 3, 1);
        assert_eq!(out.rows(), 4);
        // …with every duplicate position carrying node 7's row.
        let unique =
            sampled_forward(model.as_mut(), &ds.graph, &ds.features, &[7, 12], 4, 3, 1);
        for (pos, want) in [(0, 0), (1, 0), (2, 1), (3, 0)] {
            assert_eq!(out.row(pos), unique.row(want), "position {pos} misaligned");
        }
    }

    #[test]
    fn gather_preserves_feature_rows() {
        let ds = task();
        let sub = SampledSubgraph::build(&ds.graph, &[0, 1], 3, 2, 9);
        let local = sub.gather_features(&ds.features);
        for (i, &g) in sub.local_to_global.iter().enumerate() {
            assert_eq!(local.row(i), ds.features.row(g as usize));
        }
    }

    #[test]
    fn sampled_predictions_track_full_batch() {
        // A trained model's sampled predictions must agree with its
        // full-neighborhood predictions on most nodes (sampling noise
        // only) — the premise under which the paper evaluates latency on
        // sampled workloads while reporting full-graph accuracy.
        let ds = task();
        let mut model = build_model(
            ModelKind::GsPool,
            ds.feature_dim(),
            16,
            ds.num_classes,
            Compression::BlockCirculant { block_size: 8 },
            3,
        )
        .unwrap();
        let report = train_node_classifier(
            model.as_mut(),
            &ds,
            &TrainConfig { epochs: 50, lr: 0.02, patience: 0 },
        );
        assert!(report.test_accuracy > 0.6, "model must learn first");

        let batch: Vec<usize> = ds.masks.test.iter().copied().take(60).collect();
        let sampled =
            sampled_forward(model.as_mut(), &ds.graph, &ds.features, &batch, 25, 10, 7);
        assert_eq!(sampled.rows(), batch.len());
        let labels: Vec<usize> = batch.iter().map(|&v| ds.labels[v]).collect();
        let idx: Vec<usize> = (0..batch.len()).collect();
        let sampled_acc = accuracy(&sampled, &labels, &idx);
        assert!(
            sampled_acc > report.test_accuracy - 0.2,
            "sampled accuracy {sampled_acc} collapsed vs full-batch {}",
            report.test_accuracy
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let ds = task();
        let mut model =
            build_model(ModelKind::Gcn, ds.feature_dim(), 8, 3, Compression::Dense, 2).unwrap();
        let batch = vec![1, 2, 3];
        let a = sampled_forward(model.as_mut(), &ds.graph, &ds.features, &batch, 5, 3, 11);
        let b = sampled_forward(model.as_mut(), &ds.graph, &ds.features, &batch, 5, 3, 11);
        assert_eq!(a.linf_distance(&b), 0.0);
        let c = sampled_forward(model.as_mut(), &ds.graph, &ds.features, &batch, 5, 3, 12);
        assert!(a.linf_distance(&c) > 0.0, "different seeds should sample differently");
    }

    #[test]
    fn works_for_every_model_kind() {
        let ds = task();
        for kind in ModelKind::all() {
            let mut model =
                build_model(kind, ds.feature_dim(), 8, 3, Compression::Dense, 4).unwrap();
            let out =
                sampled_forward(model.as_mut(), &ds.graph, &ds.features, &[10, 20], 6, 4, 5);
            assert_eq!(out.shape(), (2, 3), "{kind} sampled inference shape");
        }
    }
}
