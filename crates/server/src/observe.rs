//! Observability: per-worker flight recorders, request traces, and a
//! Prometheus-style metrics exposition built from the live telemetry.
//!
//! # Flight recorder
//!
//! Every admitted request gets a process-unique trace id at admission.
//! As it moves through the serving pipeline, typed [`Span`]s are
//! collected — admission, queued, batch assembly, each engine stage
//! ([`blockgnn_engine::StageTiming`]), response write — and the
//! finished [`TraceRecord`] lands in the serving worker's **ring
//! buffer**: fixed capacity, single writer (one worker, one ring),
//! overwrite-oldest. Memory is bounded and the last
//! [`RING_CAPACITY`] requests per worker are always reconstructible,
//! no matter how long the server has run.
//!
//! Interesting requests — shed, failed, or slower than their resolved
//! deadline (or [`SLOW_THRESHOLD`] when they carry none) — are
//! additionally promoted into a retained **exemplar buffer** keyed by
//! [`SloClass`], so the worst offenders per class survive even after
//! the rings have cycled past them.
//!
//! Span timestamps are offsets from the recorder's epoch (server
//! start), which makes every record directly exportable as Chrome
//! trace-event JSON ([`chrome_trace_json`]) — load it in
//! `chrome://tracing` or Perfetto.
//!
//! # Metrics
//!
//! [`MetricsRegistry`] is a small typed counter/gauge/summary registry
//! rendered as Prometheus text exposition. The server populates it on
//! demand from the same telemetry snapshots the `stats` verb reads
//! (per-tenant, per-class, and aggregate), labelled by `tenant`,
//! `class`, and `backend` — nothing is double-counted, and the metric
//! names are stable (CI greps them).

use crate::fault::lock_recover;
use crate::queue::SloClass;
use blockgnn_engine::LatencyHistogram;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Per-worker ring capacity: the last this-many requests served by each
/// worker are always reconstructible.
pub const RING_CAPACITY: usize = 256;

/// Retained exemplars per SLO class (slow / shed / failed requests).
pub const EXEMPLAR_CAPACITY: usize = 32;

/// A completed request with no deadline counts as *slow* (and is
/// promoted to the exemplar buffer) when its admission→response total
/// exceeds this.
pub const SLOW_THRESHOLD: Duration = Duration::from_millis(100);

/// Per-request trace context assigned at admission and carried through
/// the queue into the serving worker, where the full [`TraceRecord`]
/// is assembled. `Copy` and two words wide — cheap enough to ride on
/// every queue item even with tracing off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TraceMeta {
    /// The process-unique trace id (0 = untraced).
    pub id: u64,
    /// Offset of the admission start from the recorder epoch.
    pub start: Duration,
    /// How long admission took (validation + deadline resolution +
    /// enqueue), measured in `submit_with`.
    pub admission: Duration,
}

impl TraceMeta {
    /// The inert meta a disabled recorder stamps on every request.
    pub const UNTRACED: TraceMeta =
        TraceMeta { id: 0, start: Duration::ZERO, admission: Duration::ZERO };
}

/// One timed pipeline stage of a traced request. `start`/`end` are
/// offsets from the recorder's epoch (server start), so spans from
/// different requests and workers share one timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Stable stage name: `admission`, `queued`, `assembly`, an engine
    /// stage (`sample`, `full_graph`, `merge`, `gather`, `execute`,
    /// `scatter`), or `response_write`.
    pub stage: &'static str,
    /// Offset of the stage start from the recorder epoch.
    pub start: Duration,
    /// Offset of the stage end from the recorder epoch (`≥ start`).
    pub end: Duration,
}

impl Span {
    /// The stage's duration.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.end.saturating_sub(self.start)
    }
}

/// How a traced request left the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Answered successfully.
    Completed,
    /// Failed in the engine.
    Failed,
    /// Shed at admission: the tenant's lane was full.
    ShedOverload,
    /// Shed at dequeue: the deadline passed while queued.
    ShedDeadline,
    /// The serving worker panicked mid-batch; the request was answered
    /// with a typed [`crate::ServerError::WorkerCrashed`].
    Crashed,
}

impl TraceOutcome {
    /// The stable wire spelling (`completed` / `failed` /
    /// `shed_overload` / `shed_deadline` / `crashed`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceOutcome::Completed => "completed",
            TraceOutcome::Failed => "failed",
            TraceOutcome::ShedOverload => "shed_overload",
            TraceOutcome::ShedDeadline => "shed_deadline",
            TraceOutcome::Crashed => "crashed",
        }
    }
}

/// Everything recorded about one request's trip through the serving
/// pipeline. The last [`RING_CAPACITY`] per worker live in the flight
/// recorder; slow/shed/failed ones also in the exemplar buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Process-unique id assigned at admission (also stamped on the
    /// response as [`blockgnn_engine::InferResponse::trace_id`]).
    pub trace_id: u64,
    /// The tenant the request addressed.
    pub tenant: String,
    /// The request's SLO class.
    pub class: SloClass,
    /// How the request left the pipeline.
    pub outcome: TraceOutcome,
    /// Requests coalesced into the execution that served this one (0
    /// for requests shed before execution).
    pub batch_size: usize,
    /// The typed spans, in start order.
    pub spans: Vec<Span>,
}

impl TraceRecord {
    /// Offset of the first span's start from the recorder epoch.
    #[must_use]
    pub fn start(&self) -> Duration {
        self.spans.first().map_or(Duration::ZERO, |s| s.start)
    }

    /// Admission→response wall-clock total (last span end − first span
    /// start).
    #[must_use]
    pub fn total(&self) -> Duration {
        let end = self.spans.iter().map(|s| s.end).max().unwrap_or(Duration::ZERO);
        end.saturating_sub(self.start())
    }

    /// Renders the record as one wire line (the `trace` verb's body):
    /// `id=HEX tenant=… class=… outcome=… batch=… start_us=… total_us=…
    /// spans=stage:start_us:end_us;…`.
    #[must_use]
    pub fn wire_line(&self) -> String {
        let mut line = format!(
            "id={:016x} tenant={} class={} outcome={} batch={} start_us={} total_us={} spans=",
            self.trace_id,
            self.tenant,
            self.class.name(),
            self.outcome.name(),
            self.batch_size,
            self.start().as_micros(),
            self.total().as_micros(),
        );
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                line.push(';');
            }
            let _ = write!(
                line,
                "{}:{}:{}",
                span.stage,
                span.start.as_micros(),
                span.end.as_micros()
            );
        }
        line
    }
}

/// One worker's fixed-capacity overwrite-oldest record store.
struct Ring {
    slots: VecDeque<TraceRecord>,
}

impl Ring {
    fn push(&mut self, record: TraceRecord) {
        if self.slots.len() == RING_CAPACITY {
            self.slots.pop_front();
        }
        self.slots.push_back(record);
    }
}

/// The server-wide flight recorder: one single-writer ring per worker,
/// a per-class exemplar buffer, and the trace-id source. All memory is
/// bounded at construction — recording never allocates beyond the
/// per-record spans.
pub struct Recorder {
    /// The common timeline origin every span offset is relative to.
    epoch: Instant,
    /// Trace-id source; ids start at 1 so 0 stays "untraced".
    next_id: AtomicU64,
    /// One ring per worker. Each ring has exactly one writer (its
    /// worker); the mutex only arbitrates against readers, so workers
    /// never contend with each other on the hot path.
    rings: Vec<Mutex<Ring>>,
    /// Slow/shed/failed exemplars, keyed by class, bounded per class.
    exemplars: Mutex<BTreeMap<SloClass, VecDeque<TraceRecord>>>,
    /// When false, every recording call is a no-op and ids stay 0 —
    /// the off switch the overhead benchmark compares against.
    enabled: bool,
}

impl Recorder {
    /// A recorder with one ring per worker.
    #[must_use]
    pub fn new(workers: usize, enabled: bool) -> Self {
        Self {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            rings: (0..workers.max(1))
                .map(|_| Mutex::new(Ring { slots: VecDeque::with_capacity(RING_CAPACITY) }))
                .collect(),
            exemplars: Mutex::new(BTreeMap::new()),
            enabled,
        }
    }

    /// Whether tracing is on (a disabled recorder assigns id 0 and
    /// records nothing).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Assigns the next process-unique trace id (0 when disabled).
    pub fn assign(&self) -> u64 {
        if self.enabled {
            self.next_id.fetch_add(1, Ordering::Relaxed)
        } else {
            0
        }
    }

    /// Offset of `t` from the recorder's epoch (the span timeline).
    #[must_use]
    pub fn offset(&self, t: Instant) -> Duration {
        t.saturating_duration_since(self.epoch)
    }

    /// Current offset of "now" from the epoch.
    #[must_use]
    pub fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    /// Records a finished request into worker `worker`'s ring,
    /// promoting it to the exemplar buffer when it is interesting: a
    /// non-completed outcome, or `slow` (the caller compares the total
    /// against the request's resolved deadline, falling back to
    /// [`SLOW_THRESHOLD`] when it carries none). No-op when disabled.
    pub fn record(&self, worker: usize, record: TraceRecord, slow: bool) {
        if !self.enabled {
            return;
        }
        if record.outcome != TraceOutcome::Completed || slow {
            self.promote(record.clone());
        }
        let ring = &self.rings[worker % self.rings.len()];
        lock_recover(ring).push(record);
    }

    /// Records a request shed before it reached any worker (overload at
    /// admission) straight into the exemplar buffer. No-op when
    /// disabled.
    pub fn record_shed(&self, record: TraceRecord) {
        if !self.enabled {
            return;
        }
        self.promote(record);
    }

    fn promote(&self, record: TraceRecord) {
        let mut exemplars = lock_recover(&self.exemplars);
        let slot = exemplars.entry(record.class).or_default();
        if slot.len() == EXEMPLAR_CAPACITY {
            slot.pop_front();
        }
        slot.push_back(record);
    }

    /// The most recent `n` records across every worker ring, newest
    /// first (by trace id — ids are assigned monotonically).
    #[must_use]
    pub fn last(&self, n: usize) -> Vec<TraceRecord> {
        let mut all: Vec<TraceRecord> = Vec::new();
        for ring in &self.rings {
            all.extend(lock_recover(ring).slots.iter().cloned());
        }
        all.sort_by_key(|r| std::cmp::Reverse(r.trace_id));
        all.truncate(n);
        all
    }

    /// Looks one trace up by id, searching the rings first, then the
    /// exemplar buffer (a shed request only ever lives there).
    #[must_use]
    pub fn find(&self, trace_id: u64) -> Option<TraceRecord> {
        for ring in &self.rings {
            let ring = lock_recover(ring);
            if let Some(r) = ring.slots.iter().rev().find(|r| r.trace_id == trace_id) {
                return Some(r.clone());
            }
        }
        let exemplars = lock_recover(&self.exemplars);
        exemplars.values().flatten().find(|r| r.trace_id == trace_id).cloned()
    }

    /// The retained slow/shed/failed exemplars, gold first, newest last
    /// within a class.
    #[must_use]
    pub fn exemplars(&self) -> Vec<TraceRecord> {
        let exemplars = lock_recover(&self.exemplars);
        exemplars.values().flatten().cloned().collect()
    }

    /// Per-class exemplar occupancy (for the metrics exposition).
    #[must_use]
    pub fn exemplar_counts(&self) -> BTreeMap<SloClass, usize> {
        let exemplars = lock_recover(&self.exemplars);
        exemplars.iter().map(|(c, v)| (*c, v.len())).collect()
    }

    /// Records currently held across every ring (≤ workers ×
    /// [`RING_CAPACITY`]).
    #[must_use]
    pub fn recorded(&self) -> usize {
        self.rings.iter().map(|r| lock_recover(r).slots.len()).sum()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.enabled)
            .field("rings", &self.rings.len())
            .field("recorded", &self.recorded())
            .finish()
    }
}

/// A parsed `trace` protocol query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceQuery {
    /// The most recent `n` records across all worker rings.
    Last(usize),
    /// One record by trace id.
    Id(u64),
    /// The retained slow/shed/failed exemplars.
    Slow,
    /// Every ring record plus exemplars as Chrome trace-event JSON.
    Export,
}

/// Renders records as Chrome trace-event JSON (the "JSON array format"
/// `chrome://tracing` and Perfetto load): one complete (`"ph":"X"`)
/// event per span, microsecond timestamps on the recorder's epoch
/// timeline, one thread lane per trace id. Tenant names and stage
/// names are wire-charset-validated, so no JSON escaping is needed.
#[must_use]
pub fn chrome_trace_json(records: &[TraceRecord]) -> String {
    let mut out = String::from("[");
    let mut first = true;
    for record in records {
        for span in &record.spans {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{},\"args\":{{\"trace_id\":\"{:016x}\",\"tenant\":\"{}\",\
                 \"class\":\"{}\",\"outcome\":\"{}\",\"batch\":{}}}}}",
                span.stage,
                record.outcome.name(),
                span.start.as_micros(),
                span.elapsed().as_micros(),
                record.trace_id,
                record.trace_id,
                record.tenant,
                record.class.name(),
                record.outcome.name(),
                record.batch_size,
            );
        }
    }
    out.push(']');
    out
}

/// The exposition type of one metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// A monotonically increasing count.
    Counter,
    /// A point-in-time value.
    Gauge,
    /// A quantile summary (`{quantile="…"}` samples plus `_count`).
    Summary,
}

impl MetricKind {
    fn exposition_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Summary => "summary",
        }
    }
}

/// One labelled sample of a metric family.
#[derive(Debug, Clone)]
struct Sample {
    /// Rendered label set (`{a="x",b="y"}`), empty for unlabelled.
    labels: String,
    value: f64,
}

/// One named metric family: a kind, a help line, and its samples.
#[derive(Debug, Clone)]
struct Family {
    kind: MetricKind,
    help: &'static str,
    samples: Vec<Sample>,
}

/// A typed counter/gauge/summary registry rendered as Prometheus text
/// exposition. Families render in registration order; samples within a
/// family in insertion order — both deterministic, so the exposition
/// is stable and greppable.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Vec<(String, Family)>,
}

/// Renders a label set as `{k="v",…}` (empty string for no labels).
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
    out
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn family(&mut self, name: &str, kind: MetricKind, help: &'static str) -> &mut Family {
        if let Some(at) = self.families.iter().position(|(n, _)| n == name) {
            let existing = &mut self.families[at].1;
            debug_assert_eq!(existing.kind, kind, "metric {name} re-registered as {kind:?}");
            existing
        } else {
            self.families.push((name.to_string(), Family { kind, help, samples: Vec::new() }));
            &mut self.families.last_mut().expect("family just pushed").1
        }
    }

    /// Adds a labelled counter sample.
    pub fn counter(
        &mut self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
        value: u64,
    ) {
        let labels = render_labels(labels);
        self.family(name, MetricKind::Counter, help)
            .samples
            .push(Sample { labels, value: value as f64 });
    }

    /// Adds a labelled gauge sample.
    pub fn gauge(
        &mut self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        let labels = render_labels(labels);
        self.family(name, MetricKind::Gauge, help).samples.push(Sample { labels, value });
    }

    /// Adds a latency histogram as a quantile summary: `p50`/`p95`/`p99`
    /// quantile samples in seconds plus a `_count` sample, all under the
    /// given label set.
    pub fn summary(
        &mut self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
        histogram: &LatencyHistogram,
    ) {
        for (q, v) in
            [("0.5", histogram.p50()), ("0.95", histogram.p95()), ("0.99", histogram.p99())]
        {
            let mut quantiled: Vec<(&str, &str)> = labels.to_vec();
            quantiled.push(("quantile", q));
            let labels = render_labels(&quantiled);
            self.family(name, MetricKind::Summary, help)
                .samples
                .push(Sample { labels, value: v.as_secs_f64() });
        }
        // `_count` rides in the same family (summary convention), so it
        // renders under the family's TYPE line without re-registering.
        let labels = render_labels(labels);
        let count = histogram.count();
        self.family(name, MetricKind::Summary, help)
            .samples
            .push(Sample { labels: format!("__count__{labels}"), value: count as f64 });
    }

    /// Renders the registry as Prometheus text exposition (`# HELP` /
    /// `# TYPE` headers, one sample per line, trailing newline).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, family) in &self.families {
            let _ = writeln!(out, "# HELP {name} {}", family.help);
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.exposition_name());
            for sample in &family.samples {
                if let Some(labels) = sample.labels.strip_prefix("__count__") {
                    let _ = writeln!(out, "{name}_count{labels} {}", sample.value as u64);
                } else if sample.value.fract() == 0.0 && sample.value.abs() < 1e15 {
                    let _ = writeln!(out, "{name}{} {}", sample.labels, sample.value as i64);
                } else {
                    let _ = writeln!(out, "{name}{} {}", sample.labels, sample.value);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, class: SloClass, outcome: TraceOutcome, total_us: u64) -> TraceRecord {
        TraceRecord {
            trace_id: id,
            tenant: "default".into(),
            class,
            outcome,
            batch_size: 1,
            spans: vec![
                Span {
                    stage: "admission",
                    start: Duration::from_micros(10),
                    end: Duration::from_micros(12),
                },
                Span {
                    stage: "queued",
                    start: Duration::from_micros(12),
                    end: Duration::from_micros(10 + total_us),
                },
            ],
        }
    }

    #[test]
    fn rings_bound_memory_and_overwrite_oldest() {
        let recorder = Recorder::new(1, true);
        for i in 0..(RING_CAPACITY as u64 + 50) {
            let id = recorder.assign();
            assert_eq!(id, i + 1, "ids are dense and start at 1");
            recorder.record(0, record(id, SloClass::Silver, TraceOutcome::Completed, 5), false);
        }
        assert_eq!(recorder.recorded(), RING_CAPACITY, "overwrite-oldest caps the ring");
        let last = recorder.last(4);
        assert_eq!(last.len(), 4);
        assert_eq!(last[0].trace_id, RING_CAPACITY as u64 + 50, "newest first");
        assert!(recorder.find(1).is_none(), "the oldest record was overwritten");
        assert!(recorder.find(RING_CAPACITY as u64 + 50).is_some());
        // A fast completed request earns no exemplar.
        assert!(recorder.exemplars().is_empty());
    }

    #[test]
    fn interesting_records_are_promoted_and_bounded_per_class() {
        let recorder = Recorder::new(2, true);
        // Slow completions, failures, and sheds are retained; the buffer
        // is bounded per class.
        for _ in 0..(EXEMPLAR_CAPACITY + 10) {
            let id = recorder.assign();
            recorder.record(
                0,
                record(id, SloClass::Gold, TraceOutcome::Completed, 500_000),
                true,
            );
        }
        let failed = recorder.assign();
        recorder.record(1, record(failed, SloClass::Bronze, TraceOutcome::Failed, 5), false);
        let shed = recorder.assign();
        recorder.record_shed(record(shed, SloClass::Bronze, TraceOutcome::ShedOverload, 2));
        let counts = recorder.exemplar_counts();
        assert_eq!(counts[&SloClass::Gold], EXEMPLAR_CAPACITY, "per-class bound");
        assert_eq!(counts[&SloClass::Bronze], 2, "failed + shed both promote");
        // A shed request never reaches a ring but is still findable.
        assert_eq!(recorder.find(shed).unwrap().outcome, TraceOutcome::ShedOverload);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let recorder = Recorder::new(2, false);
        assert_eq!(recorder.assign(), 0, "disabled tracing assigns id 0");
        recorder.record(0, record(1, SloClass::Gold, TraceOutcome::Failed, 9), false);
        recorder.record_shed(record(2, SloClass::Gold, TraceOutcome::ShedOverload, 9));
        assert_eq!(recorder.recorded(), 0);
        assert!(recorder.exemplars().is_empty());
        assert!(recorder.last(10).is_empty());
    }

    #[test]
    fn wire_lines_and_chrome_export_are_well_formed() {
        let r = record(0xAB, SloClass::Gold, TraceOutcome::Completed, 40);
        let line = r.wire_line();
        assert!(line.starts_with("id=00000000000000ab tenant=default class=gold "), "{line}");
        assert!(line.contains("outcome=completed batch=1 start_us=10 total_us=40"), "{line}");
        assert!(line.ends_with("spans=admission:10:12;queued:12:50"), "{line}");
        let json = chrome_trace_json(std::slice::from_ref(&r));
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2, "one event per span");
        assert!(json.contains("\"ts\":10,\"dur\":2"), "{json}");
        assert!(json.contains("\"trace_id\":\"00000000000000ab\""), "{json}");
        assert_eq!(chrome_trace_json(&[]), "[]");
        // Span offsets are monotonic by construction of the record.
        for pair in r.spans.windows(2) {
            assert!(pair[0].start <= pair[1].start && pair[0].end <= pair[1].end);
        }
    }

    #[test]
    fn registry_renders_stable_prometheus_text() {
        let mut reg = MetricsRegistry::new();
        reg.counter(
            "blockgnn_requests_submitted_total",
            "Requests offered to the admission queue",
            &[("tenant", "default"), ("backend", "dense")],
            42,
        );
        reg.counter(
            "blockgnn_requests_submitted_total",
            "Requests offered to the admission queue",
            &[("tenant", "traffic"), ("backend", "spectral")],
            7,
        );
        reg.gauge("blockgnn_uptime_seconds", "Server uptime", &[], 1.5);
        let mut hist = LatencyHistogram::default();
        hist.record(Duration::from_micros(300));
        hist.record(Duration::from_micros(900));
        reg.summary("blockgnn_latency_seconds", "Served latency", &[("class", "gold")], &hist);
        let text = reg.render();
        assert!(text.contains("# TYPE blockgnn_requests_submitted_total counter"), "{text}");
        assert!(
            text.contains(
                "blockgnn_requests_submitted_total{tenant=\"default\",backend=\"dense\"} 42"
            ),
            "{text}"
        );
        assert!(text.contains("# TYPE blockgnn_uptime_seconds gauge"), "{text}");
        assert!(text.contains("blockgnn_uptime_seconds 1.5"), "{text}");
        assert!(text.contains("# TYPE blockgnn_latency_seconds summary"), "{text}");
        assert!(
            text.contains("blockgnn_latency_seconds{class=\"gold\",quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(text.contains("blockgnn_latency_seconds_count{class=\"gold\"} 2"), "{text}");
        // The exposition is deterministic.
        let again = {
            let mut reg = MetricsRegistry::new();
            reg.gauge("blockgnn_uptime_seconds", "Server uptime", &[], 1.5);
            reg.render()
        };
        assert_eq!(again, "# HELP blockgnn_uptime_seconds Server uptime\n# TYPE blockgnn_uptime_seconds gauge\nblockgnn_uptime_seconds 1.5\n");
    }
}
