//! The `std::net` TCP front end: an accept loop plus one thread per
//! connection, speaking the [`crate::protocol`] line protocol over a
//! shared [`Server`].
//!
//! Connections submit through a [`crate::ServerHandle`] and block on
//! their ticket — the classic thread-per-connection shape, which is all
//! a closed-loop serving client needs. A `shutdown` command (or
//! [`TcpServer::stop`]) stops the accept loop, joins every connection
//! thread, and shuts the serving runtime down cleanly.

use crate::error::ServerError;
use crate::fault::SocketFault;
use crate::protocol::{
    encode_deploy_ack, encode_error, encode_health, encode_list_reply, encode_response,
    encode_retire_ack, encode_update_ack, parse_command, Command,
};
use crate::server::{Server, ServerHandle};
use crate::telemetry::ServerStats;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often blocked I/O re-checks the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// A running TCP front end over a [`Server`].
pub struct TcpServer {
    server: Arc<Server>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections against `server`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(server: Arc<Server>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_handle = {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("blockgnn-accept".into())
                .spawn(move || accept_loop(&listener, &server, &stop))
                .expect("accept thread spawns")
        };
        Ok(Self { server, addr, stop, accept_handle: Some(accept_handle) })
    }

    /// The bound address (with the actual port when 0 was requested).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the front end to stop (idempotent; also triggered by the
    /// `shutdown` protocol command).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Whether a stop was requested.
    #[must_use]
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Blocks until a stop is requested (by [`TcpServer::stop`] or a
    /// client's `shutdown` command), then joins the accept loop and
    /// every connection thread, shuts the serving runtime down, and
    /// returns the final telemetry.
    pub fn run_until_shutdown(mut self) -> ServerStats {
        while !self.stopping() {
            std::thread::sleep(POLL_INTERVAL);
        }
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        self.server.shutdown()
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop();
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, server: &Arc<Server>, stop: &Arc<AtomicBool>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let server = Arc::clone(server);
                let stop = Arc::clone(stop);
                let handle = std::thread::Builder::new()
                    .name("blockgnn-conn".into())
                    .spawn(move || {
                        let _ = serve_connection(stream, &server, &stop);
                    })
                    .expect("connection thread spawns");
                connections.push(handle);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                // Idle: reap finished connection threads so a long-lived
                // daemon does not accumulate one dead handle per client
                // that ever connected, then nap until the next poll.
                reap_finished(&mut connections);
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
    for handle in connections {
        let _ = handle.join();
    }
}

/// Joins (and drops) every connection thread that has already exited.
fn reap_finished(connections: &mut Vec<JoinHandle<()>>) {
    let mut i = 0;
    while i < connections.len() {
        if connections[i].is_finished() {
            let _ = connections.swap_remove(i).join();
        } else {
            i += 1;
        }
    }
}

/// Serves one connection until EOF, error, stop, or `shutdown`.
fn serve_connection(
    stream: TcpStream,
    server: &Arc<Server>,
    stop: &Arc<AtomicBool>,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    // A finite read timeout lets idle connections notice a server stop.
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut partial = Vec::new();
    // Resolves an `@tenant` qualifier to a submission handle; `None`
    // addresses the default tenant. Resolution happens per command —
    // the tenant may have been deployed (or retired) since the last
    // line on this very connection.
    let resolve = |tenant: Option<String>| -> Result<ServerHandle, ServerError> {
        match tenant {
            None => Ok(server.handle()),
            Some(name) => server.handle_for(&name),
        }
    };
    while let Some(line) = read_line_stoppable(&mut reader, &mut partial, stop)? {
        // The socket-layer injection point: one deterministic draw per
        // command line. A Reset drops the connection before any reply
        // (what a peer sees as ECONNRESET / EOF — the client's retry
        // path must absorb it); a Stall delays the reply.
        match server.fault_injector().socket_fault() {
            SocketFault::None => {}
            SocketFault::Reset => return Ok(()),
            SocketFault::Stall(pause) => std::thread::sleep(pause),
        }
        let reply = match parse_command(line.trim()) {
            Ok(Command::Ping) => "pong".to_string(),
            Ok(Command::Health) => encode_health(&server.health()),
            Ok(Command::Stats(None)) => format!("ok stats {}", server.stats().summary()),
            Ok(Command::Stats(Some(name))) => match server.tenant_stats(&name) {
                Ok(stats) => format!("ok stats {}", stats.summary()),
                Err(e) => encode_error(&e),
            },
            Ok(Command::Shutdown) => {
                writer.write_all(b"ok bye\n")?;
                writer.flush()?;
                stop.store(true, Ordering::SeqCst);
                return Ok(());
            }
            Ok(Command::Infer(request, options, tenant)) => match resolve(tenant) {
                Ok(handle) => match handle.infer_with(request, options) {
                    Ok(response) => encode_response(&response, handle.tenant_name()),
                    Err(e) => encode_error(&e),
                },
                Err(e) => encode_error(&e),
            },
            // A rejected update answers with a typed error and the
            // connection (and the addressed graph) carries on untouched.
            // The ack's counts come from the exact epoch this delta
            // published, so they stay consistent with its version even
            // under concurrent updates.
            Ok(Command::Update(delta, tenant)) => match resolve(tenant) {
                Ok(handle) => match handle.update_acked(&delta) {
                    Ok(ack) => encode_update_ack(&ack),
                    Err(e) => encode_error(&e),
                },
                Err(e) => encode_error(&e),
            },
            Ok(Command::Deploy(spec)) => match server.deploy(&spec) {
                Ok(handle) => encode_deploy_ack(&handle.info()),
                Err(e) => encode_error(&e),
            },
            Ok(Command::Retire(name)) => match server.retire(&name) {
                Ok(finals) => encode_retire_ack(&name, &finals),
                Err(e) => encode_error(&e),
            },
            Ok(Command::List) => encode_list_reply(&server.tenants()),
            // The observability verbs are the protocol's only multi-line
            // replies: a `lines=N` header, then exactly N body lines —
            // assembled as one string (the trailing write appends the
            // final LF), so the reply hits the socket in one write.
            Ok(Command::Metrics) => {
                let body = server.metrics_text();
                let lines = body.lines().count();
                let mut reply = format!("ok metrics lines={lines}");
                for line in body.lines() {
                    reply.push('\n');
                    reply.push_str(line);
                }
                reply
            }
            Ok(Command::Trace(query)) => {
                let body = server.trace_lines(query);
                let mut reply = format!("ok trace lines={}", body.len());
                for line in &body {
                    reply.push('\n');
                    reply.push_str(line);
                }
                reply
            }
            Err(msg) => encode_error(&ServerError::Protocol(msg)),
        };
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

/// One iteration's outcome while assembling a line.
enum ReadStep {
    Eof,
    /// A newline was found; consume this many buffered bytes.
    Line(usize),
    /// No newline yet; consume this many buffered bytes and keep going.
    More(usize),
    /// Timeout/interrupt; re-check the stop flag and retry.
    Retry,
}

/// Reads one LF-terminated line, preserving partial input across read
/// timeouts (unlike `BufReader::read_line`, which discards it on
/// error) so the stop flag can be polled without losing bytes. `None`
/// on EOF or stop.
fn read_line_stoppable(
    reader: &mut BufReader<TcpStream>,
    partial: &mut Vec<u8>,
    stop: &AtomicBool,
) -> std::io::Result<Option<String>> {
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(None);
        }
        let step = match reader.fill_buf() {
            Ok([]) => ReadStep::Eof, // any partial line dies with the peer
            Ok(available) => match available.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    partial.extend_from_slice(&available[..i]);
                    ReadStep::Line(i + 1)
                }
                None => {
                    partial.extend_from_slice(available);
                    ReadStep::More(available.len())
                }
            },
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) =>
            {
                ReadStep::Retry
            }
            Err(e) => return Err(e),
        };
        match step {
            ReadStep::Eof => return Ok(None),
            ReadStep::Line(n) => {
                reader.consume(n);
                let line = String::from_utf8_lossy(partial).into_owned();
                partial.clear();
                return Ok(Some(line));
            }
            ReadStep::More(n) => reader.consume(n),
            ReadStep::Retry => {}
        }
    }
}
