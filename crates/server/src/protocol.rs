//! The line-oriented wire protocol of the TCP front end.
//!
//! One request line in, one response line out, UTF-8, LF-terminated.
//! Logits cross the wire as hexadecimal `f64::to_bits` words, so remote
//! responses are **bit-identical** to in-process ones — the property the
//! end-to-end parity tests assert through the socket. The two
//! observability verbs (`metrics`, `trace`) are the only multi-line
//! replies: their `ok … lines=N` header says exactly how many body
//! lines follow, so clients always know when a reply ends.
//!
//! # Grammar
//!
//! ```text
//! command   = infer | update | "ping" | stats | deploy | retire
//!           | "list" | "metrics" | trace | "health" | "shutdown"
//! infer     = "infer" ["@" tenant] SP target [SP option]*
//! target    = "full" SP ("all" | nodes)
//!           | "sampled" SP "s1=" int SP "s2=" int SP "seed=" int SP "nodes=" nodes
//! nodes     = int ("," int)*
//! option    = "class=" ("gold" | "silver" | "bronze") | "deadline_ms=" int
//!
//! update    = "update" ["@" tenant] [SP "add=" pairs] [SP "del=" pairs]
//!             [SP "feat=" featrows] [SP "new=" rows]
//! pairs     = pair ("," pair)*        pair    = int ":" int
//! featrows  = featrow (";" featrow)*  featrow = int ":" hex64 ("," hex64)*
//! rows      = row (";" row)*          row     = hex64 ("," hex64)*
//!
//! stats     = "stats" ["@" tenant]
//! deploy    = "deploy" SP tenant "=" dataset ":" model ":" backend
//!             [SP "weight=" int] [SP "depth=" int] [SP "hidden=" int]
//!             [SP "block=" int] [SP "seed=" int]
//! retire    = "retire" SP tenant
//! tenant    = 1*(ALPHA / DIGIT / "-" / "_" / ".")
//! trace     = "trace" [SP ("last=" int | "id=" hex64 | "slow" | "export")]
//!
//! reply     = "ok" SP infer-reply | "pong" | "ok stats " summary
//!           | "ok update tenant=" tenant SP "version=" int
//!             SP "nodes=" int SP "arcs=" int
//!           | "ok deploy tenant=" tenant SP "model=" model
//!             SP "backend=" backend SP "version=" int SP "nodes=" int
//!             SP "weight=" int SP "resident=" int
//!           | "ok retire tenant=" tenant SP "requests=" int
//!             SP "completed=" int SP "shed=" int
//!           | "ok list tenants=" int (SP info)*
//!           | "ok metrics lines=" int LF *(exposition-line LF)
//!           | "ok trace lines=" int LF *(trace-line LF)
//!           | "ok health workers=" int SP "alive=" int SP "crashes=" int
//!             SP "restarts=" int SP "degraded=" ("true"|"false")
//!           | "ok bye" | "err" SP kind SP message
//! info      = tenant ":" model ":" backend ":" version ":" nodes
//!             ":" weight ":" depth ":" resident
//! infer-reply = "rows=" int SP "cols=" int SP "queue_us=" int
//!               SP "compute_us=" int SP "from_cache=" ("0"|"1")
//!               SP "parts=" int SP "batch=" int SP "version=" int
//!               SP "tenant=" tenant SP "cycles=" int
//!               SP "energy=" ("none" | hex64)
//!               SP "trace=" hex64
//!               SP "preds=" int ("," int)*
//!               SP "logits=" row (";" row)*     row = hex64 ("," hex64)*
//! kind      = "overloaded" | "deadline" | "shutting_down" | "canceled"
//!           | "worker_crashed" | "timeout"
//!           | "bad_request" | "engine" | "protocol" | "io"
//!           | "unknown_tenant" | "tenant_exists" | "tenant_budget"
//! ```
//!
//! An absent `@tenant` qualifier addresses the `default` tenant
//! ([`crate::DEFAULT_TENANT`]), so single-tenant clients never spell
//! tenancy at all. Feature values in `update` cross the wire as
//! hexadecimal `f64::to_bits` words (like logits), so the applied delta
//! is bit-identical to an in-process [`blockgnn_engine::GraphDelta`].

use crate::error::ServerError;
use crate::queue::{SloClass, SubmitOptions};
use crate::telemetry::ServerStats;
use crate::tenant::{
    backend_kind_name, model_kind_name, parse_backend_kind, parse_model_kind,
    validate_tenant_name, TenantInfo, TenantSpec,
};
use blockgnn_engine::{GraphDelta, InferRequest, InferResponse};
use blockgnn_linalg::Matrix;
use std::fmt::Write as _;
use std::time::Duration;

/// A parsed client command. The `Option<String>` on `Infer`/`Update`/
/// `Stats` is the `@tenant` qualifier; `None` addresses the `default`
/// tenant.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run inference on the addressed tenant.
    Infer(InferRequest, SubmitOptions, Option<String>),
    /// Apply a graph delta to the addressed tenant.
    Update(GraphDelta, Option<String>),
    /// Liveness probe.
    Ping,
    /// One-line telemetry summary — aggregate (`None`) or one tenant's.
    Stats(Option<String>),
    /// Deploy a new tenant from a spec.
    Deploy(TenantSpec),
    /// Retire a deployed tenant by name.
    Retire(String),
    /// Describe every deployed tenant.
    List,
    /// Render the Prometheus-style metrics exposition.
    Metrics,
    /// Query the flight recorder (recent / by-id / slow exemplars /
    /// Chrome trace-event export).
    Trace(crate::observe::TraceQuery),
    /// One-line worker-pool health: alive count, crash/restart totals,
    /// and whether the supervision circuit breaker marks the pool
    /// degraded.
    Health,
    /// Stop the server cleanly.
    Shutdown,
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable description of the first syntax problem.
pub fn parse_command(line: &str) -> Result<Command, String> {
    let mut words = line.split_whitespace();
    let Some(first) = words.next() else {
        return Err("empty command".into());
    };
    let (verb, tenant) = match first.split_once('@') {
        Some((verb, name)) => {
            if !matches!(verb, "infer" | "update" | "stats") {
                return Err(format!(
                    "@tenant qualifier is not allowed on {verb:?} (infer | update | stats)"
                ));
            }
            validate_tenant_name(name)?;
            (verb, Some(name.to_string()))
        }
        None => (first, None),
    };
    match verb {
        "ping" => Ok(Command::Ping),
        "stats" => Ok(Command::Stats(tenant)),
        "shutdown" => Ok(Command::Shutdown),
        "list" => Ok(Command::List),
        "infer" => parse_infer(&mut words, tenant),
        "update" => parse_update(&mut words, tenant),
        "deploy" => parse_deploy(&mut words),
        "metrics" => {
            if let Some(extra) = words.next() {
                return Err(format!("unexpected word {extra:?} after metrics"));
            }
            Ok(Command::Metrics)
        }
        "health" => {
            if let Some(extra) = words.next() {
                return Err(format!("unexpected word {extra:?} after health"));
            }
            Ok(Command::Health)
        }
        "trace" => parse_trace(&mut words),
        "retire" => {
            let name = words.next().ok_or("retire needs a tenant name")?;
            validate_tenant_name(name)?;
            if let Some(extra) = words.next() {
                return Err(format!("unexpected word {extra:?} after retire name"));
            }
            Ok(Command::Retire(name.to_string()))
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Default record count for a bare `trace` command.
const TRACE_DEFAULT_LAST: usize = 16;

fn parse_trace<'a>(words: &mut impl Iterator<Item = &'a str>) -> Result<Command, String> {
    use crate::observe::TraceQuery;
    let query = match words.next() {
        None => TraceQuery::Last(TRACE_DEFAULT_LAST),
        Some("slow") => TraceQuery::Slow,
        Some("export") => TraceQuery::Export,
        Some(word) => {
            if let Some(n) = word.strip_prefix("last=") {
                let n: usize =
                    n.parse().map_err(|_| format!("bad count in {word:?} (last=N)"))?;
                TraceQuery::Last(n)
            } else if let Some(id) = word.strip_prefix("id=") {
                let id = u64::from_str_radix(id, 16)
                    .map_err(|_| format!("bad trace id in {word:?} (id=HEX)"))?;
                TraceQuery::Id(id)
            } else {
                return Err(format!(
                    "unknown trace query {word:?} (last=N | id=HEX | slow | export)"
                ));
            }
        }
    };
    if let Some(extra) = words.next() {
        return Err(format!("unexpected word {extra:?} after trace query"));
    }
    Ok(Command::Trace(query))
}

fn parse_infer<'a>(
    words: &mut impl Iterator<Item = &'a str>,
    tenant: Option<String>,
) -> Result<Command, String> {
    let target = words.next().ok_or("infer needs a target (full | sampled)")?;
    let (request, rest): (InferRequest, Vec<&str>) = match target {
        "full" => {
            let nodes_word = words.next().ok_or("infer full needs node ids or `all`")?;
            let nodes = if nodes_word == "all" { Vec::new() } else { parse_nodes(nodes_word)? };
            (InferRequest::full_graph(nodes), words.collect())
        }
        "sampled" => {
            let s1 = parse_kv(words.next(), "s1")?;
            let s2 = parse_kv(words.next(), "s2")?;
            let seed: u64 = parse_kv(words.next(), "seed")?;
            let nodes_word = words.next().ok_or("sampled infer needs nodes=…")?;
            let nodes_val = nodes_word
                .strip_prefix("nodes=")
                .ok_or_else(|| format!("expected nodes=…, got {nodes_word:?}"))?;
            (InferRequest::sampled(parse_nodes(nodes_val)?, s1, s2, seed), words.collect())
        }
        other => return Err(format!("unknown infer target {other:?}")),
    };
    let mut options = SubmitOptions::default();
    for word in rest {
        if let Some(v) = word.strip_prefix("class=") {
            options.class = SloClass::parse(v)?;
        } else if let Some(v) = word.strip_prefix("deadline_ms=") {
            let ms: u64 = v.parse().map_err(|_| format!("bad deadline_ms {v:?}"))?;
            options.deadline = Some(Duration::from_millis(ms));
        } else {
            return Err(format!("unknown option {word:?}"));
        }
    }
    Ok(Command::Infer(request, options, tenant))
}

fn parse_update<'a>(
    words: &mut impl Iterator<Item = &'a str>,
    tenant: Option<String>,
) -> Result<Command, String> {
    let mut delta = GraphDelta::new();
    for word in words {
        if let Some(v) = word.strip_prefix("add=") {
            delta.add_edges.extend(parse_pairs(v)?);
        } else if let Some(v) = word.strip_prefix("del=") {
            delta.remove_edges.extend(parse_pairs(v)?);
        } else if let Some(v) = word.strip_prefix("feat=") {
            let rows: Vec<(usize, Vec<f64>)> = v
                .split(';')
                .filter(|r| !r.is_empty())
                .map(|r| {
                    let (node, row) = r
                        .split_once(':')
                        .ok_or_else(|| format!("expected NODE:row, got {r:?}"))?;
                    Ok((
                        node.parse::<usize>().map_err(|_| format!("bad node id {node:?}"))?,
                        parse_f64_row(row)?,
                    ))
                })
                .collect::<Result<_, String>>()?;
            delta.set_features.extend(rows);
        } else if let Some(v) = word.strip_prefix("new=") {
            let rows: Vec<Vec<f64>> = v
                .split(';')
                .filter(|r| !r.is_empty())
                .map(parse_f64_row)
                .collect::<Result<_, String>>()?;
            delta.append_nodes.extend(rows);
        } else {
            return Err(format!("unknown update clause {word:?}"));
        }
    }
    // An empty delta is syntactically valid; the engine rejects it with
    // a typed `EmptyDelta`, so the client sees a semantic error rather
    // than a protocol one (same split as empty node lists on `infer`).
    Ok(Command::Update(delta, tenant))
}

fn parse_deploy<'a>(words: &mut impl Iterator<Item = &'a str>) -> Result<Command, String> {
    let compact = words.next().ok_or("deploy needs name=dataset:model:backend")?;
    let mut spec = TenantSpec::parse_compact(compact)?;
    for word in words {
        if let Some(v) = word.strip_prefix("weight=") {
            spec = spec.weight(v.parse().map_err(|_| format!("bad weight {v:?}"))?);
        } else if let Some(v) = word.strip_prefix("depth=") {
            spec = spec.max_queue_depth(v.parse().map_err(|_| format!("bad depth {v:?}"))?);
        } else if let Some(v) = word.strip_prefix("hidden=") {
            spec = spec.hidden_dim(v.parse().map_err(|_| format!("bad hidden {v:?}"))?);
        } else if let Some(v) = word.strip_prefix("block=") {
            spec = spec.block_size(v.parse().map_err(|_| format!("bad block {v:?}"))?);
        } else if let Some(v) = word.strip_prefix("seed=") {
            spec = spec.seed(v.parse().map_err(|_| format!("bad seed {v:?}"))?);
        } else {
            return Err(format!("unknown deploy option {word:?}"));
        }
    }
    Ok(Command::Deploy(spec))
}

fn parse_pairs(csv: &str) -> Result<Vec<(usize, usize)>, String> {
    csv.split(',')
        .filter(|p| !p.is_empty())
        .map(|p| {
            let (u, v) =
                p.split_once(':').ok_or_else(|| format!("expected U:V pair, got {p:?}"))?;
            Ok((
                u.parse().map_err(|_| format!("bad node id {u:?}"))?,
                v.parse().map_err(|_| format!("bad node id {v:?}"))?,
            ))
        })
        .collect()
}

fn parse_f64_row(csv: &str) -> Result<Vec<f64>, String> {
    csv.split(',')
        .filter(|w| !w.is_empty())
        .map(|w| {
            u64::from_str_radix(w, 16)
                .map(f64::from_bits)
                .map_err(|_| format!("bad hex feature word {w:?}"))
        })
        .collect()
}

/// Pushes a command verb with an optional `@tenant` qualifier.
fn push_verb(line: &mut String, verb: &str, tenant: Option<&str>) {
    line.push_str(verb);
    if let Some(name) = tenant {
        let _ = write!(line, "@{name}");
    }
}

/// Renders a [`GraphDelta`] as an `update` request line (no newline),
/// addressed to `tenant` (`None` = the default tenant). Feature values
/// cross as `f64` bit patterns, so the server applies exactly the delta
/// the client built.
#[must_use]
pub fn encode_update(delta: &GraphDelta, tenant: Option<&str>) -> String {
    let mut line = String::new();
    push_verb(&mut line, "update", tenant);
    let push_pairs = |line: &mut String, key: &str, pairs: &[(usize, usize)]| {
        if pairs.is_empty() {
            return;
        }
        let _ = write!(line, " {key}=");
        for (i, (u, v)) in pairs.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(line, "{u}:{v}");
        }
    };
    push_pairs(&mut line, "add", &delta.add_edges);
    push_pairs(&mut line, "del", &delta.remove_edges);
    if !delta.set_features.is_empty() {
        line.push_str(" feat=");
        for (i, (node, row)) in delta.set_features.iter().enumerate() {
            if i > 0 {
                line.push(';');
            }
            let _ = write!(line, "{node}:");
            push_hex_row(&mut line, row);
        }
    }
    if !delta.append_nodes.is_empty() {
        line.push_str(" new=");
        for (i, row) in delta.append_nodes.iter().enumerate() {
            if i > 0 {
                line.push(';');
            }
            push_hex_row(&mut line, row);
        }
    }
    line
}

fn push_hex_row(line: &mut String, row: &[f64]) {
    for (j, v) in row.iter().enumerate() {
        if j > 0 {
            line.push(',');
        }
        let _ = write!(line, "{:016x}", v.to_bits());
    }
}

/// What a successful `update` reply carries back to the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateAck {
    /// The tenant whose graph the delta was applied to.
    pub tenant: String,
    /// The newly published graph version.
    pub version: u64,
    /// Node count after the delta.
    pub num_nodes: usize,
    /// Stored arc count after the delta.
    pub num_arcs: usize,
}

/// Renders an applied update as an `ok update` reply line (no newline).
#[must_use]
pub fn encode_update_ack(ack: &UpdateAck) -> String {
    format!(
        "ok update tenant={} version={} nodes={} arcs={}",
        ack.tenant, ack.version, ack.num_nodes, ack.num_arcs
    )
}

/// Parses an `ok update` reply back into an [`UpdateAck`].
///
/// # Errors
///
/// [`ServerError::Protocol`] when the line does not match the grammar.
pub fn parse_update_ack(line: &str) -> Result<UpdateAck, ServerError> {
    let body = line.strip_prefix("ok update ").ok_or_else(|| {
        ServerError::Protocol(format!("expected ok update reply, got {line:?}"))
    })?;
    let mut tenant = None;
    let mut version = None;
    let mut nodes = None;
    let mut arcs = None;
    for word in body.split_whitespace() {
        let (key, value) = word
            .split_once('=')
            .ok_or_else(|| ServerError::Protocol(format!("bad field {word:?}")))?;
        match key {
            "tenant" => tenant = Some(value.to_string()),
            "version" => version = Some(parse_u64(value)?),
            "nodes" => nodes = Some(parse_usize(value)?),
            "arcs" => arcs = Some(parse_usize(value)?),
            other => {
                return Err(ServerError::Protocol(format!("unknown field {other:?}")));
            }
        }
    }
    Ok(UpdateAck {
        tenant: tenant.ok_or_else(|| missing("tenant"))?,
        version: version.ok_or_else(|| missing("version"))?,
        num_nodes: nodes.ok_or_else(|| missing("nodes"))?,
        num_arcs: arcs.ok_or_else(|| missing("arcs"))?,
    })
}

fn parse_kv<T: std::str::FromStr>(word: Option<&str>, key: &str) -> Result<T, String> {
    let word = word.ok_or_else(|| format!("missing {key}=…"))?;
    let value = word
        .strip_prefix(key)
        .and_then(|w| w.strip_prefix('='))
        .ok_or_else(|| format!("expected {key}=…, got {word:?}"))?;
    value.parse().map_err(|_| format!("bad {key} value {value:?}"))
}

fn parse_nodes(csv: &str) -> Result<Vec<usize>, String> {
    // An empty list is syntactically valid; whether it is *semantically*
    // valid is the engine's call (EmptyRequest for sampled mode), so the
    // rejection comes back typed rather than as a protocol error.
    if csv.is_empty() {
        return Ok(Vec::new());
    }
    csv.split(',').map(|w| w.parse().map_err(|_| format!("bad node id {w:?}"))).collect()
}

/// Renders an [`InferRequest`] + options as a request line (no newline),
/// addressed to `tenant` (`None` = the default tenant).
#[must_use]
pub fn encode_infer(
    request: &InferRequest,
    options: SubmitOptions,
    tenant: Option<&str>,
) -> String {
    let mut line = String::new();
    push_verb(&mut line, "infer", tenant);
    line.push(' ');
    match request.mode {
        blockgnn_engine::RequestMode::FullGraph => {
            line.push_str("full ");
            if request.nodes.is_empty() {
                line.push_str("all");
            } else {
                push_csv(&mut line, &request.nodes);
            }
        }
        blockgnn_engine::RequestMode::Sampled { s1, s2, seed } => {
            let _ = write!(line, "sampled s1={s1} s2={s2} seed={seed} nodes=");
            push_csv(&mut line, &request.nodes);
        }
    }
    if options.class != SloClass::default() {
        let _ = write!(line, " class={}", options.class.name());
    }
    if let Some(d) = options.deadline {
        let _ = write!(line, " deadline_ms={}", d.as_millis());
    }
    line
}

/// Renders a `stats` request line (no newline), aggregate (`None`) or
/// for one tenant.
#[must_use]
pub fn encode_stats(tenant: Option<&str>) -> String {
    let mut line = String::new();
    push_verb(&mut line, "stats", tenant);
    line
}

/// Renders a [`TenantSpec`] as a `deploy` request line (no newline).
/// Options matching the spec defaults are omitted, so the common case
/// stays one compact word.
#[must_use]
pub fn encode_deploy(spec: &TenantSpec) -> String {
    let defaults =
        TenantSpec::new(spec.name.clone(), spec.dataset.clone(), spec.model, spec.backend);
    let mut line = format!(
        "deploy {}={}:{}:{}",
        spec.name,
        spec.dataset,
        model_kind_name(spec.model),
        backend_kind_name(spec.backend)
    );
    if spec.weight != defaults.weight {
        let _ = write!(line, " weight={}", spec.weight);
    }
    if let Some(depth) = spec.max_queue_depth {
        let _ = write!(line, " depth={depth}");
    }
    if spec.hidden_dim != defaults.hidden_dim {
        let _ = write!(line, " hidden={}", spec.hidden_dim);
    }
    if spec.block_size != defaults.block_size {
        let _ = write!(line, " block={}", spec.block_size);
    }
    if spec.seed != defaults.seed {
        let _ = write!(line, " seed={}", spec.seed);
    }
    line
}

/// Renders a successful deploy as an `ok deploy` reply line (no
/// newline).
#[must_use]
pub fn encode_deploy_ack(info: &TenantInfo) -> String {
    format!(
        "ok deploy tenant={} model={} backend={} version={} nodes={} weight={} resident={}",
        info.name,
        model_kind_name(info.model),
        backend_kind_name(info.backend),
        info.graph_version,
        info.num_nodes,
        info.weight,
        info.resident_bytes
    )
}

/// Parses an `ok deploy` reply back into a [`TenantInfo`] (queue depth
/// is zero — the tenant was just born).
///
/// # Errors
///
/// [`ServerError::Protocol`] when the line does not match the grammar.
pub fn parse_deploy_ack(line: &str) -> Result<TenantInfo, ServerError> {
    let body = line.strip_prefix("ok deploy ").ok_or_else(|| {
        ServerError::Protocol(format!("expected ok deploy reply, got {line:?}"))
    })?;
    let mut name = None;
    let mut model = None;
    let mut backend = None;
    let mut version = None;
    let mut nodes = None;
    let mut weight = None;
    let mut resident = None;
    for word in body.split_whitespace() {
        let (key, value) = word
            .split_once('=')
            .ok_or_else(|| ServerError::Protocol(format!("bad field {word:?}")))?;
        match key {
            "tenant" => name = Some(value.to_string()),
            "model" => model = Some(parse_model_kind(value).map_err(ServerError::Protocol)?),
            "backend" => {
                backend = Some(parse_backend_kind(value).map_err(ServerError::Protocol)?);
            }
            "version" => version = Some(parse_u64(value)?),
            "nodes" => nodes = Some(parse_usize(value)?),
            "weight" => {
                weight =
                    Some(value.parse().map_err(|_| {
                        ServerError::Protocol(format!("bad integer {value:?}"))
                    })?);
            }
            "resident" => resident = Some(parse_usize(value)?),
            other => {
                return Err(ServerError::Protocol(format!("unknown field {other:?}")));
            }
        }
    }
    Ok(TenantInfo {
        name: name.ok_or_else(|| missing("tenant"))?,
        model: model.ok_or_else(|| missing("model"))?,
        backend: backend.ok_or_else(|| missing("backend"))?,
        graph_version: version.ok_or_else(|| missing("version"))?,
        num_nodes: nodes.ok_or_else(|| missing("nodes"))?,
        weight: weight.ok_or_else(|| missing("weight"))?,
        queue_depth: 0,
        resident_bytes: resident.ok_or_else(|| missing("resident"))?,
    })
}

/// Renders a retired tenant's send-off as an `ok retire` reply line (no
/// newline), carrying its lifetime counters.
#[must_use]
pub fn encode_retire_ack(tenant: &str, finals: &ServerStats) -> String {
    format!(
        "ok retire tenant={} requests={} completed={} shed={}",
        tenant,
        finals.submitted,
        finals.completed,
        finals.shed()
    )
}

/// Renders one tenant's description as a colon-separated `list` segment
/// (`name:model:backend:version:nodes:weight:depth:resident`).
#[must_use]
pub fn encode_tenant_info(info: &TenantInfo) -> String {
    format!(
        "{}:{}:{}:{}:{}:{}:{}:{}",
        info.name,
        model_kind_name(info.model),
        backend_kind_name(info.backend),
        info.graph_version,
        info.num_nodes,
        info.weight,
        info.queue_depth,
        info.resident_bytes
    )
}

/// Parses one colon-separated `list` segment back into a
/// [`TenantInfo`].
///
/// # Errors
///
/// [`ServerError::Protocol`] when the segment does not have exactly the
/// grammar's eight fields.
pub fn parse_tenant_info(segment: &str) -> Result<TenantInfo, ServerError> {
    let parts: Vec<&str> = segment.split(':').collect();
    let [name, model, backend, version, nodes, weight, depth, resident] = parts[..] else {
        return Err(ServerError::Protocol(format!(
            "expected name:model:backend:version:nodes:weight:depth:resident, got {segment:?}"
        )));
    };
    Ok(TenantInfo {
        name: name.to_string(),
        model: parse_model_kind(model).map_err(ServerError::Protocol)?,
        backend: parse_backend_kind(backend).map_err(ServerError::Protocol)?,
        graph_version: parse_u64(version)?,
        num_nodes: parse_usize(nodes)?,
        weight: weight
            .parse()
            .map_err(|_| ServerError::Protocol(format!("bad integer {weight:?}")))?,
        queue_depth: parse_usize(depth)?,
        resident_bytes: parse_usize(resident)?,
    })
}

/// Renders the deployed-tenant roster as an `ok list` reply line (no
/// newline).
#[must_use]
pub fn encode_list_reply(infos: &[TenantInfo]) -> String {
    let mut line = format!("ok list tenants={}", infos.len());
    for info in infos {
        line.push(' ');
        line.push_str(&encode_tenant_info(info));
    }
    line
}

/// Parses an `ok list` reply back into the tenant roster.
///
/// # Errors
///
/// [`ServerError::Protocol`] on grammar mismatch, including a roster
/// shorter or longer than its own `tenants=` count.
pub fn parse_list_reply(line: &str) -> Result<Vec<TenantInfo>, ServerError> {
    let body = line.strip_prefix("ok list ").ok_or_else(|| {
        ServerError::Protocol(format!("expected ok list reply, got {line:?}"))
    })?;
    let mut words = body.split_whitespace();
    let count_word = words.next().ok_or_else(|| missing("tenants"))?;
    let count: usize = count_word
        .strip_prefix("tenants=")
        .ok_or_else(|| ServerError::Protocol(format!("expected tenants=…, got {count_word:?}")))
        .and_then(parse_usize)?;
    let infos = words.map(parse_tenant_info).collect::<Result<Vec<_>, _>>()?;
    if infos.len() != count {
        return Err(ServerError::Protocol(format!(
            "list reply claims {count} tenants but carries {}",
            infos.len()
        )));
    }
    Ok(infos)
}

fn push_csv(line: &mut String, nodes: &[usize]) {
    for (i, n) in nodes.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let _ = write!(line, "{n}");
    }
}

/// What the client reconstructs from an `ok` infer reply: the response
/// minus the per-layer hardware report (its total cycles and energy
/// cross the wire as scalars).
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteResponse {
    /// One logits row per requested node — bit-identical to the
    /// server-side matrix.
    pub logits: Matrix,
    /// Argmax class per requested node.
    pub predictions: Vec<usize>,
    /// Queue + compute.
    pub latency: Duration,
    /// Time queued before execution.
    pub queue_time: Duration,
    /// Batch execution time the request rode on.
    pub compute_time: Duration,
    /// Whether the full-graph cache answered.
    pub from_cache: bool,
    /// Graph parts executed.
    pub parts: usize,
    /// Requests coalesced into the answering execution.
    pub batch_size: usize,
    /// Graph version the answer was computed against (versions are
    /// per-tenant).
    pub graph_version: u64,
    /// The tenant that served the request.
    pub tenant: String,
    /// Total simulated accelerator cycles (0 for software backends).
    pub sim_cycles: u64,
    /// Simulated energy in joules, when the backend models power.
    pub energy_joules: Option<f64>,
    /// The request's flight-recorder trace id (0 when tracing is off) —
    /// feed it to `trace id=HEX` to pull the per-stage span record.
    pub trace_id: u64,
}

/// Renders a served response as an `ok` reply line (no newline),
/// echoing the tenant that served it.
#[must_use]
pub fn encode_response(response: &InferResponse, tenant: &str) -> String {
    let mut line = format!(
        "ok rows={} cols={} queue_us={} compute_us={} from_cache={} parts={} batch={} \
         version={} tenant={} cycles={}",
        response.logits.rows(),
        response.logits.cols(),
        response.queue_time.as_micros(),
        response.compute_time.as_micros(),
        u8::from(response.from_cache),
        response.parts,
        response.batch_size,
        response.graph_version,
        tenant,
        response.sim.as_ref().map_or(0, |s| s.total_cycles),
    );
    match response.energy_joules {
        // Energy crosses as bits so the round-trip is exact.
        Some(e) => {
            let _ = write!(line, " energy={:016x}", e.to_bits());
        }
        None => line.push_str(" energy=none"),
    }
    let _ = write!(line, " trace={:016x}", response.trace_id);
    line.push_str(" preds=");
    push_csv(&mut line, &response.predictions);
    line.push_str(" logits=");
    for i in 0..response.logits.rows() {
        if i > 0 {
            line.push(';');
        }
        for (j, v) in response.logits.row(i).iter().enumerate() {
            if j > 0 {
                line.push(',');
            }
            let _ = write!(line, "{:016x}", v.to_bits());
        }
    }
    line
}

/// Parses an `ok` infer reply back into a [`RemoteResponse`].
///
/// # Errors
///
/// [`ServerError::Protocol`] when the line does not match the grammar.
pub fn parse_response(line: &str) -> Result<RemoteResponse, ServerError> {
    let body = line
        .strip_prefix("ok ")
        .ok_or_else(|| ServerError::Protocol(format!("expected ok reply, got {line:?}")))?;
    let mut rows = None;
    let mut cols = None;
    let mut queue_us = None;
    let mut compute_us = None;
    let mut from_cache = None;
    let mut parts = None;
    let mut batch = None;
    let mut version = None;
    let mut tenant = None;
    let mut cycles = None;
    let mut energy = None;
    let mut trace_id = None;
    let mut preds = None;
    let mut logits_words = None;
    for word in body.split_whitespace() {
        let (key, value) = word
            .split_once('=')
            .ok_or_else(|| ServerError::Protocol(format!("bad field {word:?}")))?;
        match key {
            "rows" => rows = Some(parse_usize(value)?),
            "cols" => cols = Some(parse_usize(value)?),
            "queue_us" => queue_us = Some(parse_u64(value)?),
            "compute_us" => compute_us = Some(parse_u64(value)?),
            "from_cache" => from_cache = Some(value == "1"),
            "parts" => parts = Some(parse_usize(value)?),
            "batch" => batch = Some(parse_usize(value)?),
            "version" => version = Some(parse_u64(value)?),
            "tenant" => tenant = Some(value.to_string()),
            "cycles" => cycles = Some(parse_u64(value)?),
            "energy" => {
                energy = Some(if value == "none" {
                    None
                } else {
                    Some(f64::from_bits(parse_hex64(value)?))
                });
            }
            "trace" => trace_id = Some(parse_hex64(value)?),
            "preds" => {
                preds = Some(
                    value
                        .split(',')
                        .filter(|w| !w.is_empty())
                        .map(parse_usize)
                        .collect::<Result<Vec<_>, _>>()?,
                )
            }
            "logits" => logits_words = Some(value),
            other => {
                return Err(ServerError::Protocol(format!("unknown field {other:?}")));
            }
        }
    }
    let rows = rows.ok_or_else(|| missing("rows"))?;
    let cols = cols.ok_or_else(|| missing("cols"))?;
    let logits_words = logits_words.ok_or_else(|| missing("logits"))?;
    let mut data = Vec::with_capacity(rows * cols);
    if !logits_words.is_empty() {
        for row in logits_words.split(';') {
            for word in row.split(',').filter(|w| !w.is_empty()) {
                data.push(f64::from_bits(parse_hex64(word)?));
            }
        }
    }
    let logits = Matrix::from_flat(rows, cols, data)
        .map_err(|e| ServerError::Protocol(format!("logits shape: {e}")))?;
    let queue_time = Duration::from_micros(queue_us.ok_or_else(|| missing("queue_us"))?);
    let compute_time = Duration::from_micros(compute_us.ok_or_else(|| missing("compute_us"))?);
    Ok(RemoteResponse {
        logits,
        predictions: preds.ok_or_else(|| missing("preds"))?,
        latency: queue_time + compute_time,
        queue_time,
        compute_time,
        from_cache: from_cache.ok_or_else(|| missing("from_cache"))?,
        parts: parts.ok_or_else(|| missing("parts"))?,
        batch_size: batch.ok_or_else(|| missing("batch"))?,
        graph_version: version.ok_or_else(|| missing("version"))?,
        tenant: tenant.ok_or_else(|| missing("tenant"))?,
        sim_cycles: cycles.ok_or_else(|| missing("cycles"))?,
        energy_joules: energy.ok_or_else(|| missing("energy"))?,
        // Absent on replies from pre-tracing servers — 0 means untraced.
        trace_id: trace_id.unwrap_or(0),
    })
}

/// What the `health` verb reports: the worker pool's supervision state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthReport {
    /// Configured worker count.
    pub workers: usize,
    /// Workers currently serving (dips while a crashed worker backs
    /// off before its respawn).
    pub alive: usize,
    /// Lifetime worker crashes (panics caught by a fault domain).
    pub crashes: u64,
    /// Lifetime worker respawns.
    pub restarts: u64,
    /// Whether the circuit breaker currently marks the pool degraded
    /// (brownout shedding active).
    pub degraded: bool,
}

/// Renders a pool-health report as an `ok health` reply line (no
/// newline).
#[must_use]
pub fn encode_health(health: &HealthReport) -> String {
    format!(
        "ok health workers={} alive={} crashes={} restarts={} degraded={}",
        health.workers, health.alive, health.crashes, health.restarts, health.degraded
    )
}

/// Parses an `ok health` reply back into a [`HealthReport`].
///
/// # Errors
///
/// [`ServerError::Protocol`] when the line does not match the grammar.
pub fn parse_health(line: &str) -> Result<HealthReport, ServerError> {
    let body = line.strip_prefix("ok health ").ok_or_else(|| {
        ServerError::Protocol(format!("expected ok health reply, got {line:?}"))
    })?;
    let mut workers = None;
    let mut alive = None;
    let mut crashes = None;
    let mut restarts = None;
    let mut degraded = None;
    for word in body.split_whitespace() {
        let (key, value) = word
            .split_once('=')
            .ok_or_else(|| ServerError::Protocol(format!("bad field {word:?}")))?;
        match key {
            "workers" => workers = Some(parse_usize(value)?),
            "alive" => alive = Some(parse_usize(value)?),
            "crashes" => crashes = Some(parse_u64(value)?),
            "restarts" => restarts = Some(parse_u64(value)?),
            "degraded" => {
                degraded = Some(match value {
                    "true" => true,
                    "false" => false,
                    other => {
                        return Err(ServerError::Protocol(format!("bad degraded {other:?}")));
                    }
                });
            }
            other => {
                return Err(ServerError::Protocol(format!("unknown field {other:?}")));
            }
        }
    }
    Ok(HealthReport {
        workers: workers.ok_or_else(|| missing("workers"))?,
        alive: alive.ok_or_else(|| missing("alive"))?,
        crashes: crashes.ok_or_else(|| missing("crashes"))?,
        restarts: restarts.ok_or_else(|| missing("restarts"))?,
        degraded: degraded.ok_or_else(|| missing("degraded"))?,
    })
}

fn missing(field: &str) -> ServerError {
    ServerError::Protocol(format!("reply missing {field}"))
}

fn parse_usize(v: &str) -> Result<usize, ServerError> {
    v.parse().map_err(|_| ServerError::Protocol(format!("bad integer {v:?}")))
}

fn parse_u64(v: &str) -> Result<u64, ServerError> {
    v.parse().map_err(|_| ServerError::Protocol(format!("bad integer {v:?}")))
}

fn parse_hex64(v: &str) -> Result<u64, ServerError> {
    u64::from_str_radix(v, 16).map_err(|_| ServerError::Protocol(format!("bad hex word {v:?}")))
}

/// Renders an error as an `err` reply line (no newline).
#[must_use]
pub fn encode_error(error: &ServerError) -> String {
    let kind = match error {
        ServerError::Overloaded { .. } => "overloaded",
        ServerError::DeadlineExceeded { .. } => "deadline",
        ServerError::ShuttingDown => "shutting_down",
        ServerError::Canceled => "canceled",
        ServerError::WorkerCrashed => "worker_crashed",
        ServerError::Timeout { .. } => "timeout",
        ServerError::UnknownTenant { .. } => "unknown_tenant",
        ServerError::TenantExists { .. } => "tenant_exists",
        ServerError::TenantBudget { .. } => "tenant_budget",
        ServerError::Engine(_) | ServerError::RemoteEngine(_) => "engine",
        ServerError::Protocol(_) => "protocol",
        ServerError::Io(_) => "io",
    };
    // Tenant errors carry machine-readable fields instead of prose, so
    // the client-side parse rebuilds the exact typed error (names are
    // charset-validated and never contain spaces).
    match error {
        ServerError::UnknownTenant { name } | ServerError::TenantExists { name } => {
            format!("err {kind} {name}")
        }
        ServerError::TenantBudget { needed, budget } => {
            format!("err {kind} needed={needed} budget={budget}")
        }
        _ => format!("err {kind} {error}"),
    }
}

/// Parses an `err` reply back into its typed kind. Tenant errors
/// rebuild exactly (name / budget numbers cross the wire); detail
/// fields that do not cross — exact depths, waits — come back zeroed;
/// the *kind* is what retry logic branches on.
///
/// # Errors
///
/// [`ServerError::Protocol`] when the line is not an `err` reply.
pub fn parse_error(line: &str) -> Result<ServerError, ServerError> {
    let body = line
        .strip_prefix("err ")
        .ok_or_else(|| ServerError::Protocol(format!("expected err reply, got {line:?}")))?;
    let (kind, message) = body.split_once(' ').unwrap_or((body, ""));
    Ok(match kind {
        "overloaded" => ServerError::Overloaded { depth: 0, max_depth: 0 },
        "deadline" => ServerError::DeadlineExceeded { waited: Duration::ZERO },
        "shutting_down" => ServerError::ShuttingDown,
        "canceled" => ServerError::Canceled,
        "worker_crashed" => ServerError::WorkerCrashed,
        "timeout" => ServerError::Timeout { waited: Duration::ZERO },
        "unknown_tenant" => ServerError::UnknownTenant { name: message.to_string() },
        "tenant_exists" => ServerError::TenantExists { name: message.to_string() },
        "tenant_budget" => {
            let mut needed = 0;
            let mut budget = 0;
            for word in message.split_whitespace() {
                match word.split_once('=') {
                    Some(("needed", v)) => needed = parse_usize(v)?,
                    Some(("budget", v)) => budget = parse_usize(v)?,
                    _ => {}
                }
            }
            ServerError::TenantBudget { needed, budget }
        }
        "engine" | "bad_request" => ServerError::RemoteEngine(message.to_string()),
        "protocol" => ServerError::Protocol(message.to_string()),
        "io" => ServerError::Io(message.to_string()),
        other => return Err(ServerError::Protocol(format!("unknown error kind {other:?}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockgnn_engine::{BackendKind, RequestMode};
    use blockgnn_gnn::ModelKind;

    #[test]
    fn infer_lines_round_trip() {
        let request = InferRequest::sampled(vec![3, 1, 3], 10, 5, 42);
        let options =
            SubmitOptions { class: SloClass::Gold, deadline: Some(Duration::from_millis(75)) };
        let line = encode_infer(&request, options, None);
        assert!(line.contains(" class=gold "), "{line}");
        match parse_command(&line).unwrap() {
            Command::Infer(r, o, tenant) => {
                assert_eq!(r, request);
                assert_eq!(o, options);
                assert_eq!(tenant, None);
            }
            other => panic!("wrong command {other:?}"),
        }
        let all = encode_infer(&InferRequest::all_nodes(), SubmitOptions::default(), None);
        assert!(!all.contains("class="), "the default class stays off the wire");
        match parse_command(&all).unwrap() {
            Command::Infer(r, o, _) => {
                assert_eq!(r.mode, RequestMode::FullGraph);
                assert!(r.nodes.is_empty());
                assert_eq!(o.class, SloClass::Silver, "unlabelled traffic is silver");
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn class_clauses_parse_and_reject_typed() {
        for class in SloClass::ALL {
            let line = format!("infer full 0 class={class}");
            match parse_command(&line).unwrap() {
                Command::Infer(_, o, _) => assert_eq!(o.class, class),
                other => panic!("wrong command {other:?}"),
            }
            assert_eq!(SloClass::parse(class.name()).unwrap(), class);
        }
        // Malformed class clauses are protocol errors, not panics — and
        // the old bare-integer priority clause is gone from the grammar.
        for bad in [
            "infer full 0 class=diamond",
            "infer full 0 class=",
            "infer full 0 class=GOLD",
            "infer full 0 priority=2",
            "infer sampled s1=2 s2=1 seed=0 nodes=1 class=goldd",
        ] {
            assert!(parse_command(bad).is_err(), "{bad:?} must be a protocol error");
        }
    }

    #[test]
    fn tenant_qualifiers_parse_and_round_trip() {
        let request = InferRequest::full_graph(vec![0, 2]);
        let line = encode_infer(&request, SubmitOptions::default(), Some("traffic"));
        assert!(line.starts_with("infer@traffic "));
        match parse_command(&line).unwrap() {
            Command::Infer(r, _, tenant) => {
                assert_eq!(r, request);
                assert_eq!(tenant.as_deref(), Some("traffic"));
            }
            other => panic!("wrong command {other:?}"),
        }
        let update = encode_update(&GraphDelta::new().add_edge(0, 1), Some("traffic"));
        match parse_command(&update).unwrap() {
            Command::Update(_, tenant) => assert_eq!(tenant.as_deref(), Some("traffic")),
            other => panic!("wrong command {other:?}"),
        }
        assert_eq!(parse_command("stats").unwrap(), Command::Stats(None));
        assert_eq!(
            parse_command(&encode_stats(Some("t-1"))).unwrap(),
            Command::Stats(Some("t-1".into()))
        );
        // The qualifier is only legal on infer/update/stats; names obey
        // the wire charset.
        for bad in [
            "ping@t",
            "shutdown@t",
            "list@t",
            "deploy@t x=cora-small:gcn:dense",
            "retire@t t",
            "infer@ full all",
            "infer@a:b full all",
            "infer@a b full all",
        ] {
            assert!(parse_command(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn deploy_retire_list_lines_round_trip() {
        // Defaults stay compact.
        let spec =
            TenantSpec::new("traffic", "citeseer-small", ModelKind::GsPool, BackendKind::Dense);
        assert_eq!(encode_deploy(&spec), "deploy traffic=citeseer-small:gs-pool:dense");
        assert_eq!(parse_command(&encode_deploy(&spec)).unwrap(), Command::Deploy(spec));
        // Non-default knobs survive the wire.
        let spec = TenantSpec::new("t2", "cora-small", ModelKind::Gat, BackendKind::Spectral)
            .weight(3)
            .max_queue_depth(17)
            .hidden_dim(16)
            .block_size(4)
            .seed(7);
        assert_eq!(parse_command(&encode_deploy(&spec)).unwrap(), Command::Deploy(spec));
        assert_eq!(parse_command("retire traffic").unwrap(), Command::Retire("traffic".into()));
        assert_eq!(parse_command("list").unwrap(), Command::List);
        for bad in [
            "deploy",
            "deploy nope",
            "deploy x=cora-small:gcn:dense wat=1",
            "deploy x=cora-small:gcn:dense weight=zero",
            "retire",
            "retire a b",
            "retire a:b",
        ] {
            assert!(parse_command(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn deploy_and_list_acks_round_trip() {
        let info = TenantInfo {
            name: "traffic".into(),
            model: ModelKind::GsPool,
            backend: BackendKind::SimulatedAccel,
            graph_version: 4,
            num_nodes: 61,
            weight: 3,
            queue_depth: 0,
            resident_bytes: 123_456,
        };
        assert_eq!(parse_deploy_ack(&encode_deploy_ack(&info)).unwrap(), info);
        let other = TenantInfo {
            name: "default".into(),
            model: ModelKind::Gcn,
            backend: BackendKind::Dense,
            graph_version: 0,
            num_nodes: 60,
            weight: 1,
            queue_depth: 2,
            resident_bytes: 98_765,
        };
        let roster = vec![other, info];
        assert_eq!(parse_list_reply(&encode_list_reply(&roster)).unwrap(), roster);
        assert_eq!(parse_list_reply("ok list tenants=0").unwrap(), Vec::new());
        // A roster that disagrees with its own count is a protocol error.
        assert!(parse_list_reply("ok list tenants=2 a:gcn:dense:0:1:1:0:9").is_err());
        assert!(parse_list_reply("ok list tenants=0 a:gcn:dense:0:1:1:0:9").is_err());
        assert!(parse_tenant_info("a:gcn:dense:0:1:1:0").is_err(), "seven fields");
        assert!(parse_deploy_ack("ok deploy tenant=a model=gcn").is_err(), "missing fields");
    }

    #[test]
    fn simple_commands_parse() {
        assert_eq!(parse_command("ping").unwrap(), Command::Ping);
        assert_eq!(parse_command("stats").unwrap(), Command::Stats(None));
        assert_eq!(parse_command("shutdown").unwrap(), Command::Shutdown);
        assert!(parse_command("nonsense").is_err());
        assert!(parse_command("infer sideways 1,2").is_err());
        assert!(parse_command("infer sampled s1=a s2=2 seed=3 nodes=1").is_err());
    }

    #[test]
    fn responses_round_trip_bit_exactly() {
        let logits = Matrix::from_fn(2, 3, |i, j| {
            // Awkward values: negatives, subnormals, long fractions.
            (i as f64 - 0.5) * (j as f64 + 1.0) * 0.123_456_789 + f64::MIN_POSITIVE
        });
        let response = InferResponse {
            logits: logits.clone(),
            predictions: vec![2, 0],
            latency: Duration::from_micros(30),
            queue_time: Duration::from_micros(10),
            compute_time: Duration::from_micros(20),
            sim: None,
            energy_joules: Some(1.25e-3),
            from_cache: false,
            parts: 1,
            batch_size: 4,
            graph_version: 17,
            trace_id: 0xDEAD_BEEF,
            hot_rows: 0,
        };
        let line = encode_response(&response, "traffic");
        assert!(line.contains(" trace=00000000deadbeef "), "{line}");
        let remote = parse_response(&line).unwrap();
        assert_eq!(remote.logits, logits, "logits survive the wire bit-exactly");
        assert_eq!(remote.predictions, vec![2, 0]);
        assert_eq!(remote.queue_time, Duration::from_micros(10));
        assert_eq!(remote.compute_time, Duration::from_micros(20));
        assert_eq!(remote.latency, Duration::from_micros(30));
        assert_eq!(remote.batch_size, 4);
        assert_eq!(remote.graph_version, 17);
        assert_eq!(remote.tenant, "traffic", "replies echo the serving tenant");
        assert_eq!(remote.energy_joules, Some(1.25e-3));
        assert_eq!(remote.trace_id, 0xDEAD_BEEF, "the trace id rides the reply");
        assert!(!remote.from_cache);
        // A reply from a pre-tracing server (no trace=) still parses.
        let stripped = line.replace(" trace=00000000deadbeef", "");
        assert_eq!(parse_response(&stripped).unwrap().trace_id, 0);
    }

    #[test]
    fn update_lines_round_trip_bit_exactly() {
        let delta = GraphDelta::new()
            .add_edge(0, 5)
            .add_edge(3, 3)
            .remove_edge(7, 2)
            .set_feature_row(4, vec![0.1, -2.5e-8, f64::MIN_POSITIVE])
            .append_node(vec![1.0, 2.0, 3.0])
            .append_node(vec![-0.0, f64::MAX, 1.5]);
        let line = encode_update(&delta, None);
        match parse_command(&line).unwrap() {
            Command::Update(parsed, tenant) => {
                assert_eq!(tenant, None);
                assert_eq!(parsed.add_edges, delta.add_edges);
                assert_eq!(parsed.remove_edges, delta.remove_edges);
                // Feature rows must survive bit-exactly (hex bit words).
                for ((an, a), (bn, b)) in parsed.set_features.iter().zip(&delta.set_features) {
                    assert_eq!(an, bn);
                    for (x, y) in a.iter().zip(b) {
                        assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
                for (a, b) in parsed.append_nodes.iter().zip(&delta.append_nodes) {
                    for (x, y) in a.iter().zip(b) {
                        assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
            }
            other => panic!("wrong command {other:?}"),
        }
        // An empty delta parses cleanly (the engine rejects it, typed).
        assert_eq!(parse_command("update").unwrap(), Command::Update(GraphDelta::new(), None));
        // Malformed clauses are protocol errors.
        assert!(parse_command("update add=1-2").is_err());
        assert!(parse_command("update bogus=1").is_err());
        assert!(parse_command("update feat=1").is_err());
        assert!(parse_command("update new=xyz").is_err());
    }

    #[test]
    fn update_acks_round_trip() {
        let ack =
            UpdateAck { tenant: "default".into(), version: 9, num_nodes: 120, num_arcs: 512 };
        assert_eq!(
            encode_update_ack(&ack),
            "ok update tenant=default version=9 nodes=120 arcs=512"
        );
        assert_eq!(parse_update_ack(&encode_update_ack(&ack)).unwrap(), ack);
        assert!(
            parse_update_ack("ok update version=1 nodes=2 arcs=3").is_err(),
            "missing tenant"
        );
        assert!(parse_update_ack("ok update tenant=a version=1 nodes=2").is_err(), "no arcs");
        assert!(parse_update_ack("err engine nope").is_err());
    }

    /// Fuzz-style robustness: valid update/infer/stats *and*
    /// deploy/retire/list lines (with `@tenant` qualifiers and `class=`
    /// clauses where the grammar allows them), their truncations, garbled
    /// variants, and pure noise must all come back as `Ok`/`Err` — never
    /// a panic — with a seeded RNG so any failure replays. (The
    /// connection-level counterparts in `tests/server.rs` and
    /// `tests/workloads.rs` prove rejected lines also never poison the
    /// TCP session or the shared graph.)
    #[test]
    fn fuzzed_command_lines_never_panic() {
        use blockgnn_graph::generate::Rng64;
        let mut rng = Rng64::new(0xF422_0B5E);
        let tenants = [None, Some("t0"), Some("traffic-2"), Some("a.b_c")];
        let models = [ModelKind::Gcn, ModelKind::GsPool, ModelKind::Gat];
        let backends = [BackendKind::Dense, BackendKind::Spectral, BackendKind::SimulatedAccel];
        for _ in 0..600 {
            let n = 50;
            let mut delta = GraphDelta::new();
            for _ in 0..rng.next_below(4) {
                delta = delta.add_edge(rng.next_below(n), rng.next_below(n));
            }
            if rng.next_below(2) == 0 {
                delta = delta.remove_edge(rng.next_below(n), rng.next_below(n));
            }
            if rng.next_below(2) == 0 {
                let row: Vec<f64> = (0..rng.next_below(4)).map(|_| rng.next_normal()).collect();
                delta = delta.set_feature_row(rng.next_below(n), row);
            }
            if rng.next_below(3) == 0 {
                delta = delta.append_node(vec![rng.next_normal(); rng.next_below(3)]);
            }
            let tenant = tenants[rng.next_below(tenants.len())];
            let options = SubmitOptions {
                class: SloClass::ALL[rng.next_below(SloClass::ALL.len())],
                deadline: (rng.next_below(2) == 0)
                    .then(|| Duration::from_millis(rng.next_below(500) as u64)),
            };
            let mut spec = TenantSpec::new(
                format!("fz{}", rng.next_below(8)),
                "cora-small",
                models[rng.next_below(models.len())],
                backends[rng.next_below(backends.len())],
            );
            if rng.next_below(2) == 0 {
                spec = spec.weight(rng.next_below(7) as u32 + 1);
            }
            if rng.next_below(3) == 0 {
                spec = spec.max_queue_depth(rng.next_below(64) + 1).seed(rng.next_u64());
            }
            let lines = [
                encode_update(&delta, tenant),
                encode_infer(
                    &InferRequest::sampled(vec![rng.next_below(n)], 4, 2, rng.next_u64()),
                    options,
                    tenant,
                ),
                encode_stats(tenant),
                encode_deploy(&spec),
                format!("retire fz{}", rng.next_below(8)),
                "list".to_string(),
                "metrics".to_string(),
                "health".to_string(),
                // Observability verbs: every valid trace query shape.
                match rng.next_below(4) {
                    0 => "trace".to_string(),
                    1 => format!("trace last={}", rng.next_below(64)),
                    2 => format!("trace id={:016x}", rng.next_u64()),
                    _ => ["trace slow", "trace export"][rng.next_below(2)].to_string(),
                },
            ];
            for line in &lines {
                parse_command(line).expect("well-formed encodings parse");
                // Truncation at any byte (lines are ASCII).
                let cut = rng.next_below(line.len() + 1);
                let _ = parse_command(&line[..cut]);
                // One garbled byte.
                let mut garbled = line.clone().into_bytes();
                if !garbled.is_empty() {
                    let at = rng.next_below(garbled.len());
                    garbled[at] = (rng.next_below(94) + 33) as u8;
                }
                let _ = parse_command(&String::from_utf8_lossy(&garbled));
            }
            // Pure noise.
            let noise: String = (0..rng.next_below(40))
                .map(|_| (rng.next_below(94) + 33) as u8 as char)
                .collect();
            let _ = parse_command(&noise);
            // Fault-plan specs ride the same robustness bar: the valid
            // CI spec parses, and truncated / garbled / noise variants
            // must come back `Err`, never panic.
            let spec = "seed=0xC4A05F17,panic=120,max_panics=6,latency=40,latency_us=400,\
                        alloc=20,reset=60,max_resets=8,stall=20,stall_us=800";
            crate::fault::FaultPlan::parse(spec).expect("the CI chaos spec parses");
            let cut = rng.next_below(spec.len() + 1);
            let _ = crate::fault::FaultPlan::parse(&spec[..cut]);
            let mut garbled = spec.as_bytes().to_vec();
            let at = rng.next_below(garbled.len());
            garbled[at] = (rng.next_below(94) + 33) as u8;
            let _ = crate::fault::FaultPlan::parse(&String::from_utf8_lossy(&garbled));
            let _ = crate::fault::FaultPlan::parse(&noise);
        }
    }

    #[test]
    fn malformed_update_clauses_fail_typed() {
        for bad in [
            "update add=1",
            "update add=1:b",
            "update add=a:2",
            "update del=1-2",
            "update feat=9",
            "update feat=x:0",
            "update feat=1:zz",
            "update new=zz",
            "update wat=1",
            "update add=1:2 extra",
        ] {
            assert!(parse_command(bad).is_err(), "{bad:?} must be a protocol error");
        }
        // Empty clauses are *syntactically* fine — they produce an empty
        // delta, which the engine then rejects with a typed EmptyDelta.
        for ok in ["update", "update add=", "update new="] {
            match parse_command(ok).unwrap() {
                Command::Update(delta, _) => assert!(delta.is_empty()),
                other => panic!("wrong command {other:?}"),
            }
        }
    }

    #[test]
    fn metrics_and_trace_commands_parse_and_reject_malformed_args() {
        use crate::observe::TraceQuery;
        assert_eq!(parse_command("metrics").unwrap(), Command::Metrics);
        assert_eq!(parse_command("trace").unwrap(), Command::Trace(TraceQuery::Last(16)));
        assert_eq!(parse_command("trace last=5").unwrap(), Command::Trace(TraceQuery::Last(5)));
        assert_eq!(
            parse_command("trace id=00000000000000ff").unwrap(),
            Command::Trace(TraceQuery::Id(0xFF))
        );
        assert_eq!(parse_command("trace id=ab").unwrap(), Command::Trace(TraceQuery::Id(0xAB)));
        assert_eq!(parse_command("trace slow").unwrap(), Command::Trace(TraceQuery::Slow));
        assert_eq!(parse_command("trace export").unwrap(), Command::Trace(TraceQuery::Export));
        for bad in [
            "metrics now",
            "metrics@t",
            "trace@t",
            "trace last=",
            "trace last=abc",
            "trace last=-3",
            "trace id=",
            "trace id=zz",
            "trace id=123q",
            "trace fast",
            "trace slow extra",
            "trace export x",
            "trace last=3 id=4",
        ] {
            assert!(parse_command(bad).is_err(), "{bad:?} must be a protocol error");
        }
    }

    #[test]
    fn health_commands_and_replies_round_trip() {
        assert_eq!(parse_command("health").unwrap(), Command::Health);
        for bad in ["health now", "health@t", "healthy", "health degraded"] {
            assert!(parse_command(bad).is_err(), "{bad:?} must be a protocol error");
        }
        let report =
            HealthReport { workers: 2, alive: 1, crashes: 3, restarts: 2, degraded: true };
        let line = encode_health(&report);
        assert_eq!(line, "ok health workers=2 alive=1 crashes=3 restarts=2 degraded=true");
        assert_eq!(parse_health(&line).unwrap(), report);
        assert!(parse_health("ok health workers=2 alive=2").is_err(), "missing fields");
        assert!(parse_health(
            "ok health workers=2 alive=2 crashes=0 restarts=0 degraded=maybe"
        )
        .is_err());
        assert!(parse_health("err io nope").is_err());
    }

    #[test]
    fn errors_round_trip_to_kind() {
        let shed = ServerError::Overloaded { depth: 9, max_depth: 9 };
        assert!(matches!(
            parse_error(&encode_error(&shed)).unwrap(),
            ServerError::Overloaded { .. }
        ));
        let late = ServerError::DeadlineExceeded { waited: Duration::from_millis(1) };
        assert!(matches!(
            parse_error(&encode_error(&late)).unwrap(),
            ServerError::DeadlineExceeded { .. }
        ));
        assert_eq!(
            parse_error(&encode_error(&ServerError::ShuttingDown)).unwrap(),
            ServerError::ShuttingDown
        );
        // The tenant-lifecycle kinds rebuild exactly: names and budget
        // numbers cross the wire as machine-readable fields.
        let ghost = ServerError::UnknownTenant { name: "ghost".into() };
        assert_eq!(parse_error(&encode_error(&ghost)).unwrap(), ghost);
        let dup = ServerError::TenantExists { name: "dup".into() };
        assert_eq!(parse_error(&encode_error(&dup)).unwrap(), dup);
        let fat = ServerError::TenantBudget { needed: 10, budget: 5 };
        assert_eq!(parse_error(&encode_error(&fat)).unwrap(), fat);
        // The fault-domain kinds: a crashed worker's typed reply and the
        // client-side timeout both round-trip to their kind.
        assert_eq!(
            parse_error(&encode_error(&ServerError::WorkerCrashed)).unwrap(),
            ServerError::WorkerCrashed
        );
        let slow = ServerError::Timeout { waited: Duration::from_millis(250) };
        assert!(matches!(
            parse_error(&encode_error(&slow)).unwrap(),
            ServerError::Timeout { .. }
        ));
    }
}
