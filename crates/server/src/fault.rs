//! Deterministic fault injection and fault-domain machinery: seeded
//! [`FaultPlan`]s, the compiled-in [`FaultInjector`] the hot paths
//! consult, the supervision [`CircuitBreaker`], and the poison-immune
//! lock helper every shared-state guard in this crate goes through.
//!
//! # Determinism contract
//!
//! A [`FaultPlan`] is a pure value, exactly like
//! [`crate::workload::WorkloadSpec`]: every injection decision is a
//! SplitMix64 hash of `(seed, site, per-site counter)`, so the *n*-th
//! draw at a given site always lands the same way regardless of thread
//! interleaving across sites. Replaying a trace against a server built
//! with the same plan therefore injects the same fault sequence per
//! site — a chaos run is replayable byte for byte.
//!
//! # Injection-point map
//!
//! | site      | layer                       | faults drawn                |
//! |-----------|-----------------------------|-----------------------------|
//! | `engine`  | worker batch loop, at the   | panic, artificial latency,  |
//! |           | engine-stage boundary       | allocation failure          |
//! | `socket`  | TCP connection loop, per    | connection reset, write     |
//! |           | command line                | stall                       |
//!
//! Every site is compiled into the real code path; with no plan
//! configured the [`FaultInjector`] handle is a `None` and the check is
//! one branch (the `server_load` bench pins the overhead ≥ 0.98×).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Locks a mutex, recovering the guard even if a previous holder
/// panicked. Every value guarded this way is kept consistent by
/// construction (single-assignment publishes, append-only counters), so
/// a poisoned flag carries no information beyond "a neighbor crashed" —
/// and one crash must never wedge a neighbor.
pub(crate) fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// SplitMix64 — the same finalizer [`blockgnn_graph::generate::Rng64`]
/// uses, applied statelessly to a composed key so draws are a pure
/// function of `(seed, site, counter)`.
pub(crate) fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Everything that determines an injected fault sequence. Same plan →
/// same per-site fault decisions, byte for byte.
///
/// Rates are per-mille of draws at the site; budgets (`max_*`) cap how
/// many of a fault kind ever fire (0 = unlimited). Engine-site draws
/// stack their rates: a roll under `panic_permille` panics, under
/// `panic + latency` sleeps, under `panic + latency + alloc` fails the
/// batch with a typed allocation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the stateless SplitMix64 stream every decision hashes.
    pub seed: u64,
    /// Worker panics per 1000 engine-stage draws.
    pub panic_permille: u32,
    /// Cap on injected panics (0 = unlimited).
    pub max_panics: u32,
    /// Artificial latency injections per 1000 engine-stage draws.
    pub latency_permille: u32,
    /// Duration of one injected latency stall, microseconds.
    pub latency_us: u64,
    /// Simulated allocation failures per 1000 engine-stage draws.
    pub alloc_permille: u32,
    /// Connection resets per 1000 socket draws (one draw per command
    /// line).
    pub reset_permille: u32,
    /// Cap on injected resets (0 = unlimited).
    pub max_resets: u32,
    /// Write stalls per 1000 socket draws.
    pub stall_permille: u32,
    /// Duration of one injected socket stall, microseconds.
    pub stall_us: u64,
}

impl FaultPlan {
    /// A plan with the given seed and every rate zero — a no-op until
    /// rates are set (useful for measuring injection-point overhead).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            panic_permille: 0,
            max_panics: 0,
            latency_permille: 0,
            latency_us: 500,
            alloc_permille: 0,
            reset_permille: 0,
            max_resets: 0,
            stall_permille: 0,
            stall_us: 1000,
        }
    }

    /// Sets the worker-panic rate and budget (0 budget = unlimited).
    #[must_use]
    pub fn with_panics(mut self, permille: u32, max: u32) -> Self {
        self.panic_permille = permille;
        self.max_panics = max;
        self
    }

    /// Sets the artificial-latency rate and stall length.
    #[must_use]
    pub fn with_latency(mut self, permille: u32, stall_us: u64) -> Self {
        self.latency_permille = permille;
        self.latency_us = stall_us;
        self
    }

    /// Sets the simulated allocation-failure rate.
    #[must_use]
    pub fn with_alloc_failures(mut self, permille: u32) -> Self {
        self.alloc_permille = permille;
        self
    }

    /// Sets the connection-reset rate and budget (0 budget = unlimited).
    #[must_use]
    pub fn with_resets(mut self, permille: u32, max: u32) -> Self {
        self.reset_permille = permille;
        self.max_resets = max;
        self
    }

    /// Sets the socket write-stall rate and stall length.
    #[must_use]
    pub fn with_stalls(mut self, permille: u32, stall_us: u64) -> Self {
        self.stall_permille = permille;
        self.stall_us = stall_us;
        self
    }

    /// Parses the compact `key=value[,key=value…]` spec the
    /// `blockgnn-serve --faults` flag carries, e.g.
    /// `seed=0xFA17,panic=40,max_panics=3,reset=30,max_resets=5`.
    ///
    /// Keys: `seed` (decimal or `0x` hex), `panic`, `max_panics`,
    /// `latency`, `latency_us`, `alloc`, `reset`, `max_resets`,
    /// `stall`, `stall_us`. Rates are per-mille and clamped to 1000.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending field; parsing
    /// never panics, however garbled the input.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new(0xFA17_5EED);
        if spec.trim().is_empty() {
            return Err("empty fault plan".into());
        }
        for field in spec.split(',') {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("fault-plan field {field:?} is not key=value"))?;
            let permille = |v: &str| -> Result<u32, String> {
                v.parse::<u32>()
                    .map(|p| p.min(1000))
                    .map_err(|_| format!("bad fault-plan rate {v:?} for {key}"))
            };
            let count = |v: &str| -> Result<u32, String> {
                v.parse::<u32>().map_err(|_| format!("bad fault-plan count {v:?} for {key}"))
            };
            let micros = |v: &str| -> Result<u64, String> {
                v.parse::<u64>().map_err(|_| format!("bad fault-plan micros {v:?} for {key}"))
            };
            match key {
                "seed" => {
                    let parsed =
                        match value.strip_prefix("0x").or_else(|| value.strip_prefix("0X")) {
                            Some(hex) => u64::from_str_radix(&hex.replace('_', ""), 16).ok(),
                            None => value.parse().ok(),
                        };
                    plan.seed =
                        parsed.ok_or_else(|| format!("bad fault-plan seed {value:?}"))?;
                }
                "panic" => plan.panic_permille = permille(value)?,
                "max_panics" => plan.max_panics = count(value)?,
                "latency" => plan.latency_permille = permille(value)?,
                "latency_us" => plan.latency_us = micros(value)?,
                "alloc" => plan.alloc_permille = permille(value)?,
                "reset" => plan.reset_permille = permille(value)?,
                "max_resets" => plan.max_resets = count(value)?,
                "stall" => plan.stall_permille = permille(value)?,
                "stall_us" => plan.stall_us = micros(value)?,
                other => return Err(format!("unknown fault-plan key {other:?}")),
            }
        }
        Ok(plan)
    }

    /// The pinned chaos plan the CI `chaos` lane drives: a handful of
    /// worker panics and connection resets plus background latency, all
    /// from one frozen seed, calibrated so a PR-7 adversarial replay
    /// observes ≥ 3 crashes and several resets yet converges.
    #[must_use]
    pub fn ci_chaos() -> Self {
        FaultPlan::new(0xC4A0_5F17)
            .with_panics(120, 6)
            .with_latency(40, 400)
            .with_alloc_failures(20)
            .with_resets(60, 8)
            .with_stalls(20, 800)
    }
}

/// What an engine-stage draw decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineFault {
    /// Proceed normally.
    None,
    /// Panic the worker mid-batch (the supervision path's test vector).
    Panic,
    /// Sleep for the given stall before executing.
    Latency(Duration),
    /// Fail the batch with a typed allocation error (no crash).
    AllocFail,
}

/// What a socket draw decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketFault {
    /// Proceed normally.
    None,
    /// Drop the connection without replying (a TCP reset, as the client
    /// sees it).
    Reset,
    /// Sleep for the given stall before replying.
    Stall(Duration),
}

/// Per-site decision state: a draw counter and how many faults of each
/// budgeted kind have fired.
#[derive(Debug, Default)]
struct SiteState {
    draws: AtomicU64,
    fired: AtomicU32,
}

#[derive(Debug)]
struct InjectorInner {
    plan: FaultPlan,
    engine: SiteState,
    socket: SiteState,
    latencies: AtomicU64,
    alloc_fails: AtomicU64,
    stalls: AtomicU64,
}

/// The handle the hot paths consult. Cloning is cheap; a disabled
/// injector is a `None` and every check is a single branch.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    inner: Option<Arc<InjectorInner>>,
}

/// Site salts: distinct per injection point so each site sees an
/// independent deterministic stream from one seed.
const SITE_ENGINE: u64 = 0x1111_1111_1111_1111;
const SITE_SOCKET: u64 = 0x2222_2222_2222_2222;

impl FaultInjector {
    /// An injector that never fires — the default, and free.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An injector executing the given plan.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            inner: Some(Arc::new(InjectorInner {
                plan,
                engine: SiteState::default(),
                socket: SiteState::default(),
                latencies: AtomicU64::new(0),
                alloc_fails: AtomicU64::new(0),
                stalls: AtomicU64::new(0),
            })),
        }
    }

    /// Whether a plan is loaded (even an all-zero-rate one).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Draws one engine-stage decision. Called by the worker loop at
    /// the batch's engine boundary.
    #[must_use]
    pub fn engine_fault(&self) -> EngineFault {
        let Some(inner) = &self.inner else { return EngineFault::None };
        let plan = &inner.plan;
        let stacked = plan.panic_permille + plan.latency_permille + plan.alloc_permille;
        if stacked == 0 {
            return EngineFault::None;
        }
        let n = inner.engine.draws.fetch_add(1, Ordering::Relaxed);
        let roll = (splitmix(plan.seed ^ SITE_ENGINE ^ n) % 1000) as u32;
        if roll < plan.panic_permille {
            if Self::budget_ok(&inner.engine.fired, plan.max_panics) {
                return EngineFault::Panic;
            }
            return EngineFault::None;
        }
        if roll < plan.panic_permille + plan.latency_permille {
            inner.latencies.fetch_add(1, Ordering::Relaxed);
            return EngineFault::Latency(Duration::from_micros(plan.latency_us));
        }
        if roll < stacked {
            inner.alloc_fails.fetch_add(1, Ordering::Relaxed);
            return EngineFault::AllocFail;
        }
        EngineFault::None
    }

    /// Draws one socket decision. Called by the TCP connection loop once
    /// per command line.
    #[must_use]
    pub fn socket_fault(&self) -> SocketFault {
        let Some(inner) = &self.inner else { return SocketFault::None };
        let plan = &inner.plan;
        if plan.reset_permille + plan.stall_permille == 0 {
            return SocketFault::None;
        }
        let n = inner.socket.draws.fetch_add(1, Ordering::Relaxed);
        let roll = (splitmix(plan.seed ^ SITE_SOCKET ^ n) % 1000) as u32;
        if roll < plan.reset_permille {
            if Self::budget_ok(&inner.socket.fired, plan.max_resets) {
                return SocketFault::Reset;
            }
            return SocketFault::None;
        }
        if roll < plan.reset_permille + plan.stall_permille {
            inner.stalls.fetch_add(1, Ordering::Relaxed);
            return SocketFault::Stall(Duration::from_micros(plan.stall_us));
        }
        SocketFault::None
    }

    /// Claims one unit of a budget; `max == 0` means unlimited.
    fn budget_ok(fired: &AtomicU32, max: u32) -> bool {
        if max == 0 {
            fired.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        fired
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| (n < max).then_some(n + 1))
            .is_ok()
    }

    /// Panics injected so far (for tests and the `health` surface).
    #[must_use]
    pub fn injected_panics(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| {
            if i.plan.panic_permille > 0 {
                u64::from(i.engine.fired.load(Ordering::Relaxed))
            } else {
                0
            }
        })
    }

    /// Connection resets injected so far.
    #[must_use]
    pub fn injected_resets(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| {
            if i.plan.reset_permille > 0 {
                u64::from(i.socket.fired.load(Ordering::Relaxed))
            } else {
                0
            }
        })
    }
}

/// The supervision circuit breaker: opens (pool degraded) once
/// `threshold` crashes land within `window`, and closes again after
/// `cooldown` passes with no further crash. Time is injected, so the
/// state machine is a pure function of the crash instants — tests drive
/// it deterministically with synthetic clocks.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: usize,
    window: Duration,
    cooldown: Duration,
    crashes: VecDeque<Instant>,
    open_until: Option<Instant>,
}

impl CircuitBreaker {
    /// A breaker that opens at `threshold` crashes within `window` and
    /// closes `cooldown` after the last crash.
    #[must_use]
    pub fn new(threshold: usize, window: Duration, cooldown: Duration) -> Self {
        Self {
            threshold: threshold.max(1),
            window,
            cooldown,
            crashes: VecDeque::new(),
            open_until: None,
        }
    }

    /// Records a crash at `now`; returns whether the breaker is open
    /// afterwards.
    pub fn record_crash(&mut self, now: Instant) -> bool {
        self.crashes.push_back(now);
        self.prune(now);
        if self.crashes.len() >= self.threshold {
            self.open_until = Some(now + self.cooldown);
        }
        self.is_open(now)
    }

    /// Whether the breaker is open (pool degraded) at `now`. Reaching
    /// the cooldown boundary closes it and clears the crash history.
    pub fn is_open(&mut self, now: Instant) -> bool {
        if let Some(until) = self.open_until {
            if now >= until {
                self.open_until = None;
                self.crashes.clear();
            }
        }
        self.open_until.is_some()
    }

    fn prune(&mut self, now: Instant) {
        while let Some(&front) = self.crashes.front() {
            if now.duration_since(front) > self.window {
                self.crashes.pop_front();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_parse_and_round_trip_the_ci_spec() {
        let plan = FaultPlan::parse(
            "seed=0xC4A0_5F17,panic=120,max_panics=6,latency=40,latency_us=400,\
             alloc=20,reset=60,max_resets=8,stall=20,stall_us=800",
        )
        .unwrap();
        assert_eq!(plan, FaultPlan::ci_chaos());
        assert!(FaultPlan::parse("").is_err());
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("panic=abc").is_err());
        assert!(FaultPlan::parse("seed=0xZZ").is_err());
        assert!(FaultPlan::parse("warp=9").is_err());
        // Rates clamp rather than reject.
        assert_eq!(FaultPlan::parse("panic=5000").unwrap().panic_permille, 1000);
    }

    #[test]
    fn draws_are_deterministic_per_site() {
        let a = FaultInjector::new(FaultPlan::ci_chaos());
        let b = FaultInjector::new(FaultPlan::ci_chaos());
        let seq_a: Vec<EngineFault> = (0..200).map(|_| a.engine_fault()).collect();
        let seq_b: Vec<EngineFault> = (0..200).map(|_| b.engine_fault()).collect();
        assert_eq!(seq_a, seq_b, "same plan → same engine fault sequence");
        let socket_a: Vec<SocketFault> = (0..200).map(|_| a.socket_fault()).collect();
        let socket_b: Vec<SocketFault> = (0..200).map(|_| b.socket_fault()).collect();
        assert_eq!(socket_a, socket_b, "same plan → same socket fault sequence");
        // Budgets cap the panics and resets.
        assert_eq!(a.injected_panics(), 6, "panic budget of the CI plan");
        assert!(a.injected_resets() <= 8, "reset budget of the CI plan");
        assert!(seq_a.contains(&EngineFault::Panic));
        assert!(seq_a.contains(&EngineFault::Latency(Duration::from_micros(400))));
    }

    #[test]
    fn disabled_injector_never_fires() {
        let off = FaultInjector::disabled();
        assert!(!off.enabled());
        for _ in 0..50 {
            assert_eq!(off.engine_fault(), EngineFault::None);
            assert_eq!(off.socket_fault(), SocketFault::None);
        }
        // A zero-rate plan is also a no-op (the overhead-lane config).
        let zero = FaultInjector::new(FaultPlan::new(1));
        assert!(zero.enabled());
        for _ in 0..50 {
            assert_eq!(zero.engine_fault(), EngineFault::None);
            assert_eq!(zero.socket_fault(), SocketFault::None);
        }
    }

    #[test]
    fn breaker_opens_and_closes_deterministically() {
        let window = Duration::from_secs(1);
        let cooldown = Duration::from_secs(2);
        let mut breaker = CircuitBreaker::new(3, window, cooldown);
        let t0 = Instant::now();
        assert!(!breaker.is_open(t0));
        assert!(!breaker.record_crash(t0), "1 of 3");
        assert!(!breaker.record_crash(t0 + Duration::from_millis(100)), "2 of 3");
        assert!(breaker.record_crash(t0 + Duration::from_millis(200)), "3rd crash opens");
        assert!(breaker.is_open(t0 + Duration::from_millis(300)));
        // Still open until the cooldown since the last crash passes…
        let last = t0 + Duration::from_millis(200);
        assert!(breaker.is_open(last + cooldown - Duration::from_millis(1)));
        // … and closed exactly at it, with history cleared.
        assert!(!breaker.is_open(last + cooldown));
        assert!(!breaker.record_crash(last + cooldown + window), "history was cleared");
        // Spread-out crashes outside the window never open it.
        let mut slow = CircuitBreaker::new(2, window, cooldown);
        assert!(!slow.record_crash(t0));
        assert!(!slow.record_crash(t0 + window * 2), "window pruned the first crash");
    }

    #[test]
    fn poisoned_locks_recover() {
        let shared = Arc::new(Mutex::new(7u32));
        let poisoner = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(shared.is_poisoned(), "the panic poisoned the mutex");
        assert_eq!(*lock_recover(&shared), 7, "lock_recover reads through the poison");
        *lock_recover(&shared) = 9;
        assert_eq!(*lock_recover(&shared), 9);
    }
}
