//! The serving runtime: a shared worker pool over a multi-tenant
//! registry, fed by the weighted-fair admission queue, coalescing
//! requests into per-tenant micro-batches.
//!
//! # Lifecycle
//!
//! ```text
//! submit ──► RequestQueue (per-tenant × per-class lanes, shed-on-overload)
//!                │   next_batch: weighted-fair lane pick + adaptive window/caps
//!                ▼
//!         worker thread ──► tenant.engines.checkout()
//!                │                │ Engine::infer_coalesced
//!                │                ▼ merged-universe execution + scatter
//!                └──────► responder channel ──► Ticket::wait
//! ```
//!
//! Every tenant owns a pool of [`Engine::fork`] replicas (prepared
//! weights, versioned graph state, and the version-keyed full-graph
//! logits cache are `Arc`-shared); a worker checks one out per batch,
//! so any worker can serve any tenant and tenants with no traffic cost
//! nothing. Graph updates ([`Server::apply_delta`], `update@tenant`)
//! swap the addressed tenant's shared snapshot **between micro-batches**
//! and never touch another tenant's state; likewise
//! [`Server::deploy`]/[`Server::retire`] swap the registry map without
//! stalling in-flight batches of other tenants. Shutdown closes the
//! queue (new submissions shed with `ShuttingDown`), drains what was
//! admitted, and joins the workers.

use crate::config::ServerConfig;
use crate::error::ServerError;
use crate::fault::{lock_recover, CircuitBreaker, EngineFault, FaultInjector};
use crate::observe::{
    chrome_trace_json, MetricsRegistry, Recorder, Span, TraceMeta, TraceOutcome, TraceQuery,
    TraceRecord, SLOW_THRESHOLD,
};
use crate::protocol::HealthReport;
use crate::queue::{BatchLimits, QueueItem, RequestQueue, SubmitOptions};
use crate::telemetry::{ServerStats, Telemetry};
use crate::tenant::{
    backend_kind_name, Tenant, TenantEngine, TenantInfo, TenantRegistry, TenantSpec,
    DEFAULT_TENANT,
};
use blockgnn_engine::{
    assemble_response, Engine, EngineError, GraphDelta, InferRequest, InferResponse,
    ParallelEngine,
};
use blockgnn_gnn::ModelKind;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Shared crash/restart accounting for the worker pool: who is alive,
/// how often workers have panicked, and whether the crash circuit
/// breaker currently has the pool marked degraded.
///
/// Workers are *self-healing in place*: a panic mid-batch is caught at
/// the batch boundary (the thread never dies), so "alive" here means
/// "serving", and a worker sitting out its respawn backoff counts as
/// down until [`PoolHealth::record_restart`] brings it back.
pub(crate) struct PoolHealth {
    /// Configured pool size (what `alive` recovers to).
    workers: usize,
    /// Workers currently serving (dips while a crashed worker backs
    /// off).
    alive: AtomicUsize,
    /// Lifetime worker panics caught at the batch boundary.
    crashes: AtomicU64,
    /// Lifetime respawns (one per crash once the backoff elapses).
    restarts: AtomicU64,
    /// ≥ threshold crashes inside the window open the breaker; the pool
    /// is degraded (brownout shedding) until the cooldown passes.
    breaker: Mutex<CircuitBreaker>,
}

impl PoolHealth {
    fn new(workers: usize, config: &ServerConfig) -> Self {
        Self {
            workers,
            alive: AtomicUsize::new(workers),
            crashes: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            breaker: Mutex::new(CircuitBreaker::new(
                config.breaker_threshold,
                config.breaker_window,
                config.breaker_cooldown,
            )),
        }
    }

    /// Books one caught panic: the worker leaves the serving set, the
    /// breaker counts the crash, and the queue enters brownout if it
    /// opens.
    fn record_crash(&self, queue: &RequestQueue) {
        self.alive.fetch_sub(1, Ordering::AcqRel);
        self.crashes.fetch_add(1, Ordering::Relaxed);
        if lock_recover(&self.breaker).record_crash(Instant::now()) {
            queue.set_degraded(true);
        }
    }

    /// Books the respawn after the backoff: the worker rejoins the
    /// serving set on a fresh engine fork.
    fn record_restart(&self, queue: &RequestQueue) {
        self.alive.fetch_add(1, Ordering::AcqRel);
        self.restarts.fetch_add(1, Ordering::Relaxed);
        self.refresh(queue);
    }

    /// Re-evaluates the breaker, clearing (or re-asserting) brownout.
    fn refresh(&self, queue: &RequestQueue) {
        let open = lock_recover(&self.breaker).is_open(Instant::now());
        queue.set_degraded(open);
    }

    /// Cheap per-batch poll: only consults the breaker while degraded,
    /// so the healthy hot path stays one atomic load.
    fn tick(&self, queue: &RequestQueue) {
        if queue.is_degraded() {
            self.refresh(queue);
        }
    }

    fn report(&self, queue: &RequestQueue) -> HealthReport {
        self.refresh(queue);
        HealthReport {
            workers: self.workers,
            alive: self.alive.load(Ordering::Acquire),
            crashes: self.crashes.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            degraded: queue.is_degraded(),
        }
    }

    /// Stamps the health identity fields onto an aggregate stats
    /// snapshot.
    fn stamp(&self, stats: &mut ServerStats, queue: &RequestQueue) {
        stats.workers_alive = self.alive.load(Ordering::Acquire);
        stats.worker_crashes = self.crashes.load(Ordering::Relaxed);
        stats.restarts = self.restarts.load(Ordering::Relaxed);
        stats.degraded = queue.is_degraded();
    }
}

/// The respawn backoff for the n-th consecutive crash (1-based):
/// `base × 2^(n−1)`, capped at `max`.
fn restart_backoff(consecutive: u32, base: Duration, max: Duration) -> Duration {
    let doubled = base.saturating_mul(1u32 << consecutive.saturating_sub(1).min(16));
    doubled.min(max)
}

/// A pending answer; blocks on [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Result<InferResponse, ServerError>>,
}

impl Ticket {
    /// Blocks until the serving worker answers (or sheds) the request.
    ///
    /// # Errors
    ///
    /// Whatever the worker decided — see [`ServerError`] — or
    /// [`ServerError::Canceled`] if the worker vanished.
    pub fn wait(self) -> Result<InferResponse, ServerError> {
        self.rx.recv().unwrap_or(Err(ServerError::Canceled))
    }
}

/// The concurrent serving runtime. Construct with [`Server::start`]
/// (worker pool over a forked [`Engine`], which becomes the `default`
/// tenant) or [`Server::start_parallel`] (single worker driving a
/// [`ParallelEngine`]); add tenants with [`Server::deploy`]; submit
/// through [`Server::handle`] / [`Server::handle_for`]; stop with
/// [`Server::shutdown`].
pub struct Server {
    queue: Arc<RequestQueue>,
    registry: Arc<TenantRegistry>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    config: ServerConfig,
    /// The tenant unqualified requests address.
    default: Arc<Tenant>,
    /// The flight recorder: trace-id source, per-worker rings, exemplar
    /// buffer. Inert when [`ServerConfig::tracing`] is off.
    recorder: Arc<Recorder>,
    /// Crash/restart accounting + the circuit breaker (shared with every
    /// worker's supervision loop).
    health: Arc<PoolHealth>,
    /// The deterministic fault injector ([`ServerConfig::faults`]); a
    /// single-branch no-op when no plan is loaded.
    injector: FaultInjector,
}

impl Server {
    /// Starts the runtime: the engine becomes the `default` tenant with
    /// `config.workers` replicas (the original plus `workers − 1` forks)
    /// and one batching worker thread per replica.
    ///
    /// # Errors
    ///
    /// [`EngineError::NoWorkers`] (as [`ServerError::Engine`]) when
    /// `config.workers` is zero; [`ServerError::TenantBudget`] when the
    /// engine alone overflows a configured
    /// [`ServerConfig::device_budget_bytes`].
    pub fn start(engine: Engine, config: ServerConfig) -> Result<Self, ServerError> {
        if config.workers == 0 {
            return Err(ServerError::Engine(EngineError::NoWorkers));
        }
        let registry = TenantRegistry::new(config.device_budget_bytes);
        let tenant = Tenant::forked(
            registry.next_id(),
            DEFAULT_TENANT,
            1,
            config.max_queue_depth,
            engine,
            config.workers,
        );
        let default = registry.deploy(tenant)?;
        Ok(Self::spawn(registry, default, config.workers, config))
    }

    /// Starts the runtime around a partition-parallel engine: a single
    /// worker thread drives it (the engine parallelizes internally),
    /// while admission control and telemetry work unchanged.
    /// Micro-batching is forced off — the parallel engine cannot
    /// coalesce, so dequeuing a group would only hold every reply back
    /// until the whole group finished. The graph is a frozen snapshot:
    /// [`Server::apply_delta`] is rejected with
    /// [`EngineError::ImmutableGraph`].
    #[must_use]
    pub fn start_parallel(engine: ParallelEngine, config: ServerConfig) -> Self {
        let config = ServerConfig { max_batch_requests: 1, ..config };
        let registry = TenantRegistry::new(config.device_budget_bytes);
        let tenant = Tenant::parallel(
            registry.next_id(),
            DEFAULT_TENANT,
            1,
            config.max_queue_depth,
            engine,
        );
        let default = registry.deploy(tenant).expect("empty registry admits the first tenant");
        Self::spawn(registry, default, 1, config)
    }

    fn spawn(
        registry: TenantRegistry,
        default: Arc<Tenant>,
        worker_threads: usize,
        config: ServerConfig,
    ) -> Self {
        let registry = Arc::new(registry);
        let queue = Arc::new(RequestQueue::new(config.class_weights()));
        let limits = BatchLimits {
            window: config.batch_window,
            max_requests: config.max_batch_requests.max(1),
            max_nodes: config.max_batch_nodes.max(1),
            adaptive: config.adaptive_window,
        };
        let recorder = Arc::new(Recorder::new(worker_threads, config.tracing));
        let health = Arc::new(PoolHealth::new(worker_threads, &config));
        let injector =
            config.faults.clone().map_or_else(FaultInjector::disabled, FaultInjector::new);
        let backoff = (config.restart_backoff, config.restart_backoff_max);
        let workers = (0..worker_threads)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let recorder = Arc::clone(&recorder);
                let health = Arc::clone(&health);
                let injector = injector.clone();
                std::thread::Builder::new()
                    .name(format!("blockgnn-worker-{i}"))
                    .spawn(move || {
                        // Consecutive-crash streak driving the
                        // exponential backoff; a clean batch resets it.
                        let mut streak = 0u32;
                        while let Some(batch) = queue.next_batch(limits) {
                            // The batch's tenant survives a concurrent
                            // retire: the items hold the Arc.
                            let tenant = Arc::clone(&batch[0].tenant);
                            let mut engine = tenant.engines.checkout();
                            let crashed = serve_batch(
                                &mut engine,
                                batch,
                                &tenant.telemetry,
                                &recorder,
                                i,
                                &injector,
                            );
                            if crashed {
                                // The replica may hold arbitrary state
                                // from the interrupted execution:
                                // replace it with a fresh fork (prepared
                                // weights and the versioned graph are
                                // Arc-shared immutable/epoch state, so
                                // the fork serves identical bits) and
                                // the pool never shrinks. The parallel
                                // engine cannot fork; its snapshot state
                                // is untouched by a request panic.
                                let replacement = match &engine {
                                    TenantEngine::Forked(e) => {
                                        Some(TenantEngine::Forked(e.fork()))
                                    }
                                    TenantEngine::Parallel(_) => None,
                                };
                                tenant.engines.checkin(replacement.unwrap_or(engine));
                                health.record_crash(&queue);
                                streak += 1;
                                std::thread::sleep(restart_backoff(
                                    streak, backoff.0, backoff.1,
                                ));
                                health.record_restart(&queue);
                            } else {
                                streak = 0;
                                tenant.engines.checkin(engine);
                                health.tick(&queue);
                            }
                        }
                    })
                    .expect("worker thread spawns")
            })
            .collect();
        Self {
            queue,
            registry,
            workers: Mutex::new(workers),
            config,
            default,
            recorder,
            health,
            injector,
        }
    }

    /// A submission handle on the `default` tenant (what unqualified
    /// protocol commands use).
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        self.handle_of(Arc::clone(&self.default))
    }

    /// A submission handle on a named tenant.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownTenant`] when no such tenant is deployed.
    pub fn handle_for(&self, tenant: &str) -> Result<ServerHandle, ServerError> {
        Ok(self.handle_of(self.registry.get(tenant)?))
    }

    fn handle_of(&self, tenant: Arc<Tenant>) -> ServerHandle {
        ServerHandle {
            queue: Arc::clone(&self.queue),
            registry: Arc::clone(&self.registry),
            tenant,
            config: self.config.clone(),
            recorder: Arc::clone(&self.recorder),
            health: Arc::clone(&self.health),
        }
    }

    /// Deploys a new tenant from a spec: builds its engine (generated
    /// dataset × fresh model × backend, all pinned by the spec's seed),
    /// forks `config.workers` replicas, runs the aggregate residency
    /// check, and publishes it — without stalling any other tenant's
    /// traffic. Returns a handle on the new tenant.
    ///
    /// # Errors
    ///
    /// [`ServerError::TenantExists`] on a name collision,
    /// [`ServerError::TenantBudget`] on an over-budget deploy,
    /// [`ServerError::Protocol`]/[`ServerError::Engine`] for a bad spec.
    pub fn deploy(&self, spec: &TenantSpec) -> Result<ServerHandle, ServerError> {
        let engine = spec.build_engine()?;
        self.deploy_engine(spec, engine)
    }

    /// Deploys a tenant around a caller-built engine (custom dataset,
    /// trained model, non-default accelerator config, …). Only the
    /// spec's `name`, `weight`, and `max_queue_depth` are used.
    ///
    /// # Errors
    ///
    /// As [`Server::deploy`], minus the spec-build failures.
    pub fn deploy_engine(
        &self,
        spec: &TenantSpec,
        engine: Engine,
    ) -> Result<ServerHandle, ServerError> {
        let tenant = Tenant::forked(
            self.registry.next_id(),
            &spec.name,
            spec.weight,
            spec.max_queue_depth.unwrap_or(self.config.max_queue_depth),
            engine,
            self.config.workers.max(1),
        );
        let tenant = self.registry.deploy(tenant)?;
        Ok(self.handle_of(tenant))
    }

    /// Retires a tenant: unpublishes it, sheds its queued requests with
    /// a typed [`ServerError::UnknownTenant`], and folds its final
    /// counters into the aggregate stats. In-flight batches complete;
    /// other tenants are never stalled. Returns the tenant's final
    /// stats.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownTenant`] for an unknown name;
    /// [`ServerError::Protocol`] for the irremovable `default` tenant.
    pub fn retire(&self, tenant: &str) -> Result<ServerStats, ServerError> {
        self.registry.retire(tenant, &self.queue)
    }

    /// Public descriptions of every deployed tenant, in name order.
    #[must_use]
    pub fn tenants(&self) -> Vec<TenantInfo> {
        self.registry.infos(&self.queue)
    }

    /// One tenant's private telemetry snapshot (its own counters and
    /// graph version; the aggregate [`Server::stats`] sums these).
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownTenant`] when no such tenant is deployed.
    pub fn tenant_stats(&self, tenant: &str) -> Result<ServerStats, ServerError> {
        Ok(self.registry.get(tenant)?.stats())
    }

    /// Sum of deployed tenants' §IV-B/§IV-C resident bytes — what the
    /// accountant charges against
    /// [`ServerConfig::device_budget_bytes`] on the next deploy.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.registry.resident_bytes()
    }

    /// The configured device budget the accountant enforces (`None` =
    /// unbounded).
    #[must_use]
    pub fn device_budget(&self) -> Option<usize> {
        self.registry.device_budget()
    }

    /// The model the `default` tenant answers for.
    #[must_use]
    pub fn model_kind(&self) -> ModelKind {
        self.default.model_kind
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Applies a [`GraphDelta`] to the `default` tenant's graph: the new
    /// version is published atomically **between micro-batches** —
    /// batches already executing finish on the version they resolved at
    /// dequeue, the next batch on every worker serves the new one, and
    /// each [`InferResponse::graph_version`] says which side of the swap
    /// it landed on. Returns the new version. Other tenants' graphs are
    /// untouched — versions are per-tenant.
    ///
    /// # Errors
    ///
    /// [`EngineError::Delta`] / [`EngineError::GraphBudget`] (wrapped in
    /// [`ServerError::Engine`]) for rejected deltas, or
    /// [`EngineError::ImmutableGraph`] on a partition-parallel server.
    /// The served graph is untouched on failure.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<u64, ServerError> {
        self.handle().update(delta)
    }

    /// The `default` tenant's currently served graph version.
    #[must_use]
    pub fn graph_version(&self) -> u64 {
        self.default.version()
    }

    /// Aggregate telemetry snapshot: every live tenant's counters (plus
    /// retired tenants' final ones) summed, with a per-tenant
    /// [`crate::TenantRollup`] under [`ServerStats::tenants`]. The
    /// top-level `graph_version` mirrors the `default` tenant.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        let mut stats = self.registry.global_stats(&self.queue);
        self.health.stamp(&mut stats, &self.queue);
        stats
    }

    /// The worker pool's health: configured size, workers currently
    /// serving (a crashed worker counts as down while it sits out its
    /// respawn backoff), lifetime crash/restart counters, and whether
    /// the crash circuit breaker has the pool degraded (brownout
    /// shedding). Calling this re-evaluates the breaker, so a pool whose
    /// cooldown has passed reports `degraded=false` here even with no
    /// traffic to tick it over.
    #[must_use]
    pub fn health(&self) -> HealthReport {
        self.health.report(&self.queue)
    }

    /// The deterministic fault injector (a no-op handle unless
    /// [`ServerConfig::faults`] loaded a plan). The TCP layer draws its
    /// socket faults from here so one seed covers both sites.
    #[must_use]
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// Requests currently queued, across all tenants.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// The flight recorder (trace-id source, per-worker rings, exemplar
    /// buffer). Inert when [`ServerConfig::tracing`] is off.
    #[must_use]
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Renders the full metrics exposition (Prometheus text format) from
    /// the live telemetry: per-tenant counters labelled
    /// `{tenant,backend}`, per-class counters and latency summaries
    /// labelled `{tenant,class}`, aggregate summaries, and flight
    /// recorder occupancy. Built on demand — nothing is double-counted
    /// against the `stats` verb, which reads the same snapshots.
    #[must_use]
    pub fn metrics_text(&self) -> String {
        let mut reg = MetricsRegistry::new();
        let global = self.stats();
        reg.gauge("blockgnn_uptime_seconds", "Seconds since the server started", &[], {
            global.uptime.as_secs_f64()
        });
        reg.gauge("blockgnn_qps", "Completed requests per second of uptime", &[], global.qps());
        reg.gauge(
            "blockgnn_queue_depth",
            "Requests currently queued across all tenants",
            &[],
            self.queue.depth() as f64,
        );
        reg.gauge(
            "blockgnn_workers_alive",
            "Workers currently serving (a crashed worker is down until its respawn backoff elapses)",
            &[],
            global.workers_alive as f64,
        );
        reg.counter(
            "blockgnn_worker_crashes_total",
            "Worker panics caught at the batch boundary",
            &[],
            global.worker_crashes,
        );
        reg.counter(
            "blockgnn_worker_restarts_total",
            "Crashed-worker respawns (fresh engine fork after backoff)",
            &[],
            global.restarts,
        );
        reg.gauge(
            "blockgnn_pool_degraded",
            "1 while the crash circuit breaker has the pool in brownout, else 0",
            &[],
            if global.degraded { 1.0 } else { 0.0 },
        );
        for (name, tenant) in self.registry.snapshot().iter() {
            let stats = tenant.stats();
            let backend = backend_kind_name(tenant.backend_kind);
            let labels: [(&str, &str); 2] = [("tenant", name.as_str()), ("backend", backend)];
            reg.counter(
                "blockgnn_requests_submitted_total",
                "Requests offered to the admission queue (including shed ones)",
                &labels,
                stats.submitted as u64,
            );
            reg.counter(
                "blockgnn_requests_completed_total",
                "Requests answered successfully",
                &labels,
                stats.completed as u64,
            );
            reg.counter(
                "blockgnn_requests_failed_total",
                "Requests that failed in the engine",
                &labels,
                stats.failed as u64,
            );
            reg.counter(
                "blockgnn_requests_shed_total",
                "Requests shed (admission overload + queued-deadline expiry)",
                &labels,
                stats.shed() as u64,
            );
            reg.counter(
                "blockgnn_batches_total",
                "Coalesced executions run",
                &labels,
                stats.batches as u64,
            );
            reg.counter(
                "blockgnn_deduped_total",
                "Requests that shared an identical request's execution",
                &labels,
                stats.deduped as u64,
            );
            reg.counter(
                "blockgnn_graph_updates_total",
                "Graph deltas applied",
                &labels,
                stats.updates as u64,
            );
            reg.gauge(
                "blockgnn_graph_version",
                "Graph version currently being served",
                &[("tenant", name.as_str())],
                stats.graph_version as f64,
            );
            reg.gauge(
                "blockgnn_tenant_queue_depth",
                "Requests currently queued in the tenant's lanes",
                &[("tenant", name.as_str())],
                self.queue.depth_of(tenant.id) as f64,
            );
            if stats.part_balance > 0.0 {
                reg.gauge(
                    "blockgnn_partition_balance",
                    "Partition load-balance factor of the tenant's full-graph plan \
                     (max part work / mean part work; 1.0 is perfect)",
                    &[("tenant", name.as_str())],
                    stats.part_balance,
                );
            }
            reg.counter(
                "blockgnn_hot_rows_served_total",
                "Stage rows served from the hot-vertex aggregation cache",
                &labels,
                stats.serve.hot_rows_served as u64,
            );
            for (class, rollup) in &stats.classes {
                let labels: [(&str, &str); 2] =
                    [("tenant", name.as_str()), ("class", class.name())];
                reg.counter(
                    "blockgnn_class_requests_total",
                    "Requests offered per SLO class",
                    &labels,
                    rollup.submitted as u64,
                );
                reg.counter(
                    "blockgnn_class_completed_total",
                    "Requests answered per SLO class",
                    &labels,
                    rollup.completed as u64,
                );
                reg.counter(
                    "blockgnn_class_shed_total",
                    "Requests shed per SLO class",
                    &labels,
                    rollup.shed as u64,
                );
                reg.summary(
                    "blockgnn_class_latency_seconds",
                    "End-to-end served latency per SLO class",
                    &labels,
                    &rollup.latency,
                );
            }
        }
        reg.summary(
            "blockgnn_latency_seconds",
            "End-to-end served latency (queue + compute), all tenants",
            &[],
            &global.serve.latency_histogram,
        );
        reg.summary(
            "blockgnn_queue_time_seconds",
            "Time requests spent queued before execution",
            &[],
            &global.queue_time,
        );
        reg.summary(
            "blockgnn_compute_time_seconds",
            "Batch execution time requests rode on",
            &[],
            &global.compute_time,
        );
        reg.gauge(
            "blockgnn_traces_recorded",
            "Trace records currently held across the worker rings",
            &[],
            self.recorder.recorded() as f64,
        );
        for (class, count) in self.recorder.exemplar_counts() {
            reg.gauge(
                "blockgnn_trace_exemplars",
                "Retained slow/shed/failed trace exemplars per SLO class",
                &[("class", class.name())],
                count as f64,
            );
        }
        reg.render()
    }

    /// Answers a [`TraceQuery`] as wire lines (the `trace` verb's body):
    /// one [`TraceRecord::wire_line`] per record, or — for
    /// [`TraceQuery::Export`] — a single line of Chrome trace-event
    /// JSON covering every ring record plus the retained exemplars.
    #[must_use]
    pub fn trace_lines(&self, query: TraceQuery) -> Vec<String> {
        match query {
            TraceQuery::Last(n) => {
                self.recorder.last(n).iter().map(TraceRecord::wire_line).collect()
            }
            TraceQuery::Id(id) => {
                self.recorder.find(id).map(|r| vec![r.wire_line()]).unwrap_or_default()
            }
            TraceQuery::Slow => {
                self.recorder.exemplars().iter().map(TraceRecord::wire_line).collect()
            }
            TraceQuery::Export => vec![self.trace_export_json()],
        }
    }

    /// Everything the flight recorder holds — ring records plus
    /// exemplars, deduplicated by trace id, in id order — as Chrome
    /// trace-event JSON (load in `chrome://tracing` or Perfetto).
    #[must_use]
    pub fn trace_export_json(&self) -> String {
        let mut records = self.recorder.last(usize::MAX);
        let seen: std::collections::HashSet<u64> = records.iter().map(|r| r.trace_id).collect();
        records.extend(
            self.recorder.exemplars().into_iter().filter(|r| !seen.contains(&r.trace_id)),
        );
        records.sort_by_key(|r| r.trace_id);
        chrome_trace_json(&records)
    }

    /// Stops admissions, drains what was already admitted, joins the
    /// workers, and returns the final telemetry. Idempotent.
    pub fn shutdown(&self) -> ServerStats {
        self.queue.close();
        let handles: Vec<_> = lock_recover(&self.workers).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
        self.stats()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("model", &self.default.model_kind)
            .field("tenants", &self.registry.snapshot().len())
            .field("config", &self.config)
            .field("queue_depth", &self.queue.depth())
            .finish()
    }
}

/// Cloneable submission front of a [`Server`], scoped to one tenant
/// ([`Server::handle`] for `default`, [`Server::handle_for`] /
/// [`Server::deploy`] for the rest). Requests are validated against,
/// queued in, and versioned by **this** tenant.
#[derive(Clone)]
pub struct ServerHandle {
    queue: Arc<RequestQueue>,
    registry: Arc<TenantRegistry>,
    tenant: Arc<Tenant>,
    config: ServerConfig,
    recorder: Arc<Recorder>,
    health: Arc<PoolHealth>,
}

impl ServerHandle {
    /// The tenant this handle addresses.
    #[must_use]
    pub fn tenant_name(&self) -> &str {
        &self.tenant.name
    }

    /// Submits a request with default options; returns a [`Ticket`]
    /// immediately (admission never blocks).
    ///
    /// # Errors
    ///
    /// [`ServerError::Overloaded`] when the tenant's lane is full,
    /// [`ServerError::ShuttingDown`] after shutdown,
    /// [`ServerError::UnknownTenant`] once the tenant is retired, or
    /// [`ServerError::Engine`] for requests that are invalid on their
    /// face (out-of-range nodes, empty sampled request).
    pub fn submit(&self, request: InferRequest) -> Result<Ticket, ServerError> {
        self.submit_with(request, SubmitOptions::default())
    }

    /// Submits a request with explicit class/deadline options.
    ///
    /// # Errors
    ///
    /// As [`ServerHandle::submit`].
    pub fn submit_with(
        &self,
        request: InferRequest,
        options: SubmitOptions,
    ) -> Result<Ticket, ServerError> {
        if self.tenant.is_retired() {
            return Err(ServerError::UnknownTenant { name: self.tenant.name.clone() });
        }
        // Trace-id assignment is the first act of admission, so the
        // admission span covers validation + deadline resolution. With
        // tracing off the id is 0 and nothing else is touched.
        let trace_id = self.recorder.assign();
        let trace_start = if trace_id != 0 { self.recorder.now() } else { Duration::ZERO };
        self.tenant.telemetry.record_submitted(options.class);
        // Front-door validation with the engine's own validity rule, so
        // obviously bad requests fail at submission with a typed error
        // instead of occupying queue space (and the two paths cannot
        // drift). Validated against the *addressed tenant's* current
        // node count; the engine re-validates against whatever version
        // the request's batch resolves (node counts only grow, so an
        // admitted request stays valid).
        if let Err(e) = blockgnn_engine::validate_request(&request, self.num_nodes()) {
            self.tenant.telemetry.with(|s| {
                s.failed += 1;
                s.class_mut(options.class).failed += 1;
            });
            if trace_id != 0 {
                self.recorder.record_shed(TraceRecord {
                    trace_id,
                    tenant: self.tenant.name.clone(),
                    class: options.class,
                    outcome: TraceOutcome::Failed,
                    batch_size: 0,
                    spans: vec![Span {
                        stage: "admission",
                        start: trace_start,
                        end: self.recorder.now(),
                    }],
                });
            }
            return Err(ServerError::Engine(e));
        }
        // Deadline precedence: the request's own, else its class's
        // configured default, else the server-wide default.
        let deadline = options
            .deadline
            .or_else(|| self.config.class_deadline(options.class))
            .map(|d| Instant::now() + d);
        let (tx, rx) = sync_channel(1);
        let trace = if trace_id != 0 {
            TraceMeta {
                id: trace_id,
                start: trace_start,
                admission: self.recorder.now().saturating_sub(trace_start),
            }
        } else {
            TraceMeta::UNTRACED
        };
        match self.queue.push(
            Arc::clone(&self.tenant),
            request,
            options.class,
            deadline,
            trace,
            tx,
        ) {
            Ok(()) => Ok(Ticket { rx }),
            Err(e) => {
                if matches!(e, ServerError::Overloaded { .. }) {
                    self.tenant.telemetry.record_shed_overload(options.class);
                    if trace_id != 0 {
                        self.recorder.record_shed(TraceRecord {
                            trace_id,
                            tenant: self.tenant.name.clone(),
                            class: options.class,
                            outcome: TraceOutcome::ShedOverload,
                            batch_size: 0,
                            spans: vec![Span {
                                stage: "admission",
                                start: trace.start,
                                end: trace.start + trace.admission,
                            }],
                        });
                    }
                }
                Err(e)
            }
        }
    }

    /// Submits and blocks for the answer.
    ///
    /// # Errors
    ///
    /// As [`ServerHandle::submit`], plus whatever the worker decided.
    pub fn infer(&self, request: InferRequest) -> Result<InferResponse, ServerError> {
        self.submit(request)?.wait()
    }

    /// Submits with options and blocks for the answer.
    ///
    /// # Errors
    ///
    /// As [`ServerHandle::submit_with`], plus whatever the worker
    /// decided.
    pub fn infer_with(
        &self,
        request: InferRequest,
        options: SubmitOptions,
    ) -> Result<InferResponse, ServerError> {
        self.submit_with(request, options)?.wait()
    }

    /// Applies a [`GraphDelta`] to this tenant's graph (see
    /// [`Server::apply_delta`] for the between-batches atomicity
    /// contract), returning the new version.
    ///
    /// # Errors
    ///
    /// As [`Server::apply_delta`].
    pub fn update(&self, delta: &GraphDelta) -> Result<u64, ServerError> {
        self.update_acked(delta).map(|ack| ack.version)
    }

    /// Like [`ServerHandle::update`], but returns the full
    /// [`crate::UpdateAck`] — tenant name, version, and the node/arc
    /// counts of exactly the epoch this delta published (consistent even
    /// when another client's update lands right after).
    ///
    /// # Errors
    ///
    /// As [`Server::apply_delta`].
    pub fn update_acked(&self, delta: &GraphDelta) -> Result<crate::UpdateAck, ServerError> {
        if self.tenant.is_retired() {
            return Err(ServerError::UnknownTenant { name: self.tenant.name.clone() });
        }
        let Some(graph) = &self.tenant.graph else {
            self.tenant.telemetry.with(|s| s.failed_updates += 1);
            return Err(ServerError::Engine(EngineError::ImmutableGraph));
        };
        match graph.apply_delta_acked(delta) {
            Ok((version, num_nodes, num_arcs)) => {
                self.tenant.telemetry.with(|s| s.updates += 1);
                Ok(crate::UpdateAck {
                    tenant: self.tenant.name.clone(),
                    version,
                    num_nodes,
                    num_arcs,
                })
            }
            Err(e) => {
                self.tenant.telemetry.with(|s| s.failed_updates += 1);
                Err(ServerError::Engine(e))
            }
        }
    }

    /// This tenant's currently served graph version.
    #[must_use]
    pub fn graph_version(&self) -> u64 {
        self.tenant.version()
    }

    /// Aggregate telemetry snapshot across all tenants (identical to
    /// [`Server::stats`]; for this tenant's own slice, see
    /// [`ServerHandle::tenant_stats`]).
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        let mut stats = self.registry.global_stats(&self.queue);
        self.health.stamp(&mut stats, &self.queue);
        stats
    }

    /// This tenant's private telemetry snapshot.
    #[must_use]
    pub fn tenant_stats(&self) -> ServerStats {
        self.tenant.stats()
    }

    /// A wire-friendly description of this handle's tenant (what the
    /// `deploy` ack and `list` report).
    #[must_use]
    pub fn info(&self) -> TenantInfo {
        TenantInfo {
            name: self.tenant.name.clone(),
            model: self.tenant.model_kind,
            backend: self.tenant.backend_kind,
            graph_version: self.tenant.version(),
            num_nodes: self.tenant.num_nodes(),
            weight: self.tenant.weight,
            queue_depth: self.queue.depth_of(self.tenant.id),
            resident_bytes: self.tenant.resident_bytes(),
        }
    }

    /// Nodes in this tenant's current graph version (the bound request
    /// node ids must obey; deltas can grow this).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.tenant.num_nodes()
    }

    /// Stored arcs in this tenant's current graph version (0 reported
    /// for a frozen parallel snapshot, which exposes no live handle).
    #[must_use]
    pub fn num_arcs(&self) -> usize {
        self.tenant.num_arcs()
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("tenant", &self.tenant.name)
            .field("num_nodes", &self.num_nodes())
            .field("graph_version", &self.graph_version())
            .finish()
    }
}

/// Executes one dequeued (single-tenant) batch: sheds expired requests,
/// runs the rest as a coalesced execution, and delivers every answer.
/// `telemetry` is the owning tenant's accumulator; finished trace
/// records land in `recorder`'s ring for `worker` (this function is the
/// ring's single writer).
///
/// The engine execution (and only it) runs inside a `catch_unwind`
/// fault domain: a panic there — the engine's own or one injected by
/// `injector` — converts every live request of the batch into a typed
/// [`ServerError::WorkerCrashed`] reply (the connection never drops),
/// books the crash in telemetry, pushes a `crashed` exemplar per traced
/// request, and returns `true` so the worker loop can swap the replica
/// and back off. Shedding and reply delivery stay outside the unwind
/// boundary — they own the queue items and must run exactly once.
fn serve_batch(
    engine: &mut TenantEngine,
    batch: Vec<QueueItem>,
    telemetry: &Telemetry,
    recorder: &Recorder,
    worker: usize,
    injector: &FaultInjector,
) -> bool {
    let exec_start = Instant::now();
    // Batches never span classes, so the whole batch's per-class
    // accounting lands in one rollup.
    let class = batch[0].class;
    let tracing = recorder.enabled();
    let tenant_name = if tracing { batch[0].tenant.name.clone() } else { String::new() };
    // Offset of this batch's dequeue on the trace timeline: the end of
    // every member's `queued` span and the start of `assembly`.
    let exec_off = recorder.offset(exec_start);
    let (live, expired): (Vec<_>, Vec<_>) =
        batch.into_iter().partition(|item| !item.expired(exec_start));
    if !expired.is_empty() {
        telemetry.with(|s| {
            s.shed_deadline += expired.len();
            s.class_mut(class).shed += expired.len();
        });
        for item in expired {
            let waited = exec_start.saturating_duration_since(item.enqueued_at);
            if tracing && item.trace.id != 0 {
                recorder.record(
                    worker,
                    TraceRecord {
                        trace_id: item.trace.id,
                        tenant: tenant_name.clone(),
                        class,
                        outcome: TraceOutcome::ShedDeadline,
                        batch_size: 0,
                        spans: vec![
                            admission_span(&item.trace),
                            Span {
                                stage: "queued",
                                start: recorder.offset(item.enqueued_at),
                                end: exec_off,
                            },
                        ],
                    },
                    false,
                );
            }
            item.respond(Err(ServerError::DeadlineExceeded { waited }));
        }
    }
    if live.is_empty() {
        return false;
    }
    let requests: Vec<InferRequest> = live.iter().map(|item| item.request.clone()).collect();
    // Batch assembly ends (and engine execution begins) here.
    let assembly_off = recorder.offset(Instant::now());
    // The engine-stage injection point, compiled into the real path: a
    // drawn Panic unwinds exactly like an engine bug would, Latency
    // stalls the execution, AllocFail turns the whole batch into typed
    // engine errors without crossing the fault domain.
    let injected = injector.engine_fault();
    if injected == EngineFault::AllocFail {
        telemetry.with(|s| {
            s.failed += live.len();
            s.class_mut(class).failed += live.len();
        });
        for item in live {
            item.respond(Err(ServerError::RemoteEngine(
                "injected allocation failure at engine stage boundary".into(),
            )));
        }
        return false;
    }
    // Only the engine execution sits inside the unwind boundary; the
    // queue items stay outside it, so every in-flight request can still
    // be answered (typed) after a panic. `AssertUnwindSafe` is sound
    // here because a crashed replica is discarded, never reused — the
    // worker loop forks a replacement from the Arc-shared prepared
    // state.
    let executed = catch_unwind(AssertUnwindSafe(|| {
        match injected {
            EngineFault::Panic => panic!("injected fault: engine stage panic"),
            EngineFault::Latency(pause) => std::thread::sleep(pause),
            EngineFault::None | EngineFault::AllocFail => {}
        }
        match engine {
            TenantEngine::Forked(engine) => {
                let coalesced = engine.infer_coalesced(&requests);
                (coalesced.outcomes, coalesced.deduped, coalesced.stage_timings)
            }
            // The parallel engine shards each request across its own
            // worker pool; `start_parallel` forces batches of one, so
            // the group is a single request and nothing is
            // deduplicated.
            TenantEngine::Parallel(engine) => {
                (requests.iter().map(|r| engine.execute_request(r)).collect(), 0, Vec::new())
            }
        }
    }));
    let (outcomes, deduped, stage_timings) = match executed {
        Ok(result) => result,
        Err(_) => {
            // The fault domain tripped: every in-flight request of this
            // batch gets exactly one typed reply — never a dropped
            // connection — and a `crashed` exemplar survives in the
            // flight recorder.
            let crash_off = recorder.offset(Instant::now());
            telemetry.with(|s| {
                s.failed += live.len();
                s.class_mut(class).failed += live.len();
            });
            for item in live {
                if tracing && item.trace.id != 0 {
                    recorder.record(
                        worker,
                        TraceRecord {
                            trace_id: item.trace.id,
                            tenant: tenant_name.clone(),
                            class,
                            outcome: TraceOutcome::Crashed,
                            batch_size: requests.len(),
                            spans: vec![
                                admission_span(&item.trace),
                                Span {
                                    stage: "queued",
                                    start: recorder.offset(item.enqueued_at),
                                    end: exec_off,
                                },
                                Span { stage: "execute", start: assembly_off, end: crash_off },
                            ],
                        },
                        false,
                    );
                }
                item.respond(Err(ServerError::WorkerCrashed));
            }
            return true;
        }
    };
    let compute_end = Instant::now();
    let compute_time = exec_start.elapsed();
    // Engine stage spans laid end-to-end from where assembly finished
    // (stage timings are durations; the sequence reconstructs the
    // timeline). The parallel engine reports no per-stage split — its
    // whole execution becomes one `execute` span.
    let stage_spans: Vec<Span> = if !tracing {
        Vec::new()
    } else if stage_timings.is_empty() {
        vec![Span { stage: "execute", start: assembly_off, end: recorder.offset(compute_end) }]
    } else {
        let mut spans = Vec::with_capacity(stage_timings.len());
        let mut cursor = assembly_off;
        for timing in &stage_timings {
            let end = cursor + timing.elapsed;
            spans.push(Span { stage: timing.stage, start: cursor, end });
            cursor = end;
        }
        spans
    };
    // Assemble every answer into worker-local accumulators first, so
    // the shared telemetry lock is taken once, briefly — response
    // assembly (argmax over logits) must not serialize the worker pool.
    // Counters fold BEFORE any answer is delivered: a caller that has
    // observed its response must also observe its completion in stats
    // (retire sendoffs and per-tenant rollups count on this).
    let batch_size = live.len();
    let mut local = ServerStats::default();
    let mut deliveries = Vec::with_capacity(batch_size);
    // Trace context outlives delivery (`respond` consumes the item), so
    // records are assembled after the answers are on the wire.
    let mut traces: Vec<(TraceMeta, Instant, Option<Instant>, TraceOutcome)> = Vec::new();
    for (item, outcome) in live.into_iter().zip(outcomes) {
        let queue_time = exec_start.saturating_duration_since(item.enqueued_at);
        match outcome {
            Ok(outcome) => {
                local.queue_time.record(queue_time);
                local.compute_time.record(compute_time);
                local.completed += 1;
                let rollup = local.class_mut(class);
                rollup.completed += 1;
                rollup.latency.record(queue_time + compute_time);
                let mut response =
                    assemble_response(outcome, queue_time, compute_time, &mut local.serve);
                response.trace_id = item.trace.id;
                if tracing && item.trace.id != 0 {
                    traces.push((
                        item.trace,
                        item.enqueued_at,
                        item.deadline,
                        TraceOutcome::Completed,
                    ));
                }
                deliveries.push((item, Ok(response)));
            }
            Err(e) => {
                local.failed += 1;
                local.class_mut(class).failed += 1;
                if tracing && item.trace.id != 0 {
                    traces.push((
                        item.trace,
                        item.enqueued_at,
                        item.deadline,
                        TraceOutcome::Failed,
                    ));
                }
                deliveries.push((item, Err(ServerError::Engine(e))));
            }
        }
    }
    telemetry.with(|stats| {
        stats.batches += 1;
        *stats.batch_size_counts.entry(batch_size).or_insert(0) += 1;
        stats.deduped += deduped;
        stats.completed += local.completed;
        stats.failed += local.failed;
        stats.serve.merge(&local.serve);
        stats.queue_time.merge(&local.queue_time);
        stats.compute_time.merge(&local.compute_time);
        for (class, rollup) in &local.classes {
            stats.class_mut(*class).merge(rollup);
        }
    });
    let write_start = Instant::now();
    for (item, answer) in deliveries {
        item.respond(answer);
    }
    if traces.is_empty() {
        return false;
    }
    // Ring writes happen strictly after every answer is delivered —
    // tracing never sits between a worker and a waiting caller.
    let write_end = Instant::now();
    let write_span = Span {
        stage: "response_write",
        start: recorder.offset(write_start),
        end: recorder.offset(write_end),
    };
    for (meta, enqueued_at, deadline, outcome) in traces {
        let mut spans = Vec::with_capacity(3 + stage_spans.len() + 1);
        spans.push(admission_span(&meta));
        spans.push(Span {
            stage: "queued",
            start: recorder.offset(enqueued_at),
            end: exec_off,
        });
        spans.push(Span { stage: "assembly", start: exec_off, end: assembly_off });
        spans.extend(stage_spans.iter().cloned());
        spans.push(write_span.clone());
        let record = TraceRecord {
            trace_id: meta.id,
            tenant: tenant_name.clone(),
            class,
            outcome,
            batch_size,
            spans,
        };
        // Slow = missed its own deadline; with none, the fixed
        // threshold stands in.
        let slow = match deadline {
            Some(deadline) => write_end > deadline,
            None => record.total() > SLOW_THRESHOLD,
        };
        recorder.record(worker, record, slow);
    }
    false
}

/// The admission span a [`TraceMeta`] carries through the queue.
fn admission_span(meta: &TraceMeta) -> Span {
    Span { stage: "admission", start: meta.start, end: meta.start + meta.admission }
}
