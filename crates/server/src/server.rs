//! The serving runtime: a worker pool over forked engine replicas,
//! fed by the admission queue, coalescing requests into micro-batches.
//!
//! # Lifecycle
//!
//! ```text
//! submit ──► RequestQueue (bounded, priority, shed-on-overload)
//!                │   next_batch(window, caps)
//!                ▼
//!         worker thread ──► Engine::infer_coalesced (forked replica)
//!                │                │ merged-universe execution,
//!                │                ▼ per-request scatter + charge
//!                └──────► responder channel ──► Ticket::wait
//! ```
//!
//! Every worker owns an [`Engine::fork`] replica: prepared weights, the
//! versioned graph state, and the version-keyed full-graph logits cache
//! are `Arc`-shared, per-request scratch is not, so workers execute
//! truly concurrently. Graph updates ([`Server::apply_delta`]) swap the
//! shared snapshot **between micro-batches**: a batch resolves its
//! graph version once at execution start, so in-flight requests finish
//! on the old version and every response reports the version that
//! served it. Shutdown closes the queue (new submissions shed with
//! `ShuttingDown`), drains what was admitted, and joins the workers.

use crate::config::ServerConfig;
use crate::error::ServerError;
use crate::queue::{BatchLimits, QueueItem, RequestQueue, SubmitOptions};
use crate::telemetry::{ServerStats, Telemetry};
use blockgnn_engine::{
    assemble_response, Engine, EngineError, GraphDelta, GraphHandle, InferRequest,
    InferResponse, ParallelEngine,
};
use blockgnn_gnn::ModelKind;
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// A pending answer; blocks on [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Result<InferResponse, ServerError>>,
}

impl Ticket {
    /// Blocks until the serving worker answers (or sheds) the request.
    ///
    /// # Errors
    ///
    /// Whatever the worker decided — see [`ServerError`] — or
    /// [`ServerError::Canceled`] if the worker vanished.
    pub fn wait(self) -> Result<InferResponse, ServerError> {
        self.rx.recv().unwrap_or(Err(ServerError::Canceled))
    }
}

/// What a worker executes batches on: a forked sequential engine (the
/// common case — one replica per worker, batches coalesce), or a shared
/// partition-parallel engine (one worker drives it; each request is
/// already sharded across the parallel engine's own pool).
enum WorkerEngine {
    Forked(Engine),
    Parallel(Box<ParallelEngine>),
}

/// The concurrent serving runtime. Construct with [`Server::start`]
/// (worker pool over a forked [`Engine`]) or [`Server::start_parallel`]
/// (single worker driving a [`ParallelEngine`]); submit through
/// [`Server::handle`]; stop with [`Server::shutdown`].
pub struct Server {
    queue: Arc<RequestQueue>,
    telemetry: Arc<Telemetry>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    config: ServerConfig,
    /// Mutation/version handle on the worker pool's shared graph state;
    /// `None` when fronting a [`ParallelEngine`], which serves a frozen
    /// snapshot.
    graph: Option<GraphHandle>,
    /// Fallback node count / version for the frozen-snapshot case.
    static_num_nodes: usize,
    static_version: u64,
    model_kind: ModelKind,
}

impl Server {
    /// Starts the runtime: forks `config.workers − 1` engine replicas
    /// (the original becomes worker 0) and spawns one batching worker
    /// thread per replica.
    ///
    /// # Errors
    ///
    /// [`EngineError::NoWorkers`] (as [`ServerError::Engine`]) when
    /// `config.workers` is zero.
    pub fn start(engine: Engine, config: ServerConfig) -> Result<Self, ServerError> {
        if config.workers == 0 {
            return Err(ServerError::Engine(EngineError::NoWorkers));
        }
        let graph = engine.graph_handle();
        let mut replicas = Vec::with_capacity(config.workers);
        for _ in 1..config.workers {
            replicas.push(engine.fork());
        }
        replicas.insert(0, engine);
        let replicas: Vec<WorkerEngine> =
            replicas.into_iter().map(WorkerEngine::Forked).collect();
        Ok(Self::spawn(replicas, Some(graph), config))
    }

    /// Starts the runtime around a partition-parallel engine: a single
    /// worker thread drives it (the engine parallelizes internally),
    /// while admission control and telemetry work unchanged.
    /// Micro-batching is forced off — the parallel engine cannot
    /// coalesce, so dequeuing a group would only hold every reply back
    /// until the whole group finished. The graph is a frozen snapshot:
    /// [`Server::apply_delta`] is rejected with
    /// [`EngineError::ImmutableGraph`].
    #[must_use]
    pub fn start_parallel(engine: ParallelEngine, config: ServerConfig) -> Self {
        let config = ServerConfig { max_batch_requests: 1, ..config };
        Self::spawn(vec![WorkerEngine::Parallel(Box::new(engine))], None, config)
    }

    fn spawn(
        replicas: Vec<WorkerEngine>,
        graph: Option<GraphHandle>,
        config: ServerConfig,
    ) -> Self {
        let (num_nodes, version, model_kind) = match &replicas[0] {
            WorkerEngine::Forked(e) => (e.dataset().num_nodes(), e.version(), e.model_kind()),
            WorkerEngine::Parallel(e) => (e.dataset().num_nodes(), e.version(), e.model_kind()),
        };
        let queue = Arc::new(RequestQueue::new(config.max_queue_depth));
        let telemetry = Arc::new(Telemetry::new());
        let limits = BatchLimits {
            window: config.batch_window,
            max_requests: config.max_batch_requests.max(1),
            max_nodes: config.max_batch_nodes.max(1),
        };
        let workers = replicas
            .into_iter()
            .enumerate()
            .map(|(i, mut engine)| {
                let queue = Arc::clone(&queue);
                let telemetry = Arc::clone(&telemetry);
                std::thread::Builder::new()
                    .name(format!("blockgnn-worker-{i}"))
                    .spawn(move || {
                        while let Some(batch) = queue.next_batch(limits) {
                            serve_batch(&mut engine, batch, &telemetry);
                        }
                    })
                    .expect("worker thread spawns")
            })
            .collect();
        Self {
            queue,
            telemetry,
            workers: Mutex::new(workers),
            config,
            graph,
            static_num_nodes: num_nodes,
            static_version: version,
            model_kind,
        }
    }

    /// A cloneable submission handle (what connection threads hold).
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            queue: Arc::clone(&self.queue),
            telemetry: Arc::clone(&self.telemetry),
            graph: self.graph.clone(),
            static_num_nodes: self.static_num_nodes,
            static_version: self.static_version,
            config: self.config.clone(),
        }
    }

    /// The model this server answers for.
    #[must_use]
    pub fn model_kind(&self) -> ModelKind {
        self.model_kind
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Applies a [`GraphDelta`] to the served graph: the new version is
    /// published atomically **between micro-batches** — batches already
    /// executing finish on the version they resolved at dequeue, the
    /// next batch on every worker serves the new one, and each
    /// [`InferResponse::graph_version`] says which side of the swap it
    /// landed on. Returns the new version.
    ///
    /// # Errors
    ///
    /// [`EngineError::Delta`] / [`EngineError::GraphBudget`] (wrapped in
    /// [`ServerError::Engine`]) for rejected deltas, or
    /// [`EngineError::ImmutableGraph`] on a partition-parallel server.
    /// The served graph is untouched on failure.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<u64, ServerError> {
        self.handle().update(delta)
    }

    /// The currently served graph version.
    #[must_use]
    pub fn graph_version(&self) -> u64 {
        self.graph.as_ref().map_or(self.static_version, GraphHandle::version)
    }

    /// Current telemetry snapshot.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        let mut stats = self.telemetry.snapshot();
        stats.graph_version = self.graph_version();
        stats
    }

    /// Requests currently queued.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Stops admissions, drains what was already admitted, joins the
    /// workers, and returns the final telemetry. Idempotent.
    pub fn shutdown(&self) -> ServerStats {
        self.queue.close();
        let handles: Vec<_> = self.workers.lock().expect("worker registry").drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
        self.stats()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("model", &self.model_kind)
            .field("config", &self.config)
            .field("queue_depth", &self.queue.depth())
            .finish()
    }
}

/// Cloneable submission front of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerHandle {
    queue: Arc<RequestQueue>,
    telemetry: Arc<Telemetry>,
    /// Live graph handle (`None` when fronting a frozen parallel
    /// snapshot).
    graph: Option<GraphHandle>,
    static_num_nodes: usize,
    static_version: u64,
    config: ServerConfig,
}

impl ServerHandle {
    /// Submits a request with default options; returns a [`Ticket`]
    /// immediately (admission never blocks).
    ///
    /// # Errors
    ///
    /// [`ServerError::Overloaded`] when the queue is full,
    /// [`ServerError::ShuttingDown`] after shutdown, or
    /// [`ServerError::Engine`] for requests that are invalid on their
    /// face (out-of-range nodes, empty sampled request).
    pub fn submit(&self, request: InferRequest) -> Result<Ticket, ServerError> {
        self.submit_with(request, SubmitOptions::default())
    }

    /// Submits a request with explicit priority/deadline options.
    ///
    /// # Errors
    ///
    /// As [`ServerHandle::submit`].
    pub fn submit_with(
        &self,
        request: InferRequest,
        options: SubmitOptions,
    ) -> Result<Ticket, ServerError> {
        self.telemetry.record_submitted();
        // Front-door validation with the engine's own validity rule, so
        // obviously bad requests fail at submission with a typed error
        // instead of occupying queue space (and the two paths cannot
        // drift). Validated against the *current* version's node count;
        // the engine re-validates against whatever version the request's
        // batch resolves (node counts only grow, so an admitted request
        // stays valid).
        if let Err(e) = blockgnn_engine::validate_request(&request, self.num_nodes()) {
            self.telemetry.with(|s| s.failed += 1);
            return Err(ServerError::Engine(e));
        }
        let deadline =
            options.deadline.or(self.config.default_deadline).map(|d| Instant::now() + d);
        let (tx, rx) = sync_channel(1);
        match self.queue.push(request, options.priority, deadline, tx) {
            Ok(()) => Ok(Ticket { rx }),
            Err(e) => {
                if matches!(e, ServerError::Overloaded { .. }) {
                    self.telemetry.record_shed_overload();
                }
                Err(e)
            }
        }
    }

    /// Submits and blocks for the answer.
    ///
    /// # Errors
    ///
    /// As [`ServerHandle::submit`], plus whatever the worker decided.
    pub fn infer(&self, request: InferRequest) -> Result<InferResponse, ServerError> {
        self.submit(request)?.wait()
    }

    /// Submits with options and blocks for the answer.
    ///
    /// # Errors
    ///
    /// As [`ServerHandle::submit_with`], plus whatever the worker
    /// decided.
    pub fn infer_with(
        &self,
        request: InferRequest,
        options: SubmitOptions,
    ) -> Result<InferResponse, ServerError> {
        self.submit_with(request, options)?.wait()
    }

    /// Applies a [`GraphDelta`] (see [`Server::apply_delta`] for the
    /// between-batches atomicity contract), returning the new version.
    ///
    /// # Errors
    ///
    /// As [`Server::apply_delta`].
    pub fn update(&self, delta: &GraphDelta) -> Result<u64, ServerError> {
        self.update_acked(delta).map(|ack| ack.version)
    }

    /// Like [`ServerHandle::update`], but returns the full
    /// [`crate::UpdateAck`] — version plus the node/arc counts of
    /// exactly the epoch this delta published (consistent even when
    /// another client's update lands right after).
    ///
    /// # Errors
    ///
    /// As [`Server::apply_delta`].
    pub fn update_acked(&self, delta: &GraphDelta) -> Result<crate::UpdateAck, ServerError> {
        let Some(graph) = &self.graph else {
            self.telemetry.with(|s| s.failed_updates += 1);
            return Err(ServerError::Engine(EngineError::ImmutableGraph));
        };
        match graph.apply_delta_acked(delta) {
            Ok((version, num_nodes, num_arcs)) => {
                self.telemetry.with(|s| s.updates += 1);
                Ok(crate::UpdateAck { version, num_nodes, num_arcs })
            }
            Err(e) => {
                self.telemetry.with(|s| s.failed_updates += 1);
                Err(ServerError::Engine(e))
            }
        }
    }

    /// The currently served graph version.
    #[must_use]
    pub fn graph_version(&self) -> u64 {
        self.graph.as_ref().map_or(self.static_version, GraphHandle::version)
    }

    /// Current telemetry snapshot.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        let mut stats = self.telemetry.snapshot();
        stats.graph_version = self.graph_version();
        stats
    }

    /// Nodes in the served graph's current version (the bound request
    /// node ids must obey; deltas can grow this).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.graph.as_ref().map_or(self.static_num_nodes, GraphHandle::num_nodes)
    }

    /// Stored arcs in the served graph's current version (0 reported
    /// for a frozen parallel snapshot, which exposes no live handle).
    #[must_use]
    pub fn num_arcs(&self) -> usize {
        self.graph.as_ref().map_or(0, GraphHandle::num_arcs)
    }
}

/// Executes one dequeued batch: sheds expired requests, runs the rest
/// as a coalesced execution, and delivers every answer.
fn serve_batch(engine: &mut WorkerEngine, batch: Vec<QueueItem>, telemetry: &Telemetry) {
    let exec_start = Instant::now();
    let (live, expired): (Vec<_>, Vec<_>) =
        batch.into_iter().partition(|item| !item.expired(exec_start));
    if !expired.is_empty() {
        telemetry.with(|s| s.shed_deadline += expired.len());
        for item in expired {
            let waited = exec_start.saturating_duration_since(item.enqueued_at);
            item.respond(Err(ServerError::DeadlineExceeded { waited }));
        }
    }
    if live.is_empty() {
        return;
    }
    let requests: Vec<InferRequest> = live.iter().map(|item| item.request.clone()).collect();
    let (outcomes, deduped) = match engine {
        WorkerEngine::Forked(engine) => {
            let coalesced = engine.infer_coalesced(&requests);
            (coalesced.outcomes, coalesced.deduped)
        }
        // The parallel engine shards each request across its own worker
        // pool; `start_parallel` forces batches of one, so the group is
        // a single request and nothing is deduplicated.
        WorkerEngine::Parallel(engine) => {
            (requests.iter().map(|r| engine.execute_request(r)).collect(), 0)
        }
    };
    let compute_time = exec_start.elapsed();
    // Assemble and deliver every answer into worker-local accumulators
    // first; the shared telemetry lock is taken once, briefly, at the
    // end — response assembly (argmax over logits) and channel sends
    // must not serialize the whole worker pool.
    let batch_size = live.len();
    let mut local = ServerStats::default();
    for (item, outcome) in live.into_iter().zip(outcomes) {
        let queue_time = exec_start.saturating_duration_since(item.enqueued_at);
        match outcome {
            Ok(outcome) => {
                local.queue_time.record(queue_time);
                local.compute_time.record(compute_time);
                local.completed += 1;
                let response =
                    assemble_response(outcome, queue_time, compute_time, &mut local.serve);
                item.respond(Ok(response));
            }
            Err(e) => {
                local.failed += 1;
                item.respond(Err(ServerError::Engine(e)));
            }
        }
    }
    telemetry.with(|stats| {
        stats.batches += 1;
        *stats.batch_size_counts.entry(batch_size).or_insert(0) += 1;
        stats.deduped += deduped;
        stats.completed += local.completed;
        stats.failed += local.failed;
        stats.serve.merge(&local.serve);
        stats.queue_time.merge(&local.queue_time);
        stats.compute_time.merge(&local.compute_time);
    });
}
