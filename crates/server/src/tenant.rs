//! The tenant registry: many graphs × many models served by one
//! process.
//!
//! A **tenant** is a named `(graph, model, backend)` triple wrapping its
//! own engine family — prepared weights, the PR-5 versioned graph state,
//! and a pool of forked replicas workers check out per batch. The
//! registry (internal `TenantRegistry`) publishes the name → tenant
//! map with the same
//! `Arc`-epoch pattern the versioned graph uses: `deploy`/`retire`
//! build a fresh map and swap one `Arc`, so readers (submission paths,
//! workers, `stats`) never block on a deploy and a retire never stalls
//! another tenant's in-flight micro-batch — batches hold their own
//! `Arc<Tenant>` and finish on it.
//!
//! Deploys pass through the aggregate residency accountant: with a
//! configured device budget, the sum of deployed tenants' packed weight
//! spectra + resident node features (the paper's §IV-B/§IV-C
//! accounting, via [`blockgnn_engine::Engine::resident_bytes`]) must
//! fit, or the deploy is rejected with a typed
//! [`ServerError::TenantBudget`].

use crate::error::ServerError;
use crate::fault::lock_recover;
use crate::queue::RequestQueue;
use crate::telemetry::{ServerStats, Telemetry};
use blockgnn_engine::{BackendKind, Engine, GraphHandle, ParallelEngine};
use blockgnn_gnn::ModelKind;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Instant;

/// The tenant every unqualified (`infer` without `@tenant`) request
/// addresses — the engine the server was started around.
pub const DEFAULT_TENANT: &str = "default";

/// Validates a tenant name for use on the wire: non-empty, only ASCII
/// alphanumerics, `-`, `_`, and `.` — so names embed cleanly in
/// `@tenant` qualifiers and colon-separated `list` segments.
///
/// # Errors
///
/// A message naming the offending character.
pub fn validate_tenant_name(name: &str) -> Result<(), String> {
    if name.is_empty() {
        return Err("tenant name must not be empty".into());
    }
    if let Some(c) =
        name.chars().find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.')))
    {
        return Err(format!(
            "tenant name {name:?} contains {c:?} (allowed: alphanumerics, '-', '_', '.')"
        ));
    }
    Ok(())
}

/// Parses a model name as the CLI and the `deploy` verb spell it.
///
/// # Errors
///
/// A message listing the accepted spellings.
pub fn parse_model_kind(word: &str) -> Result<ModelKind, String> {
    match word {
        "gcn" => Ok(ModelKind::Gcn),
        "gs-pool" => Ok(ModelKind::GsPool),
        "g-gcn" => Ok(ModelKind::Ggcn),
        "gat" => Ok(ModelKind::Gat),
        other => Err(format!("unknown model {other:?} (gcn | gs-pool | g-gcn | gat)")),
    }
}

/// The wire/CLI spelling of a model kind (inverse of
/// [`parse_model_kind`]).
#[must_use]
pub fn model_kind_name(kind: ModelKind) -> &'static str {
    match kind {
        ModelKind::Gcn => "gcn",
        ModelKind::GsPool => "gs-pool",
        ModelKind::Ggcn => "g-gcn",
        ModelKind::Gat => "gat",
    }
}

/// Parses a backend name as the CLI and the `deploy` verb spell it.
///
/// # Errors
///
/// A message listing the accepted spellings.
pub fn parse_backend_kind(word: &str) -> Result<BackendKind, String> {
    match word {
        "dense" => Ok(BackendKind::Dense),
        "spectral" => Ok(BackendKind::Spectral),
        "simulated-accel" => Ok(BackendKind::SimulatedAccel),
        other => Err(format!("unknown backend {other:?} (dense | spectral | simulated-accel)")),
    }
}

/// The wire/CLI spelling of a backend kind (inverse of
/// [`parse_backend_kind`]).
#[must_use]
pub fn backend_kind_name(kind: BackendKind) -> &'static str {
    match kind {
        BackendKind::Dense => "dense",
        BackendKind::Spectral => "spectral",
        BackendKind::SimulatedAccel => "simulated-accel",
    }
}

/// Everything needed to deploy one tenant: what to serve (dataset ×
/// model × backend) and how to schedule it (fair-share weight,
/// queue-depth cap).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Registry name; also the `@tenant` qualifier requests address.
    pub name: String,
    /// Name of a built-in small dataset
    /// ([`blockgnn_graph::datasets::small_by_name`]).
    pub dataset: String,
    /// Which of the paper's four algorithms to serve.
    pub model: ModelKind,
    /// Execution substrate.
    pub backend: BackendKind,
    /// Hidden-layer width of the freshly built model.
    pub hidden_dim: usize,
    /// Block-circulant block size `n`.
    pub block_size: usize,
    /// Weight-initialization seed; also seeds the generated dataset, so
    /// one spec pins the served state bit-exactly.
    pub seed: u64,
    /// Weighted-fair share of the admission queue (≥ 1; a weight-3
    /// tenant is scheduled 3× as often as a weight-1 one under
    /// contention).
    pub weight: u32,
    /// Per-tenant queued-request cap; `None` uses the server's
    /// [`crate::ServerConfig::max_queue_depth`].
    pub max_queue_depth: Option<usize>,
}

impl TenantSpec {
    /// A spec with the engine-builder defaults: hidden width 32, block
    /// size 8, seed 42, weight 1, the server's queue-depth cap.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        dataset: impl Into<String>,
        model: ModelKind,
        backend: BackendKind,
    ) -> Self {
        Self {
            name: name.into(),
            dataset: dataset.into(),
            model,
            backend,
            hidden_dim: 32,
            block_size: 8,
            seed: 42,
            weight: 1,
            max_queue_depth: None,
        }
    }

    /// Sets the hidden width.
    #[must_use]
    pub fn hidden_dim(mut self, hidden_dim: usize) -> Self {
        self.hidden_dim = hidden_dim;
        self
    }

    /// Sets the circulant block size.
    #[must_use]
    pub fn block_size(mut self, block_size: usize) -> Self {
        self.block_size = block_size;
        self
    }

    /// Sets the weight/dataset seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the fair-share weight (clamped to ≥ 1).
    #[must_use]
    pub fn weight(mut self, weight: u32) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Sets the per-tenant queue-depth cap.
    #[must_use]
    pub fn max_queue_depth(mut self, depth: usize) -> Self {
        self.max_queue_depth = Some(depth);
        self
    }

    /// Parses the CLI's compact form `name=dataset:model:backend`
    /// (e.g. `traffic=citeseer-small:gs-pool:dense`).
    ///
    /// # Errors
    ///
    /// A message naming the malformed part.
    pub fn parse_compact(word: &str) -> Result<Self, String> {
        let (name, rest) = word
            .split_once('=')
            .ok_or_else(|| format!("expected name=dataset:model:backend, got {word:?}"))?;
        validate_tenant_name(name)?;
        let mut parts = rest.split(':');
        let dataset = parts.next().filter(|d| !d.is_empty()).ok_or("missing dataset")?;
        let model = parse_model_kind(parts.next().ok_or("missing model")?)?;
        let backend = parse_backend_kind(parts.next().ok_or("missing backend")?)?;
        if parts.next().is_some() {
            return Err(format!("trailing fields after backend in {word:?}"));
        }
        Ok(Self::new(name, dataset, model, backend))
    }

    /// Builds the engine this spec describes: the named generated
    /// dataset (seeded by [`TenantSpec::seed`]) under a freshly
    /// initialized model.
    ///
    /// # Errors
    ///
    /// [`ServerError::Protocol`] for an unknown dataset name,
    /// [`ServerError::Engine`] for model/backend construction failures.
    pub fn build_engine(&self) -> Result<Engine, ServerError> {
        let dataset = blockgnn_graph::datasets::small_by_name(&self.dataset, self.seed)
            .ok_or_else(|| {
                ServerError::Protocol(format!(
                    "unknown dataset {:?} (expected one of {:?})",
                    self.dataset,
                    blockgnn_graph::datasets::small_names()
                ))
            })?;
        let engine = Engine::builder(self.model, self.backend)
            .hidden_dim(self.hidden_dim)
            .compression(blockgnn_nn::Compression::BlockCirculant {
                block_size: self.block_size,
            })
            .seed(self.seed)
            .build(Arc::new(dataset))?;
        Ok(engine)
    }
}

/// What a worker executes a tenant's batches on: a forked sequential
/// engine replica (checked out per batch), or the tenant's shared
/// partition-parallel engine (pool of one; each request is already
/// sharded across the parallel engine's own thread pool).
pub(crate) enum TenantEngine {
    Forked(Engine),
    Parallel(Box<ParallelEngine>),
}

/// A checkout pool of engine replicas. Sized to the server's worker
/// count at deploy, so with `workers` worker threads a checkout never
/// blocks in steady state (there are never more concurrent batches than
/// workers); the condvar covers the transient where a retire races a
/// checkout.
pub(crate) struct EnginePool {
    idle: Mutex<Vec<TenantEngine>>,
    returned: Condvar,
}

impl EnginePool {
    fn new(engines: Vec<TenantEngine>) -> Self {
        Self { idle: Mutex::new(engines), returned: Condvar::new() }
    }

    /// Takes a replica for one batch.
    pub fn checkout(&self) -> TenantEngine {
        let mut idle = lock_recover(&self.idle);
        loop {
            if let Some(engine) = idle.pop() {
                return engine;
            }
            idle = self.returned.wait(idle).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Returns a replica after a batch.
    pub fn checkin(&self, engine: TenantEngine) {
        lock_recover(&self.idle).push(engine);
        self.returned.notify_one();
    }
}

/// One deployed tenant: its engine pool, graph handle, scheduling
/// parameters, and private telemetry. Shared as `Arc<Tenant>` — queued
/// requests and executing batches hold their own reference, so a
/// retired tenant's in-flight work completes untouched.
pub(crate) struct Tenant {
    /// Registry-unique id; the admission queue's lane key.
    pub id: u64,
    pub name: String,
    /// Weighted-fair share of the admission queue.
    pub weight: u32,
    /// Per-tenant queued-request cap.
    pub max_queue_depth: usize,
    pub engines: EnginePool,
    /// Live graph handle (`None` for a frozen partition-parallel
    /// snapshot).
    pub graph: Option<GraphHandle>,
    /// Fallback node count / version for the frozen-snapshot case.
    pub static_num_nodes: usize,
    pub static_version: u64,
    pub model_kind: ModelKind,
    pub backend_kind: BackendKind,
    /// Weight-side §IV-B footprint + per-node feature width, for live
    /// residency accounting (features grow with appended nodes).
    weight_bytes: usize,
    feature_bytes_per_node: usize,
    /// Flipped by retire: new submissions are rejected with
    /// [`ServerError::UnknownTenant`]; in-flight work completes.
    pub retired: AtomicBool,
    /// This tenant's private accumulator; the server's aggregate stats
    /// sum these across tenants.
    pub telemetry: Telemetry,
    /// Partition load-balance factor of a parallel engine's full-graph
    /// plan (0.0 for sequential tenants — no partition plan to judge).
    part_balance: f64,
}

impl Tenant {
    /// Wraps a sequential engine: the original becomes replica 0 and is
    /// forked `replicas − 1` times (prepared weights and versioned graph
    /// state are `Arc`-shared).
    pub fn forked(
        id: u64,
        name: &str,
        weight: u32,
        max_queue_depth: usize,
        engine: Engine,
        replicas: usize,
    ) -> Self {
        let graph = engine.graph_handle();
        let static_num_nodes = engine.dataset().num_nodes();
        let static_version = engine.version();
        let model_kind = engine.model_kind();
        let backend_kind = engine.backend_kind();
        let weight_bytes = engine.weight_bytes();
        let feature_bytes_per_node =
            engine.dataset().feature_dim() * backend_kind.bytes_per_feature();
        let mut pool = Vec::with_capacity(replicas.max(1));
        for _ in 1..replicas {
            pool.push(TenantEngine::Forked(engine.fork()));
        }
        pool.push(TenantEngine::Forked(engine));
        Self {
            id,
            name: name.to_string(),
            weight: weight.max(1),
            max_queue_depth: max_queue_depth.max(1),
            engines: EnginePool::new(pool),
            graph: Some(graph),
            static_num_nodes,
            static_version,
            model_kind,
            backend_kind,
            weight_bytes,
            feature_bytes_per_node,
            retired: AtomicBool::new(false),
            telemetry: Telemetry::new(),
            part_balance: 0.0,
        }
    }

    /// Wraps a partition-parallel engine (frozen snapshot, pool of one —
    /// it parallelizes internally).
    pub fn parallel(
        id: u64,
        name: &str,
        weight: u32,
        max_queue_depth: usize,
        engine: ParallelEngine,
    ) -> Self {
        let static_num_nodes = engine.dataset().num_nodes();
        let static_version = engine.version();
        let model_kind = engine.model_kind();
        let backend_kind = engine.backend_kind();
        let weight_bytes = engine.resident_bytes()
            - static_num_nodes
                * engine.dataset().feature_dim()
                * backend_kind.bytes_per_feature();
        let feature_bytes_per_node =
            engine.dataset().feature_dim() * backend_kind.bytes_per_feature();
        let part_balance = engine.partition_balance();
        Self {
            id,
            name: name.to_string(),
            weight: weight.max(1),
            max_queue_depth: max_queue_depth.max(1),
            engines: EnginePool::new(vec![TenantEngine::Parallel(Box::new(engine))]),
            graph: None,
            static_num_nodes,
            static_version,
            model_kind,
            backend_kind,
            weight_bytes,
            feature_bytes_per_node,
            retired: AtomicBool::new(false),
            telemetry: Telemetry::new(),
            part_balance,
        }
    }

    /// Nodes in this tenant's current graph version — what request node
    /// ids are validated against.
    pub fn num_nodes(&self) -> usize {
        self.graph.as_ref().map_or(self.static_num_nodes, GraphHandle::num_nodes)
    }

    /// Stored arcs in the current version (0 for a frozen snapshot).
    pub fn num_arcs(&self) -> usize {
        self.graph.as_ref().map_or(0, GraphHandle::num_arcs)
    }

    /// This tenant's current graph version.
    pub fn version(&self) -> u64 {
        self.graph.as_ref().map_or(self.static_version, GraphHandle::version)
    }

    /// Live §IV-B/§IV-C residency footprint: packed weight spectra plus
    /// the *current* version's features (deltas that append nodes grow
    /// it).
    pub fn resident_bytes(&self) -> usize {
        self.weight_bytes + self.num_nodes() * self.feature_bytes_per_node
    }

    pub fn is_retired(&self) -> bool {
        self.retired.load(Ordering::Acquire)
    }

    /// This tenant's telemetry snapshot, stamped with its own version
    /// and partition-balance factor.
    pub fn stats(&self) -> ServerStats {
        let mut stats = self.telemetry.snapshot();
        stats.graph_version = self.version();
        stats.part_balance = self.part_balance;
        stats
    }
}

/// A public, wire-friendly description of one deployed tenant (what
/// `list` reports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantInfo {
    /// Registry name.
    pub name: String,
    /// Served model.
    pub model: ModelKind,
    /// Execution substrate.
    pub backend: BackendKind,
    /// Current graph version.
    pub graph_version: u64,
    /// Current node count.
    pub num_nodes: usize,
    /// Fair-share weight.
    pub weight: u32,
    /// Requests currently queued in this tenant's lane.
    pub queue_depth: usize,
    /// Current §IV-B/§IV-C residency footprint (bytes).
    pub resident_bytes: usize,
}

/// The name → tenant map plus the aggregate residency accountant.
///
/// The map itself is published like a graph epoch: mutations build a
/// fresh `BTreeMap` and swap one `Arc` under a short-lived lock, so
/// lookups on the submission hot path clone an `Arc` and never contend
/// with an in-progress deploy (which builds its engine *before* taking
/// the lock).
pub(crate) struct TenantRegistry {
    map: Mutex<Arc<BTreeMap<String, Arc<Tenant>>>>,
    /// Final counters of retired tenants, folded into aggregate stats so
    /// a retire never makes server-lifetime totals go backwards.
    retired_stats: Mutex<ServerStats>,
    next_id: AtomicU64,
    device_budget: Option<usize>,
    started: Instant,
}

impl TenantRegistry {
    pub fn new(device_budget: Option<usize>) -> Self {
        Self {
            map: Mutex::new(Arc::new(BTreeMap::new())),
            retired_stats: Mutex::new(ServerStats::default()),
            next_id: AtomicU64::new(0),
            device_budget,
            started: Instant::now(),
        }
    }

    /// A fresh lane id for a tenant about to be constructed.
    pub fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// The current tenant map (an `Arc` clone; never blocks on deploys
    /// longer than the swap itself).
    pub fn snapshot(&self) -> Arc<BTreeMap<String, Arc<Tenant>>> {
        Arc::clone(&lock_recover(&self.map))
    }

    /// Looks up one tenant by name.
    pub fn get(&self, name: &str) -> Result<Arc<Tenant>, ServerError> {
        self.snapshot()
            .get(name)
            .cloned()
            .ok_or_else(|| ServerError::UnknownTenant { name: name.to_string() })
    }

    /// Publishes a fully constructed tenant, enforcing name uniqueness
    /// and the aggregate residency budget.
    ///
    /// # Errors
    ///
    /// [`ServerError::TenantExists`] on a name collision,
    /// [`ServerError::TenantBudget`] when the deploy would overflow the
    /// device budget.
    pub fn deploy(&self, tenant: Tenant) -> Result<Arc<Tenant>, ServerError> {
        let mut map = lock_recover(&self.map);
        if map.contains_key(&tenant.name) {
            return Err(ServerError::TenantExists { name: tenant.name });
        }
        if let Some(budget) = self.device_budget {
            let deployed: usize = map.values().map(|t| t.resident_bytes()).sum();
            let needed = deployed + tenant.resident_bytes();
            if needed > budget {
                return Err(ServerError::TenantBudget { needed, budget });
            }
        }
        let tenant = Arc::new(tenant);
        let mut next = BTreeMap::clone(&map);
        next.insert(tenant.name.clone(), Arc::clone(&tenant));
        *map = Arc::new(next);
        Ok(tenant)
    }

    /// Unpublishes a tenant: removes it from the map, stops new
    /// submissions, purges its queued-but-unexecuted requests (each
    /// answered with a typed [`ServerError::UnknownTenant`]), and folds
    /// its final counters into the retired accumulator. In-flight
    /// batches hold their own `Arc<Tenant>` and complete normally.
    /// Returns the tenant's final stats.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownTenant`] for an unknown name;
    /// [`ServerError::Protocol`] for the default tenant, which anchors
    /// unqualified requests and cannot be retired.
    pub fn retire(&self, name: &str, queue: &RequestQueue) -> Result<ServerStats, ServerError> {
        if name == DEFAULT_TENANT {
            return Err(ServerError::Protocol("the default tenant cannot be retired".into()));
        }
        let tenant = {
            let mut map = lock_recover(&self.map);
            let Some(tenant) = map.get(name).cloned() else {
                return Err(ServerError::UnknownTenant { name: name.to_string() });
            };
            let mut next = BTreeMap::clone(&map);
            next.remove(name);
            *map = Arc::new(next);
            tenant
        };
        tenant.retired.store(true, Ordering::Release);
        queue.purge_tenant(tenant.id);
        let finals = tenant.stats();
        lock_recover(&self.retired_stats).absorb(&finals);
        Ok(finals)
    }

    /// The aggregate server snapshot: retired tenants' final counters
    /// plus every live tenant's, with one [`crate::TenantRollup`] per
    /// live tenant. The top-level `graph_version`/`updates` mirror the
    /// default tenant (the one unqualified requests address), keeping
    /// the single-tenant summary contract intact.
    pub fn global_stats(&self, queue: &RequestQueue) -> ServerStats {
        let map = self.snapshot();
        let mut global = lock_recover(&self.retired_stats).clone();
        // `updates` of the default tenant is what the single-tenant
        // summary reported before multi-tenancy; keep absorbing every
        // tenant's into the total, but source version from the default.
        for (name, tenant) in map.iter() {
            let stats = tenant.stats();
            global
                .tenants
                .insert(name.clone(), stats.rollup(tenant.weight, queue.depth_of(tenant.id)));
            global.absorb(&stats);
            if name == DEFAULT_TENANT {
                global.graph_version = stats.graph_version;
            }
        }
        global.uptime = self.started.elapsed();
        global
    }

    /// Public descriptions of every deployed tenant, in name order.
    pub fn infos(&self, queue: &RequestQueue) -> Vec<TenantInfo> {
        self.snapshot()
            .values()
            .map(|t| TenantInfo {
                name: t.name.clone(),
                model: t.model_kind,
                backend: t.backend_kind,
                graph_version: t.version(),
                num_nodes: t.num_nodes(),
                weight: t.weight,
                queue_depth: queue.depth_of(t.id),
                resident_bytes: t.resident_bytes(),
            })
            .collect()
    }

    /// Sum of deployed tenants' resident bytes (what the accountant
    /// charges against the device budget).
    pub fn resident_bytes(&self) -> usize {
        self.snapshot().values().map(|t| t.resident_bytes()).sum()
    }

    pub fn device_budget(&self) -> Option<usize> {
        self.device_budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockgnn_graph::datasets;

    fn engine() -> Engine {
        Engine::builder(ModelKind::Gcn, BackendKind::Dense)
            .hidden_dim(8)
            .build(Arc::new(datasets::cora_like_small(3)))
            .unwrap()
    }

    #[test]
    fn spec_compact_form_round_trips_names() {
        let spec = TenantSpec::parse_compact("traffic=citeseer-small:gs-pool:dense").unwrap();
        assert_eq!(spec.name, "traffic");
        assert_eq!(spec.dataset, "citeseer-small");
        assert_eq!(spec.model, ModelKind::GsPool);
        assert_eq!(spec.backend, BackendKind::Dense);
        assert_eq!(spec.weight, 1);
        for bad in [
            "noequals",
            "=cora-small:gcn:dense",
            "x=cora-small:gcn",
            "x=cora-small:gcn:dense:extra",
            "x=cora-small:nope:dense",
            "x=cora-small:gcn:nope",
            "x=:gcn:dense",
        ] {
            assert!(TenantSpec::parse_compact(bad).is_err(), "{bad:?} must fail");
        }
        for kind in [ModelKind::Gcn, ModelKind::GsPool, ModelKind::Ggcn, ModelKind::Gat] {
            assert_eq!(parse_model_kind(model_kind_name(kind)).unwrap(), kind);
        }
        for kind in [BackendKind::Dense, BackendKind::Spectral, BackendKind::SimulatedAccel] {
            assert_eq!(parse_backend_kind(backend_kind_name(kind)).unwrap(), kind);
        }
    }

    #[test]
    fn registry_swaps_maps_and_accounts_residency() {
        let queue = RequestQueue::new([4, 2, 1]);
        let tiny_budget = {
            // Budget fits exactly one copy of the test engine.
            let e = engine();
            e.resident_bytes() + e.resident_bytes() / 2
        };
        let registry = TenantRegistry::new(Some(tiny_budget));
        let before = registry.snapshot();
        let a = Tenant::forked(registry.next_id(), "a", 1, 8, engine(), 1);
        registry.deploy(a).unwrap();
        // Readers holding the old map are unaffected; new lookups see it.
        assert!(before.is_empty());
        assert!(registry.get("a").is_ok());
        // Name collision is typed.
        let dup = Tenant::forked(registry.next_id(), "a", 1, 8, engine(), 1);
        assert!(matches!(registry.deploy(dup), Err(ServerError::TenantExists { .. })));
        // A second tenant overflows the 1.5× budget, typed.
        let b = Tenant::forked(registry.next_id(), "b", 1, 8, engine(), 1);
        match registry.deploy(b) {
            Err(ServerError::TenantBudget { needed, budget }) => {
                assert!(needed > budget);
                assert_eq!(budget, tiny_budget);
            }
            Err(other) => panic!("expected TenantBudget, got {other:?}"),
            Ok(_) => panic!("expected TenantBudget, got a deployed tenant"),
        }
        // Retiring is typed for unknown names and forbidden for default.
        assert!(matches!(
            registry.retire("ghost", &queue),
            Err(ServerError::UnknownTenant { .. })
        ));
        assert!(matches!(
            registry.retire(DEFAULT_TENANT, &queue),
            Err(ServerError::Protocol(_))
        ));
        // Retiring "a" frees its residency; "b" now fits.
        registry.retire("a", &queue).unwrap();
        assert!(registry.get("a").is_err());
        let b = Tenant::forked(registry.next_id(), "b", 1, 8, engine(), 1);
        registry.deploy(b).unwrap();
        assert_eq!(registry.infos(&queue).len(), 1);
    }

    #[test]
    fn engine_pool_checkout_round_trips() {
        let tenant = Tenant::forked(0, "t", 1, 8, engine(), 3);
        let a = tenant.engines.checkout();
        let b = tenant.engines.checkout();
        let c = tenant.engines.checkout();
        tenant.engines.checkin(a);
        tenant.engines.checkin(b);
        tenant.engines.checkin(c);
        // All three replicas came back; a fourth checkout succeeds.
        let again = tenant.engines.checkout();
        tenant.engines.checkin(again);
        assert!(tenant.resident_bytes() > 0);
        assert_eq!(tenant.version(), 0);
    }
}
